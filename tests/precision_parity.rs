//! Precision relationships between the verifiers, as claimed by the paper:
//!
//! * GPUPoly has the *same* precision as (CPU) DeepPoly — Table 3;
//! * early termination does not change GPUPoly's verdicts — §3.2/§4.2;
//! * the ladder IBP ≤ CROWN-IBP ≤ GPUPoly holds — Tables 2 and 4.

use gpupoly::baselines::{ibp, CrownIbp, DeepPolyCpu};
use gpupoly::core::{GpuPoly, VerifyConfig};
use gpupoly::device::{Device, DeviceConfig};
use gpupoly::nn::builder::NetworkBuilder;
use gpupoly::nn::{Network, Shape};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn rand_vec(rng: &mut StdRng, n: usize, a: f32) -> Vec<f32> {
    (0..n).map(|_| rng.random_range(-a..a)).collect()
}

fn mixed_net(rng: &mut StdRng) -> Network<f32> {
    let w1 = rand_vec(rng, 3 * 3 * 3, 0.5);
    let b = NetworkBuilder::new(Shape::new(5, 5, 1))
        .conv(3, (3, 3), (1, 1), (1, 1), w1, rand_vec(rng, 3, 0.15))
        .relu();
    let in_len = b.current_shape().len();
    let w2 = rand_vec(rng, 10 * in_len, 0.35);
    let b = b.dense_flat(10, w2, rand_vec(rng, 10, 0.15)).relu();
    let w3 = rand_vec(rng, 4 * 10, 0.5);
    b.dense_flat(4, w3, vec![0.0; 4]).build().expect("net")
}

#[test]
fn gpupoly_matches_cpu_deeppoly_verdicts_and_margins() {
    let mut rng = StdRng::seed_from_u64(10);
    let device = Device::new(DeviceConfig::new().workers(2));
    let mut disagreements = 0;
    for _ in 0..6 {
        let net = mixed_net(&mut rng);
        let image: Vec<f32> = (0..25).map(|_| rng.random_range(0.2..0.8)).collect();
        let label = net.classify(&image);
        for eps in [0.01f32, 0.03] {
            // Full-backsubstitution GPUPoly = DeepPoly's schedule.
            let gp = GpuPoly::new(
                device.clone(),
                &net,
                VerifyConfig {
                    early_termination: false,
                    ..Default::default()
                },
            )
            .unwrap()
            .verify_robustness(&image, label, eps)
            .unwrap();
            let dp = DeepPolyCpu::new(&net).verify_robustness(&image, label, eps);
            if gp.verified != dp.verified {
                disagreements += 1;
            }
            // Margins agree to float-accumulation tolerance.
            for (m, d) in gp.margins.iter().zip(&dp.margins) {
                assert!(
                    (m.lower - d).abs() < 1e-3 * (1.0 + m.lower.abs()),
                    "margin mismatch: gpupoly {} vs cpu {}",
                    m.lower,
                    d
                );
            }
        }
    }
    assert_eq!(disagreements, 0, "GPUPoly and CPU DeepPoly disagreed");
}

#[test]
fn early_termination_never_changes_the_verdict() {
    let mut rng = StdRng::seed_from_u64(20);
    let device = Device::new(DeviceConfig::new().workers(2));
    for _ in 0..6 {
        let net = mixed_net(&mut rng);
        let image: Vec<f32> = (0..25).map(|_| rng.random_range(0.2..0.8)).collect();
        let label = net.classify(&image);
        for eps in [0.005f32, 0.02, 0.05] {
            let on = GpuPoly::new(device.clone(), &net, VerifyConfig::default())
                .unwrap()
                .verify_robustness(&image, label, eps)
                .unwrap();
            let off = GpuPoly::new(
                device.clone(),
                &net,
                VerifyConfig {
                    early_termination: false,
                    ..Default::default()
                },
            )
            .unwrap()
            .verify_robustness(&image, label, eps)
            .unwrap();
            assert_eq!(
                on.verified, off.verified,
                "early termination changed the verdict at eps={eps}"
            );
        }
    }
}

#[test]
fn precision_ladder_ibp_crown_gpupoly() {
    let mut rng = StdRng::seed_from_u64(30);
    let device = Device::new(DeviceConfig::new().workers(2));
    let mut strict = 0;
    for _ in 0..8 {
        let net = mixed_net(&mut rng);
        let image: Vec<f32> = (0..25).map(|_| rng.random_range(0.2..0.8)).collect();
        let label = net.classify(&image);
        for eps in [0.01f32, 0.02, 0.04] {
            let vi = ibp::verify_robustness(&net, &image, label, eps).verified;
            let vc = CrownIbp::new(&net)
                .verify_robustness(&image, label, eps)
                .verified;
            let vg = GpuPoly::new(device.clone(), &net, VerifyConfig::default())
                .unwrap()
                .verify_robustness(&image, label, eps)
                .unwrap()
                .verified;
            // Ladder on verification power (monotone in the relaxations).
            assert!(
                !vi || vc || vg,
                "IBP verified but neither CROWN-IBP nor GPUPoly did"
            );
            assert!(vc <= vg || !vc, "CROWN-IBP verified but GPUPoly did not");
            if vg && !vc {
                strict += 1;
            }
        }
    }
    assert!(
        strict > 0,
        "expected at least one instance where GPUPoly strictly beats CROWN-IBP"
    );
}

#[test]
fn inference_error_widening_costs_little_precision() {
    let mut rng = StdRng::seed_from_u64(40);
    let device = Device::new(DeviceConfig::new().workers(2));
    let net = mixed_net(&mut rng);
    let image: Vec<f32> = (0..25).map(|_| rng.random_range(0.2..0.8)).collect();
    let label = net.classify(&image);
    let with = GpuPoly::new(device.clone(), &net, VerifyConfig::default())
        .unwrap()
        .verify_robustness(&image, label, 0.02)
        .unwrap();
    let without = GpuPoly::new(
        device,
        &net,
        VerifyConfig {
            account_inference_error: false,
            ..Default::default()
        },
    )
    .unwrap()
    .verify_robustness(&image, label, 0.02)
    .unwrap();
    for (a, b) in with.margins.iter().zip(&without.margins) {
        assert!(
            a.lower <= b.lower + 1e-6,
            "widening must not tighten margins"
        );
        assert!(
            (a.lower - b.lower).abs() < 1e-3 * (1.0 + b.lower.abs()),
            "widening should cost only ulp-scale precision: {} vs {}",
            a.lower,
            b.lower
        );
    }
}
