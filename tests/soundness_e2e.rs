//! End-to-end soundness: on randomized dense / convolutional / residual
//! networks, the verifier's certificates must hold against concrete
//! executions and gradient-based attacks.

use gpupoly::core::{GpuPoly, VerifyConfig};
use gpupoly::device::{Device, DeviceConfig};
use gpupoly::interval::Itv;
use gpupoly::nn::builder::NetworkBuilder;
use gpupoly::nn::{Network, Shape};
use gpupoly::train::pgd_attack;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn rand_vec(rng: &mut StdRng, n: usize, a: f32) -> Vec<f32> {
    (0..n).map(|_| rng.random_range(-a..a)).collect()
}

fn random_dense_net(rng: &mut StdRng, depth: usize) -> Network<f32> {
    let mut b = NetworkBuilder::new_flat(6);
    let mut in_len = 6;
    for _ in 0..depth {
        let w = rand_vec(rng, 8 * in_len, 0.6);
        let bias = rand_vec(rng, 8, 0.3);
        b = b.dense_flat(8, w, bias).relu();
        in_len = 8;
    }
    let w = rand_vec(rng, 3 * in_len, 0.6);
    b.dense_flat(3, w, vec![0.0; 3]).build().expect("valid net")
}

fn random_conv_net(rng: &mut StdRng) -> Network<f32> {
    let w1 = rand_vec(rng, 3 * 3 * 3, 0.5);
    let w2 = rand_vec(rng, 2 * 2 * 4 * 3, 0.5);
    let side = 6 * 6; // spatial after stride-2: 3x3
    let _ = side;
    let b = NetworkBuilder::new(Shape::new(6, 6, 1))
        .conv(3, (3, 3), (1, 1), (1, 1), w1, rand_vec(rng, 3, 0.2))
        .relu()
        .conv(4, (2, 2), (2, 2), (0, 0), w2, rand_vec(rng, 4, 0.2))
        .relu();
    let in_len = b.current_shape().len();
    let w3 = rand_vec(rng, 3 * in_len, 0.4);
    b.dense_flat(3, w3, vec![0.0; 3])
        .build()
        .expect("valid net")
}

fn random_residual_net(rng: &mut StdRng) -> Network<f32> {
    let w1 = rand_vec(rng, 4 * 3 * 3, 0.5);
    let wa1 = rand_vec(rng, 4 * 3 * 3 * 4, 0.4);
    let wa2 = rand_vec(rng, 4 * 3 * 3 * 4, 0.4);
    let wskip = rand_vec(rng, 4 * 4, 0.4);
    let ba1 = rand_vec(rng, 4, 0.2);
    let ba2 = rand_vec(rng, 4, 0.2);
    let bskip = rand_vec(rng, 4, 0.2);
    let b = NetworkBuilder::new(Shape::new(5, 5, 1))
        .conv(4, (3, 3), (1, 1), (1, 1), w1, rand_vec(rng, 4, 0.2))
        .relu()
        .residual(
            move |br| {
                br.conv(4, (3, 3), (1, 1), (1, 1), wa1, ba1).relu().conv(
                    4,
                    (3, 3),
                    (1, 1),
                    (1, 1),
                    wa2,
                    ba2,
                )
            },
            move |br| br.conv(4, (1, 1), (1, 1), (0, 0), wskip, bskip),
        )
        .relu();
    let in_len = b.current_shape().len();
    let w = rand_vec(rng, 3 * in_len, 0.3);
    b.dense_flat(3, w, vec![0.0; 3]).build().expect("valid net")
}

fn assert_bounds_contain_samples(net: &Network<f32>, image: &[f32], eps: f32, samples: usize) {
    let device = Device::new(DeviceConfig::new().workers(2));
    let verifier = GpuPoly::new(device, net, VerifyConfig::default()).expect("verifier");
    let input: Vec<Itv<f32>> = image
        .iter()
        .map(|&x| Itv::new((x - eps).max(0.0), (x + eps).min(1.0)))
        .collect();
    let analysis = verifier.analyze(&input).expect("analysis");
    let graph = net.graph();
    let mut rng = StdRng::seed_from_u64(999);
    for _ in 0..samples {
        let x: Vec<f32> = image
            .iter()
            .map(|&v| (v + rng.random_range(-eps..eps)).clamp(0.0, 1.0))
            .collect();
        let acts = graph.eval(&x);
        for (node, act) in acts.iter().enumerate() {
            for (j, (&v, b)) in act.iter().zip(&analysis.bounds[node]).enumerate() {
                assert!(
                    b.contains(v),
                    "node {node} neuron {j}: bound {b} misses concrete value {v}"
                );
            }
        }
    }
}

#[test]
fn dense_net_bounds_contain_random_executions() {
    let mut rng = StdRng::seed_from_u64(1);
    for trial in 0..5 {
        let net = random_dense_net(&mut rng, 2 + trial % 3);
        let image: Vec<f32> = (0..6).map(|_| rng.random_range(0.2..0.8)).collect();
        assert_bounds_contain_samples(&net, &image, 0.08, 30);
    }
}

#[test]
fn conv_net_bounds_contain_random_executions() {
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..3 {
        let net = random_conv_net(&mut rng);
        let image: Vec<f32> = (0..36).map(|_| rng.random_range(0.1..0.9)).collect();
        assert_bounds_contain_samples(&net, &image, 0.05, 20);
    }
}

#[test]
fn residual_net_bounds_contain_random_executions() {
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..3 {
        let net = random_residual_net(&mut rng);
        let image: Vec<f32> = (0..25).map(|_| rng.random_range(0.1..0.9)).collect();
        assert_bounds_contain_samples(&net, &image, 0.05, 20);
    }
}

#[test]
fn verified_instances_resist_pgd_attacks() {
    let mut rng = StdRng::seed_from_u64(4);
    let device = Device::new(DeviceConfig::new().workers(2));
    let mut verified_seen = 0;
    for _ in 0..10 {
        let net = random_dense_net(&mut rng, 2);
        let image: Vec<f32> = (0..6).map(|_| rng.random_range(0.2..0.8)).collect();
        let label = net.classify(&image);
        let eps = 0.04;
        let verifier = GpuPoly::new(device.clone(), &net, VerifyConfig::default()).unwrap();
        let verdict = verifier.verify_robustness(&image, label, eps).unwrap();
        if !verdict.verified {
            continue;
        }
        verified_seen += 1;
        // A verified certificate means no attack inside the ball can flip
        // the label; try hard with PGD from several restarts.
        for restart in 0..3 {
            let mut start = image.clone();
            for v in &mut start {
                *v = (*v + (restart as f32 - 1.0) * eps * 0.9).clamp(0.0, 1.0);
            }
            let adv = pgd_attack(&net, &start, label, eps, 20);
            // project once more to the ball around the original image
            let adv: Vec<f32> = adv
                .iter()
                .zip(&image)
                .map(|(&a, &x)| a.clamp(x - eps, x + eps).clamp(0.0, 1.0))
                .collect();
            assert_eq!(
                net.classify(&adv),
                label,
                "PGD broke a verified certificate"
            );
        }
    }
    assert!(
        verified_seen >= 3,
        "too few verified instances to be meaningful"
    );
}

#[test]
fn f64_verifier_works_and_is_sound() {
    // Re-express a small net in f64 and check the verifier runs with the
    // wider float type too (the paper supports both precisions).
    let net64 = NetworkBuilder::<f64>::new_flat(2)
        .dense(&[[1.0_f64, -1.0], [1.0, 1.0]], &[0.0, 0.0])
        .relu()
        .dense(&[[1.0_f64, 1.0], [1.0, -1.0]], &[0.5, 0.0])
        .build()
        .unwrap();
    let device = Device::new(DeviceConfig::new().workers(2));
    let verifier = GpuPoly::new(device, &net64, VerifyConfig::default()).unwrap();
    let verdict = verifier.verify_robustness(&[0.4, 0.6], 0, 0.05).unwrap();
    assert!(verdict.verified);
    let y = net64.infer(&[0.43, 0.58]);
    assert!(verdict.margins[0].lower <= (y[0] - y[1]) + 1e-9);
}
