//! End-to-end verification under a CI-selected backend.
//!
//! CI runs the test suite once per backend with `GPUPOLY_BACKEND` set to
//! `cpusim` or `reference` (see `.github/workflows/ci.yml`); unset, both
//! are exercised. The body is one generic function — exactly the shape a
//! downstream user's code takes when written against the `Backend` trait —
//! so this test also pins that the public engine API stays fully
//! backend-generic.

use gpupoly::core::{Engine, GpuPoly, Query, VerifyConfig};
use gpupoly::device::{Backend, Device, DeviceConfig};
use gpupoly::nn::builder::NetworkBuilder;
use gpupoly::nn::Network;

fn net() -> Network<f32> {
    let mix = |i: usize| ((((i + 13) * 2654435761) % 2001) as f32 / 1000.0 - 1.0) * 0.4;
    NetworkBuilder::new_flat(6)
        .dense_flat(10, (0..60).map(mix).collect(), (0..10).map(mix).collect())
        .relu()
        .dense_flat(10, (0..100).map(mix).collect(), (0..10).map(mix).collect())
        .relu()
        .dense_flat(4, (0..40).map(mix).collect(), vec![0.0; 4])
        .build()
        .expect("valid net")
}

/// The whole public verification surface, written backend-generically.
fn verify_end_to_end<B: Backend>(device: Device<B>) {
    let net = net();
    let image: Vec<f32> = (0..6).map(|i| 0.3 + 0.07 * i as f32).collect();
    let label = net.classify(&image);

    // Batched engine path.
    let engine = Engine::new(device.clone(), &net, VerifyConfig::default()).expect("engine");
    let queries: Vec<Query<f32>> = (0..4)
        .map(|q| Query::new(image.clone(), label, 0.005 + 0.005 * q as f32))
        .collect();
    let verdicts = engine.verify_batch(&queries);
    for (q, v) in queries.iter().zip(verdicts) {
        let v = v.expect("query succeeds");
        // Soundness at the box center: the certified margin lower-bounds
        // the concrete margin. (Margins are not asserted monotone in eps:
        // early termination stops refining a row once it is proven, so a
        // larger box can legitimately report a tighter — still sound —
        // certified margin.)
        let y = net.infer(&image);
        for m in &v.margins {
            assert!(
                m.lower <= y[q.label] - y[m.adversary] + 1e-5,
                "[{}] margin unsound",
                device.backend().label()
            );
        }
    }

    // Compatibility wrapper path on the same device.
    let verifier = GpuPoly::new(device.clone(), &net, VerifyConfig::default()).expect("verifier");
    let v = verifier
        .verify_robustness(&image, label, 0.005)
        .expect("query succeeds");
    assert_eq!(v.margins.len(), 3);

    drop(engine);
    drop(verifier);
    assert_eq!(
        device.memory_in_use(),
        0,
        "[{}] all device memory returned",
        device.backend().label()
    );
}

#[test]
fn selected_backend_verifies_end_to_end() {
    let selected = std::env::var("GPUPOLY_BACKEND").unwrap_or_default();
    match selected.as_str() {
        "reference" => verify_end_to_end(Device::reference(DeviceConfig::new().workers(2))),
        "cpusim" => verify_end_to_end(Device::new(DeviceConfig::new().workers(2))),
        "" => {
            verify_end_to_end(Device::new(DeviceConfig::new().workers(2)));
            verify_end_to_end(Device::reference(DeviceConfig::new().workers(2)));
        }
        other => panic!("unknown GPUPOLY_BACKEND {other:?} (use cpusim|reference)"),
    }
}
