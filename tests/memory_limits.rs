//! Device-memory behavior (§4.2 "Memory management"): chunked
//! backsubstitution under a hard capacity produces the same results as an
//! unconstrained run, never exceeds the cap, and fails cleanly when even a
//! single row cannot fit.

use gpupoly::core::{GpuPoly, VerifyConfig, VerifyError};
use gpupoly::device::{Device, DeviceConfig, DeviceError};
use gpupoly::nn::builder::NetworkBuilder;
use gpupoly::nn::{Network, Shape};

fn conv_net() -> Network<f32> {
    let b = NetworkBuilder::new(Shape::new(8, 8, 1))
        .conv(
            6,
            (3, 3),
            (1, 1),
            (1, 1),
            (0..54).map(|i| ((i % 9) as f32 - 4.0) * 0.12).collect(),
            vec![0.02; 6],
        )
        .relu()
        .conv(
            8,
            (3, 3),
            (2, 2),
            (1, 1),
            (0..432).map(|i| ((i % 7) as f32 - 3.0) * 0.08).collect(),
            vec![0.0; 8],
        )
        .relu();
    let in_len = b.current_shape().len();
    b.flatten_dense(
        5,
        move |i| (((i * 13) % 23) as f32 - 11.0) * 0.4 / in_len as f32,
        |_| 0.0,
    )
    .build()
    .expect("net")
}

#[test]
fn constrained_device_matches_unconstrained_results() {
    let net = conv_net();
    let image = vec![0.5f32; 64];
    let label = net.classify(&image);
    let eps = 0.02f32;

    let free = Device::new(DeviceConfig::new().workers(2));
    let big = GpuPoly::new(free.clone(), &net, VerifyConfig::default())
        .unwrap()
        .verify_robustness(&image, label, eps)
        .unwrap();

    for cap in [96 * 1024usize, 192 * 1024] {
        let tight = Device::new(DeviceConfig::new().workers(2).memory_capacity(cap));
        let small = GpuPoly::new(tight.clone(), &net, VerifyConfig::default())
            .unwrap()
            .verify_robustness(&image, label, eps)
            .unwrap();
        assert_eq!(big.verified, small.verified, "cap {cap}");
        for (a, b) in big.margins.iter().zip(&small.margins) {
            assert!(
                (a.lower - b.lower).abs() < 1e-4 * (1.0 + a.lower.abs()),
                "cap {cap}: margins diverged {} vs {}",
                a.lower,
                b.lower
            );
        }
        assert!(tight.peak_memory() <= cap, "capacity violated at {cap}");
        assert!(
            small.stats.chunks >= big.stats.chunks,
            "constrained run should need at least as many chunks"
        );
    }
}

#[test]
fn manual_chunk_sizes_agree() {
    let net = conv_net();
    let image = vec![0.45f32; 64];
    let label = net.classify(&image);
    let device = Device::new(DeviceConfig::new().workers(2));
    let mut reference = None;
    for chunk in [usize::MAX, 64, 7, 1] {
        let verdict = GpuPoly::new(
            device.clone(),
            &net,
            VerifyConfig {
                chunk_rows: Some(chunk),
                ..Default::default()
            },
        )
        .unwrap()
        .verify_robustness(&image, label, 0.015)
        .unwrap();
        let margins: Vec<f32> = verdict.margins.iter().map(|m| m.lower).collect();
        match &reference {
            None => reference = Some(margins),
            Some(want) => {
                for (a, b) in margins.iter().zip(want) {
                    assert!(
                        (a - b).abs() < 1e-4 * (1.0 + b.abs()),
                        "chunk={chunk}: margin {a} vs reference {b}"
                    );
                }
            }
        }
    }
}

#[test]
fn hopeless_capacity_fails_with_oom() {
    let net = conv_net();
    let image = vec![0.5f32; 64];
    let label = net.classify(&image);
    // 2 KiB cannot hold even a single backsubstitution row here.
    let device = Device::new(DeviceConfig::new().workers(2).memory_capacity(2 * 1024));
    let verifier = GpuPoly::new(device, &net, VerifyConfig::default()).unwrap();
    match verifier.verify_robustness(&image, label, 0.02) {
        Err(VerifyError::Device(DeviceError::OutOfMemory { capacity, .. })) => {
            assert_eq!(capacity, 2 * 1024);
        }
        other => panic!("expected out-of-memory, got {other:?}"),
    }
}

#[test]
fn memory_is_released_between_queries() {
    let net = conv_net();
    let image = vec![0.5f32; 64];
    let label = net.classify(&image);
    let device = Device::new(DeviceConfig::new().workers(2));
    let verifier = GpuPoly::new(device.clone(), &net, VerifyConfig::default()).unwrap();
    for _ in 0..3 {
        let _ = verifier.verify_robustness(&image, label, 0.02).unwrap();
        assert_eq!(
            device.memory_in_use(),
            0,
            "verification leaked device memory"
        );
    }
}
