//! End-to-end over the model zoo and trainer: build Table-1 architectures
//! at a small scale, train them under their paper regimes on synthetic
//! data, and verify — checking the *regime split* the whole evaluation
//! rests on (robust training ⇒ stable ReLUs ⇒ early termination ⇒ fast,
//! certifiable verification).

use gpupoly::core::{GpuPoly, VerifyConfig};
use gpupoly::device::{Device, DeviceConfig};
use gpupoly::nn::zoo::{self, ArchId, Dataset, TrainingRegime};
use gpupoly::train::{data, trainer};

fn train_one(
    arch: ArchId,
    dataset: Dataset,
    regime: TrainingRegime,
    eps: f32,
    scale: f64,
) -> (gpupoly::nn::Network<f32>, data::Dataset) {
    let mut full = data::synthetic(dataset, 170, 21);
    let test = full.split_off(10);
    let mut net = zoo::build_arch(arch, dataset, scale, 3).expect("arch builds");
    trainer::train(
        &mut net,
        &full,
        &trainer::TrainConfig {
            epochs: 3,
            eps,
            regime,
            ..Default::default()
        },
    );
    (net, test)
}

#[test]
fn robust_training_enables_early_termination_and_verification() {
    let eps = 0.05f32;
    let (normal, test) = train_one(
        ArchId::ConvBig,
        Dataset::MnistLike,
        TrainingRegime::Normal,
        eps,
        0.06,
    );
    let (robust, _) = train_one(
        ArchId::ConvBig,
        Dataset::MnistLike,
        TrainingRegime::DiffAi,
        eps,
        0.06,
    );
    let device = Device::new(DeviceConfig::new().workers(2));

    let run = |net: &gpupoly::nn::Network<f32>| {
        let verifier = GpuPoly::new(device.clone(), net, VerifyConfig::default()).unwrap();
        let mut skipped = 0usize;
        let mut refined = 0usize;
        let mut verified = 0usize;
        let mut cands = 0usize;
        for (img, &label) in test.images.iter().zip(&test.labels) {
            if net.classify(img) != label {
                continue;
            }
            cands += 1;
            let v = verifier.verify_robustness(img, label, eps).unwrap();
            skipped += v.stats.rows_skipped_stable;
            refined += v.stats.rows_refined;
            verified += usize::from(v.verified);
        }
        (cands, verified, skipped, refined)
    };

    let (nc, nv, ns, nr) = run(&normal);
    let (rc, rv, rs, rr) = run(&robust);
    // The regime split: the robust net must have a larger stable fraction.
    let normal_stable = ns as f64 / (ns + nr).max(1) as f64;
    let robust_stable = rs as f64 / (rs + rr).max(1) as f64;
    assert!(
        robust_stable > normal_stable,
        "robust net should skip more rows: {robust_stable:.3} vs {normal_stable:.3}"
    );
    // And certify at least as large a fraction of its candidates.
    if rc > 0 && nc > 0 {
        assert!(
            rv as f64 / rc as f64 >= nv as f64 / nc as f64,
            "robust net should be at least as certifiable ({rv}/{rc} vs {nv}/{nc})"
        );
    }
}

#[test]
fn residual_zoo_network_verifies_end_to_end() {
    let (net, test) = train_one(
        ArchId::ResNetTiny,
        Dataset::Cifar10Like,
        TrainingRegime::DiffAi,
        0.03,
        0.05,
    );
    let device = Device::new(DeviceConfig::new().workers(2));
    let verifier = GpuPoly::new(device, &net, VerifyConfig::default()).unwrap();
    let mut ran = 0;
    for (img, &label) in test.images.iter().zip(&test.labels).take(4) {
        let predicted = net.classify(img);
        // Verify w.r.t. the predicted label so every image exercises the path.
        let v = verifier.verify_robustness(img, predicted, 0.005).unwrap();
        let _ = label;
        assert_eq!(v.margins.len(), 9);
        ran += 1;
    }
    assert_eq!(ran, 4);
}

#[test]
fn all_table1_architectures_build_and_infer_at_tiny_scale() {
    for spec in zoo::table1_specs() {
        let net = zoo::build_arch(spec.arch, spec.dataset, 0.04, 1).expect("builds");
        let x = vec![0.4f32; spec.dataset.input_shape().len()];
        let y = net.infer(&x);
        assert_eq!(y.len(), 10, "{}", spec.id);
        assert!(y.iter().all(|v| v.is_finite()), "{}", spec.id);
    }
}
