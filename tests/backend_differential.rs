//! Cross-backend differential verification over the model zoo.
//!
//! The `Backend` trait's bit-reproducibility contract (see
//! `gpupoly-device`'s `backend` module) claims that the tiled, parallel,
//! pooled `CpuSimBackend` and the straight-line, serial, pool-less
//! `ReferenceBackend` compute **bit-identical** certified margins. This
//! test enforces that end to end through `Engine::verify_batch` on every
//! zoo architecture/dataset combination of the paper's Table 1, and checks
//! the margins against ground truth two ways:
//!
//! * **interval containment**: certified margins lower-bound the concrete
//!   margin of every sampled attack inside the input box;
//! * **baseline parity**: margins agree with the sparse CPU DeepPoly
//!   baseline (`gpupoly::baselines::DeepPolyCpu`) to float-accumulation
//!   tolerance (same relaxation, same schedule, different kernelization).
//!
//! Query radii are calibrated per family: the shallow families run a
//! realistic ε (lots of unstable-ReLU refinement, compaction, pooling
//! churn), while the deep residual nets run a near-point ε — their 18–34
//! layer spec walk still exercises every backsubstitution kernel (GBC,
//! residual split/merge, dense GEMM) differentially, without the
//! debug-build cost of refining thousands of untrained unstable ReLUs.

use std::collections::HashSet;

use gpupoly::baselines::DeepPolyCpu;
use gpupoly::core::{Engine, Query, TieredEngine, VerifyConfig};
use gpupoly::device::{Device, DeviceConfig};
use gpupoly::nn::zoo::{self, ArchId, Dataset};
use gpupoly::nn::Network;

/// One deterministic image per network, biased into the pixel domain.
fn test_image(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let h = (i as u64 + 1).wrapping_mul(seed.wrapping_mul(2654435761) | 1);
            0.15 + 0.7 * ((h >> 17) % 1000) as f32 / 1000.0
        })
        .collect()
}

/// Scales every affine weight by `factor`. Untrained He-init weights
/// amplify interval widths by ~4× per layer, which makes *every* deep ReLU
/// unstable and blows the debug-build refinement cost of the 18–34 layer
/// residual nets through the roof; damping stands in for the stabilization
/// that robust training provides on real checkpoints (see
/// `zoo_training_e2e.rs` for the trained regime split). The kernel walk —
/// what this differential test pins — is identical either way.
fn damp(net: &mut Network<f32>, factor: f32) {
    use gpupoly::nn::{Block, Layer};
    let scale = |layers: &mut [Layer<f32>]| {
        for layer in layers {
            match layer {
                Layer::Dense(d) => d.weight.iter_mut().for_each(|w| *w *= factor),
                Layer::Conv(c) => c.weight.iter_mut().for_each(|w| *w *= factor),
                Layer::Relu => {}
            }
        }
    };
    for block in net.blocks_mut() {
        match block {
            Block::Single(layer) => scale(std::slice::from_mut(layer)),
            Block::Residual { a, b } => {
                scale(a);
                scale(b);
            }
        }
    }
}

/// The unique (architecture, dataset) pairs of Table 1. Training regimes
/// reuse the same untrained build, so verifying each build once covers
/// every zoo network without redundant work.
fn zoo_builds() -> Vec<(ArchId, Dataset, Network<f32>)> {
    let mut seen = HashSet::new();
    zoo::table1_specs()
        .into_iter()
        .filter(|s| seen.insert((s.arch, s.dataset)))
        .map(|s| {
            let mut net = zoo::build_arch(s.arch, s.dataset, 0.04, 1).expect("arch builds");
            if matches!(
                s.arch,
                ArchId::ResNet18 | ArchId::SkipNet18 | ArchId::ResNet34
            ) {
                damp(&mut net, 0.1);
            }
            (s.arch, s.dataset, net)
        })
        .collect()
}

/// Per-family query radius (see module docs).
fn family_eps(arch: ArchId) -> f32 {
    match arch {
        ArchId::ResNetTiny => 5e-4,
        a if a.is_residual() => 1e-4,
        ArchId::ConvLarge => 5e-4,
        _ => 2e-3,
    }
}

fn queries(net: &Network<f32>, input_len: usize, eps: f32, n: usize) -> Vec<Query<f32>> {
    (0..n as u64)
        .map(|q| {
            let image = test_image(input_len, 7 + q);
            let label = net.classify(&image);
            Query::new(image, label, eps)
        })
        .collect()
}

#[test]
fn zoo_margins_bit_identical_across_backends_and_sound() {
    for (arch, dataset, net) in zoo_builds() {
        let id = format!("{}/{}", arch.name(), dataset.name());
        let eps = family_eps(arch);
        let n_queries = if arch.is_residual() { 1 } else { 2 };
        let qs = queries(&net, dataset.input_shape().len(), eps, n_queries);

        let cpusim = Engine::new(
            Device::new(DeviceConfig::new().workers(2)),
            &net,
            VerifyConfig::default(),
        )
        .expect("cpusim engine");
        let reference = Engine::new(
            Device::reference(DeviceConfig::new().workers(1)),
            &net,
            VerifyConfig::default(),
        )
        .expect("reference engine");

        let got_cpu = cpusim.verify_batch(&qs);
        let got_ref = reference.verify_batch(&qs);
        for (q, (c, r)) in qs.iter().zip(got_cpu.iter().zip(&got_ref)) {
            let c = c.as_ref().expect("cpusim query");
            let r = r.as_ref().expect("reference query");
            assert_eq!(c.verified, r.verified, "{id}: verdict drifted");
            assert_eq!(c.margins.len(), r.margins.len(), "{id}");
            for (mc, mr) in c.margins.iter().zip(&r.margins) {
                assert_eq!(mc.adversary, mr.adversary, "{id}");
                assert_eq!(mc.proven, mr.proven, "{id}");
                assert_eq!(
                    mc.lower.to_bits(),
                    mr.lower.to_bits(),
                    "{id}: margin vs class {} drifted across backends ({} vs {})",
                    mc.adversary,
                    mc.lower,
                    mr.lower
                );
            }

            // Interval containment: every certified margin lower-bounds the
            // concrete margin at sampled points of the L∞ box.
            for s in 0..3 {
                let x: Vec<f32> = q
                    .image
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| {
                        let t = ((i + s * 31) % 3) as f32 - 1.0; // -1, 0, 1 pattern
                        (v + eps * t).clamp(0.0, 1.0)
                    })
                    .collect();
                let y = net.infer(&x);
                for m in &c.margins {
                    let concrete = y[q.label] - y[m.adversary];
                    assert!(
                        m.lower <= concrete + 1e-5,
                        "{id}: certified {} exceeds concrete margin {} vs class {}",
                        m.lower,
                        concrete,
                        m.adversary
                    );
                }
            }
        }
    }
}

/// Cross-query fusion over the zoo: for every Table-1 build and both
/// backends, `verify_batch_fused` must return margins **bit-identical** to
/// the sequential per-query path, while issuing strictly fewer device
/// launches — and on the GEMM kernel specifically, about 1/K of them (the
/// fused walk shares each step's launch across all K queries; early
/// termination lets some queries stop sooner, so the bound asserted is
/// fused ≤ seq/2 for K ≥ 2).
#[test]
fn zoo_fused_margins_bit_identical_and_launches_collapse() {
    for (arch, dataset, net) in zoo_builds() {
        let id = format!("{}/{}", arch.name(), dataset.name());
        let eps = family_eps(arch);
        let k = if arch.is_residual() { 2 } else { 3 };
        let qs = queries(&net, dataset.input_shape().len(), eps, k);

        for reference in [false, true] {
            // Sequential per-query loop and fused batch, each on a fresh
            // device of the selected backend, counting launches.
            let (seq_margins, seq_gemm, seq_launches) = if reference {
                count_sequential(Device::reference(DeviceConfig::new().workers(1)), &net, &qs)
            } else {
                count_sequential(Device::new(DeviceConfig::new().workers(2)), &net, &qs)
            };
            let (fused_margins, fused_gemm, fused_launches) = if reference {
                count_fused(Device::reference(DeviceConfig::new().workers(1)), &net, &qs)
            } else {
                count_fused(Device::new(DeviceConfig::new().workers(2)), &net, &qs)
            };
            let tag = format!("{id} ({})", if reference { "reference" } else { "cpusim" });
            assert_eq!(
                fused_margins, seq_margins,
                "{tag}: fused margins drifted from sequential"
            );
            assert!(
                fused_launches < seq_launches,
                "{tag}: fused must issue fewer launches ({fused_launches} vs {seq_launches})"
            );
            // The fused walk shares each step's GEMM across queries, so its
            // launch count is the *longest* single query's walk, not the
            // sum: never more than sequential, and strictly fewer whenever
            // the queries overlap in depth. (The exact ~1/K collapse on
            // homogeneous batches is pinned by
            // `crates/core/tests/engine_fusion.rs`; all-conv walks may
            // never reach the dense GEMM kernel at all.)
            assert!(
                fused_gemm <= seq_gemm,
                "{tag}: fused GEMM launches exceed sequential \
                 ({fused_gemm} vs {seq_gemm})"
            );
        }
    }
}

/// Tensor-parallel row sharding over the zoo: for every Table-1 build,
/// `ShardedEngine::verify_batch_sharded` at N ∈ {1, 2, 4} devices returns
/// margins **bit-identical** to the single-device fused path. Sharding is
/// pure scheduling — contiguous row blocks with an ordered gather preserve
/// each expression row's ascending-k accumulation exactly — so the margins
/// must not drift by a single bit however the row space is split.
#[test]
fn zoo_sharded_margins_bit_identical_across_device_counts() {
    use gpupoly::core::{EngineOptions, ShardedEngine};
    for (arch, dataset, net) in zoo_builds() {
        let id = format!("{}/{}", arch.name(), dataset.name());
        let eps = family_eps(arch);
        let k = if arch.is_residual() { 1 } else { 2 };
        let qs = queries(&net, dataset.input_shape().len(), eps, k);

        let single = Engine::new(
            Device::new(DeviceConfig::new().workers(2)),
            &net,
            VerifyConfig::default(),
        )
        .expect("single engine");
        let want = single.verify_batch_fused(&qs);

        for n in [1usize, 2, 4] {
            let devices: Vec<_> = (0..n)
                .map(|i| Device::new(DeviceConfig::new().workers(1).name(format!("d{i}"))))
                .collect();
            let sharded = ShardedEngine::new(
                devices,
                &net,
                VerifyConfig::default(),
                EngineOptions::default(),
            )
            .expect("sharded engine");
            let got = sharded.verify_batch_sharded(&qs);
            assert_eq!(got.len(), want.len(), "{id}");
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                let g = g.as_ref().expect("sharded verdict");
                let w = w.as_ref().expect("fused verdict");
                assert_eq!(g.verified, w.verified, "{id}: query {i}, {n} devices");
                assert_eq!(g.margins.len(), w.margins.len(), "{id}");
                for (mg, mw) in g.margins.iter().zip(&w.margins) {
                    assert_eq!(mg.adversary, mw.adversary, "{id}");
                    assert_eq!(mg.proven, mw.proven, "{id}: query {i}, {n} devices");
                    assert_eq!(
                        mg.lower.to_bits(),
                        mw.lower.to_bits(),
                        "{id}: query {i} margin vs class {} drifted at {n} devices \
                         ({} vs {})",
                        mg.adversary,
                        mg.lower,
                        mw.lower
                    );
                }
            }
        }
    }
}

/// FSDP-style weight sharding over the zoo: for every Table-1 build and
/// both backends, `ShardedEngine::new_weight_sharded` at N ∈ {1, 2, 4}
/// devices returns margins **bit-identical** to the single-device fused
/// path. Gathering reconstructs each layer's weight buffer byte-for-byte
/// on the executing device and the walk itself is unchanged, so the split
/// of weight *residency* across the pool must never show up in a margin —
/// while the per-device resident split and the gathered `comms` bytes must
/// show up in the meters.
#[test]
fn zoo_weight_sharded_margins_bit_identical_across_device_counts() {
    weight_sharded_zoo_case("cpusim", &|cfg| Device::new(cfg));
    weight_sharded_zoo_case("reference", &|cfg| Device::reference(cfg));
}

fn weight_sharded_zoo_case<B: gpupoly::device::Backend>(
    tag: &str,
    make: &dyn Fn(DeviceConfig) -> Device<B>,
) {
    use gpupoly::core::{EngineOptions, ShardedEngine};
    // Gathered bytes across the whole zoo sweep: individual archs may
    // prove their margins before the walk ever descends to a remote shard
    // (early termination is exactly the point), but a zoo-wide sweep at
    // N > 1 must gather *somewhere* or the comms meter is broken.
    let mut total_comms: u64 = 0;
    for (arch, dataset, net) in zoo_builds() {
        let id = format!("{}/{} ({tag})", arch.name(), dataset.name());
        let eps = family_eps(arch);
        let k = if arch.is_residual() { 1 } else { 2 };
        let qs = queries(&net, dataset.input_shape().len(), eps, k);

        let single = Engine::new(
            make(DeviceConfig::new().workers(1)),
            &net,
            VerifyConfig::default(),
        )
        .expect("single engine");
        let want = single.verify_batch_fused(&qs);

        for n in [1usize, 2, 4] {
            let devices: Vec<_> = (0..n)
                .map(|i| make(DeviceConfig::new().workers(1).name(format!("wd{i}"))))
                .collect();
            let handles = devices.clone();
            let sharded = ShardedEngine::new_weight_sharded(
                devices,
                &net,
                VerifyConfig::default(),
                EngineOptions::default(),
            )
            .expect("weight-sharded engine");
            let got = sharded.verify_batch_sharded(&qs);
            assert_eq!(got.len(), want.len(), "{id}");
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                let g = g.as_ref().expect("weight-sharded verdict");
                let w = w.as_ref().expect("fused verdict");
                assert_eq!(g.verified, w.verified, "{id}: query {i}, {n} devices");
                assert_eq!(g.margins.len(), w.margins.len(), "{id}");
                for (mg, mw) in g.margins.iter().zip(&w.margins) {
                    assert_eq!(mg.adversary, mw.adversary, "{id}");
                    assert_eq!(mg.proven, mw.proven, "{id}: query {i}, {n} devices");
                    assert_eq!(
                        mg.lower.to_bits(),
                        mw.lower.to_bits(),
                        "{id}: query {i} margin vs class {} drifted at {n} devices \
                         ({} vs {})",
                        mg.adversary,
                        mg.lower,
                        mw.lower
                    );
                }
            }
            if n > 1 {
                // The memory win is unconditional: no device holds the
                // full model. Gathered bytes land on the executing device
                // under the `comms` label whenever the walk reaches a
                // remote shard.
                let bytes = sharded.shard_resident_bytes();
                let full: usize = bytes.iter().sum();
                let worst = bytes.iter().copied().max().expect("non-empty plan");
                assert!(
                    worst < full,
                    "{id}: worst device still holds the full model at {n} devices"
                );
                total_comms += handles[0].stats().kernel_work("comms").bytes_moved;
            }
        }
    }
    assert!(
        total_comms > 0,
        "({tag}) zoo sweep gathered nothing: comms meter is broken"
    );
}

/// Hybrid 2D sharding over the zoo: for every Table-1 build and both
/// backends, `ShardedEngine::new_hybrid` at N ∈ {1, 2, 4} devices returns
/// margins **bit-identical** to the single-device fused path. Row
/// sharding splits the expression batch into contiguous per-device blocks
/// and weight gathering reconstructs each remote layer byte-for-byte on
/// the walking device, so neither axis of the 2D split may show up in a
/// margin — while every device's row walk and its own gathers must show
/// up in the meters.
#[test]
fn zoo_hybrid_sharded_margins_bit_identical_across_device_counts() {
    hybrid_sharded_zoo_case("cpusim", &|cfg| Device::new(cfg));
    hybrid_sharded_zoo_case("reference", &|cfg| Device::reference(cfg));
}

fn hybrid_sharded_zoo_case<B: gpupoly::device::Backend>(
    tag: &str,
    make: &dyn Fn(DeviceConfig) -> Device<B>,
) {
    use gpupoly::core::{EngineOptions, ShardedEngine};
    // Gathered bytes across the whole zoo sweep, summed over every pool
    // device: individual archs may prove their margins before any row
    // block descends to a remote shard, but a zoo-wide sweep at N > 1
    // must gather *somewhere* or the comms meter is broken.
    let mut total_comms: u64 = 0;
    for (arch, dataset, net) in zoo_builds() {
        let id = format!("{}/{} ({tag})", arch.name(), dataset.name());
        let eps = family_eps(arch);
        let k = if arch.is_residual() { 1 } else { 2 };
        let qs = queries(&net, dataset.input_shape().len(), eps, k);

        let single = Engine::new(
            make(DeviceConfig::new().workers(1)),
            &net,
            VerifyConfig::default(),
        )
        .expect("single engine");
        let want = single.verify_batch_fused(&qs);

        for n in [1usize, 2, 4] {
            let devices: Vec<_> = (0..n)
                .map(|i| make(DeviceConfig::new().workers(1).name(format!("hd{i}"))))
                .collect();
            let handles = devices.clone();
            let sharded = ShardedEngine::new_hybrid(
                devices,
                &net,
                VerifyConfig::default(),
                EngineOptions::default(),
            )
            .expect("hybrid engine");
            let got = sharded.verify_batch_sharded(&qs);
            assert_eq!(got.len(), want.len(), "{id}");
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                let g = g.as_ref().expect("hybrid verdict");
                let w = w.as_ref().expect("fused verdict");
                assert_eq!(g.verified, w.verified, "{id}: query {i}, {n} devices");
                assert_eq!(g.margins.len(), w.margins.len(), "{id}");
                for (mg, mw) in g.margins.iter().zip(&w.margins) {
                    assert_eq!(mg.adversary, mw.adversary, "{id}");
                    assert_eq!(mg.proven, mw.proven, "{id}: query {i}, {n} devices");
                    assert_eq!(
                        mg.lower.to_bits(),
                        mw.lower.to_bits(),
                        "{id}: query {i} margin vs class {} drifted at {n} devices \
                         ({} vs {})",
                        mg.adversary,
                        mg.lower,
                        mw.lower
                    );
                }
            }
            if n > 1 {
                // Both 2D axes are live: the weight split means no device
                // holds the full model, and the row split means the fused
                // walk's flops land on every device, not just device 0.
                let bytes = sharded.shard_resident_bytes();
                let full: usize = bytes.iter().sum();
                let worst = bytes.iter().copied().max().expect("non-empty plan");
                assert!(
                    worst < full,
                    "{id}: worst device still holds the full model at {n} devices"
                );
                for (d, handle) in handles.iter().enumerate() {
                    assert!(
                        handle.stats().flops() > 0,
                        "{id}: device {d} of {n} walked no rows"
                    );
                    total_comms += handle.stats().kernel_work("comms").bytes_moved;
                }
            }
        }
    }
    assert!(
        total_comms > 0,
        "({tag}) zoo sweep gathered nothing: comms meter is broken"
    );
}

fn count_sequential<B: gpupoly::device::Backend>(
    device: Device<B>,
    net: &Network<f32>,
    qs: &[Query<f32>],
) -> (Vec<Vec<u32>>, u64, u64) {
    let engine = Engine::new(device.clone(), net, VerifyConfig::default()).expect("engine");
    let gemm0 = device.stats().kernel_launches("gemm_itv_f");
    let launches0 = device.stats().launches();
    let margins = qs
        .iter()
        .map(|q| {
            engine
                .verify_robustness(&q.image, q.label, q.eps)
                .expect("sequential query")
                .margins
                .iter()
                .map(|m| m.lower.to_bits())
                .collect()
        })
        .collect();
    (
        margins,
        device.stats().kernel_launches("gemm_itv_f") - gemm0,
        device.stats().launches() - launches0,
    )
}

fn count_fused<B: gpupoly::device::Backend>(
    device: Device<B>,
    net: &Network<f32>,
    qs: &[Query<f32>],
) -> (Vec<Vec<u32>>, u64, u64) {
    let engine = Engine::new(device.clone(), net, VerifyConfig::default()).expect("engine");
    let gemm0 = device.stats().kernel_launches("gemm_itv_f");
    let launches0 = device.stats().launches();
    let margins = engine
        .verify_batch_fused(qs)
        .into_iter()
        .map(|r| {
            r.expect("fused query")
                .margins
                .iter()
                .map(|m| m.lower.to_bits())
                .collect()
        })
        .collect();
    assert_eq!(
        engine.stats().fused_batches,
        1,
        "zoo batch must not fall back to per-query dispatch"
    );
    (
        margins,
        device.stats().kernel_launches("gemm_itv_f") - gemm0,
        device.stats().launches() - launches0,
    )
}

/// Precision-tiered verification over the zoo: on both backends, the
/// tiered engine's verdicts must agree with an all-`f64` engine on every
/// Table-1 build — fast-resolved queries are never flips the `f64` walk
/// would have caught (escalation is monotone), and across the whole zoo
/// the `f32` fast pass must resolve at least one query outright (the tier
/// actually earns its keep on realistic workloads).
#[test]
fn zoo_tiered_verdicts_agree_with_all_f64() {
    let mut fast_resolved_total = 0u64;
    for (arch, dataset, net) in zoo_builds() {
        let id = format!("{}/{}", arch.name(), dataset.name());
        let eps = family_eps(arch);
        let n_queries = if arch.is_residual() { 1 } else { 2 };
        let qs = queries(&net, dataset.input_shape().len(), eps, n_queries);
        let wide = net.widen();
        let wide_qs: Vec<Query<f64>> = qs
            .iter()
            .map(|q| {
                Query::new(
                    q.image.iter().map(|&x| x as f64).collect::<Vec<f64>>(),
                    q.label,
                    q.eps as f64,
                )
            })
            .collect();

        fast_resolved_total += check_tiered_parity(
            &format!("{id} (cpusim)"),
            Device::new(DeviceConfig::new().workers(2)),
            Device::new(DeviceConfig::new().workers(2)),
            &net,
            &wide,
            &qs,
            &wide_qs,
        );
        fast_resolved_total += check_tiered_parity(
            &format!("{id} (reference)"),
            Device::reference(DeviceConfig::new().workers(1)),
            Device::reference(DeviceConfig::new().workers(1)),
            &net,
            &wide,
            &qs,
            &wide_qs,
        );
    }
    assert!(
        fast_resolved_total > 0,
        "the f32 fast pass resolved nothing across the whole zoo"
    );
}

/// Runs one tiered-vs-all-`f64` comparison and returns how many queries
/// the fast tier resolved.
#[allow(clippy::too_many_arguments)]
fn check_tiered_parity<B: gpupoly::device::Backend>(
    tag: &str,
    tiered_device: Device<B>,
    baseline_device: Device<B>,
    net: &Network<f32>,
    wide: &Network<f64>,
    qs: &[Query<f32>],
    wide_qs: &[Query<f64>],
) -> u64 {
    let tiered = TieredEngine::new(tiered_device, net, wide, VerifyConfig::default())
        .expect("tiered engine");
    let baseline = Engine::new(baseline_device, wide, VerifyConfig::default()).expect("f64 engine");
    let got = tiered.verify_batch_f64(qs);
    let want = baseline.verify_batch_fused(wide_qs);
    for (g, w) in got.iter().zip(&want) {
        let g = g.as_ref().expect("tiered query");
        let w = w.as_ref().expect("baseline query");
        assert_eq!(g.verified, w.verified, "{tag}: tiered verdict flipped");
        assert_eq!(g.margins.len(), w.margins.len(), "{tag}");
        for (gm, wm) in g.margins.iter().zip(&w.margins) {
            assert_eq!(gm.adversary, wm.adversary, "{tag}");
            assert_eq!(gm.proven, wm.proven, "{tag}: proven flag flipped");
        }
    }
    let stats = tiered.stats();
    assert_eq!(
        stats.fast_pass_resolved + stats.escalated,
        qs.len() as u64,
        "{tag}: every query attributed to exactly one tier"
    );
    stats.fast_pass_resolved
}

/// Branch-and-bound refinement over the zoo: for every Table-1 build, the
/// complete tier must classify each query **identically** on both backends
/// — same outcome class and the same number of bisections spent. The
/// frontier walk is driven entirely by certified margins, so the backends'
/// bit-reproducibility contract extends transitively to split decisions.
/// Three more properties ride along:
///
/// * the complete verdict never contradicts plain `verify` (a base-proven
///   query comes back `Proven { base: Some(_), splits: 0 }`);
/// * every `Falsified` carries a concrete counterexample that this test
///   re-verifies *independently* through interval evaluation at a point
///   box — refutation is never taken on the relaxation's word;
/// * across the whole zoo, at least one base-`Unknown` query is converted
///   (here a wrong-label query, whose center is a real misclassification
///   the refinement must surface as a verified counterexample).
#[test]
fn zoo_complete_verdicts_identical_across_backends_and_convert() {
    use gpupoly::core::{CompleteVerdict, RefineBudget};
    use gpupoly::interval::Itv;

    let mut converted_total = 0u64;
    for (arch, dataset, net) in zoo_builds() {
        let id = format!("{}/{}", arch.name(), dataset.name());
        let eps = family_eps(arch);
        // Debug-build budget: the residual walks pay 18–34 layers per leaf
        // analysis, so they get one bisection; the shallow families get a
        // real (if small) frontier.
        let budget = RefineBudget::with_max_splits(if arch.is_residual() { 1 } else { 4 });

        // One honest query plus one wrong-label query. The wrong label is
        // base-Unknown by construction — the center itself misclassifies —
        // and must be refuted, not proven, no matter how loose the bounds.
        let image = test_image(dataset.input_shape().len(), 7);
        let label = net.classify(&image);
        let wrong = (label + 1) % net.infer(&image).len();
        let qs = vec![
            Query::new(image.clone(), label, eps),
            Query::new(image.clone(), wrong, eps),
        ];

        let cpusim = Engine::new(
            Device::new(DeviceConfig::new().workers(2)),
            &net,
            VerifyConfig::default(),
        )
        .expect("cpusim engine");
        let reference = Engine::new(
            Device::reference(DeviceConfig::new().workers(1)),
            &net,
            VerifyConfig::default(),
        )
        .expect("reference engine");

        let plain = cpusim.verify_batch(&qs);
        let got_cpu = cpusim.verify_complete_batch(&qs, &budget);
        let got_ref = reference.verify_complete_batch(&qs, &budget);
        for (qi, (q, (c, r))) in qs.iter().zip(got_cpu.iter().zip(&got_ref)).enumerate() {
            let c = c.as_ref().expect("cpusim complete query");
            let r = r.as_ref().expect("reference complete query");
            assert_eq!(
                std::mem::discriminant(c),
                std::mem::discriminant(r),
                "{id}: complete outcome drifted across backends ({c:?} vs {r:?})"
            );
            assert_eq!(
                c.splits(),
                r.splits(),
                "{id}: split count drifted across backends"
            );

            // Complete never contradicts plain: base-proven queries pass
            // through undisturbed.
            if plain[qi].as_ref().expect("plain query").verified {
                assert!(
                    matches!(
                        c,
                        CompleteVerdict::Proven {
                            base: Some(_),
                            splits: 0
                        }
                    ),
                    "{id}: plain-proven query not passed through ({c:?})"
                );
            }

            match c {
                CompleteVerdict::Falsified {
                    counterexample,
                    adversary,
                    ..
                } => {
                    // Independent re-verification: the counterexample must
                    // lie in the clamped ball and provably misclassify
                    // under interval evaluation at a point box.
                    assert_eq!(counterexample.len(), q.image.len(), "{id}");
                    for (&cx, &xi) in counterexample.iter().zip(&q.image) {
                        assert!(
                            cx >= (xi - eps).clamp(0.0, 1.0) && cx <= (xi + eps).clamp(0.0, 1.0),
                            "{id}: counterexample leaves the clamped ball"
                        );
                    }
                    let cx_box: Vec<Itv<f32>> =
                        counterexample.iter().map(|&v| Itv::point(v)).collect();
                    let bounds = net.graph().eval_itv(&cx_box);
                    let outs = &bounds[net.graph().output()];
                    assert!(
                        outs[q.label].sub(outs[*adversary]).hi < 0.0,
                        "{id}: counterexample does not provably misclassify"
                    );
                    converted_total += 1;
                }
                CompleteVerdict::Proven { base: None, .. } => converted_total += 1,
                _ => {}
            }
        }

        // The wrong-label query specifically can never come back Proven —
        // its center is a real misclassification.
        assert!(
            !got_cpu[1].as_ref().expect("wrong-label query").is_proven(),
            "{id}: proved a query whose center misclassifies"
        );
    }
    assert!(
        converted_total > 0,
        "the refinement tier converted no base-Unknown query across the whole zoo"
    );
}

#[test]
fn zoo_margins_match_cpu_deeppoly_baseline() {
    // Parity against the sparse CPU DeepPoly baseline on the MNIST
    // non-residual families. The baseline's sparse representation is the
    // paper's slow-by-design comparison point, so the larger CIFAR builds
    // and the residual walk are out of budget here; residual-walk precision
    // parity is covered by `precision_parity.rs` on smaller nets. Full
    // backsubstitution on both sides so the schedules are identical.
    let cfg = VerifyConfig {
        early_termination: false,
        ..Default::default()
    };
    for (arch, dataset, net) in zoo_builds() {
        if arch.is_residual() || dataset != Dataset::MnistLike || arch == ArchId::ConvLarge {
            continue;
        }
        let id = format!("{}/{}", arch.name(), dataset.name());
        let eps = 1e-3f32;
        let image = test_image(dataset.input_shape().len(), 13);
        let label = net.classify(&image);

        let engine =
            Engine::new(Device::new(DeviceConfig::new().workers(2)), &net, cfg).expect("engine");
        let gp = engine
            .verify_robustness(&image, label, eps)
            .expect("gpupoly query");
        let dp = DeepPolyCpu::new(&net).verify_robustness(&image, label, eps);

        assert_eq!(gp.verified, dp.verified, "{id}: verdict vs CPU DeepPoly");
        assert_eq!(gp.margins.len(), dp.margins.len(), "{id}");
        for (m, d) in gp.margins.iter().zip(&dp.margins) {
            assert!(
                (m.lower - d).abs() < 1e-3 * (1.0 + m.lower.abs()),
                "{id}: margin mismatch gpupoly {} vs cpu {}",
                m.lower,
                d
            );
        }
    }
}
