//! Cross-backend differential verification over the model zoo.
//!
//! The `Backend` trait's bit-reproducibility contract (see
//! `gpupoly-device`'s `backend` module) claims that the tiled, parallel,
//! pooled `CpuSimBackend` and the straight-line, serial, pool-less
//! `ReferenceBackend` compute **bit-identical** certified margins. This
//! test enforces that end to end through `Engine::verify_batch` on every
//! zoo architecture/dataset combination of the paper's Table 1, and checks
//! the margins against ground truth two ways:
//!
//! * **interval containment**: certified margins lower-bound the concrete
//!   margin of every sampled attack inside the input box;
//! * **baseline parity**: margins agree with the sparse CPU DeepPoly
//!   baseline (`gpupoly::baselines::DeepPolyCpu`) to float-accumulation
//!   tolerance (same relaxation, same schedule, different kernelization).
//!
//! Query radii are calibrated per family: the shallow families run a
//! realistic ε (lots of unstable-ReLU refinement, compaction, pooling
//! churn), while the deep residual nets run a near-point ε — their 18–34
//! layer spec walk still exercises every backsubstitution kernel (GBC,
//! residual split/merge, dense GEMM) differentially, without the
//! debug-build cost of refining thousands of untrained unstable ReLUs.

use std::collections::HashSet;

use gpupoly::baselines::DeepPolyCpu;
use gpupoly::core::{Engine, Query, TieredEngine, VerifyConfig};
use gpupoly::device::{Device, DeviceConfig};
use gpupoly::nn::zoo::{self, ArchId, Dataset};
use gpupoly::nn::Network;

/// One deterministic image per network, biased into the pixel domain.
fn test_image(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let h = (i as u64 + 1).wrapping_mul(seed.wrapping_mul(2654435761) | 1);
            0.15 + 0.7 * ((h >> 17) % 1000) as f32 / 1000.0
        })
        .collect()
}

/// Scales every affine weight by `factor`. Untrained He-init weights
/// amplify interval widths by ~4× per layer, which makes *every* deep ReLU
/// unstable and blows the debug-build refinement cost of the 18–34 layer
/// residual nets through the roof; damping stands in for the stabilization
/// that robust training provides on real checkpoints (see
/// `zoo_training_e2e.rs` for the trained regime split). The kernel walk —
/// what this differential test pins — is identical either way.
fn damp(net: &mut Network<f32>, factor: f32) {
    use gpupoly::nn::{Block, Layer};
    let scale = |layers: &mut [Layer<f32>]| {
        for layer in layers {
            match layer {
                Layer::Dense(d) => d.weight.iter_mut().for_each(|w| *w *= factor),
                Layer::Conv(c) => c.weight.iter_mut().for_each(|w| *w *= factor),
                Layer::Relu => {}
            }
        }
    };
    for block in net.blocks_mut() {
        match block {
            Block::Single(layer) => scale(std::slice::from_mut(layer)),
            Block::Residual { a, b } => {
                scale(a);
                scale(b);
            }
        }
    }
}

/// The unique (architecture, dataset) pairs of Table 1. Training regimes
/// reuse the same untrained build, so verifying each build once covers
/// every zoo network without redundant work.
fn zoo_builds() -> Vec<(ArchId, Dataset, Network<f32>)> {
    let mut seen = HashSet::new();
    zoo::table1_specs()
        .into_iter()
        .filter(|s| seen.insert((s.arch, s.dataset)))
        .map(|s| {
            let mut net = zoo::build_arch(s.arch, s.dataset, 0.04, 1).expect("arch builds");
            if matches!(
                s.arch,
                ArchId::ResNet18 | ArchId::SkipNet18 | ArchId::ResNet34
            ) {
                damp(&mut net, 0.1);
            }
            (s.arch, s.dataset, net)
        })
        .collect()
}

/// Per-family query radius (see module docs).
fn family_eps(arch: ArchId) -> f32 {
    match arch {
        ArchId::ResNetTiny => 5e-4,
        a if a.is_residual() => 1e-4,
        ArchId::ConvLarge => 5e-4,
        _ => 2e-3,
    }
}

fn queries(net: &Network<f32>, input_len: usize, eps: f32, n: usize) -> Vec<Query<f32>> {
    (0..n as u64)
        .map(|q| {
            let image = test_image(input_len, 7 + q);
            let label = net.classify(&image);
            Query::new(image, label, eps)
        })
        .collect()
}

#[test]
fn zoo_margins_bit_identical_across_backends_and_sound() {
    for (arch, dataset, net) in zoo_builds() {
        let id = format!("{}/{}", arch.name(), dataset.name());
        let eps = family_eps(arch);
        let n_queries = if arch.is_residual() { 1 } else { 2 };
        let qs = queries(&net, dataset.input_shape().len(), eps, n_queries);

        let cpusim = Engine::new(
            Device::new(DeviceConfig::new().workers(2)),
            &net,
            VerifyConfig::default(),
        )
        .expect("cpusim engine");
        let reference = Engine::new(
            Device::reference(DeviceConfig::new().workers(1)),
            &net,
            VerifyConfig::default(),
        )
        .expect("reference engine");

        let got_cpu = cpusim.verify_batch(&qs);
        let got_ref = reference.verify_batch(&qs);
        for (q, (c, r)) in qs.iter().zip(got_cpu.iter().zip(&got_ref)) {
            let c = c.as_ref().expect("cpusim query");
            let r = r.as_ref().expect("reference query");
            assert_eq!(c.verified, r.verified, "{id}: verdict drifted");
            assert_eq!(c.margins.len(), r.margins.len(), "{id}");
            for (mc, mr) in c.margins.iter().zip(&r.margins) {
                assert_eq!(mc.adversary, mr.adversary, "{id}");
                assert_eq!(mc.proven, mr.proven, "{id}");
                assert_eq!(
                    mc.lower.to_bits(),
                    mr.lower.to_bits(),
                    "{id}: margin vs class {} drifted across backends ({} vs {})",
                    mc.adversary,
                    mc.lower,
                    mr.lower
                );
            }

            // Interval containment: every certified margin lower-bounds the
            // concrete margin at sampled points of the L∞ box.
            for s in 0..3 {
                let x: Vec<f32> = q
                    .image
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| {
                        let t = ((i + s * 31) % 3) as f32 - 1.0; // -1, 0, 1 pattern
                        (v + eps * t).clamp(0.0, 1.0)
                    })
                    .collect();
                let y = net.infer(&x);
                for m in &c.margins {
                    let concrete = y[q.label] - y[m.adversary];
                    assert!(
                        m.lower <= concrete + 1e-5,
                        "{id}: certified {} exceeds concrete margin {} vs class {}",
                        m.lower,
                        concrete,
                        m.adversary
                    );
                }
            }
        }
    }
}

/// Cross-query fusion over the zoo: for every Table-1 build and both
/// backends, `verify_batch_fused` must return margins **bit-identical** to
/// the sequential per-query path, while issuing strictly fewer device
/// launches — and on the GEMM kernel specifically, about 1/K of them (the
/// fused walk shares each step's launch across all K queries; early
/// termination lets some queries stop sooner, so the bound asserted is
/// fused ≤ seq/2 for K ≥ 2).
#[test]
fn zoo_fused_margins_bit_identical_and_launches_collapse() {
    for (arch, dataset, net) in zoo_builds() {
        let id = format!("{}/{}", arch.name(), dataset.name());
        let eps = family_eps(arch);
        let k = if arch.is_residual() { 2 } else { 3 };
        let qs = queries(&net, dataset.input_shape().len(), eps, k);

        for reference in [false, true] {
            // Sequential per-query loop and fused batch, each on a fresh
            // device of the selected backend, counting launches.
            let (seq_margins, seq_gemm, seq_launches) = if reference {
                count_sequential(Device::reference(DeviceConfig::new().workers(1)), &net, &qs)
            } else {
                count_sequential(Device::new(DeviceConfig::new().workers(2)), &net, &qs)
            };
            let (fused_margins, fused_gemm, fused_launches) = if reference {
                count_fused(Device::reference(DeviceConfig::new().workers(1)), &net, &qs)
            } else {
                count_fused(Device::new(DeviceConfig::new().workers(2)), &net, &qs)
            };
            let tag = format!("{id} ({})", if reference { "reference" } else { "cpusim" });
            assert_eq!(
                fused_margins, seq_margins,
                "{tag}: fused margins drifted from sequential"
            );
            assert!(
                fused_launches < seq_launches,
                "{tag}: fused must issue fewer launches ({fused_launches} vs {seq_launches})"
            );
            // The fused walk shares each step's GEMM across queries, so its
            // launch count is the *longest* single query's walk, not the
            // sum: never more than sequential, and strictly fewer whenever
            // the queries overlap in depth. (The exact ~1/K collapse on
            // homogeneous batches is pinned by
            // `crates/core/tests/engine_fusion.rs`; all-conv walks may
            // never reach the dense GEMM kernel at all.)
            assert!(
                fused_gemm <= seq_gemm,
                "{tag}: fused GEMM launches exceed sequential \
                 ({fused_gemm} vs {seq_gemm})"
            );
        }
    }
}

fn count_sequential<B: gpupoly::device::Backend>(
    device: Device<B>,
    net: &Network<f32>,
    qs: &[Query<f32>],
) -> (Vec<Vec<u32>>, u64, u64) {
    let engine = Engine::new(device.clone(), net, VerifyConfig::default()).expect("engine");
    let gemm0 = device.stats().kernel_launches("gemm_itv_f");
    let launches0 = device.stats().launches();
    let margins = qs
        .iter()
        .map(|q| {
            engine
                .verify_robustness(&q.image, q.label, q.eps)
                .expect("sequential query")
                .margins
                .iter()
                .map(|m| m.lower.to_bits())
                .collect()
        })
        .collect();
    (
        margins,
        device.stats().kernel_launches("gemm_itv_f") - gemm0,
        device.stats().launches() - launches0,
    )
}

fn count_fused<B: gpupoly::device::Backend>(
    device: Device<B>,
    net: &Network<f32>,
    qs: &[Query<f32>],
) -> (Vec<Vec<u32>>, u64, u64) {
    let engine = Engine::new(device.clone(), net, VerifyConfig::default()).expect("engine");
    let gemm0 = device.stats().kernel_launches("gemm_itv_f");
    let launches0 = device.stats().launches();
    let margins = engine
        .verify_batch_fused(qs)
        .into_iter()
        .map(|r| {
            r.expect("fused query")
                .margins
                .iter()
                .map(|m| m.lower.to_bits())
                .collect()
        })
        .collect();
    assert_eq!(
        engine.stats().fused_batches,
        1,
        "zoo batch must not fall back to per-query dispatch"
    );
    (
        margins,
        device.stats().kernel_launches("gemm_itv_f") - gemm0,
        device.stats().launches() - launches0,
    )
}

/// Precision-tiered verification over the zoo: on both backends, the
/// tiered engine's verdicts must agree with an all-`f64` engine on every
/// Table-1 build — fast-resolved queries are never flips the `f64` walk
/// would have caught (escalation is monotone), and across the whole zoo
/// the `f32` fast pass must resolve at least one query outright (the tier
/// actually earns its keep on realistic workloads).
#[test]
fn zoo_tiered_verdicts_agree_with_all_f64() {
    let mut fast_resolved_total = 0u64;
    for (arch, dataset, net) in zoo_builds() {
        let id = format!("{}/{}", arch.name(), dataset.name());
        let eps = family_eps(arch);
        let n_queries = if arch.is_residual() { 1 } else { 2 };
        let qs = queries(&net, dataset.input_shape().len(), eps, n_queries);
        let wide = net.widen();
        let wide_qs: Vec<Query<f64>> = qs
            .iter()
            .map(|q| {
                Query::new(
                    q.image.iter().map(|&x| x as f64).collect::<Vec<f64>>(),
                    q.label,
                    q.eps as f64,
                )
            })
            .collect();

        fast_resolved_total += check_tiered_parity(
            &format!("{id} (cpusim)"),
            Device::new(DeviceConfig::new().workers(2)),
            Device::new(DeviceConfig::new().workers(2)),
            &net,
            &wide,
            &qs,
            &wide_qs,
        );
        fast_resolved_total += check_tiered_parity(
            &format!("{id} (reference)"),
            Device::reference(DeviceConfig::new().workers(1)),
            Device::reference(DeviceConfig::new().workers(1)),
            &net,
            &wide,
            &qs,
            &wide_qs,
        );
    }
    assert!(
        fast_resolved_total > 0,
        "the f32 fast pass resolved nothing across the whole zoo"
    );
}

/// Runs one tiered-vs-all-`f64` comparison and returns how many queries
/// the fast tier resolved.
#[allow(clippy::too_many_arguments)]
fn check_tiered_parity<B: gpupoly::device::Backend>(
    tag: &str,
    tiered_device: Device<B>,
    baseline_device: Device<B>,
    net: &Network<f32>,
    wide: &Network<f64>,
    qs: &[Query<f32>],
    wide_qs: &[Query<f64>],
) -> u64 {
    let tiered = TieredEngine::new(tiered_device, net, wide, VerifyConfig::default())
        .expect("tiered engine");
    let baseline = Engine::new(baseline_device, wide, VerifyConfig::default()).expect("f64 engine");
    let got = tiered.verify_batch_f64(qs);
    let want = baseline.verify_batch_fused(wide_qs);
    for (g, w) in got.iter().zip(&want) {
        let g = g.as_ref().expect("tiered query");
        let w = w.as_ref().expect("baseline query");
        assert_eq!(g.verified, w.verified, "{tag}: tiered verdict flipped");
        assert_eq!(g.margins.len(), w.margins.len(), "{tag}");
        for (gm, wm) in g.margins.iter().zip(&w.margins) {
            assert_eq!(gm.adversary, wm.adversary, "{tag}");
            assert_eq!(gm.proven, wm.proven, "{tag}: proven flag flipped");
        }
    }
    let stats = tiered.stats();
    assert_eq!(
        stats.fast_pass_resolved + stats.escalated,
        qs.len() as u64,
        "{tag}: every query attributed to exactly one tier"
    );
    stats.fast_pass_resolved
}

#[test]
fn zoo_margins_match_cpu_deeppoly_baseline() {
    // Parity against the sparse CPU DeepPoly baseline on the MNIST
    // non-residual families. The baseline's sparse representation is the
    // paper's slow-by-design comparison point, so the larger CIFAR builds
    // and the residual walk are out of budget here; residual-walk precision
    // parity is covered by `precision_parity.rs` on smaller nets. Full
    // backsubstitution on both sides so the schedules are identical.
    let cfg = VerifyConfig {
        early_termination: false,
        ..Default::default()
    };
    for (arch, dataset, net) in zoo_builds() {
        if arch.is_residual() || dataset != Dataset::MnistLike || arch == ArchId::ConvLarge {
            continue;
        }
        let id = format!("{}/{}", arch.name(), dataset.name());
        let eps = 1e-3f32;
        let image = test_image(dataset.input_shape().len(), 13);
        let label = net.classify(&image);

        let engine =
            Engine::new(Device::new(DeviceConfig::new().workers(2)), &net, cfg).expect("engine");
        let gp = engine
            .verify_robustness(&image, label, eps)
            .expect("gpupoly query");
        let dp = DeepPolyCpu::new(&net).verify_robustness(&image, label, eps);

        assert_eq!(gp.verified, dp.verified, "{id}: verdict vs CPU DeepPoly");
        assert_eq!(gp.margins.len(), dp.margins.len(), "{id}");
        for (m, d) in gp.margins.iter().zip(&dp.margins) {
            assert!(
                (m.lower - d).abs() < 1e-3 * (1.0 + m.lower.abs()),
                "{id}: margin mismatch gpupoly {} vs cpu {}",
                m.lower,
                d
            );
        }
    }
}
