//! The paper's motivating workload: certify L∞ robustness of image
//! classifiers, and watch how training regime changes what is certifiable.
//!
//! Trains two small MNIST-like convolutional models — one normally, one
//! IBP-robustly (DiffAI style) — then sweeps ε and reports the fraction of
//! candidate images each verifier proves robust. The expected shape is the
//! paper's: IBP proves almost nothing on the normal net, GPUPoly proves the
//! most everywhere, and the robust net is far easier to certify.
//!
//! Run: `cargo run --release --example robustness_sweep`

use gpupoly::baselines::{ibp, CrownIbp};
use gpupoly::core::{Engine, Query, VerifyConfig};
use gpupoly::device::Device;
use gpupoly::nn::zoo::{self, Dataset, TrainingRegime};
use gpupoly::train::{data, trainer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = 0.08;
    let train_eps = 0.06_f32;
    let mut full = data::synthetic(Dataset::MnistLike, 220, 11);
    let test = full.split_off(20);
    let train_set = full;

    let mut nets = Vec::new();
    for regime in [TrainingRegime::Normal, TrainingRegime::DiffAi] {
        let mut net = zoo::build_arch(zoo::ArchId::ConvBig, Dataset::MnistLike, scale, 5)?;
        let report = trainer::train(
            &mut net,
            &train_set,
            &trainer::TrainConfig {
                epochs: 4,
                eps: train_eps,
                regime,
                ..Default::default()
            },
        );
        println!(
            "{:>7} training: accuracy {:.2}, unstable ReLU fraction at eps {train_eps}: {:.3}",
            regime.name(),
            report.train_accuracy,
            trainer::unstable_relu_fraction(&net, &train_set, train_eps, 5),
        );
        nets.push((regime, net));
    }

    println!(
        "\n{:<8} {:>8} | {:>6} {:>9} {:>9}",
        "net", "eps", "IBP", "CROWN-IBP", "GPUPoly"
    );
    let device = Device::default();
    for (regime, net) in &nets {
        // One resident engine per network: weights are packed once and the
        // whole ε-sweep runs as parallel batches against it.
        let engine = Engine::new(device.clone(), net, VerifyConfig::default())?;
        let crown = CrownIbp::new(net);
        let candidates: Vec<(&Vec<f32>, usize)> = test
            .images
            .iter()
            .zip(&test.labels)
            .filter(|(img, &label)| net.classify(img) == label)
            .map(|(img, &label)| (img, label))
            .collect();
        let cands = candidates.len();
        for eps in [0.01_f32, 0.03, 0.06] {
            let queries: Vec<Query<f32>> = candidates
                .iter()
                .map(|&(img, label)| Query::new(img.clone(), label, eps))
                .collect();
            let mut v_gp = 0usize;
            for verdict in engine.verify_batch(&queries) {
                v_gp += usize::from(verdict?.verified);
            }
            let (mut v_ibp, mut v_crown) = (0usize, 0usize);
            for &(img, label) in &candidates {
                v_ibp += usize::from(ibp::verify_robustness(net, img, label, eps).verified);
                v_crown += usize::from(crown.verify_robustness(img, label, eps).verified);
            }
            println!(
                "{:<8} {:>8} | {:>3}/{cands} {:>6}/{cands} {:>6}/{cands}",
                regime.name(),
                format!("{eps:.2}"),
                v_ibp,
                v_crown,
                v_gp
            );
            assert!(
                v_ibp <= v_crown && v_crown <= v_gp,
                "precision ladder violated"
            );
        }
    }
    Ok(())
}
