//! Quickstart: build a small network, certify an L∞ robustness property,
//! and inspect the analysis.
//!
//! Run: `cargo run --release --example quickstart`

use gpupoly::core::{GpuPoly, VerifyConfig};
use gpupoly::device::{Device, DeviceConfig};
use gpupoly::interval::Itv;
use gpupoly::nn::builder::NetworkBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A toy 2-input classifier: two hidden ReLU neurons, two logits.
    let net = NetworkBuilder::new_flat(2)
        .dense(&[[1.0_f32, -1.0], [1.0, 1.0]], &[0.0, 0.0])
        .relu()
        .dense(&[[1.0_f32, 1.0], [1.0, -1.0]], &[0.5, 0.0])
        .build()?;

    let device = Device::new(DeviceConfig::new().name("sim-v100"));
    let verifier = GpuPoly::new(device.clone(), &net, VerifyConfig::default())?;

    // The point (0.4, 0.6) classifies as label 0. Is every image within
    // eps = 0.05 (L-infinity) also classified 0?
    let image = [0.4_f32, 0.6];
    let label = net.classify(&image);
    let verdict = verifier.verify_robustness(&image, label, 0.05)?;

    println!(
        "label = {label}, robust within eps=0.05: {}",
        verdict.verified
    );
    for m in &verdict.margins {
        println!(
            "  margin vs class {}: certified lower bound {:+.4} ({})",
            m.adversary,
            m.lower,
            if m.proven { "proven" } else { "not proven" }
        );
    }

    // The same analysis exposes sound bounds for every layer.
    let input: Vec<Itv<f32>> = image
        .iter()
        .map(|&x| Itv::new(x - 0.05, x + 0.05).clamp_to(0.0, 1.0))
        .collect();
    let analysis = verifier.analyze(&input)?;
    println!("\nper-node output bounds:");
    for (node, bounds) in analysis.bounds.iter().enumerate() {
        let s: Vec<String> = bounds.iter().map(|b| format!("{b}")).collect();
        println!("  node {node}: {}", s.join("  "));
    }
    println!(
        "\nwork: {} neurons refined, {} skipped as stable, {} candidates; \
         device ran {} kernel launches, {:.1} Mflops",
        analysis.stats.rows_refined,
        analysis.stats.rows_skipped_stable,
        analysis.stats.candidates,
        device.stats().launches(),
        device.stats().flops() as f64 / 1e6,
    );
    Ok(())
}
