//! A look inside the simulated GPU while verifying a convolutional network:
//! kernel launches by name (GBC, GEMM, compaction), flop counts, and the
//! memory ceiling that triggers chunked backsubstitution (§4.2).
//!
//! Run: `cargo run --release --example device_stats`

use gpupoly::core::{GpuPoly, VerifyConfig};
use gpupoly::device::{Device, DeviceConfig};
use gpupoly::nn::builder::NetworkBuilder;
use gpupoly::nn::Shape;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small conv-conv-dense classifier (weights are a fixed pattern; this
    // example is about the execution profile, not accuracy).
    let net = NetworkBuilder::new(Shape::new(10, 10, 1))
        .conv(
            4,
            (3, 3),
            (1, 1),
            (1, 1),
            (0..36).map(|i| ((i % 7) as f32 - 3.0) * 0.1).collect(),
            vec![0.05; 4],
        )
        .relu()
        .conv(
            8,
            (3, 3),
            (2, 2),
            (1, 1),
            (0..288).map(|i| ((i % 11) as f32 - 5.0) * 0.05).collect(),
            vec![0.0; 8],
        )
        .relu()
        .flatten_dense(10, |i| ((i % 13) as f32 - 6.0) * 0.02, |_| 0.0)
        .build()?;

    let image = vec![0.5f32; 100];
    let label = net.classify(&image);

    for (name, capacity) in [("unlimited", None), ("256 KiB", Some(256 * 1024))] {
        let mut cfg = DeviceConfig::new().name(format!("sim ({name})"));
        if let Some(cap) = capacity {
            cfg = cfg.memory_capacity(cap);
        }
        let device = Device::new(cfg);
        let verifier = GpuPoly::new(device.clone(), &net, VerifyConfig::default())?;
        let verdict = verifier.verify_robustness(&image, label, 0.01)?;
        println!("--- device memory: {name} ---");
        println!(
            "verified: {} | chunks: {} (shrinks: {})",
            verdict.verified, verdict.stats.chunks, verdict.stats.chunk_shrinks
        );
        println!(
            "rows refined {} | skipped stable {} | stopped mid-walk {}",
            verdict.stats.rows_refined,
            verdict.stats.rows_skipped_stable,
            verdict.stats.rows_stopped_early
        );
        println!(
            "peak device memory: {} KiB{}",
            device.peak_memory() / 1024,
            capacity.map_or(String::new(), |c| format!(" (cap {} KiB)", c / 1024)),
        );
        println!(
            "total flops: {:.1}M, launches: {}",
            device.stats().flops() as f64 / 1e6,
            device.stats().launches()
        );
        for kernel in [
            "gbc_lo",
            "gbc_hi",
            "gemm_itv_f",
            "relu_step_lo",
            "relu_step_hi",
            "exclusive_scan",
            "compact_rows",
            "densify_lo",
        ] {
            let n = device.stats().kernel_launches(kernel);
            if n > 0 {
                println!("  kernel {kernel:<16} x{n}");
            }
        }
        println!();
    }
    Ok(())
}
