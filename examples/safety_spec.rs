//! Beyond robustness: certifying an ACAS-Xu-style *safety property* with a
//! general linear output specification over an input box (the paper notes
//! GPUPoly "can be used to certify other properties including safety").
//!
//! A small collision-avoidance-style controller maps 5 sensor readings to 3
//! advisory scores (clear-of-conflict, weak-turn, strong-turn). The property:
//! whenever the intruder is far away (a box over the sensor readings), the
//! "strong-turn" advisory must never beat "clear-of-conflict" by more than
//! the margin 0.1 — i.e. prove `score_clear - score_strong + 0.1 > 0`.
//!
//! Run: `cargo run --release --example safety_spec`

use gpupoly::core::{GpuPoly, LinearSpec, SpecRow, VerifyConfig};
use gpupoly::device::Device;
use gpupoly::interval::Itv;
use gpupoly::nn::builder::NetworkBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A fixed small "controller" (weights chosen to behave sensibly: the
    // first input is distance; large distance pushes the clear advisory up).
    let net = NetworkBuilder::new_flat(5)
        .dense(
            &[
                [0.9_f32, -0.2, 0.1, 0.0, 0.3],
                [-0.4, 0.6, -0.3, 0.2, 0.0],
                [-0.6, 0.1, 0.5, -0.2, 0.1],
                [0.2, 0.3, -0.1, 0.4, -0.5],
            ],
            &[0.1, 0.0, -0.1, 0.0],
        )
        .relu()
        .dense(
            &[
                [0.8_f32, -0.1, -0.4, 0.2],
                [0.1, 0.5, 0.2, -0.3],
                [-0.7, 0.2, 0.6, 0.1],
            ],
            &[0.2, 0.0, -0.2],
        )
        .build()?;

    // Input box: distance high (0.8..1.0), the other sensors anywhere.
    let input: Vec<Itv<f32>> = vec![
        Itv::new(0.8, 1.0),
        Itv::new(0.0, 1.0),
        Itv::new(0.0, 1.0),
        Itv::new(0.0, 1.0),
        Itv::new(0.0, 1.0),
    ];

    // Property rows: clear (output 0) dominates strong-turn (output 2) with
    // slack 0.1, and also dominates weak-turn (output 1) with slack -0.5
    // (i.e. weak-turn may come close but not win by 0.5).
    let spec = LinearSpec::new(vec![
        SpecRow {
            coeffs: vec![(0, 1.0_f32), (2, -1.0)],
            cst: 0.1,
        },
        SpecRow {
            coeffs: vec![(0, 1.0_f32), (1, -1.0)],
            cst: 0.5,
        },
    ]);

    let verifier = GpuPoly::new(Device::default(), &net, VerifyConfig::default())?;
    let verdict = verifier.verify_spec(&input, &spec)?;
    for (i, (proven, lb)) in verdict.proven.iter().zip(&verdict.lower_bounds).enumerate() {
        println!(
            "property {i}: {} (certified lower bound {lb:+.4})",
            if *proven { "PROVEN" } else { "not proven" }
        );
    }

    // Sanity: sample the box and confirm the property empirically.
    let mut worst = f32::INFINITY;
    for a in 0..5 {
        for b in 0..5 {
            let x = [
                0.8 + 0.2 * a as f32 / 4.0,
                b as f32 / 4.0,
                1.0 - b as f32 / 4.0,
                a as f32 / 4.0,
                0.5,
            ];
            let y = net.infer(&x);
            worst = worst.min(y[0] - y[2] + 0.1);
        }
    }
    println!("worst sampled value of property 0: {worst:+.4} (must be >= certified bound)");
    assert!(verdict.lower_bounds[0] <= worst + 1e-5);
    Ok(())
}
