//! Load generator for the serving daemon: throughput and latency
//! percentiles versus admission batch policy.
//!
//! Boots an in-process `gpupoly-serve` daemon over a small model zoo, then
//! drives it with concurrent closed-loop clients under several batch
//! policies and reports queries/s, p50 and p99 reply latency, and the mean
//! coalesced batch size — the baseline future scheduling work (cost-aware
//! admission, cross-query fusion) measures against.
//!
//! Run: `cargo run --release --example serve_loadgen`
//! Env: `GPUPOLY_BACKEND=cpusim|reference` picks the kernel backend,
//!      `LOADGEN_CLIENTS` / `LOADGEN_REQUESTS` scale the run,
//!      `LOADGEN_DEVICES` sizes the device pool (tensor-parallel when >1),
//!      `LOADGEN_WEIGHT_SHARD=1` switches a multi-device pool from
//!      tensor-parallel row sharding to FSDP-style weight sharding,
//!      `LOADGEN_HYBRID=1` turns both on — hybrid 2D sharding: weight
//!      shards on every device and row-parallel walks across the pool,
//!      `LOADGEN_MUX` sets the pipelining window for the multiplexed leg
//!      (0 disables it).

use std::sync::Arc;
use std::time::{Duration, Instant};

use gpupoly::device::{CpuSimBackend, ReferenceBackend};
use gpupoly::nn::{builder::NetworkBuilder, store, Network};
use gpupoly::serve::protocol::{Reply, Request};
use gpupoly::serve::{BatchPolicy, Client, Server, ServerConfig};

fn make_net(seed: u64, inputs: usize, width: usize, outputs: usize) -> Network<f32> {
    let mix = |i: usize, s: u64| {
        ((((i as u64 + 11) * (s + 37)) * 2654435761 % 1999) as f32 / 999.0 - 1.0) * 0.4
    };
    NetworkBuilder::new_flat(inputs)
        .dense_flat(
            width,
            (0..width * inputs).map(|i| mix(i, seed)).collect(),
            (0..width).map(|i| mix(i, seed + 5) * 0.3).collect(),
        )
        .relu()
        .dense_flat(
            width,
            (0..width * width).map(|i| mix(i, seed + 7)).collect(),
            (0..width).map(|i| mix(i, seed + 8) * 0.3).collect(),
        )
        .relu()
        .dense_flat(
            outputs,
            (0..outputs * width).map(|i| mix(i, seed + 9)).collect(),
            vec![0.0; outputs],
        )
        .build()
        .expect("valid net")
}

struct RunReport {
    throughput: f64,
    p50: Duration,
    p99: Duration,
    mean_batch: f64,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[allow(clippy::too_many_arguments)]
fn drive<B: gpupoly::device::Backend + Default>(
    dir: &std::path::Path,
    model: &str,
    inputs: usize,
    outputs: usize,
    policy: BatchPolicy,
    clients: usize,
    requests_per_client: usize,
    devices: usize,
    weight_shard: bool,
    hybrid: bool,
    mux_window: usize,
) -> RunReport {
    let mut cfg = ServerConfig::new(dir);
    cfg.policy = policy;
    cfg.queue_cap = 4 * clients.max(1);
    cfg.devices = devices;
    // Hybrid = both flags: weight shards on every device AND row-parallel
    // walks across the pool.
    cfg.weight_sharded = (weight_shard || hybrid) && devices > 1;
    cfg.tensor_parallel = (hybrid || !weight_shard) && devices > 1;
    let server = Server::<B>::bind("127.0.0.1:0", cfg).expect("bind");
    let registry = server.registry().clone();
    let handle = server.spawn();
    let addr = handle.addr();

    // Warmup: load the model and touch every buffer size class once.
    {
        let mut client = Client::connect(addr).unwrap();
        client.verify(model, &vec![0.5; inputs], 0, 0.005).unwrap();
    }

    let start = Instant::now();
    let model = Arc::new(model.to_string());
    let mut joins = Vec::new();
    for client_id in 0..clients {
        let model = model.clone();
        joins.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            let make_query = |step: usize| {
                let image: Vec<f32> = (0..inputs)
                    .map(|i| {
                        0.15 + 0.7 * (((client_id * 131 + step * 29 + i * 7) % 101) as f32 / 101.0)
                    })
                    .collect();
                let label = (client_id + step) % outputs;
                let eps = 0.003 + 0.002 * ((client_id + step) % 4) as f32;
                (image, label, eps)
            };
            if mux_window == 0 {
                // Classic closed loop: one id-less frame in flight.
                let mut latencies = Vec::with_capacity(requests_per_client);
                for step in 0..requests_per_client {
                    let (image, label, eps) = make_query(step);
                    let t = Instant::now();
                    client
                        .verify(&model, &image, label, eps)
                        .expect("load query verifies");
                    latencies.push(t.elapsed());
                }
                return latencies;
            }
            // Multiplexed closed loop: keep up to `mux_window` id-tagged
            // frames outstanding on the one connection, matching each
            // (possibly out-of-order) reply back to its send time by id.
            let mut sent_at = vec![None; requests_per_client];
            let mut latencies = Vec::with_capacity(requests_per_client);
            let mut next = 0usize;
            let mut outstanding = 0usize;
            while latencies.len() < requests_per_client {
                while outstanding < mux_window && next < requests_per_client {
                    let (image, label, eps) = make_query(next);
                    sent_at[next] = Some(Instant::now());
                    client
                        .send_request(
                            &Request::Verify {
                                model: model.as_str().to_string(),
                                image,
                                label,
                                eps,
                            },
                            Some(next as u64),
                        )
                        .expect("pipelined send");
                    next += 1;
                    outstanding += 1;
                }
                let (id, reply) = client.recv_any().expect("mux reply");
                let id = id.expect("reply echoes its id") as usize;
                assert!(matches!(reply, Reply::Verdict { .. }), "id {id}: {reply:?}");
                let t = sent_at[id].take().expect("unknown or duplicate id");
                latencies.push(t.elapsed());
                outstanding -= 1;
            }
            latencies
        }));
    }
    let mut latencies: Vec<Duration> = Vec::new();
    for join in joins {
        latencies.extend(join.join().expect("client thread"));
    }
    let elapsed = start.elapsed();
    latencies.sort();

    let stats = registry.model_stats();
    let (batches, items) = stats
        .iter()
        .fold((0u64, 0u64), |(b, i), m| (b + m.batches, i + m.batch_items));
    drop(registry);
    handle.shutdown();

    RunReport {
        throughput: latencies.len() as f64 / elapsed.as_secs_f64(),
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
        mean_batch: items as f64 / batches.max(1) as f64,
    }
}

fn main() {
    let backend = std::env::var("GPUPOLY_BACKEND").unwrap_or_else(|_| "cpusim".into());
    let clients = env_usize("LOADGEN_CLIENTS", 8);
    let requests = env_usize("LOADGEN_REQUESTS", 40);
    let devices = env_usize("LOADGEN_DEVICES", 1).max(1);
    let weight_shard = env_usize("LOADGEN_WEIGHT_SHARD", 0) != 0;
    let hybrid = env_usize("LOADGEN_HYBRID", 0) != 0;
    let mux = env_usize("LOADGEN_MUX", 4);

    let dir = std::env::temp_dir().join(format!("gpupoly-loadgen-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (inputs, width, outputs) = (12, 32, 10);
    let net = make_net(42, inputs, width, outputs);
    store::save(&dir, "loadgen", &net).expect("write model");

    let policies = [
        (
            "no batching (max_batch=1)",
            BatchPolicy {
                max_batch: 1,
                max_delay: Duration::ZERO,
            },
        ),
        (
            "batch<=8, delay 1ms",
            BatchPolicy {
                max_batch: 8,
                max_delay: Duration::from_millis(1),
            },
        ),
        (
            "batch<=32, delay 2ms",
            BatchPolicy {
                max_batch: 32,
                max_delay: Duration::from_millis(2),
            },
        ),
        (
            "batch<=32, delay 5ms",
            BatchPolicy {
                max_batch: 32,
                max_delay: Duration::from_millis(5),
            },
        ),
    ];

    println!(
        "serve_loadgen: backend={backend} model={inputs}->{width}->{width}->{outputs} \
         clients={clients} requests/client={requests} devices={devices} \
         sharding={}\n",
        match (devices > 1, weight_shard, hybrid) {
            (false, _, _) => "none",
            (true, _, true) => "hybrid-2d",
            (true, false, false) => "tensor-parallel",
            (true, true, false) => "weights",
        }
    );
    println!(
        "{:<30} {:>10} {:>10} {:>10} {:>11}",
        "policy", "q/s", "p50", "p99", "mean batch"
    );
    let mut runs: Vec<(String, BatchPolicy, usize)> = policies
        .iter()
        .map(|(label, policy)| (label.to_string(), *policy, 0))
        .collect();
    if mux > 0 {
        // Re-run the coalescing-friendly policy with pipelined id-tagged
        // frames: same connections, `mux` requests outstanding on each.
        runs.push((
            format!("batch<=32, delay 2ms, mux={mux}"),
            BatchPolicy {
                max_batch: 32,
                max_delay: Duration::from_millis(2),
            },
            mux,
        ));
    }
    for (label, policy, mux_window) in runs {
        let report = match backend.as_str() {
            "reference" => drive::<ReferenceBackend>(
                &dir,
                "loadgen",
                inputs,
                outputs,
                policy,
                clients,
                requests,
                devices,
                weight_shard,
                hybrid,
                mux_window,
            ),
            _ => drive::<CpuSimBackend>(
                &dir,
                "loadgen",
                inputs,
                outputs,
                policy,
                clients,
                requests,
                devices,
                weight_shard,
                hybrid,
                mux_window,
            ),
        };
        println!(
            "{:<30} {:>10.1} {:>10.2?} {:>10.2?} {:>11.2}",
            label, report.throughput, report.p50, report.p99, report.mean_batch
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
