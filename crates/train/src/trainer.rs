//! SGD training with the paper's four regimes: normal, PGD-adversarial,
//! and IBP-robust (the common core of DiffAI and CROWN-IBP training).
//!
//! What matters for the verification benchmarks is the *regime split* the
//! paper leans on throughout its evaluation: normally/PGD-trained networks
//! keep many unstable ReLUs inside the L∞ ball (early termination rarely
//! fires; verification is slow and often fails), while IBP-robust networks
//! drive most pre-activations away from zero (early termination fires
//! almost everywhere; GPUPoly's runtimes collapse by orders of magnitude).

use gpupoly_nn::zoo::TrainingRegime;
use gpupoly_nn::{Block, Layer, Network};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;

use crate::backward::{backward_ibp, backward_point, ibp_forward, softmax_ce, Grads};
use crate::data::Dataset;

/// Hyperparameters of a training run.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Passes over the dataset.
    pub epochs: usize,
    /// Minibatch size.
    pub batch: usize,
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// L∞ radius for PGD / robust regimes.
    pub eps: f32,
    /// Shuffling seed.
    pub seed: u64,
    /// Training regime (paper Table 1).
    pub regime: TrainingRegime,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            batch: 32,
            lr: 0.02,
            momentum: 0.9,
            eps: 0.1,
            seed: 0,
            regime: TrainingRegime::Normal,
        }
    }
}

/// Summary of a training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Mean loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Accuracy on the training set after the last epoch.
    pub train_accuracy: f32,
}

/// Classification accuracy of a network on a dataset.
pub fn accuracy(net: &Network<f32>, data: &Dataset) -> f32 {
    if data.is_empty() {
        return 0.0;
    }
    let correct: usize = data
        .images
        .par_iter()
        .zip(&data.labels)
        .filter(|(img, &label)| net.classify(img) == label)
        .count();
    correct as f32 / data.len() as f32
}

/// A PGD L∞ attack: iterated sign-gradient ascent on the cross-entropy,
/// projected onto the ε-ball around `image` (and the `[0,1]` pixel domain).
/// Returns the adversarial input found.
pub fn pgd_attack(
    net: &Network<f32>,
    image: &[f32],
    label: usize,
    eps: f32,
    steps: usize,
) -> Vec<f32> {
    let graph = net.graph();
    let step = (2.5 * eps / steps.max(1) as f32).max(1e-4);
    let mut x: Vec<f32> = image.to_vec();
    for _ in 0..steps {
        let acts = graph.eval(&x);
        let (_, og) = softmax_ce(acts.last().expect("output"), label);
        let grads = backward_point(&graph, &acts, og);
        for (xi, (&x0, g)) in x.iter_mut().zip(image.iter().zip(&grads.input)) {
            let moved = *xi + step * g.signum();
            *xi = moved.clamp(x0 - eps, x0 + eps).clamp(0.0, 1.0);
        }
    }
    x
}

/// One sample's gradient under the configured regime.
fn sample_grads(
    net: &Network<f32>,
    image: &[f32],
    label: usize,
    cfg: &TrainConfig,
    epoch_frac: f32,
) -> (f32, Grads) {
    let graph = net.graph();
    match cfg.regime {
        TrainingRegime::Normal => {
            let acts = graph.eval(image);
            let (loss, og) = softmax_ce(acts.last().expect("output"), label);
            (loss, backward_point(&graph, &acts, og))
        }
        TrainingRegime::Pgd => {
            // Adversarial training: gradients at the PGD point, ε ramped in.
            let eps = cfg.eps * epoch_frac.min(1.0);
            let adv = pgd_attack(net, image, label, eps, 5);
            let acts = graph.eval(&adv);
            let (loss, og) = softmax_ce(acts.last().expect("output"), label);
            (loss, backward_point(&graph, &acts, og))
        }
        TrainingRegime::DiffAi | TrainingRegime::CrownIbp => {
            // Mixed natural + worst-case-logit (IBP) loss with an ε ramp and
            // a κ schedule from 1 (all natural) to 0.5.
            let ramp = (epoch_frac * 2.0).min(1.0);
            let eps = cfg.eps * ramp;
            let kappa = 1.0 - 0.5 * ramp;
            let acts = graph.eval(image);
            let (nat_loss, og) = softmax_ce(acts.last().expect("output"), label);
            let mut grads = backward_point(&graph, &acts, og);
            grads.scale(kappa);
            let lo: Vec<f32> = image.iter().map(|v| (v - eps).max(0.0)).collect();
            let hi: Vec<f32> = image.iter().map(|v| (v + eps).min(1.0)).collect();
            let (los, his) = ibp_forward(&graph, &lo, &hi);
            let out = graph.output();
            let worst: Vec<f32> = (0..los[out].len())
                .map(|j| if j == label { los[out][j] } else { his[out][j] })
                .collect();
            let (rob_loss, g) = softmax_ce(&worst, label);
            let mut glo = vec![0.0f32; worst.len()];
            let mut ghi = vec![0.0f32; worst.len()];
            for (j, &gj) in g.iter().enumerate() {
                if j == label {
                    glo[j] = gj;
                } else {
                    ghi[j] = gj;
                }
            }
            let mut rob = backward_ibp(&graph, &los, &his, glo, ghi);
            rob.scale(1.0 - kappa);
            grads.add_assign(&rob);
            (kappa * nat_loss + (1.0 - kappa) * rob_loss, grads)
        }
    }
}

/// Applies averaged gradients to the network with momentum SGD.
fn apply(
    net: &mut Network<f32>,
    grads: &Grads,
    vel: &mut [(Vec<f32>, Vec<f32>)],
    cfg: &TrainConfig,
) {
    let mut flat = 0usize;
    for block in net.blocks_mut() {
        let layers: Vec<&mut Layer<f32>> = match block {
            Block::Single(l) => vec![l],
            Block::Residual { a, b } => a.iter_mut().chain(b.iter_mut()).collect(),
        };
        for l in layers {
            let (w, b): (&mut Vec<f32>, &mut Vec<f32>) = match l {
                Layer::Dense(d) => (&mut d.weight, &mut d.bias),
                Layer::Conv(c) => (&mut c.weight, &mut c.bias),
                Layer::Relu => continue,
            };
            let (_, wg, bg) = &grads.params[flat];
            let (vw, vb) = &mut vel[flat];
            for ((wi, vwi), g) in w.iter_mut().zip(vw.iter_mut()).zip(wg) {
                *vwi = cfg.momentum * *vwi - cfg.lr * g;
                *wi += *vwi;
            }
            for ((bi, vbi), g) in b.iter_mut().zip(vb.iter_mut()).zip(bg) {
                *vbi = cfg.momentum * *vbi - cfg.lr * g;
                *bi += *vbi;
            }
            flat += 1;
        }
    }
    debug_assert_eq!(flat, grads.params.len(), "layer/gradient count mismatch");
}

/// Trains the network in place.
///
/// # Panics
///
/// Panics when the dataset is empty or its shape does not match the network.
pub fn train(net: &mut Network<f32>, data: &Dataset, cfg: &TrainConfig) -> TrainReport {
    assert!(!data.is_empty(), "empty training set");
    assert_eq!(
        data.shape.len(),
        net.input_shape().len(),
        "dataset/network shape mismatch"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7261_696e);
    let mut vel: Vec<(Vec<f32>, Vec<f32>)> = {
        let graph = net.graph();
        graph
            .nodes
            .iter()
            .filter_map(|n| match n.op {
                gpupoly_nn::Op::Dense(d) => {
                    Some((vec![0.0; d.weight.len()], vec![0.0; d.bias.len()]))
                }
                gpupoly_nn::Op::Conv(c) => {
                    Some((vec![0.0; c.weight.len()], vec![0.0; c.bias.len()]))
                }
                _ => None,
            })
            .collect()
    };
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let epoch_frac = (epoch + 1) as f32 / cfg.epochs.max(1) as f32;
        let mut total_loss = 0.0f32;
        for chunk in order.chunks(cfg.batch.max(1)) {
            let results: Vec<(f32, Grads)> = chunk
                .par_iter()
                .map(|&i| sample_grads(net, &data.images[i], data.labels[i], cfg, epoch_frac))
                .collect();
            let mut iter = results.into_iter();
            let (mut loss_sum, mut acc) = iter.next().expect("non-empty batch");
            for (l, g) in iter {
                loss_sum += l;
                acc.add_assign(&g);
            }
            acc.scale(1.0 / chunk.len() as f32);
            total_loss += loss_sum;
            apply(net, &acc, &mut vel, cfg);
        }
        epoch_losses.push(total_loss / data.len() as f32);
    }
    TrainReport {
        epoch_losses,
        train_accuracy: accuracy(net, data),
    }
}

/// Fraction of hidden ReLU input neurons whose sign is *not* fixed over the
/// ε-ball around the dataset's first `n` images — the quantity that governs
/// early-termination effectiveness (robustly trained networks have few).
pub fn unstable_relu_fraction(net: &Network<f32>, data: &Dataset, eps: f32, n: usize) -> f32 {
    use gpupoly_interval::Itv;
    let graph = net.graph();
    let mut unstable = 0usize;
    let mut total = 0usize;
    for img in data.images.iter().take(n.max(1)) {
        let input: Vec<Itv<f32>> = img
            .iter()
            .map(|&x| Itv::new((x - eps).max(0.0), (x + eps).min(1.0)))
            .collect();
        let bounds = graph.eval_itv(&input);
        for (i, node) in graph.nodes.iter().enumerate() {
            if matches!(node.op, gpupoly_nn::Op::Relu) {
                let p = node.parents[0];
                for b in &bounds[p] {
                    total += 1;
                    if b.straddles_zero() {
                        unstable += 1;
                    }
                }
                let _ = i;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        unstable as f32 / total as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data;
    use gpupoly_nn::builder::NetworkBuilder;
    use gpupoly_nn::zoo::Dataset as D;
    use gpupoly_nn::Shape;

    fn small_mlp(seed: u64) -> Network<f32> {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w1 = vec![0.0f32; 32 * 784];
        for v in &mut w1 {
            *v = rng.random_range(-0.05..0.05);
        }
        let mut w2 = vec![0.0f32; 10 * 32];
        for v in &mut w2 {
            *v = rng.random_range(-0.3..0.3);
        }
        NetworkBuilder::new(Shape::new(28, 28, 1))
            .dense_flat(32, w1, vec![0.0; 32])
            .relu()
            .dense_flat(10, w2, vec![0.0; 10])
            .build()
            .unwrap()
    }

    #[test]
    fn normal_training_learns_the_synthetic_task() {
        let mut net = small_mlp(1);
        let data = data::synthetic(D::MnistLike, 200, 42);
        let before = accuracy(&net, &data);
        let report = train(
            &mut net,
            &data,
            &TrainConfig {
                epochs: 6,
                batch: 16,
                lr: 0.02,
                ..Default::default()
            },
        );
        assert!(
            report.train_accuracy > 0.8,
            "accuracy {} too low (before: {before})",
            report.train_accuracy
        );
        assert!(report.epoch_losses.first().unwrap() > report.epoch_losses.last().unwrap());
    }

    #[test]
    fn pgd_attack_does_not_leave_the_ball() {
        let net = small_mlp(2);
        let data = data::synthetic(D::MnistLike, 4, 1);
        let eps = 0.05;
        let adv = pgd_attack(&net, &data.images[0], data.labels[0], eps, 5);
        for (a, x) in adv.iter().zip(&data.images[0]) {
            assert!((a - x).abs() <= eps + 1e-6);
            assert!((0.0..=1.0).contains(a));
        }
    }

    #[test]
    fn pgd_attack_increases_loss() {
        let mut net = small_mlp(3);
        let data = data::synthetic(D::MnistLike, 100, 7);
        train(
            &mut net,
            &data,
            &TrainConfig {
                epochs: 4,
                ..Default::default()
            },
        );
        let img = &data.images[0];
        let label = data.labels[0];
        let clean_loss = softmax_ce(&net.infer(img), label).0;
        let adv = pgd_attack(&net, img, label, 0.1, 10);
        let adv_loss = softmax_ce(&net.infer(&adv), label).0;
        assert!(
            adv_loss >= clean_loss - 1e-4,
            "attack should not reduce loss"
        );
    }

    #[test]
    fn robust_training_stabilizes_relus() {
        let data = data::synthetic(D::MnistLike, 200, 13);
        let eps = 0.08;
        let mut normal = small_mlp(5);
        let mut robust = small_mlp(5);
        let base = TrainConfig {
            epochs: 6,
            batch: 16,
            lr: 0.02,
            eps,
            ..Default::default()
        };
        train(&mut normal, &data, &base);
        train(
            &mut robust,
            &data,
            &TrainConfig {
                regime: gpupoly_nn::zoo::TrainingRegime::DiffAi,
                ..base
            },
        );
        let fu_normal = unstable_relu_fraction(&normal, &data, eps, 10);
        let fu_robust = unstable_relu_fraction(&robust, &data, eps, 10);
        assert!(
            fu_robust < fu_normal,
            "robust training should stabilize ReLUs: normal {fu_normal}, robust {fu_robust}"
        );
    }

    #[test]
    fn training_is_deterministic() {
        let data = data::synthetic(D::MnistLike, 60, 3);
        let cfg = TrainConfig {
            epochs: 2,
            ..Default::default()
        };
        let mut a = small_mlp(9);
        let mut b = small_mlp(9);
        train(&mut a, &data, &cfg);
        train(&mut b, &data, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn accuracy_of_empty_dataset_is_zero() {
        let net = small_mlp(0);
        let mut d = data::synthetic(D::MnistLike, 4, 0);
        let empty = d.split_off(0);
        assert_eq!(accuracy(&net, &empty), 0.0);
    }
}
