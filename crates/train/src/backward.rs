//! Hand-written backward passes: point gradients and IBP-bound gradients.
//!
//! No autodiff framework exists in this workspace; each graph operation gets
//! an explicit adjoint. Two modes are needed for the paper's training
//! regimes: ordinary point gradients (normal and PGD training) and gradients
//! through interval bound propagation (DiffAI / CROWN-IBP style robust
//! training, where the loss is taken on the worst-case logits).

use gpupoly_nn::{Graph, Op};

/// Parameter and input gradients of one loss evaluation.
#[derive(Clone, Debug)]
pub struct Grads {
    /// `(node_id, weight_grad, bias_grad)` per affine node, in graph order.
    pub params: Vec<(usize, Vec<f32>, Vec<f32>)>,
    /// Gradient with respect to the network input.
    pub input: Vec<f32>,
}

impl Grads {
    /// Element-wise accumulation (used to sum over a batch).
    ///
    /// # Panics
    ///
    /// Panics when the two gradients come from different networks.
    pub fn add_assign(&mut self, other: &Grads) {
        assert_eq!(
            self.params.len(),
            other.params.len(),
            "gradient shape mismatch"
        );
        for ((na, wa, ba), (nb, wb, bb)) in self.params.iter_mut().zip(&other.params) {
            assert_eq!(na, nb, "gradient node order mismatch");
            for (x, y) in wa.iter_mut().zip(wb) {
                *x += *y;
            }
            for (x, y) in ba.iter_mut().zip(bb) {
                *x += *y;
            }
        }
        for (x, y) in self.input.iter_mut().zip(&other.input) {
            *x += *y;
        }
    }

    /// Scales all gradients (e.g. by `1/batch` or a loss mixing weight).
    pub fn scale(&mut self, s: f32) {
        for (_, w, b) in &mut self.params {
            for x in w {
                *x *= s;
            }
            for x in b {
                *x *= s;
            }
        }
        for x in &mut self.input {
            *x *= s;
        }
    }
}

/// Softmax cross-entropy: returns `(loss, dL/dlogits)`.
pub fn softmax_ce(logits: &[f32], label: usize) -> (f32, Vec<f32>) {
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&z| (z - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    let mut grad: Vec<f32> = exps.iter().map(|&e| e / sum).collect();
    let loss = -(grad[label].max(1e-12)).ln();
    grad[label] -= 1.0;
    (loss, grad)
}

/// Backpropagates `out_grad` through the graph given cached activations
/// (from `graph.eval`). Returns parameter and input gradients.
///
/// # Panics
///
/// Panics when `acts`/`out_grad` do not match the graph.
pub fn backward_point(graph: &Graph<'_, f32>, acts: &[Vec<f32>], out_grad: Vec<f32>) -> Grads {
    assert_eq!(acts.len(), graph.nodes.len(), "activation cache mismatch");
    let mut node_grads: Vec<Vec<f32>> = acts.iter().map(|a| vec![0.0; a.len()]).collect();
    let last = graph.nodes.len() - 1;
    assert_eq!(
        out_grad.len(),
        node_grads[last].len(),
        "output grad mismatch"
    );
    node_grads[last] = out_grad;
    let mut params: Vec<(usize, Vec<f32>, Vec<f32>)> = Vec::new();
    for i in (1..graph.nodes.len()).rev() {
        let g = std::mem::take(&mut node_grads[i]);
        match &graph.nodes[i].op {
            Op::Input => unreachable!("input is node 0"),
            Op::Dense(d) => {
                let p = graph.nodes[i].parents[0];
                let x = &acts[p];
                let mut wg = vec![0.0f32; d.out_len * d.in_len];
                let mut bg = vec![0.0f32; d.out_len];
                for r in 0..d.out_len {
                    let gr = g[r];
                    if gr == 0.0 {
                        continue;
                    }
                    bg[r] += gr;
                    let wrow = d.row(r);
                    let wgrow = &mut wg[r * d.in_len..(r + 1) * d.in_len];
                    let pg = &mut node_grads[p];
                    for j in 0..d.in_len {
                        wgrow[j] += gr * x[j];
                        pg[j] += gr * wrow[j];
                    }
                }
                params.push((i, wg, bg));
            }
            Op::Conv(c) => {
                let p = graph.nodes[i].parents[0];
                let x = &acts[p];
                let mut wg = vec![0.0f32; c.weight.len()];
                let mut bg = vec![0.0f32; c.bias.len()];
                for oh in 0..c.out_shape.h {
                    for ow in 0..c.out_shape.w {
                        for co in 0..c.out_shape.c {
                            let gr = g[c.out_shape.idx(oh, ow, co)];
                            if gr == 0.0 {
                                continue;
                            }
                            bg[co] += gr;
                            for f in 0..c.kh {
                                let ih = (oh * c.sh + f) as isize - c.ph as isize;
                                if ih < 0 || ih as usize >= c.in_shape.h {
                                    continue;
                                }
                                for kg in 0..c.kw {
                                    let iw = (ow * c.sw + kg) as isize - c.pw as isize;
                                    if iw < 0 || iw as usize >= c.in_shape.w {
                                        continue;
                                    }
                                    let xin = c.in_shape.idx(ih as usize, iw as usize, 0);
                                    for ci in 0..c.in_shape.c {
                                        let wi = c.widx(f, kg, co, ci);
                                        wg[wi] += gr * x[xin + ci];
                                        node_grads[p][xin + ci] += gr * c.weight[wi];
                                    }
                                }
                            }
                        }
                    }
                }
                params.push((i, wg, bg));
            }
            Op::Relu => {
                let p = graph.nodes[i].parents[0];
                for (j, &gr) in g.iter().enumerate() {
                    if acts[p][j] > 0.0 {
                        node_grads[p][j] += gr;
                    }
                }
            }
            Op::Add { .. } => {
                let pa = graph.nodes[i].parents[0];
                let pb = graph.nodes[i].parents[1];
                for (j, &gr) in g.iter().enumerate() {
                    node_grads[pa][j] += gr;
                }
                for (j, &gr) in g.iter().enumerate() {
                    node_grads[pb][j] += gr;
                }
            }
        }
    }
    params.sort_unstable_by_key(|(n, _, _)| *n);
    Grads {
        params,
        input: std::mem::take(&mut node_grads[0]),
    }
}

/// Plain (round-to-nearest, differentiable) interval forward pass:
/// per-node `(lo, hi)` activations.
pub fn ibp_forward(
    graph: &Graph<'_, f32>,
    lo0: &[f32],
    hi0: &[f32],
) -> (Vec<Vec<f32>>, Vec<Vec<f32>>) {
    let mut los: Vec<Vec<f32>> = Vec::with_capacity(graph.nodes.len());
    let mut his: Vec<Vec<f32>> = Vec::with_capacity(graph.nodes.len());
    for node in &graph.nodes {
        let (lo, hi): (Vec<f32>, Vec<f32>) = match &node.op {
            Op::Input => (lo0.to_vec(), hi0.to_vec()),
            Op::Dense(d) => {
                let (xl, xh) = (&los[node.parents[0]], &his[node.parents[0]]);
                let mut lo = d.bias.clone();
                let mut hi = d.bias.clone();
                for r in 0..d.out_len {
                    for (j, &w) in d.row(r).iter().enumerate() {
                        if w >= 0.0 {
                            lo[r] += w * xl[j];
                            hi[r] += w * xh[j];
                        } else {
                            lo[r] += w * xh[j];
                            hi[r] += w * xl[j];
                        }
                    }
                }
                (lo, hi)
            }
            Op::Conv(c) => {
                let (xl, xh) = (&los[node.parents[0]], &his[node.parents[0]]);
                let n = c.out_shape.len();
                let mut lo = vec![0.0f32; n];
                let mut hi = vec![0.0f32; n];
                for oh in 0..c.out_shape.h {
                    for ow in 0..c.out_shape.w {
                        for co in 0..c.out_shape.c {
                            let at = c.out_shape.idx(oh, ow, co);
                            lo[at] = c.bias[co];
                            hi[at] = c.bias[co];
                            for f in 0..c.kh {
                                let ih = (oh * c.sh + f) as isize - c.ph as isize;
                                if ih < 0 || ih as usize >= c.in_shape.h {
                                    continue;
                                }
                                for kg in 0..c.kw {
                                    let iw = (ow * c.sw + kg) as isize - c.pw as isize;
                                    if iw < 0 || iw as usize >= c.in_shape.w {
                                        continue;
                                    }
                                    let xin = c.in_shape.idx(ih as usize, iw as usize, 0);
                                    for ci in 0..c.in_shape.c {
                                        let w = c.weight[c.widx(f, kg, co, ci)];
                                        if w >= 0.0 {
                                            lo[at] += w * xl[xin + ci];
                                            hi[at] += w * xh[xin + ci];
                                        } else {
                                            lo[at] += w * xh[xin + ci];
                                            hi[at] += w * xl[xin + ci];
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                (lo, hi)
            }
            Op::Relu => {
                let (xl, xh) = (&los[node.parents[0]], &his[node.parents[0]]);
                (
                    xl.iter().map(|&v| v.max(0.0)).collect(),
                    xh.iter().map(|&v| v.max(0.0)).collect(),
                )
            }
            Op::Add { .. } => {
                let (al, ah) = (&los[node.parents[0]], &his[node.parents[0]]);
                let (bl, bh) = (&los[node.parents[1]], &his[node.parents[1]]);
                (
                    al.iter().zip(bl).map(|(x, y)| x + y).collect(),
                    ah.iter().zip(bh).map(|(x, y)| x + y).collect(),
                )
            }
        };
        los.push(lo);
        his.push(hi);
    }
    (los, his)
}

/// Backpropagates gradients `(g_lo, g_hi)` on the output bounds through the
/// IBP forward pass. The sign of each weight decides which input bound it
/// reads, so the adjoint routes gradients accordingly.
pub fn backward_ibp(
    graph: &Graph<'_, f32>,
    los: &[Vec<f32>],
    his: &[Vec<f32>],
    out_glo: Vec<f32>,
    out_ghi: Vec<f32>,
) -> Grads {
    let mut glo: Vec<Vec<f32>> = los.iter().map(|a| vec![0.0; a.len()]).collect();
    let mut ghi: Vec<Vec<f32>> = his.iter().map(|a| vec![0.0; a.len()]).collect();
    let last = graph.nodes.len() - 1;
    glo[last] = out_glo;
    ghi[last] = out_ghi;
    let mut params: Vec<(usize, Vec<f32>, Vec<f32>)> = Vec::new();
    for i in (1..graph.nodes.len()).rev() {
        let gl = std::mem::take(&mut glo[i]);
        let gh = std::mem::take(&mut ghi[i]);
        match &graph.nodes[i].op {
            Op::Input => unreachable!(),
            Op::Dense(d) => {
                let p = graph.nodes[i].parents[0];
                let (xl, xh) = (&los[p], &his[p]);
                let mut wg = vec![0.0f32; d.out_len * d.in_len];
                let mut bg = vec![0.0f32; d.out_len];
                for r in 0..d.out_len {
                    let (glr, ghr) = (gl[r], gh[r]);
                    if glr == 0.0 && ghr == 0.0 {
                        continue;
                    }
                    bg[r] += glr + ghr;
                    let wrow = d.row(r);
                    let wgrow = &mut wg[r * d.in_len..(r + 1) * d.in_len];
                    for j in 0..d.in_len {
                        let w = wrow[j];
                        if w >= 0.0 {
                            wgrow[j] += glr * xl[j] + ghr * xh[j];
                            glo[p][j] += w * glr;
                            ghi[p][j] += w * ghr;
                        } else {
                            wgrow[j] += glr * xh[j] + ghr * xl[j];
                            ghi[p][j] += w * glr;
                            glo[p][j] += w * ghr;
                        }
                    }
                }
                params.push((i, wg, bg));
            }
            Op::Conv(c) => {
                let p = graph.nodes[i].parents[0];
                let (xl, xh) = (&los[p], &his[p]);
                let mut wg = vec![0.0f32; c.weight.len()];
                let mut bg = vec![0.0f32; c.bias.len()];
                for oh in 0..c.out_shape.h {
                    for ow in 0..c.out_shape.w {
                        #[allow(clippy::needless_range_loop)] // kernel-style index nest
                        for co in 0..c.out_shape.c {
                            let at = c.out_shape.idx(oh, ow, co);
                            let (glr, ghr) = (gl[at], gh[at]);
                            if glr == 0.0 && ghr == 0.0 {
                                continue;
                            }
                            bg[co] += glr + ghr;
                            for f in 0..c.kh {
                                let ih = (oh * c.sh + f) as isize - c.ph as isize;
                                if ih < 0 || ih as usize >= c.in_shape.h {
                                    continue;
                                }
                                for kg in 0..c.kw {
                                    let iw = (ow * c.sw + kg) as isize - c.pw as isize;
                                    if iw < 0 || iw as usize >= c.in_shape.w {
                                        continue;
                                    }
                                    let xin = c.in_shape.idx(ih as usize, iw as usize, 0);
                                    for ci in 0..c.in_shape.c {
                                        let wi = c.widx(f, kg, co, ci);
                                        let w = c.weight[wi];
                                        if w >= 0.0 {
                                            wg[wi] += glr * xl[xin + ci] + ghr * xh[xin + ci];
                                            glo[p][xin + ci] += w * glr;
                                            ghi[p][xin + ci] += w * ghr;
                                        } else {
                                            wg[wi] += glr * xh[xin + ci] + ghr * xl[xin + ci];
                                            ghi[p][xin + ci] += w * glr;
                                            glo[p][xin + ci] += w * ghr;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                params.push((i, wg, bg));
            }
            Op::Relu => {
                let p = graph.nodes[i].parents[0];
                for j in 0..gl.len() {
                    if los[p][j] > 0.0 {
                        glo[p][j] += gl[j];
                    }
                    if his[p][j] > 0.0 {
                        ghi[p][j] += gh[j];
                    }
                }
            }
            Op::Add { .. } => {
                let pa = graph.nodes[i].parents[0];
                let pb = graph.nodes[i].parents[1];
                for j in 0..gl.len() {
                    glo[pa][j] += gl[j];
                    glo[pb][j] += gl[j];
                    ghi[pa][j] += gh[j];
                    ghi[pb][j] += gh[j];
                }
            }
        }
    }
    params.sort_unstable_by_key(|(n, _, _)| *n);
    // Input gradient: combine both planes (only used diagnostically here).
    let input = glo[0].iter().zip(&ghi[0]).map(|(a, b)| a + b).collect();
    Grads { params, input }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpupoly_nn::builder::NetworkBuilder;
    use gpupoly_nn::{Block, Layer, Network};

    fn finite_diff_check(net: &Network<f32>, x: &[f32], label: usize) {
        let graph = net.graph();
        let acts = graph.eval(x);
        let (_, og) = softmax_ce(acts.last().unwrap(), label);
        let grads = backward_point(&graph, &acts, og);
        // Check a few weight gradients by central differences.
        let eps = 1e-3f32;
        let loss_of = |n: &Network<f32>| -> f32 { softmax_ce(&n.infer(x), label).0 };
        for &(node, ref wg, ref bg) in &grads.params {
            let _ = node;
            let take = wg.len().min(5);
            #[allow(clippy::needless_range_loop)] // kernel-style index nest
            for k in 0..take {
                let mut plus = net.clone();
                let mut minus = net.clone();
                perturb_param(&mut plus, node_to_flat_index(net, node), k, eps, true);
                perturb_param(&mut minus, node_to_flat_index(net, node), k, eps, false);
                let num = (loss_of(&plus) - loss_of(&minus)) / (2.0 * eps);
                assert!(
                    (num - wg[k]).abs() < 2e-2 * (1.0 + num.abs().max(wg[k].abs())),
                    "weight grad mismatch at node {node} idx {k}: analytic {} vs numeric {num}",
                    wg[k]
                );
            }
            let _ = bg;
        }
    }

    /// Maps a graph node id to the corresponding affine layer position in
    /// block-flat order (identical orders by construction).
    fn node_to_flat_index(net: &Network<f32>, node: usize) -> usize {
        let graph = net.graph();
        graph
            .nodes
            .iter()
            .take(node)
            .filter(|n| matches!(n.op, Op::Dense(_) | Op::Conv(_)))
            .count()
    }

    fn perturb_param(net: &mut Network<f32>, flat: usize, k: usize, eps: f32, plus: bool) {
        let mut idx = 0;
        let delta = if plus { eps } else { -eps };
        for block in net.blocks_mut() {
            let layers: Vec<&mut Layer<f32>> = match block {
                Block::Single(l) => vec![l],
                Block::Residual { a, b } => a.iter_mut().chain(b.iter_mut()).collect(),
            };
            for l in layers {
                let w = match l {
                    Layer::Dense(d) => Some(&mut d.weight),
                    Layer::Conv(c) => Some(&mut c.weight),
                    Layer::Relu => None,
                };
                if let Some(w) = w {
                    if idx == flat {
                        w[k] += delta;
                        return;
                    }
                    idx += 1;
                }
            }
        }
        panic!("flat index {flat} not found");
    }

    #[test]
    fn softmax_ce_basic_properties() {
        let (loss, grad) = softmax_ce(&[2.0, 0.0, 0.0], 0);
        assert!(loss > 0.0 && loss < 1.0);
        assert!(grad[0] < 0.0 && grad[1] > 0.0);
        let s: f32 = grad.iter().sum();
        assert!(s.abs() < 1e-5, "softmax grad sums to 0");
    }

    #[test]
    fn dense_relu_gradients_match_finite_differences() {
        let net = NetworkBuilder::new_flat(3)
            .dense_flat(
                4,
                (0..12).map(|i| (i as f32 * 0.7).sin() * 0.5).collect(),
                vec![0.1; 4],
            )
            .relu()
            .dense_flat(
                3,
                (0..12).map(|i| (i as f32 * 0.3).cos() * 0.5).collect(),
                vec![0.0; 3],
            )
            .build()
            .unwrap();
        finite_diff_check(&net, &[0.2, 0.8, 0.5], 1);
    }

    #[test]
    fn conv_gradients_match_finite_differences() {
        let net = NetworkBuilder::new(gpupoly_nn::Shape::new(4, 4, 1))
            .conv(
                2,
                (3, 3),
                (1, 1),
                (1, 1),
                (0..18).map(|i| (i as f32 * 0.37).sin() * 0.4).collect(),
                vec![0.05, -0.05],
            )
            .relu()
            .flatten_dense(3, |i| ((i * 7 % 13) as f32 - 6.0) * 0.07, |_| 0.0)
            .build()
            .unwrap();
        let x: Vec<f32> = (0..16).map(|i| (i as f32 * 0.21).cos().abs()).collect();
        finite_diff_check(&net, &x, 2);
    }

    #[test]
    fn residual_gradients_match_finite_differences() {
        let net = NetworkBuilder::new_flat(3)
            .residual(
                |a| {
                    a.dense_flat(
                        3,
                        (0..9).map(|i| (i as f32 * 0.5).sin() * 0.4).collect(),
                        vec![0.0; 3],
                    )
                    .relu()
                },
                |b| b,
            )
            .dense(&[[0.3_f32, -0.2, 0.5], [0.1, 0.4, -0.3]], &[0.0, 0.1])
            .build()
            .unwrap();
        finite_diff_check(&net, &[0.4, 0.1, 0.9], 0);
    }

    #[test]
    fn ibp_forward_brackets_point_eval() {
        let net = NetworkBuilder::new_flat(2)
            .dense(&[[1.0_f32, -0.5], [0.3, 0.8]], &[0.1, -0.1])
            .relu()
            .dense(&[[0.7_f32, -0.7], [0.2, 0.9]], &[0.0, 0.0])
            .build()
            .unwrap();
        let graph = net.graph();
        let x = [0.4f32, 0.6];
        let eps = 0.05;
        let lo: Vec<f32> = x.iter().map(|v| v - eps).collect();
        let hi: Vec<f32> = x.iter().map(|v| v + eps).collect();
        let (los, his) = ibp_forward(&graph, &lo, &hi);
        let acts = graph.eval(&x);
        for (node, act) in acts.iter().enumerate() {
            for (j, &v) in act.iter().enumerate() {
                assert!(los[node][j] <= v + 1e-5 && v <= his[node][j] + 1e-5);
            }
        }
    }

    #[test]
    fn ibp_gradients_match_finite_differences() {
        let net = NetworkBuilder::new_flat(2)
            .dense(&[[0.8_f32, -0.4], [0.3, 0.9]], &[0.1, -0.2])
            .relu()
            .dense(&[[0.5_f32, -0.6], [0.4, 0.7]], &[0.0, 0.1])
            .build()
            .unwrap();
        let x = [0.4f32, 0.7];
        let eps_in = 0.1f32;
        let label = 0usize;
        // Robust IBP loss: CE on worst-case logits.
        let robust_loss = |n: &Network<f32>| -> f32 {
            let graph = n.graph();
            let lo: Vec<f32> = x.iter().map(|v| v - eps_in).collect();
            let hi: Vec<f32> = x.iter().map(|v| v + eps_in).collect();
            let (los, his) = ibp_forward(&graph, &lo, &hi);
            let out = graph.output();
            let worst: Vec<f32> = (0..los[out].len())
                .map(|j| if j == label { los[out][j] } else { his[out][j] })
                .collect();
            softmax_ce(&worst, label).0
        };
        // Analytic gradient.
        let graph = net.graph();
        let lo: Vec<f32> = x.iter().map(|v| v - eps_in).collect();
        let hi: Vec<f32> = x.iter().map(|v| v + eps_in).collect();
        let (los, his) = ibp_forward(&graph, &lo, &hi);
        let out = graph.output();
        let worst: Vec<f32> = (0..los[out].len())
            .map(|j| if j == label { los[out][j] } else { his[out][j] })
            .collect();
        let (_, g) = softmax_ce(&worst, label);
        let mut glo = vec![0.0f32; worst.len()];
        let mut ghi = vec![0.0f32; worst.len()];
        for (j, &gj) in g.iter().enumerate() {
            if j == label {
                glo[j] = gj;
            } else {
                ghi[j] = gj;
            }
        }
        let grads = backward_ibp(&graph, &los, &his, glo, ghi);
        drop(graph);
        // Finite differences on a few weights.
        let fd = 1e-3f32;
        for &(node, ref wg, _) in &grads.params {
            #[allow(clippy::needless_range_loop)] // kernel-style index nest
            for k in 0..wg.len().min(4) {
                let flat = {
                    let g = net.graph();
                    g.nodes
                        .iter()
                        .take(node)
                        .filter(|n| matches!(n.op, Op::Dense(_) | Op::Conv(_)))
                        .count()
                };
                let mut plus = net.clone();
                let mut minus = net.clone();
                super::tests::perturb_param(&mut plus, flat, k, fd, true);
                super::tests::perturb_param(&mut minus, flat, k, fd, false);
                let num = (robust_loss(&plus) - robust_loss(&minus)) / (2.0 * fd);
                assert!(
                    (num - wg[k]).abs() < 2e-2 * (1.0 + num.abs().max(wg[k].abs())),
                    "IBP grad mismatch node {node} idx {k}: analytic {} numeric {num}",
                    wg[k]
                );
            }
        }
    }

    #[test]
    fn grads_add_and_scale() {
        let net = NetworkBuilder::new_flat(2)
            .dense(&[[1.0_f32, 0.0], [0.0, 1.0]], &[0.0, 0.0])
            .build()
            .unwrap();
        let graph = net.graph();
        let acts = graph.eval(&[1.0, 2.0]);
        let (_, og) = softmax_ce(acts.last().unwrap(), 0);
        let mut a = backward_point(&graph, &acts, og.clone());
        let b = backward_point(&graph, &acts, og);
        let before = a.params[0].1[0];
        a.add_assign(&b);
        assert!((a.params[0].1[0] - 2.0 * before).abs() < 1e-6);
        a.scale(0.5);
        assert!((a.params[0].1[0] - before).abs() < 1e-6);
    }
}
