//! Seeded synthetic image datasets.
//!
//! MNIST and CIFAR-10 are not shipped with this repository; verification
//! cost and precision depend on the network architecture, the training
//! regime and ε — not on pixel provenance — so the benchmarks use synthetic
//! stand-ins with the same shapes (28×28×1 and 32×32×3, 10 classes). Each
//! class has a smooth low-frequency prototype; samples add per-image
//! brightness jitter and pixel noise, giving a task that is learnable but
//! not trivial, with a classifier accuracy (and hence a "#candidates"
//! filter) qualitatively matching the paper's setup.

use gpupoly_nn::zoo;
use gpupoly_nn::Shape;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A labelled image dataset.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Flattened images, values in `[0, 1]`, layout matching `shape`.
    pub images: Vec<Vec<f32>>,
    /// Class label per image.
    pub labels: Vec<usize>,
    /// Image shape.
    pub shape: Shape,
    /// Number of classes.
    pub classes: usize,
}

impl Dataset {
    /// Number of images.
    pub fn len(&self) -> usize {
        self.images.len()
    }

    /// `true` when the dataset holds no images.
    pub fn is_empty(&self) -> bool {
        self.images.is_empty()
    }

    /// Splits off the last `n` images as a held-out set.
    ///
    /// # Panics
    ///
    /// Panics when `n > len()`.
    pub fn split_off(&mut self, n: usize) -> Dataset {
        assert!(n <= self.len(), "cannot split {n} of {}", self.len());
        let at = self.len() - n;
        Dataset {
            images: self.images.split_off(at),
            labels: self.labels.split_off(at),
            shape: self.shape,
            classes: self.classes,
        }
    }
}

/// Class prototypes: smooth low-frequency patterns, one per class.
fn prototypes(shape: Shape, classes: usize, rng: &mut StdRng) -> Vec<Vec<f32>> {
    (0..classes)
        .map(|_| {
            // Sum of a few random 2-D sinusoids per channel.
            let waves: Vec<(f32, f32, f32, f32)> = (0..4)
                .map(|_| {
                    (
                        rng.random_range(0.5..3.0_f32),
                        rng.random_range(0.5..3.0_f32),
                        rng.random_range(0.0..std::f32::consts::TAU),
                        rng.random_range(0.4..1.0_f32),
                    )
                })
                .collect();
            let chan_phase: Vec<f32> = (0..shape.c)
                .map(|_| rng.random_range(0.0..std::f32::consts::TAU))
                .collect();
            let mut img = vec![0.0f32; shape.len()];
            for h in 0..shape.h {
                for w in 0..shape.w {
                    for c in 0..shape.c {
                        let (fy, fx) = (
                            h as f32 / shape.h.max(1) as f32,
                            w as f32 / shape.w.max(1) as f32,
                        );
                        let mut v = 0.0;
                        for &(ky, kx, ph, amp) in &waves {
                            v += amp
                                * (std::f32::consts::TAU * (ky * fy + kx * fx)
                                    + ph
                                    + chan_phase[c])
                                    .sin();
                        }
                        img[shape.idx(h, w, c)] = 0.5 + 0.22 * v / waves.len() as f32 * 2.0;
                    }
                }
            }
            img
        })
        .collect()
}

/// Generates `n` samples of the synthetic stand-in for `dataset`.
///
/// Deterministic in `(dataset, n, seed)`. Labels are balanced round-robin.
///
/// # Example
///
/// ```
/// use gpupoly_train::data;
/// use gpupoly_nn::zoo::Dataset as D;
///
/// let d = data::synthetic(D::MnistLike, 20, 7);
/// assert_eq!(d.len(), 20);
/// assert_eq!(d.shape.len(), 28 * 28);
/// assert!(d.images[0].iter().all(|&p| (0.0..=1.0).contains(&p)));
/// let again = data::synthetic(D::MnistLike, 20, 7);
/// assert_eq!(d.images[3], again.images[3]);
/// ```
pub fn synthetic(dataset: zoo::Dataset, n: usize, seed: u64) -> Dataset {
    let shape = dataset.input_shape();
    let classes = dataset.classes();
    let proto_seed = match dataset {
        zoo::Dataset::MnistLike => 0x6d6e_6973_7400,
        zoo::Dataset::Cifar10Like => 0x6369_6661_7200,
    };
    let mut proto_rng = StdRng::seed_from_u64(proto_seed);
    let protos = prototypes(shape, classes, &mut proto_rng);
    let mut rng = StdRng::seed_from_u64(seed ^ proto_seed);
    let mut images = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let label = i % classes;
        let brightness = rng.random_range(-0.08..0.08f32);
        let contrast = rng.random_range(0.85..1.15f32);
        let img: Vec<f32> = protos[label]
            .iter()
            .map(|&p| {
                let noise = rng.random_range(-0.12..0.12f32);
                (((p - 0.5) * contrast + 0.5) + brightness + noise).clamp(0.0, 1.0)
            })
            .collect();
        images.push(img);
        labels.push(label);
    }
    Dataset {
        images,
        labels,
        shape,
        classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpupoly_nn::zoo::Dataset as D;

    #[test]
    fn shapes_match_dataset() {
        let m = synthetic(D::MnistLike, 10, 1);
        assert_eq!(m.shape, Shape::new(28, 28, 1));
        let c = synthetic(D::Cifar10Like, 10, 1);
        assert_eq!(c.shape, Shape::new(32, 32, 3));
        assert_eq!(c.images[0].len(), 32 * 32 * 3);
    }

    #[test]
    fn labels_are_balanced() {
        let d = synthetic(D::MnistLike, 100, 3);
        for class in 0..10 {
            assert_eq!(d.labels.iter().filter(|&&l| l == class).count(), 10);
        }
    }

    #[test]
    fn pixels_in_unit_range() {
        let d = synthetic(D::Cifar10Like, 50, 9);
        for img in &d.images {
            assert!(img.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let a = synthetic(D::MnistLike, 8, 11);
        let b = synthetic(D::MnistLike, 8, 11);
        let c = synthetic(D::MnistLike, 8, 12);
        assert_eq!(a.images, b.images);
        assert_ne!(a.images, c.images);
    }

    #[test]
    fn same_class_samples_are_similar_but_not_identical() {
        let d = synthetic(D::MnistLike, 40, 5);
        // samples 0 and 10 share a class, 0 and 1 do not
        let dist = |a: &[f32], b: &[f32]| -> f32 {
            a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum::<f32>() / a.len() as f32
        };
        let same = dist(&d.images[0], &d.images[10]);
        let diff = dist(&d.images[0], &d.images[1]);
        assert!(
            same < diff,
            "same-class distance {same} >= cross-class {diff}"
        );
        assert!(same > 0.0);
    }

    #[test]
    fn split_off_partitions() {
        let mut d = synthetic(D::MnistLike, 30, 2);
        let test = d.split_off(10);
        assert_eq!(d.len(), 20);
        assert_eq!(test.len(), 10);
    }
}
