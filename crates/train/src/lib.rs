//! Synthetic data and from-scratch training for the GPUPoly evaluation.
//!
//! The paper's 16 networks (Table 1) are trained normally, with PGD
//! adversarial training, or provably-robustly (DiffAI / CROWN-IBP — both
//! IBP-loss based). This crate rebuilds that pipeline without any ML
//! framework:
//!
//! * [`data`] — seeded synthetic MNIST-like / CIFAR-like datasets (see
//!   DESIGN.md for why this substitution preserves the evaluation),
//! * [`backward`] — hand-written adjoints for every graph operation, both
//!   for point inference and through interval bound propagation,
//! * [`trainer`] — momentum SGD over the four regimes, a PGD attack, and
//!   the [`trainer::unstable_relu_fraction`] diagnostic that explains the
//!   early-termination behavior the paper's Tables 2–4 hinge on.
//!
//! # Example
//!
//! ```
//! use gpupoly_train::{data, trainer};
//! use gpupoly_nn::zoo::{self, Dataset};
//!
//! let mut net = zoo::build_arch(zoo::ArchId::Fc6x500, Dataset::MnistLike, 0.05, 1)?;
//! let d = data::synthetic(Dataset::MnistLike, 64, 7);
//! let report = trainer::train(&mut net, &d, &trainer::TrainConfig {
//!     epochs: 2, ..Default::default()
//! });
//! assert_eq!(report.epoch_losses.len(), 2);
//! # Ok::<(), gpupoly_nn::NetworkError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backward;
pub mod data;
pub mod trainer;

pub use data::Dataset;
pub use trainer::{accuracy, pgd_attack, train, TrainConfig, TrainReport};
