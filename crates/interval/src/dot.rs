//! Sound reductions: dot products, sums and forward-error bounds.
//!
//! These slice-level helpers back the CPU baselines and the concrete-bound
//! ("candidate") evaluations of backsubstitution. The batched, tiled variants
//! used by the simulated GPU live in `gpupoly-device`; both are built from
//! the same [`crate::round`] primitives and therefore carry the same
//! soundness guarantee.
//!
//! # Example
//!
//! ```
//! use gpupoly_interval::{dot, Itv};
//!
//! let coeffs = vec![Itv::point(1.0_f32), Itv::point(-2.0)];
//! let bounds = vec![Itv::new(0.0, 1.0), Itv::new(-1.0, 1.0)];
//! // upper bound of 1*x0 - 2*x1 over the box: 1*1 - 2*(-1) = 3
//! let hi = dot::concretize_upper(&coeffs, &bounds, Itv::zero());
//! assert!(hi >= 3.0);
//! let lo = dot::concretize_lower(&coeffs, &bounds, Itv::zero());
//! assert!(lo <= -2.0);
//! ```

use crate::round;
use crate::{Fp, Itv};

/// Outward-rounded dot product of interval coefficients with scalar values.
///
/// # Panics
///
/// Panics when the slices have different lengths.
#[inline]
pub fn dot_itv_f<F: Fp>(coeffs: &[Itv<F>], xs: &[F]) -> Itv<F> {
    assert_eq!(coeffs.len(), xs.len(), "dot length mismatch");
    let mut acc = Itv::zero();
    for (a, &x) in coeffs.iter().zip(xs) {
        acc = a.mul_add_f(x, acc);
    }
    acc
}

/// Outward-rounded dot product of interval coefficients with interval values.
///
/// # Panics
///
/// Panics when the slices have different lengths.
#[inline]
pub fn dot_itv_itv<F: Fp>(coeffs: &[Itv<F>], xs: &[Itv<F>]) -> Itv<F> {
    assert_eq!(coeffs.len(), xs.len(), "dot length mismatch");
    let mut acc = Itv::zero();
    for (a, x) in coeffs.iter().zip(xs) {
        acc = a.mul_add(*x, acc);
    }
    acc
}

/// Outward-rounded sum of intervals.
#[inline]
pub fn sum_itv<F: Fp>(xs: &[Itv<F>]) -> Itv<F> {
    let mut acc = Itv::zero();
    for x in xs {
        acc = acc.add(*x);
    }
    acc
}

/// Sound upper bound of `Σ coeffs[j]·x_j + cst` over the box `x_j ∈
/// bounds[j]` — one "candidate" of the backsubstitution algorithm (§2).
///
/// # Panics
///
/// Panics when the slices have different lengths.
#[inline]
pub fn concretize_upper<F: Fp>(coeffs: &[Itv<F>], bounds: &[Itv<F>], cst: Itv<F>) -> F {
    assert_eq!(coeffs.len(), bounds.len(), "concretize length mismatch");
    let mut hi = cst.hi;
    for (a, b) in coeffs.iter().zip(bounds) {
        hi = round::add_up(hi, a.mul(*b).hi);
    }
    hi
}

/// Sound lower bound of `Σ coeffs[j]·x_j + cst` over the box `x_j ∈
/// bounds[j]`.
///
/// # Panics
///
/// Panics when the slices have different lengths.
#[inline]
pub fn concretize_lower<F: Fp>(coeffs: &[Itv<F>], bounds: &[Itv<F>], cst: Itv<F>) -> F {
    assert_eq!(coeffs.len(), bounds.len(), "concretize length mismatch");
    let mut lo = cst.lo;
    for (a, b) in coeffs.iter().zip(bounds) {
        lo = round::add_down(lo, a.mul(*b).lo);
    }
    lo
}

/// The classical forward-error factor `γ_n = n·ε / (1 − n·ε)` (Higham),
/// evaluated with upward rounding.
///
/// A float dot product of length `n`, computed in *any* summation order under
/// *any* IEEE rounding mode, differs from the exact result by at most
/// `γ_{n+1} · Σ|a_i·x_i|`. GPUPoly (§4.1, following Miné 2004) widens the
/// constant term of affine transformers by this bound so that the certificate
/// also covers the round-off of the network's own inference.
///
/// # Panics
///
/// Panics when `n·ε >= 1` (the bound is meaningless for such huge `n`).
#[inline]
pub fn gamma<F: Fp>(n: usize) -> F {
    let ne = round::mul_up(F::from_usize(n), F::EPSILON);
    assert!(ne < F::ONE, "gamma(n) undefined: n too large");
    round::div_up(ne, round::sub_down(F::ONE, ne))
}

/// Upper bound on `Σ |w_i| · mag_i` with upward rounding, the magnitude term
/// of the inference-error widening.
///
/// # Panics
///
/// Panics when the slices have different lengths.
#[inline]
pub fn abs_dot_up<F: Fp>(ws: &[F], mags: &[F]) -> F {
    assert_eq!(ws.len(), mags.len(), "abs_dot length mismatch");
    let mut acc = F::ZERO;
    for (&w, &m) in ws.iter().zip(mags) {
        acc = round::fma_up(w.abs(), m, acc);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_itv_f_contains_exact_f64_dot() {
        let coeffs: Vec<Itv<f32>> = vec![
            Itv::point(0.1),
            Itv::point(-0.3),
            Itv::point(2.5),
            Itv::point(1e-4),
        ];
        let xs = [0.7_f32, 0.11, -0.9, 1e4];
        let exact: f64 = coeffs
            .iter()
            .zip(&xs)
            .map(|(a, &x)| a.lo as f64 * x as f64)
            .sum();
        let d = dot_itv_f(&coeffs, &xs);
        assert!((d.lo as f64) <= exact && exact <= (d.hi as f64));
    }

    #[test]
    fn dot_itv_itv_contains_endpoint_samples() {
        let coeffs = vec![Itv::new(-1.0_f32, 1.0), Itv::new(0.5, 0.75)];
        let xs = vec![Itv::new(2.0_f32, 3.0), Itv::new(-4.0, -2.0)];
        let d = dot_itv_itv(&coeffs, &xs);
        // sample extreme combination: -1*3 + 0.5*-4 = -5
        assert!(d.contains(-5.0));
        // 1*3 + 0.75*-2 = 1.5
        assert!(d.contains(1.5));
    }

    #[test]
    fn sum_itv_adds_componentwise() {
        let xs = vec![
            Itv::new(0.0_f32, 1.0),
            Itv::new(-2.0, -1.0),
            Itv::point(3.0),
        ];
        let s = sum_itv(&xs);
        assert!(s.contains(1.0 - 1.5 + 3.0));
        assert!(s.lo <= 1.0 && s.hi >= 2.0);
    }

    #[test]
    fn concretize_matches_sign_split() {
        // upper of a·x with a > 0 takes x.hi, with a < 0 takes x.lo
        let coeffs = vec![Itv::point(2.0_f32), Itv::point(-3.0)];
        let bounds = vec![Itv::new(-1.0_f32, 1.0), Itv::new(-1.0, 1.0)];
        let hi = concretize_upper(&coeffs, &bounds, Itv::point(0.5));
        assert!(hi >= 2.0 + 3.0 + 0.5);
        let lo = concretize_lower(&coeffs, &bounds, Itv::point(0.5));
        assert!(lo <= -2.0 - 3.0 + 0.5);
    }

    #[test]
    fn concretize_with_empty_terms_is_constant() {
        let hi = concretize_upper::<f32>(&[], &[], Itv::new(-1.0, 2.0));
        assert_eq!(hi, 2.0);
        let lo = concretize_lower::<f32>(&[], &[], Itv::new(-1.0, 2.0));
        assert_eq!(lo, -1.0);
    }

    #[test]
    fn gamma_grows_with_n() {
        let g1: f32 = gamma(1);
        let g100: f32 = gamma(100);
        assert!(g1 > 0.0 && g100 > g1);
        assert!(g100 < 1e-4);
    }

    #[test]
    fn abs_dot_up_dominates_exact() {
        let ws = [0.5_f32, -2.0, 0.25];
        let mags = [1.0_f32, 3.0, 8.0];
        let exact = 0.5 + 6.0 + 2.0;
        assert!(abs_dot_up(&ws, &mags) >= exact);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = dot_itv_f::<f32>(&[Itv::point(1.0)], &[]);
    }
}
