//! Outward-rounded scalar operations.
//!
//! Every `*_down` function returns a value `<=` the exact real result of the
//! operation and every `*_up` function a value `>=` it, for all finite
//! inputs. This is the portable stand-in for CUDA's directed-rounding
//! intrinsics (GPUPoly §4.1): the round-to-nearest result is within half an
//! ulp of the exact result, so stepping it one representable value towards
//! the wanted direction yields a correct directed bound.
//!
//! Operations that are exact in IEEE arithmetic (adding zero, multiplying by
//! zero or one) skip the nudge, which keeps the ubiquitous sparse
//! coefficients of convolutional backsubstitution exact.
//!
//! # Example
//!
//! ```
//! use gpupoly_interval::round;
//!
//! let lo = round::add_down(0.1_f32, 0.2);
//! let hi = round::add_up(0.1_f32, 0.2);
//! assert!(lo <= hi);
//! // The true sum of the two representable values lies inside.
//! let exact = 0.1_f32 as f64 + 0.2_f32 as f64;
//! assert!((lo as f64) <= exact && exact <= (hi as f64));
//! ```

use crate::Fp;

/// `a + b` rounded towards `-inf`.
#[inline(always)]
pub fn add_down<F: Fp>(a: F, b: F) -> F {
    if a == F::ZERO {
        return b;
    }
    if b == F::ZERO {
        return a;
    }
    (a + b).next_down()
}

/// `a + b` rounded towards `+inf`.
#[inline(always)]
pub fn add_up<F: Fp>(a: F, b: F) -> F {
    if a == F::ZERO {
        return b;
    }
    if b == F::ZERO {
        return a;
    }
    (a + b).next_up()
}

/// `a - b` rounded towards `-inf`.
#[inline(always)]
pub fn sub_down<F: Fp>(a: F, b: F) -> F {
    if b == F::ZERO {
        return a;
    }
    (a - b).next_down()
}

/// `a - b` rounded towards `+inf`.
#[inline(always)]
pub fn sub_up<F: Fp>(a: F, b: F) -> F {
    if b == F::ZERO {
        return a;
    }
    (a - b).next_up()
}

/// `a * b` rounded towards `-inf`.
#[inline(always)]
pub fn mul_down<F: Fp>(a: F, b: F) -> F {
    if a == F::ZERO || b == F::ZERO {
        return F::ZERO;
    }
    if a == F::ONE {
        return b;
    }
    if b == F::ONE {
        return a;
    }
    (a * b).next_down()
}

/// `a * b` rounded towards `+inf`.
#[inline(always)]
pub fn mul_up<F: Fp>(a: F, b: F) -> F {
    if a == F::ZERO || b == F::ZERO {
        return F::ZERO;
    }
    if a == F::ONE {
        return b;
    }
    if b == F::ONE {
        return a;
    }
    (a * b).next_up()
}

/// `a / b` rounded towards `-inf`.
///
/// # Panics
///
/// Debug builds panic when `b == 0`.
#[inline(always)]
pub fn div_down<F: Fp>(a: F, b: F) -> F {
    debug_assert!(b != F::ZERO, "division by zero in directed rounding");
    if b == F::ONE {
        return a;
    }
    (a / b).next_down()
}

/// `a / b` rounded towards `+inf`.
///
/// # Panics
///
/// Debug builds panic when `b == 0`.
#[inline(always)]
pub fn div_up<F: Fp>(a: F, b: F) -> F {
    debug_assert!(b != F::ZERO, "division by zero in directed rounding");
    if b == F::ONE {
        return a;
    }
    (a / b).next_up()
}

/// `acc + a * b` rounded towards `-inf` — the multiply-add at the heart of
/// the interval GEMM kernels.
#[inline(always)]
pub fn fma_down<F: Fp>(a: F, b: F, acc: F) -> F {
    add_down(acc, mul_down(a, b))
}

/// `acc + a * b` rounded towards `+inf`.
#[inline(always)]
pub fn fma_up<F: Fp>(a: F, b: F, acc: F) -> F {
    add_up(acc, mul_up(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn down_below_up() {
        let pairs: &[(f32, f32)] = &[
            (0.1, 0.2),
            (-1.5, 3.25),
            (1e30, 1e30),
            (-1e-30, 1e-30),
            (7.0, -0.3),
        ];
        for &(a, b) in pairs {
            assert!(add_down(a, b) <= add_up(a, b), "add {a} {b}");
            assert!(sub_down(a, b) <= sub_up(a, b), "sub {a} {b}");
            assert!(mul_down(a, b) <= mul_up(a, b), "mul {a} {b}");
            if b != 0.0 {
                assert!(div_down(a, b) <= div_up(a, b), "div {a} {b}");
            }
        }
    }

    #[test]
    fn brackets_exact_result_via_f64() {
        let pairs: &[(f32, f32)] = &[(0.1, 0.2), (1.0 / 3.0, 3.0), (1e-8, 1e8), (-2.5, 1e-3)];
        for &(a, b) in pairs {
            let (ad, bd) = (a as f64, b as f64);
            assert!((add_down(a, b) as f64) <= ad + bd);
            assert!((add_up(a, b) as f64) >= ad + bd);
            assert!((sub_down(a, b) as f64) <= ad - bd);
            assert!((sub_up(a, b) as f64) >= ad - bd);
            assert!((mul_down(a, b) as f64) <= ad * bd);
            assert!((mul_up(a, b) as f64) >= ad * bd);
            assert!((div_down(a, b) as f64) <= ad / bd);
            assert!((div_up(a, b) as f64) >= ad / bd);
        }
    }

    #[test]
    fn exact_fast_paths_do_not_nudge() {
        assert_eq!(add_down(1.25_f32, 0.0), 1.25);
        assert_eq!(add_up(0.0_f32, -7.5), -7.5);
        assert_eq!(mul_down(4.0_f32, 0.0), 0.0);
        assert_eq!(mul_up(0.0_f32, -4.0), 0.0);
        assert_eq!(mul_down(1.0_f32, 0.3), 0.3);
        assert_eq!(mul_up(0.3_f32, 1.0), 0.3);
        assert_eq!(sub_down(2.5_f32, 0.0), 2.5);
        assert_eq!(div_up(0.7_f32, 1.0), 0.7);
    }

    #[test]
    fn fma_brackets_exact() {
        let (a, b, acc) = (0.1_f32, 0.3_f32, 0.7_f32);
        let exact = (a as f64) * (b as f64) + acc as f64;
        assert!((fma_down(a, b, acc) as f64) <= exact);
        assert!((fma_up(a, b, acc) as f64) >= exact);
    }

    #[test]
    fn overflow_rounds_to_finite_lower_bound() {
        // Round-to-nearest overflows to +inf only when the exact result is
        // beyond the largest representable midpoint, so MAX stays a sound
        // lower bound.
        let d = add_down(f32::MAX, f32::MAX);
        assert!(d.is_finite());
        assert_eq!(d, f32::MAX);
        let u = add_up(f32::MAX, f32::MAX);
        assert_eq!(u, f32::INFINITY);
    }

    #[test]
    fn works_for_f64_too() {
        let exact = 0.1f64 + 0.2f64; // representable inputs, inexact sum
        assert!(add_down(0.1_f64, 0.2) <= exact);
        assert!(add_up(0.1_f64, 0.2) >= exact);
        assert!(mul_down(1.0_f64 / 3.0, 3.0) <= 1.0);
        assert!(mul_up(1.0_f64 / 3.0, 3.0) >= 1.0 - 1e-15);
    }
}
