//! The interval type used for polyhedral coefficients and neuron bounds.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

use serde::{DeError, Deserialize, Serialize, Value};

use crate::round;
use crate::Fp;

/// A closed interval `[lo, hi]` with outward-rounded arithmetic.
///
/// All operations guarantee *containment soundness*: if `x ∈ a` and `y ∈ b`
/// then `x ∘ y ∈ a ∘ b` for every supported operation `∘`, including all
/// floating-point round-off (see [`crate::round`]). Intervals are used both
/// for the coefficients of polyhedral bounds (GPUPoly §4.1 replaces scalar
/// coefficients with intervals to stay sound under any rounding mode or
/// execution order) and for the concrete bounds `l ≤ x ≤ u` of each neuron.
///
/// The fields are public: `Itv` is a passive compound value in hot kernels.
/// The constructor enforces `lo <= hi` in debug builds; arithmetic preserves
/// it.
///
/// # Example
///
/// ```
/// use gpupoly_interval::Itv;
///
/// let x = Itv::new(-1.0_f32, 2.0);
/// let y = x * Itv::point(-2.0) + Itv::point(1.0);
/// assert!(y.contains(-3.0) && y.contains(3.0));
/// assert!(x.straddles_zero());
/// assert!(!y.is_point());
/// ```
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Itv<F> {
    /// Lower bound.
    pub lo: F,
    /// Upper bound.
    pub hi: F,
}

impl<F: Serialize> Serialize for Itv<F> {
    fn to_value(&self) -> Value {
        Value::obj([("lo", self.lo.to_value()), ("hi", self.hi.to_value())])
    }
}

impl<'de, F: Deserialize<'de>> Deserialize<'de> for Itv<F> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Itv {
            lo: F::from_value(v.field("lo")?)?,
            hi: F::from_value(v.field("hi")?)?,
        })
    }
}

impl<F: Fp> Itv<F> {
    /// Creates the interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Debug builds panic when `lo > hi` or either bound is NaN.
    #[inline(always)]
    pub fn new(lo: F, hi: F) -> Self {
        debug_assert!(!lo.is_nan() && !hi.is_nan(), "NaN interval bound");
        debug_assert!(lo <= hi, "inverted interval [{lo}, {hi}]");
        Self { lo, hi }
    }

    /// The degenerate interval `[x, x]`.
    #[inline(always)]
    pub fn point(x: F) -> Self {
        debug_assert!(!x.is_nan(), "NaN interval point");
        Self { lo: x, hi: x }
    }

    /// The interval `[0, 0]`.
    #[inline(always)]
    pub fn zero() -> Self {
        Self {
            lo: F::ZERO,
            hi: F::ZERO,
        }
    }

    /// The interval `[-inf, +inf]`.
    #[inline]
    pub fn top() -> Self {
        Self {
            lo: F::NEG_INFINITY,
            hi: F::INFINITY,
        }
    }

    /// `true` when `lo == hi`.
    #[inline(always)]
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }

    /// `true` when both bounds are finite.
    #[inline(always)]
    pub fn is_finite(&self) -> bool {
        self.lo.is_finite() && self.hi.is_finite()
    }

    /// `true` when `x` lies inside the interval.
    #[inline(always)]
    pub fn contains(&self, x: F) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// `true` when `other` lies entirely inside the interval.
    #[inline]
    pub fn contains_itv(&self, other: Self) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// `true` when `0` is *strictly* inside `(lo, hi)` — the negation of
    /// GPUPoly's early-termination criterion (§3.2): a ReLU with such input
    /// bounds is approximated, every other ReLU is exact.
    #[inline(always)]
    pub fn straddles_zero(&self) -> bool {
        self.lo < F::ZERO && self.hi > F::ZERO
    }

    /// Upper bound of the width `hi - lo`.
    #[inline]
    pub fn width(&self) -> F {
        round::sub_up(self.hi, self.lo)
    }

    /// Magnitude: `max(|lo|, |hi|)`.
    #[inline(always)]
    pub fn mag(&self) -> F {
        self.lo.abs().max(self.hi.abs())
    }

    /// Midpoint (round-to-nearest; *not* a sound operation, used only by
    /// heuristics and reporting).
    #[inline]
    pub fn mid(&self) -> F {
        (self.lo + self.hi) * F::HALF
    }

    /// Smallest interval containing both operands.
    #[inline]
    pub fn hull(self, other: Self) -> Self {
        Self {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Intersection, or `None` when disjoint.
    #[inline]
    pub fn intersect(self, other: Self) -> Option<Self> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo <= hi {
            Some(Self { lo, hi })
        } else {
            None
        }
    }

    /// Interval negation `[-hi, -lo]` (exact).
    #[inline(always)]
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Self {
        Self {
            lo: -self.hi,
            hi: -self.lo,
        }
    }

    /// Outward-rounded interval addition.
    #[inline(always)]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Self) -> Self {
        Self {
            lo: round::add_down(self.lo, other.lo),
            hi: round::add_up(self.hi, other.hi),
        }
    }

    /// Outward-rounded interval subtraction.
    #[inline(always)]
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Self) -> Self {
        Self {
            lo: round::sub_down(self.lo, other.hi),
            hi: round::sub_up(self.hi, other.lo),
        }
    }

    /// Outward-rounded interval multiplication (full 4-product case split).
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Self) -> Self {
        if self.is_point() {
            return other.mul_f(self.lo);
        }
        if other.is_point() {
            return self.mul_f(other.lo);
        }
        let ll = round::mul_down(self.lo, other.lo);
        let lh = round::mul_down(self.lo, other.hi);
        let hl = round::mul_down(self.hi, other.lo);
        let hh = round::mul_down(self.hi, other.hi);
        let lo = ll.min(lh).min(hl).min(hh);
        let ll = round::mul_up(self.lo, other.lo);
        let lh = round::mul_up(self.lo, other.hi);
        let hl = round::mul_up(self.hi, other.lo);
        let hh = round::mul_up(self.hi, other.hi);
        let hi = ll.max(lh).max(hl).max(hh);
        Self { lo, hi }
    }

    /// Outward-rounded multiplication by a scalar — the dominant operation of
    /// backsubstitution, where network weights are exact scalars.
    #[inline(always)]
    pub fn mul_f(self, f: F) -> Self {
        if f >= F::ZERO {
            Self {
                lo: round::mul_down(self.lo, f),
                hi: round::mul_up(self.hi, f),
            }
        } else {
            Self {
                lo: round::mul_down(self.hi, f),
                hi: round::mul_up(self.lo, f),
            }
        }
    }

    /// `acc + self * f`, outward-rounded — the inner step of the interval
    /// GEMM kernels (interval coefficient times scalar network weight).
    #[inline(always)]
    pub fn mul_add_f(self, f: F, acc: Self) -> Self {
        if f == F::ZERO {
            return acc;
        }
        if f > F::ZERO {
            Self {
                lo: round::fma_down(self.lo, f, acc.lo),
                hi: round::fma_up(self.hi, f, acc.hi),
            }
        } else {
            Self {
                lo: round::fma_down(self.hi, f, acc.lo),
                hi: round::fma_up(self.lo, f, acc.hi),
            }
        }
    }

    /// `acc + self * other`, outward-rounded.
    #[inline]
    pub fn mul_add(self, other: Self, acc: Self) -> Self {
        acc.add(self.mul(other))
    }

    /// Widens both bounds outward by `delta >= 0`.
    #[inline]
    pub fn widen(self, delta: F) -> Self {
        debug_assert!(delta >= F::ZERO);
        Self {
            lo: round::sub_down(self.lo, delta),
            hi: round::add_up(self.hi, delta),
        }
    }

    /// Clamps the interval into `[min, max]` (e.g. pixel domain `[0, 1]`).
    ///
    /// # Panics
    ///
    /// Debug builds panic when the interval lies entirely outside the clamp
    /// range.
    #[inline]
    pub fn clamp_to(self, min: F, max: F) -> Self {
        let lo = self.lo.max(min).min(max);
        let hi = self.hi.min(max).max(min);
        debug_assert!(lo <= hi);
        Self { lo, hi }
    }

    /// Converts the scalar width, e.g. `Itv<f32>` to `Itv<f64>` for
    /// cross-checking (outward-exact since f64 is a superset of f32).
    #[inline]
    pub fn to_f64(self) -> Itv<f64> {
        Itv {
            lo: self.lo.to_f64(),
            hi: self.hi.to_f64(),
        }
    }
}

impl<F: Fp> Default for Itv<F> {
    fn default() -> Self {
        Self::zero()
    }
}

impl<F: Fp> fmt::Display for Itv<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

impl<F: Fp> From<F> for Itv<F> {
    fn from(x: F) -> Self {
        Self::point(x)
    }
}

impl<F: Fp> Add for Itv<F> {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Itv::add(self, rhs)
    }
}

impl<F: Fp> AddAssign for Itv<F> {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        *self = Itv::add(*self, rhs);
    }
}

impl<F: Fp> Sub for Itv<F> {
    type Output = Self;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Itv::sub(self, rhs)
    }
}

impl<F: Fp> Mul for Itv<F> {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        Itv::mul(self, rhs)
    }
}

impl<F: Fp> Neg for Itv<F> {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        Itv::neg(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i32f(lo: f32, hi: f32) -> Itv<f32> {
        Itv::new(lo, hi)
    }

    #[test]
    fn point_and_zero() {
        assert_eq!(Itv::point(3.0_f32), i32f(3.0, 3.0));
        assert_eq!(Itv::<f32>::zero(), i32f(0.0, 0.0));
        assert!(Itv::point(3.0_f32).is_point());
        assert_eq!(Itv::<f32>::default(), Itv::zero());
    }

    #[test]
    fn add_sub_contain_endpoint_combinations() {
        let a = i32f(-1.0, 2.0);
        let b = i32f(0.5, 3.0);
        let s = a + b;
        assert!(s.contains(-0.5) && s.contains(5.0));
        let d = a - b;
        assert!(d.contains(-4.0) && d.contains(1.5));
    }

    #[test]
    fn mul_handles_all_sign_cases() {
        let cases = [
            (i32f(1.0, 2.0), i32f(3.0, 4.0)),
            (i32f(-2.0, -1.0), i32f(3.0, 4.0)),
            (i32f(-2.0, 3.0), i32f(-4.0, 5.0)),
            (i32f(-2.0, 3.0), i32f(-5.0, -4.0)),
            (i32f(0.0, 0.0), i32f(-5.0, 4.0)),
        ];
        for (a, b) in cases {
            let p = a * b;
            for &x in &[a.lo, a.hi, a.mid()] {
                for &y in &[b.lo, b.hi, b.mid()] {
                    assert!(
                        p.contains(x * y),
                        "{a} * {b} = {p} misses {x} * {y} = {}",
                        x * y
                    );
                }
            }
        }
    }

    #[test]
    fn mul_f_matches_mul_by_point() {
        let a = i32f(-1.5, 2.5);
        for f in [-3.0_f32, -1.0, 0.0, 0.5, 2.0] {
            assert_eq!(a.mul_f(f), a * Itv::point(f));
        }
    }

    #[test]
    fn mul_add_f_contains_fma_combinations() {
        let a = i32f(0.1, 0.3);
        let acc = i32f(-1.0, 1.0);
        let r = a.mul_add_f(-2.0, acc);
        assert!(r.contains(-1.0 + 0.1 * -2.0));
        assert!(r.contains(1.0 + 0.3 * -2.0));
        assert_eq!(a.mul_add_f(0.0, acc), acc);
    }

    #[test]
    fn neg_is_exact_involution() {
        let a = i32f(-1.25, 2.5);
        assert_eq!(a.neg(), i32f(-2.5, 1.25));
        assert_eq!(a.neg().neg(), a);
        assert_eq!(-a, a.neg());
    }

    #[test]
    fn hull_and_intersect() {
        let a = i32f(0.0, 2.0);
        let b = i32f(1.0, 3.0);
        assert_eq!(a.hull(b), i32f(0.0, 3.0));
        assert_eq!(a.intersect(b), Some(i32f(1.0, 2.0)));
        assert_eq!(a.intersect(i32f(5.0, 6.0)), None);
    }

    #[test]
    fn straddle_is_strict() {
        assert!(i32f(-1.0, 1.0).straddles_zero());
        assert!(!i32f(0.0, 1.0).straddles_zero());
        assert!(!i32f(-1.0, 0.0).straddles_zero());
        assert!(!i32f(0.5, 1.0).straddles_zero());
    }

    #[test]
    fn clamp_to_domain() {
        assert_eq!(i32f(-0.5, 0.5).clamp_to(0.0, 1.0), i32f(0.0, 0.5));
        assert_eq!(i32f(0.9, 1.7).clamp_to(0.0, 1.0), i32f(0.9, 1.0));
    }

    #[test]
    fn widen_is_outward() {
        let w = i32f(-1.0, 1.0).widen(0.25);
        assert!(w.lo <= -1.25 && w.hi >= 1.25);
    }

    #[test]
    fn display_formats_both_bounds() {
        assert_eq!(format!("{}", i32f(-1.0, 2.0)), "[-1, 2]");
    }

    #[test]
    #[should_panic(expected = "inverted interval")]
    #[cfg(debug_assertions)]
    fn inverted_interval_panics_in_debug() {
        let _ = i32f(2.0, 1.0);
    }

    #[test]
    fn serde_round_trip() {
        let a = i32f(-1.5, 2.5);
        let s = serde_json::to_string(&a).unwrap();
        let b: Itv<f32> = serde_json::from_str(&s).unwrap();
        assert_eq!(a, b);
    }
}
