//! The float abstraction used throughout the verifier.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A floating-point scalar usable for sound verification.
///
/// Implemented for `f32` and `f64`. The two essential members are
/// [`Fp::next_up`] and [`Fp::next_down`], which step to the adjacent
/// representable values and underpin all directed rounding in
/// [`crate::round`]. Everything else mirrors the inherent `f32`/`f64` API so
/// generic code reads like ordinary float code.
///
/// # Example
///
/// ```
/// use gpupoly_interval::Fp;
///
/// fn mag<F: Fp>(x: F) -> F { x.abs() }
/// assert_eq!(mag(-2.5_f32), 2.5);
/// assert!(1.0_f64.next_up() > 1.0);
/// ```
pub trait Fp:
    Copy
    + Clone
    + Debug
    + Display
    + Default
    + PartialOrd
    + PartialEq
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Negative one.
    const NEG_ONE: Self;
    /// One half.
    const HALF: Self;
    /// Positive infinity.
    const INFINITY: Self;
    /// Negative infinity.
    const NEG_INFINITY: Self;
    /// Machine epsilon (distance from 1.0 to the next float).
    const EPSILON: Self;
    /// Largest finite value.
    const MAX: Self;
    /// Smallest finite value (most negative).
    const MIN: Self;
    /// Smallest positive normal value.
    const MIN_POSITIVE: Self;

    /// The next representable value towards `+inf`.
    fn next_up(self) -> Self;
    /// The next representable value towards `-inf`.
    fn next_down(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// IEEE maximum (NaN-ignoring, like `f32::max`).
    fn max(self, other: Self) -> Self;
    /// IEEE minimum (NaN-ignoring, like `f32::min`).
    fn min(self, other: Self) -> Self;
    /// `true` when neither infinite nor NaN.
    fn is_finite(self) -> bool;
    /// `true` when NaN.
    fn is_nan(self) -> bool;
    /// `self * a + b` using the platform FMA when available.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Square root (used by training utilities, never by the sound core).
    fn sqrt(self) -> Self;
    /// Lossless widening to `f64` (f64 -> f64 is identity).
    fn to_f64(self) -> f64;
    /// Conversion from `f64` with round-to-nearest.
    fn from_f64(x: f64) -> Self;
    /// Conversion from a count.
    fn from_usize(n: usize) -> Self;
    /// Raw IEEE-754 bit pattern widened to 64 bits — a total key for exact
    /// value identity (analysis caching, hashing); distinguishes `-0.0`
    /// from `0.0` and every NaN payload.
    fn bits(self) -> u64;

    /// A conservative round-off envelope for a bound threaded through a
    /// `depth`-layer verification walk: roughly `64 · depth` ulps at the
    /// scale of `magnitude` (plus one, so tiny magnitudes still get an
    /// absolute floor of `64 · depth · EPSILON`).
    ///
    /// A precision-tiered verifier uses this as its *escalation* band: a
    /// fast-precision margin whose distance from the decision threshold is
    /// within the envelope is re-run at full precision instead of being
    /// trusted, because at that distance the two precisions' relaxation
    /// choices (which depend on the computed bounds themselves) can
    /// plausibly diverge. The constant is deliberately generous — directed
    /// rounding loses at most one ulp per accumulation step, so `64·depth`
    /// ulps dominates any realistic per-layer fan-in error growth while
    /// still leaving comfortably-proven margins to the fast tier.
    fn escalation_envelope(depth: usize, magnitude: Self) -> Self {
        Self::EPSILON * Self::from_usize(64 * depth.max(1)) * (Self::ONE + magnitude.abs())
    }
}

macro_rules! impl_fp {
    ($t:ty) => {
        impl Fp for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const NEG_ONE: Self = -1.0;
            const HALF: Self = 0.5;
            const INFINITY: Self = <$t>::INFINITY;
            const NEG_INFINITY: Self = <$t>::NEG_INFINITY;
            const EPSILON: Self = <$t>::EPSILON;
            const MAX: Self = <$t>::MAX;
            const MIN: Self = <$t>::MIN;
            const MIN_POSITIVE: Self = <$t>::MIN_POSITIVE;

            #[inline(always)]
            fn next_up(self) -> Self {
                self.next_up()
            }
            #[inline(always)]
            fn next_down(self) -> Self {
                self.next_down()
            }
            #[inline(always)]
            fn abs(self) -> Self {
                self.abs()
            }
            #[inline(always)]
            fn max(self, other: Self) -> Self {
                self.max(other)
            }
            #[inline(always)]
            fn min(self, other: Self) -> Self {
                self.min(other)
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                self.is_finite()
            }
            #[inline(always)]
            fn is_nan(self) -> bool {
                self.is_nan()
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                self.mul_add(a, b)
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                self.sqrt()
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline(always)]
            fn from_usize(n: usize) -> Self {
                n as $t
            }
            #[inline(always)]
            fn bits(self) -> u64 {
                self.to_bits() as u64
            }
        }
    };
}

impl_fp!(f32);
impl_fp!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_up_down_are_adjacent() {
        let x = 1.0_f32;
        assert!(x.next_up() > x);
        assert!(x.next_down() < x);
        assert_eq!(x.next_up().next_down(), x);
    }

    #[test]
    fn next_up_down_at_zero_cross_sign() {
        assert!(0.0_f32.next_up() > 0.0);
        assert!(0.0_f32.next_down() < 0.0);
        assert!(0.0_f64.next_down() < 0.0);
    }

    #[test]
    fn next_down_of_infinity_is_max() {
        assert_eq!(<f32 as Fp>::INFINITY.next_down(), f32::MAX);
        assert_eq!(<f64 as Fp>::NEG_INFINITY.next_up(), f64::MIN);
    }

    #[test]
    fn constants_match_std() {
        assert_eq!(<f32 as Fp>::EPSILON, f32::EPSILON);
        assert_eq!(<f64 as Fp>::MAX, f64::MAX);
        assert_eq!(<f32 as Fp>::HALF, 0.5);
    }

    #[test]
    fn conversions_round_trip() {
        assert_eq!(f32::from_f64(0.25), 0.25_f32);
        assert_eq!(0.25_f32.to_f64(), 0.25_f64);
        assert_eq!(f64::from_usize(7), 7.0);
    }

    #[test]
    fn escalation_envelope_scales_with_depth_and_magnitude() {
        let base = f32::escalation_envelope(1, 0.0);
        assert_eq!(base, 64.0 * f32::EPSILON);
        // Deeper walks and larger magnitudes widen the band.
        assert!(f32::escalation_envelope(8, 0.0) > base);
        assert!(f32::escalation_envelope(1, 100.0) > base);
        // Sign of the magnitude is irrelevant.
        assert_eq!(
            f32::escalation_envelope(3, -2.5),
            f32::escalation_envelope(3, 2.5)
        );
        // Depth zero clamps to one (an envelope of zero would trust every
        // fast-tier margin, however marginal).
        assert_eq!(
            f32::escalation_envelope(0, 1.0),
            f32::escalation_envelope(1, 1.0)
        );
        // The f64 envelope at equal depth/magnitude is vastly tighter.
        assert!(f64::escalation_envelope(8, 1.0) < f32::escalation_envelope(8, 1.0) as f64);
    }

    #[test]
    fn generic_code_compiles_for_both_widths() {
        fn sum3<F: Fp>(a: F, b: F, c: F) -> F {
            a + b + c
        }
        assert_eq!(sum3(1.0_f32, 2.0, 3.0), 6.0);
        assert_eq!(sum3(1.0_f64, 2.0, 3.0), 6.0);
    }
}
