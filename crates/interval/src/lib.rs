//! Floating-point-sound interval arithmetic for polyhedral verification.
//!
//! GPUPoly (MLSys 2021, §4.1) keeps its certificates valid under floating
//! point by replacing every scalar coefficient of its polyhedral bounds with
//! an *interval* and evaluating every operation with outward-directed
//! rounding: lower results are rounded towards `-inf`, upper results towards
//! `+inf`. The original system uses CUDA's directed-rounding intrinsics
//! (`__fmul_rd`, `__fadd_ru`, ...); portable Rust has no rounding-mode
//! control, so this crate obtains the same guarantee by *nudging*: an
//! operation is computed in the default round-to-nearest mode and the result
//! is stepped one representable value down (for lower bounds) or up (for
//! upper bounds). Because round-to-nearest is within half an ulp of the exact
//! result, the nudged value is a correct directed bound — at most one ulp
//! wider than what hardware directed rounding would produce.
//!
//! The crate provides:
//!
//! * [`Fp`] — the float abstraction (implemented for `f32` and `f64`) with
//!   the `next_up`/`next_down` primitives,
//! * [`round`] — outward-rounded scalar operations (`add_down`, `mul_up`, ...),
//! * [`Itv`] — the interval type used for polyhedral coefficients and
//!   concrete neuron bounds,
//! * [`dot`] — sound dot products, sums and the forward-error bounds used to
//!   account for the round-off of the network's own inference (Miné 2004).
//!
//! # Example
//!
//! ```
//! use gpupoly_interval::{Itv, round};
//!
//! // An input pixel known to lie in [0.1, 0.2].
//! let x = Itv::new(0.1_f32, 0.2);
//! // A weight stored exactly.
//! let w = Itv::point(-3.0_f32);
//! let y = x * w;
//! assert!(y.lo <= -0.6 && y.hi >= -0.3);
//! // Directed rounding never loses the true result:
//! assert!(y.contains(-0.45));
//! assert!(round::add_down(0.1_f32, 0.2) <= 0.1 + 0.2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dot;
mod fp;
mod itv;
pub mod round;

pub use fp::Fp;
pub use itv::Itv;
