//! Property-based soundness tests: every interval operation must contain the
//! result of the corresponding real operation on any members of its operand
//! intervals. We use f64 arithmetic as the (much more precise) reference for
//! f32 intervals, and exact rational reasoning where cheap.

use gpupoly_interval::{dot, round, Itv};
use proptest::prelude::*;

/// Finite, moderately sized floats — the regime verification operates in.
fn small_f32() -> impl Strategy<Value = f32> {
    prop_oneof![
        -1e6f32..1e6f32,
        -1.0f32..1.0f32,
        Just(0.0f32),
        Just(1.0f32),
        Just(-1.0f32),
    ]
}

fn itv_f32() -> impl Strategy<Value = Itv<f32>> {
    (small_f32(), small_f32()).prop_map(|(a, b)| Itv::new(a.min(b), a.max(b)))
}

/// A point inside an interval, parameterized by t in [0,1].
fn pick(i: Itv<f32>, t: f32) -> f32 {
    let x = i.lo as f64 + (i.hi as f64 - i.lo as f64) * t as f64;
    (x as f32).clamp(i.lo, i.hi)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn scalar_directed_ops_bracket_f64(a in small_f32(), b in small_f32()) {
        let (ad, bd) = (a as f64, b as f64);
        prop_assert!((round::add_down(a, b) as f64) <= ad + bd);
        prop_assert!((round::add_up(a, b) as f64) >= ad + bd);
        prop_assert!((round::sub_down(a, b) as f64) <= ad - bd);
        prop_assert!((round::sub_up(a, b) as f64) >= ad - bd);
        prop_assert!((round::mul_down(a, b) as f64) <= ad * bd);
        prop_assert!((round::mul_up(a, b) as f64) >= ad * bd);
        if b != 0.0 {
            prop_assert!((round::div_down(a, b) as f64) <= ad / bd);
            prop_assert!((round::div_up(a, b) as f64) >= ad / bd);
        }
    }

    #[test]
    fn add_contains_member_sums(a in itv_f32(), b in itv_f32(), ta in 0.0f32..1.0, tb in 0.0f32..1.0) {
        let (x, y) = (pick(a, ta), pick(b, tb));
        let s = a + b;
        prop_assert!(s.to_f64().contains(x as f64 + y as f64),
            "{a}+{b}={s} misses {x}+{y}");
    }

    #[test]
    fn sub_contains_member_differences(a in itv_f32(), b in itv_f32(), ta in 0.0f32..1.0, tb in 0.0f32..1.0) {
        let (x, y) = (pick(a, ta), pick(b, tb));
        let d = a - b;
        prop_assert!(d.to_f64().contains(x as f64 - y as f64));
    }

    #[test]
    fn mul_contains_member_products(a in itv_f32(), b in itv_f32(), ta in 0.0f32..1.0, tb in 0.0f32..1.0) {
        let (x, y) = (pick(a, ta), pick(b, tb));
        let p = a * b;
        prop_assert!(p.to_f64().contains(x as f64 * y as f64),
            "{a}*{b}={p} misses {x}*{y}");
    }

    #[test]
    fn mul_f_contains_member_products(a in itv_f32(), f in small_f32(), t in 0.0f32..1.0) {
        let x = pick(a, t);
        let p = a.mul_f(f);
        prop_assert!(p.to_f64().contains(x as f64 * f as f64));
    }

    #[test]
    fn mul_add_f_contains_member_fma(a in itv_f32(), f in small_f32(), acc in itv_f32(),
                                     ta in 0.0f32..1.0, tc in 0.0f32..1.0) {
        let (x, c) = (pick(a, ta), pick(acc, tc));
        let r = a.mul_add_f(f, acc);
        prop_assert!(r.to_f64().contains(x as f64 * f as f64 + c as f64));
    }

    #[test]
    fn intervals_stay_ordered(a in itv_f32(), b in itv_f32()) {
        for r in [a + b, a - b, a * b, a.mul_f(b.lo), a.hull(b), -a] {
            prop_assert!(r.lo <= r.hi, "inverted result {r}");
        }
    }

    #[test]
    fn hull_contains_both(a in itv_f32(), b in itv_f32()) {
        let h = a.hull(b);
        prop_assert!(h.contains_itv(a) && h.contains_itv(b));
    }

    #[test]
    fn intersect_is_tightest(a in itv_f32(), b in itv_f32()) {
        if let Some(m) = a.intersect(b) {
            prop_assert!(a.contains_itv(m) && b.contains_itv(m));
            prop_assert!(m.lo == a.lo.max(b.lo) && m.hi == a.hi.min(b.hi));
        } else {
            prop_assert!(a.hi < b.lo || b.hi < a.lo);
        }
    }

    #[test]
    fn dot_contains_f64_reference(
        ws in prop::collection::vec(small_f32(), 0..32),
        xs in prop::collection::vec(small_f32(), 0..32),
    ) {
        let n = ws.len().min(xs.len());
        let coeffs: Vec<Itv<f32>> = ws[..n].iter().map(|&w| Itv::point(w)).collect();
        let exact: f64 = ws[..n].iter().zip(&xs[..n]).map(|(&w, &x)| w as f64 * x as f64).sum();
        let d = dot::dot_itv_f(&coeffs, &xs[..n]);
        prop_assert!(d.to_f64().contains(exact), "dot {d} misses {exact}");
    }

    #[test]
    fn concretize_brackets_box_samples(
        pairs in prop::collection::vec((small_f32(), itv_f32(), 0.0f32..1.0), 0..16),
        cst in small_f32(),
    ) {
        let coeffs: Vec<Itv<f32>> = pairs.iter().map(|&(w, _, _)| Itv::point(w)).collect();
        let bounds: Vec<Itv<f32>> = pairs.iter().map(|&(_, b, _)| b).collect();
        let sample: f64 = pairs
            .iter()
            .map(|&(w, b, t)| w as f64 * pick(b, t) as f64)
            .sum::<f64>() + cst as f64;
        let hi = dot::concretize_upper(&coeffs, &bounds, Itv::point(cst));
        let lo = dot::concretize_lower(&coeffs, &bounds, Itv::point(cst));
        prop_assert!((lo as f64) <= sample && sample <= (hi as f64),
            "[{lo}, {hi}] misses sample {sample}");
    }

    #[test]
    fn widen_grows(a in itv_f32(), d in 0.0f32..100.0) {
        let w = a.widen(d);
        prop_assert!(w.contains_itv(a));
    }

    #[test]
    fn f64_ops_bracket_too(a in -1e9f64..1e9, b in -1e9f64..1e9) {
        // For f64 we at least check ordering and 1-ulp adjacency.
        let lo = round::mul_down(a, b);
        let hi = round::mul_up(a, b);
        prop_assert!(lo <= a * b && a * b <= hi);
        prop_assert!(hi == lo || hi == lo.next_up() || hi == lo.next_up().next_up());
    }
}
