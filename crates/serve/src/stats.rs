//! Lock-free per-model serving counters, shared between the admission path
//! (connection threads) and the model's worker thread.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters for one resident model. All atomics; reading a snapshot never
/// blocks the serving path.
#[derive(Debug, Default)]
pub struct ModelStats {
    /// Requests waiting in the admission queue (gauge).
    pub queue_depth: AtomicU64,
    /// Requests admitted but not yet answered (gauge).
    pub in_flight: AtomicU64,
    /// Requests answered, successfully or with a per-query error.
    pub completed: AtomicU64,
    /// Requests bounced with `overloaded` at admission.
    pub rejected_overload: AtomicU64,
    /// `verify_batch` calls issued by the worker.
    pub batches: AtomicU64,
    /// Total queries across all batches.
    pub batch_items: AtomicU64,
    /// Largest coalesced batch so far.
    pub max_batch: AtomicU64,
    /// Bytes of this model's weights resident on the device.
    pub resident_bytes: AtomicU64,
    /// Engine analysis-cache hits (mirrored by the worker after each batch).
    pub cache_hits: AtomicU64,
    /// Engine analysis-cache misses (mirrored likewise).
    pub cache_misses: AtomicU64,
    /// Batches served by the engine's fused cross-query path (mirrored).
    pub fused_batches: AtomicU64,
    /// Refinable ReLU layers of the resident engine (set at startup; the
    /// depth factor of the admission-side `query_cost_hint`).
    pub relu_layers: AtomicU64,
    /// Bit pattern of the engine's measured ms-per-cost EWMA (`f64`,
    /// mirrored by the worker after each batch; `0` until warmed).
    pub ewma_ms_per_cost_bits: AtomicU64,
    /// Estimated microseconds of admitted-but-unanswered work (gauge):
    /// each admission adds its cost hint × EWMA, each reply subtracts the
    /// same amount — the queue weight cost-aware admission bounds.
    pub pending_cost_us: AtomicU64,
    /// Requests bounced because the estimated queued work exceeded the
    /// cost cap (a subset of `rejected_overload`).
    pub rejected_cost: AtomicU64,
    /// Queries resolved by the `f32` fast tier without touching `f64`
    /// (mirrored from the tiered engine; `0` for single-precision workers).
    pub fast_pass_resolved: AtomicU64,
    /// Queries escalated to the `f64` tier (mirrored likewise).
    pub escalated: AtomicU64,
    /// Queued items dropped unverified because their admission deadline
    /// had already passed when the worker popped them (each gets a typed
    /// `Expired` reply instead of burning engine time on a dead query).
    pub expired_dropped: AtomicU64,
    /// Branch-and-bound bisections spent across all `verify_complete`
    /// queries (mirrored from the engine).
    pub splits: AtomicU64,
    /// Largest refinement frontier any single generation held (mirrored).
    pub frontier_peak: AtomicU64,
    /// Queries whose verdict flipped Unknown → Proven via splitting
    /// (mirrored).
    pub proven_by_split: AtomicU64,
    /// Queries refuted by a verified concrete counterexample (mirrored).
    pub cex_found: AtomicU64,
    /// Milliseconds since the registry epoch at last use (LRU key).
    pub last_used_ms: AtomicU64,
    /// Eviction pin refcount: one pin per admitted-but-unanswered request,
    /// plus one while a replica spawn is in progress. The registry's
    /// make-room sweep may only evict models whose count is zero — a
    /// **single** atomic, so there is no two-gauge read window in which a
    /// model with live work can look evictable.
    pub pinned: AtomicU64,
}

impl ModelStats {
    /// `true` when no request is queued or in flight — safe to evict.
    pub fn idle(&self) -> bool {
        self.queue_depth.load(Ordering::Acquire) == 0 && self.in_flight.load(Ordering::Acquire) == 0
    }

    /// Takes one eviction pin (admission, or a replica spawn in progress).
    pub fn pin(&self) {
        self.pinned.fetch_add(1, Ordering::AcqRel);
    }

    /// Releases one eviction pin, saturating at zero so an unmatched
    /// release can never wrap the count into a permanent pin. Every pin is
    /// released on exactly one path: the worker's reply (including expiry
    /// and panic replies) or the admission rollback when a send bounces.
    pub fn unpin(&self) {
        let _ = self
            .pinned
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |c| {
                Some(c.saturating_sub(1))
            });
    }

    /// Whether any request or maintenance operation currently pins this
    /// model against eviction.
    pub fn is_pinned(&self) -> bool {
        self.pinned.load(Ordering::Acquire) > 0
    }

    /// Records one coalesced batch of `n` queries.
    pub fn record_batch(&self, n: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_items.fetch_add(n as u64, Ordering::Relaxed);
        self.max_batch.fetch_max(n as u64, Ordering::Relaxed);
    }

    /// The measured ms-per-cost EWMA mirrored from the engine.
    pub fn ewma_ms_per_cost(&self) -> f64 {
        f64::from_bits(self.ewma_ms_per_cost_bits.load(Ordering::Acquire))
    }

    /// Estimated wall microseconds one query adds to the backlog: its
    /// admission cost hint converted through the measured EWMA, weighted by
    /// the observed escalation rate so a precision-tiered worker's
    /// escalations (which run the query at both widths) are priced in
    /// instead of every query being costed as a fast-tier pass. `0` while
    /// the EWMA is cold (count-based admission then governs alone); the
    /// weight is `1.0` for single-precision workers, whose tier counters
    /// stay zero.
    pub fn estimate_cost_us(&self, image: &[f32], eps: f32) -> u64 {
        let cost = gpupoly_core::query_cost_hint(
            image,
            eps,
            self.relu_layers.load(Ordering::Acquire) as usize,
        );
        let weight = gpupoly_core::escalation_cost_weight(
            self.escalated.load(Ordering::Acquire),
            self.fast_pass_resolved.load(Ordering::Acquire),
        );
        let us = cost * self.ewma_ms_per_cost() * 1000.0 * weight;
        if us.is_finite() && us > 0.0 {
            us as u64
        } else {
            0
        }
    }
}

/// The cost-aware admission test: refuse when the backlog already holds
/// pending work and this query would push the *estimated* queued wall time
/// over the cap. A query is never refused into an empty backlog (however
/// expensive, stalling it forever would be worse than running it), and a
/// cold EWMA estimates `0`, leaving the count-based queue bound in sole
/// charge — overload semantics are unchanged, only the weight is.
pub fn cost_admission_ok(pending_us: u64, incoming_us: u64, cap_us: u64) -> bool {
    pending_us == 0 || incoming_us == 0 || pending_us.saturating_add(incoming_us) <= cap_us
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idleness_tracks_both_gauges() {
        let s = ModelStats::default();
        assert!(s.idle());
        s.queue_depth.fetch_add(1, Ordering::Release);
        assert!(!s.idle());
        s.queue_depth.fetch_sub(1, Ordering::Release);
        s.in_flight.fetch_add(1, Ordering::Release);
        assert!(!s.idle());
        s.in_flight.fetch_sub(1, Ordering::Release);
        assert!(s.idle());
    }

    #[test]
    fn cost_admission_spares_empty_backlogs_and_caps_full_ones() {
        // Empty backlog: always admitted, however expensive.
        assert!(cost_admission_ok(0, u64::MAX, 1));
        // Cold EWMA (zero estimate): always admitted.
        assert!(cost_admission_ok(500, 0, 1));
        // Backlog + incoming within the cap: admitted.
        assert!(cost_admission_ok(400, 100, 500));
        // Over the cap: bounced.
        assert!(!cost_admission_ok(400, 101, 500));
        // Saturating add must not wrap into admission.
        assert!(!cost_admission_ok(u64::MAX, u64::MAX, u64::MAX - 1));
    }

    #[test]
    fn cost_estimate_follows_ewma_and_depth() {
        let s = ModelStats::default();
        // Cold EWMA: estimate is zero.
        assert_eq!(s.estimate_cost_us(&[0.5; 4], 0.1), 0);
        s.relu_layers.store(3, Ordering::Release);
        s.ewma_ms_per_cost_bits
            .store(2.0_f64.to_bits(), Ordering::Release);
        // width 4*0.2, 3 layers, 2 ms/cost -> 4.8 ms = 4800 us.
        let est = s.estimate_cost_us(&[0.5; 4], 0.1);
        assert!((4700..=4900).contains(&est), "estimate {est}");
        // Wider boxes estimate strictly more.
        assert!(s.estimate_cost_us(&[0.5; 4], 0.3) > est);
    }

    #[test]
    fn cost_estimate_prices_in_escalations() {
        let s = ModelStats::default();
        s.relu_layers.store(3, Ordering::Release);
        s.ewma_ms_per_cost_bits
            .store(2.0_f64.to_bits(), Ordering::Release);
        let base = s.estimate_cost_us(&[0.5; 4], 0.1);
        // Every query escalating triples the estimate (fast + full pass).
        s.escalated.store(10, Ordering::Release);
        let all_escalated = s.estimate_cost_us(&[0.5; 4], 0.1);
        assert!((all_escalated as f64 / base as f64 - 3.0).abs() < 0.05);
        // A 50/50 split lands in between.
        s.fast_pass_resolved.store(10, Ordering::Release);
        let half = s.estimate_cost_us(&[0.5; 4], 0.1);
        assert!(base < half && half < all_escalated);
    }

    #[test]
    fn batch_recording_tracks_mean_and_max() {
        let s = ModelStats::default();
        s.record_batch(3);
        s.record_batch(8);
        s.record_batch(1);
        assert_eq!(s.batches.load(Ordering::Relaxed), 3);
        assert_eq!(s.batch_items.load(Ordering::Relaxed), 12);
        assert_eq!(s.max_batch.load(Ordering::Relaxed), 8);
    }
}
