//! Lock-free per-model serving counters, shared between the admission path
//! (connection threads) and the model's worker thread.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters for one resident model. All atomics; reading a snapshot never
/// blocks the serving path.
#[derive(Debug, Default)]
pub struct ModelStats {
    /// Requests waiting in the admission queue (gauge).
    pub queue_depth: AtomicU64,
    /// Requests admitted but not yet answered (gauge).
    pub in_flight: AtomicU64,
    /// Requests answered, successfully or with a per-query error.
    pub completed: AtomicU64,
    /// Requests bounced with `overloaded` at admission.
    pub rejected_overload: AtomicU64,
    /// `verify_batch` calls issued by the worker.
    pub batches: AtomicU64,
    /// Total queries across all batches.
    pub batch_items: AtomicU64,
    /// Largest coalesced batch so far.
    pub max_batch: AtomicU64,
    /// Bytes of this model's weights resident on the device.
    pub resident_bytes: AtomicU64,
    /// Engine analysis-cache hits (mirrored by the worker after each batch).
    pub cache_hits: AtomicU64,
    /// Engine analysis-cache misses (mirrored likewise).
    pub cache_misses: AtomicU64,
    /// Milliseconds since the registry epoch at last use (LRU key).
    pub last_used_ms: AtomicU64,
}

impl ModelStats {
    /// `true` when no request is queued or in flight — safe to evict.
    pub fn idle(&self) -> bool {
        self.queue_depth.load(Ordering::Acquire) == 0 && self.in_flight.load(Ordering::Acquire) == 0
    }

    /// Records one coalesced batch of `n` queries.
    pub fn record_batch(&self, n: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_items.fetch_add(n as u64, Ordering::Relaxed);
        self.max_batch.fetch_max(n as u64, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idleness_tracks_both_gauges() {
        let s = ModelStats::default();
        assert!(s.idle());
        s.queue_depth.fetch_add(1, Ordering::Release);
        assert!(!s.idle());
        s.queue_depth.fetch_sub(1, Ordering::Release);
        s.in_flight.fetch_add(1, Ordering::Release);
        assert!(!s.idle());
        s.in_flight.fetch_sub(1, Ordering::Release);
        assert!(s.idle());
    }

    #[test]
    fn batch_recording_tracks_mean_and_max() {
        let s = ModelStats::default();
        s.record_batch(3);
        s.record_batch(8);
        s.record_batch(1);
        assert_eq!(s.batches.load(Ordering::Relaxed), 3);
        assert_eq!(s.batch_items.load(Ordering::Relaxed), 12);
        assert_eq!(s.max_batch.load(Ordering::Relaxed), 8);
    }
}
