//! A small blocking client for the daemon's line protocol, used by the
//! tests, the smoke checker and the load generator — and a reference for
//! writing clients in any language: connect, write one JSON line, read one
//! JSON line.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use serde::Deserialize;

use crate::protocol::{
    frame_with_id, reply_id, CompleteStatus, ErrorCode, ModelInfo, Reply, Request, StatsReply,
    WireMargin,
};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (the connection is dead).
    Io(std::io::Error),
    /// The server sent something that is not a reply frame.
    Protocol(String),
    /// The server answered with a typed error reply.
    Server {
        /// The error class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A verdict as the client sees it.
#[derive(Clone, Debug, PartialEq)]
pub struct Verdict {
    /// The model that served the query.
    pub model: String,
    /// `true` when every margin was proven positive.
    pub verified: bool,
    /// Certified margins (bit-exact engine `f32`s).
    pub margins: Vec<WireMargin>,
}

/// A complete-mode outcome as the client sees it.
#[derive(Clone, Debug, PartialEq)]
pub struct CompleteOutcome {
    /// The model that served the query.
    pub model: String,
    /// Refinement outcome (`Proven` / `Falsified` / `Unknown`).
    pub status: CompleteStatus,
    /// Bisections the refinement spent.
    pub splits: u64,
    /// Sub-boxes still undecided when the budget ran out.
    pub frontier_remaining: u64,
    /// The verified adversarial input, when falsified.
    pub counterexample: Option<Vec<f64>>,
    /// The class that counterexample provably wins, when falsified.
    pub adversary: Option<usize>,
}

/// A blocking connection to a `gpupoly-serve` daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Any socket error.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: stream,
        })
    }

    /// Sets (or clears) the socket read timeout for replies.
    ///
    /// # Errors
    ///
    /// Any socket error.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one request and reads one reply (which may be a typed error
    /// frame — that is a *successful* exchange at this level).
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] / [`ClientError::Protocol`] when the exchange
    /// itself fails.
    pub fn exchange(&mut self, request: &Request) -> Result<Reply, ClientError> {
        let line =
            serde_json::to_string(request).map_err(|e| ClientError::Protocol(e.to_string()))?;
        self.send_raw(&line)
    }

    /// Sends one raw line verbatim and reads one reply — the tests use
    /// this to deliver deliberately malformed frames.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] / [`ClientError::Protocol`] when the exchange
    /// itself fails.
    pub fn send_raw(&mut self, line: &str) -> Result<Reply, ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut reply_line = String::new();
        let n = self.reader.read_line(&mut reply_line)?;
        if n == 0 {
            return Err(ClientError::Protocol(
                "server closed the connection".to_string(),
            ));
        }
        Reply::from_value(
            &serde_json::from_str(&reply_line).map_err(|e| ClientError::Protocol(e.to_string()))?,
        )
        .map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Sends one request *without* waiting for its reply, tagging it with
    /// a multiplexing id so the reply (read later via
    /// [`Client::recv_any`]) can be matched back out of order. Pass
    /// `id: None` for an untagged frame (the server then answers in
    /// order). Many sends may be outstanding at once on one connection.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] / [`ClientError::Protocol`] when the send
    /// itself fails.
    pub fn send_request(&mut self, request: &Request, id: Option<u64>) -> Result<(), ClientError> {
        let framed = frame_with_id(request, id);
        let line =
            serde_json::to_string(&framed).map_err(|e| ClientError::Protocol(e.to_string()))?;
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        Ok(())
    }

    /// Reads the next reply frame off the connection, whichever request it
    /// answers, together with its echoed id (`None` for replies to
    /// untagged frames). Pipelined requests sent with distinct ids may be
    /// answered in any order.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] / [`ClientError::Protocol`] when the read
    /// itself fails. A typed error *reply* is a successful read.
    pub fn recv_any(&mut self) -> Result<(Option<u64>, Reply), ClientError> {
        let mut reply_line = String::new();
        let n = self.reader.read_line(&mut reply_line)?;
        if n == 0 {
            return Err(ClientError::Protocol(
                "server closed the connection".to_string(),
            ));
        }
        let value: serde::Value =
            serde_json::from_str(&reply_line).map_err(|e| ClientError::Protocol(e.to_string()))?;
        let reply = Reply::from_value(&value).map_err(|e| ClientError::Protocol(e.to_string()))?;
        Ok((reply_id(&value), reply))
    }

    fn expect_ok(reply: Reply) -> Result<Reply, ClientError> {
        match reply {
            Reply::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Ok(other),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on any failure, including an error reply.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match Self::expect_ok(self.exchange(&Request::Ping)?)? {
            Reply::Pong => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected pong, got {other:?}"
            ))),
        }
    }

    /// Lists served models.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on any failure, including an error reply.
    pub fn models(&mut self) -> Result<Vec<ModelInfo>, ClientError> {
        match Self::expect_ok(self.exchange(&Request::Models)?)? {
            Reply::Models { models } => Ok(models),
            other => Err(ClientError::Protocol(format!(
                "expected models, got {other:?}"
            ))),
        }
    }

    /// Fetches the daemon's counters.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on any failure, including an error reply.
    pub fn stats(&mut self) -> Result<StatsReply, ClientError> {
        match Self::expect_ok(self.exchange(&Request::Stats)?)? {
            Reply::Stats(stats) => Ok(stats),
            other => Err(ClientError::Protocol(format!(
                "expected stats, got {other:?}"
            ))),
        }
    }

    /// Certifies one robustness query. A typed error reply becomes
    /// [`ClientError::Server`].
    ///
    /// # Errors
    ///
    /// [`ClientError`] on any failure, including an error reply.
    pub fn verify(
        &mut self,
        model: &str,
        image: &[f32],
        label: usize,
        eps: f32,
    ) -> Result<Verdict, ClientError> {
        let reply = self.exchange(&Request::Verify {
            model: model.to_string(),
            image: image.to_vec(),
            label,
            eps,
        })?;
        match Self::expect_ok(reply)? {
            Reply::Verdict {
                model,
                verified,
                margins,
            } => Ok(Verdict {
                model,
                verified,
                margins,
            }),
            other => Err(ClientError::Protocol(format!(
                "expected verdict, got {other:?}"
            ))),
        }
    }

    /// Runs one complete-mode query: plain analysis plus budgeted
    /// branch-and-bound refinement of an Unknown verdict. `max_splits`
    /// `None` uses the server default budget; `deadline_ms` bounds the
    /// refinement's wall time.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on any failure, including an error reply.
    pub fn verify_complete(
        &mut self,
        model: &str,
        image: &[f32],
        label: usize,
        eps: f32,
        max_splits: Option<u32>,
        deadline_ms: Option<u64>,
    ) -> Result<CompleteOutcome, ClientError> {
        let reply = self.exchange(&Request::VerifyComplete {
            model: model.to_string(),
            image: image.to_vec(),
            label,
            eps,
            max_splits,
            deadline_ms,
        })?;
        match Self::expect_ok(reply)? {
            Reply::Complete {
                model,
                status,
                splits,
                frontier_remaining,
                counterexample,
                adversary,
            } => Ok(CompleteOutcome {
                model,
                status,
                splits,
                frontier_remaining,
                counterexample,
                adversary,
            }),
            other => Err(ClientError::Protocol(format!(
                "expected complete, got {other:?}"
            ))),
        }
    }
}
