//! `gpupoly-serve`: a batch-admission verification daemon over
//! network-resident engines.
//!
//! The paper's scaling result is an *amortization* shape — upload the
//! network once, then push thousands of queries through it
//! ([`gpupoly_core::Engine`]). This crate puts a long-running service in
//! front of that shape so the batch API serves network traffic:
//!
//! * **registry** ([`Registry`]) — models live as `<name>.json` files in a
//!   directory; the first query for a name loads the network and makes it
//!   resident on a pool device ([`gpupoly_shard::DevicePool`]), placed
//!   least-loaded. A device-memory budget is enforced per device by
//!   reclaiming shelved pool bytes, then evicting LRU-first among models
//!   not *pinned* by in-flight work. On a multi-device pool a model whose
//!   queues saturate replicates onto an idle device; with
//!   `tensor_parallel` every model instead spans the whole pool through a
//!   row-sharded [`gpupoly_core::ShardedEngine`] (margins bit-identical to
//!   one device).
//! * **admission batcher** ([`BatchPolicy`]) — each model replica has a
//!   worker thread and a bounded queue; queued queries coalesce into one
//!   `verify_batch` call per wakeup (up to `max_batch` queries or
//!   `max_delay` of extra latency), so concurrent clients share batches,
//!   analyses and pooled buffers. A full queue answers `overloaded`
//!   immediately — backpressure is a reply, never a hang.
//! * **protocol** ([`protocol`]) — line-delimited JSON over TCP. Frames
//!   may carry an `"id"` to multiplex many outstanding requests over one
//!   connection (replies echo the id, possibly out of order); id-less
//!   frames keep the synchronous in-order contract. Every failure maps to
//!   a typed [`protocol::ErrorCode`]; panics are contained in workers and
//!   connection handlers. Margins cross the wire bit-exact.
//! * **client** ([`Client`]) — a small blocking client for tests, smoke
//!   checks and load generation, including pipelined id-tagged sends.
//!
//! The daemon binary (`gpupoly-serve`) wires this to a CLI: a model
//! directory, a port, budgets, and backend selection via the
//! `GPUPOLY_BACKEND` environment variable (`cpusim` | `reference`).
//!
//! # Example
//!
//! ```no_run
//! use gpupoly_serve::{Client, Server, ServerConfig};
//! use gpupoly_device::CpuSimBackend;
//!
//! let server = Server::<CpuSimBackend>::bind("127.0.0.1:0", ServerConfig::new("models"))?;
//! let handle = server.spawn();
//! let mut client = Client::connect(handle.addr())?;
//! let verdict = client.verify("mnist_6x500", &vec![0.5; 784], 3, 0.01)?;
//! println!("verified: {}", verdict.verified);
//! handle.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batcher;
pub mod client;
pub mod protocol;
mod registry;
mod server;
mod stats;

pub use batcher::{BatchPolicy, WorkError, WorkOutput, WorkReply};
pub use client::{Client, ClientError, CompleteOutcome, Verdict};
pub use gpupoly_shard::DevicePool;
pub use registry::{Registry, RegistryConfig, SubmitError};
pub use server::{Server, ServerConfig, ServerHandle};
pub use stats::ModelStats;
