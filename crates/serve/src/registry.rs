//! The model registry: name → resident engine, loaded lazily, evicted LRU
//! under a device-memory budget.
//!
//! One shared [`Device`] backs every resident model, so
//! `device.memory_in_use()` is the single source of truth the budget is
//! enforced against. Loading a model that would exceed the budget reclaims
//! memory in cost order: first the buffer pool's shelved (idle, recyclable)
//! bytes, then whole idle models, least-recently-used first. When nothing
//! reclaimable remains the submission is bounced with a structured
//! overload — the daemon never wedges itself by thrashing models in and
//! out under pressure.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use gpupoly_core::{RefineBudget, VerifyConfig};
use gpupoly_device::{Backend, Device};
use gpupoly_nn::{store, Network};

use crate::batcher::{spawn_worker, BatchPolicy, WorkItem, WorkKind, WorkReply};
use crate::protocol::{ModelInfo, ModelStatsWire};
use crate::stats::{cost_admission_ok, ModelStats};

/// Registry construction knobs.
#[derive(Clone, Debug)]
pub struct RegistryConfig {
    /// Directory of `<name>.json` model files.
    pub model_dir: PathBuf,
    /// Admission batching policy applied to every model worker.
    pub policy: BatchPolicy,
    /// Admission-queue capacity per model; a full queue bounces requests
    /// with `overloaded` instead of queueing unboundedly.
    pub queue_cap: usize,
    /// Cost-aware admission cap: the most *estimated* wall time of
    /// admitted-but-unanswered work a model may hold (each query weighed by
    /// its `gpupoly_core::query_cost_hint` times the engine's measured
    /// ms-per-cost EWMA). Queries beyond it bounce with the same structured
    /// `overloaded` as a full queue — the count-based `queue_cap` stays as
    /// the backstop (and governs alone while the EWMA is cold or this is
    /// `None`). A query is never bounced into an empty backlog.
    pub queue_cost_cap: Option<Duration>,
    /// How long a requester waits for a verdict once admitted. Stamped
    /// into every queued item as its expiry deadline: items still queued
    /// past it are dropped by the worker with a typed `Expired` reply
    /// instead of verified — nobody is listening for that verdict anymore.
    pub request_timeout: Duration,
    /// Device-memory budget in bytes for resident models (`None` =
    /// whatever the device allows).
    pub memory_budget: Option<usize>,
    /// Verifier configuration for every engine.
    pub verify: VerifyConfig,
    /// Serve every model through a precision-tiered engine: an `f32` fast
    /// pass with sound `f64` escalation for Unknown or narrow-margin
    /// verdicts. Costs roughly 3× the resident weight bytes per model
    /// (both precisions stay resident); escalated verdicts match an
    /// all-`f64` engine exactly.
    pub precision_tier: bool,
}

impl RegistryConfig {
    /// Defaults for a model directory.
    pub fn new(model_dir: impl Into<PathBuf>) -> Self {
        Self {
            model_dir: model_dir.into(),
            policy: BatchPolicy::default(),
            queue_cap: 128,
            queue_cost_cap: Some(Duration::from_secs(30)),
            request_timeout: Duration::from_secs(120),
            memory_budget: None,
            verify: VerifyConfig::default(),
            precision_tier: false,
        }
    }
}

/// Why a submission was refused before reaching a worker.
#[derive(Clone, Debug, PartialEq)]
pub enum SubmitError {
    /// No such model file in the model directory.
    UnknownModel(String),
    /// The model file exists but could not be loaded or prepared.
    LoadFailed(String),
    /// Queue full, memory budget exhausted, or the registry is shutting
    /// down; the client should retry later (against this or another
    /// replica).
    Overloaded(String),
}

struct ModelEntry {
    queue: std::sync::mpsc::SyncSender<WorkItem>,
    join: Option<JoinHandle<()>>,
    stats: Arc<ModelStats>,
}

impl ModelEntry {
    /// Closes the admission queue and waits for the worker to drain and
    /// drop its engine.
    fn shut_down(mut self) {
        drop(self.queue);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// The registry of resident models. See the module docs.
pub struct Registry<B: Backend> {
    device: Device<B>,
    cfg: RegistryConfig,
    epoch: Instant,
    entries: Mutex<HashMap<String, ModelEntry>>,
    /// Per-model gates serializing concurrent cold loads: the first
    /// requester loads, the rest block on the gate and then re-check the
    /// entries map. Never held together with a long-running operation's
    /// data locks — see [`Registry::submit`].
    loading: Mutex<HashMap<String, Arc<Mutex<()>>>>,
    /// `(input_len, outputs)` per model name, filled on first listing/load.
    meta: Mutex<HashMap<String, (usize, usize)>>,
    closed: AtomicBool,
}

impl<B: Backend> Registry<B> {
    /// Creates a registry serving models from `cfg.model_dir` on `device`.
    pub fn new(device: Device<B>, cfg: RegistryConfig) -> Self {
        Self {
            device,
            cfg,
            epoch: Instant::now(),
            entries: Mutex::new(HashMap::new()),
            loading: Mutex::new(HashMap::new()),
            meta: Mutex::new(HashMap::new()),
            closed: AtomicBool::new(false),
        }
    }

    /// The shared device all resident engines run on.
    pub fn device(&self) -> &Device<B> {
        &self.device
    }

    /// The active configuration.
    pub fn config(&self) -> &RegistryConfig {
        &self.cfg
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Whether `model` names a loadable file in the model directory — the
    /// single resolution rule shared by `submit`'s cold-path fast check
    /// and `load_model`'s authoritative check under the loading gate.
    fn model_file_exists(&self, model: &str) -> bool {
        store::valid_name(model)
            && store::model_path(&self.cfg.model_dir, model)
                .map(|p| p.is_file())
                .unwrap_or(false)
    }

    fn unknown_model_error(&self, model: &str) -> String {
        format!("no model `{model}` in {}", self.cfg.model_dir.display())
    }

    /// Submits one verification query for `model`, lazily making the model
    /// resident. Returns the receiver the worker will answer on.
    ///
    /// Loading happens *outside* the entries lock, behind a per-model gate:
    /// the first requester of a cold model loads it, concurrent requesters
    /// for the same model wait on the gate, and traffic for models that are
    /// already resident is never blocked behind someone else's slow load.
    ///
    /// # Errors
    ///
    /// [`SubmitError`] when the model is unknown, cannot be loaded, or the
    /// daemon is saturated — all structured, none blocking.
    pub fn submit(
        &self,
        model: &str,
        image: Vec<f32>,
        label: usize,
        eps: f32,
    ) -> Result<Receiver<WorkReply>, SubmitError> {
        self.submit_kind(model, image, label, eps, WorkKind::Plain)
    }

    /// Submits one *complete-mode* query: plain analysis first, then
    /// branch-and-bound refinement under `budget` if the verdict is
    /// Unknown. Admission prices the query at up to `1 + max_splits`
    /// analyses, so a deep refinement budget weighs accordingly against
    /// the cost cap.
    ///
    /// # Errors
    ///
    /// Same as [`Registry::submit`].
    pub fn submit_complete(
        &self,
        model: &str,
        image: Vec<f32>,
        label: usize,
        eps: f32,
        budget: RefineBudget,
    ) -> Result<Receiver<WorkReply>, SubmitError> {
        self.submit_kind(model, image, label, eps, WorkKind::Complete(budget))
    }

    fn submit_kind(
        &self,
        model: &str,
        image: Vec<f32>,
        label: usize,
        eps: f32,
        kind: WorkKind,
    ) -> Result<Receiver<WorkReply>, SubmitError> {
        /// Removes the loading-gate map entry even if the claim owner
        /// unwinds (a leaked gate would wedge the model forever: later
        /// submitters would find an ownerless gate, lock it instantly and
        /// busy-spin through the retry loop).
        struct GateCleanup<'a, B: Backend>(&'a Registry<B>, &'a str);
        impl<B: Backend> Drop for GateCleanup<'_, B> {
            fn drop(&mut self) {
                self.0.loading.lock().remove(self.1);
            }
        }

        // Bounded retries: under extreme budget pressure a freshly loaded
        // model can be evicted by a competing load before this thread
        // enqueues (load/evict ping-pong). Retrying a few times absorbs
        // benign races; past that the honest answer is backpressure, not
        // an unbounded stall inside submit.
        for _attempt in 0..8 {
            if self.closed.load(Ordering::Acquire) {
                return Err(SubmitError::Overloaded("daemon shutting down".into()));
            }
            {
                let mut entries = self.entries.lock();
                if entries.contains_key(model) {
                    return self.enqueue_locked(&mut entries, model, image, label, eps, kind);
                }
            }
            // Cold path only (a resident model must stay serveable even if
            // its backing file vanished, and hot traffic must not stat the
            // disk): answer unknown models from a direct file check before
            // touching the loading gate. Nonexistent names — typos,
            // hostile probes, many clients chasing the same ghost in
            // lockstep — must neither serialize behind loading gates nor
            // exhaust the retry budget and get misreported as
            // `Overloaded`. `load_model` re-checks under the gate, so a
            // racing file deletion is still handled correctly.
            if !self.model_file_exists(model) {
                return Err(SubmitError::UnknownModel(self.unknown_model_error(model)));
            }
            // Claim the load, or wait for the thread already performing it
            // (then re-check the entries map).
            let claimed = {
                let mut loading = self.loading.lock();
                match loading.get(model) {
                    Some(gate) => Err(gate.clone()),
                    None => {
                        let gate = Arc::new(Mutex::new(()));
                        loading.insert(model.to_string(), gate.clone());
                        Ok(gate)
                    }
                }
            };
            match claimed {
                Err(gate) => {
                    // Block until the owner finishes, then retry. If the
                    // owner's load failed, this requester retries the load
                    // itself (the file may have been fixed meanwhile).
                    drop(gate.lock());
                }
                Ok(gate) => {
                    let _cleanup = GateCleanup(self, model);
                    let _guard = gate.lock();
                    // Re-check: an owner may have finished between our map
                    // miss and our claim.
                    if !self.entries.lock().contains_key(model) {
                        self.load_model(model)?;
                    }
                    // Loop back to enqueue through the freshly inserted
                    // entry.
                }
            }
        }
        Err(SubmitError::Overloaded(format!(
            "model `{model}` keeps getting evicted under memory pressure; retry later"
        )))
    }

    /// Enqueues one query on a resident model. Caller holds the entries
    /// lock and has checked the entry exists.
    fn enqueue_locked(
        &self,
        entries: &mut HashMap<String, ModelEntry>,
        model: &str,
        image: Vec<f32>,
        label: usize,
        eps: f32,
        kind: WorkKind,
    ) -> Result<Receiver<WorkReply>, SubmitError> {
        let entry = entries.get(model).expect("caller checked");
        entry
            .stats
            .last_used_ms
            .store(self.now_ms(), Ordering::Release);

        // Cost-aware admission: weigh the backlog by estimated wall time
        // (cost hint × measured EWMA), not only by query count. Same
        // structured bounce as a full queue. A complete-mode query may run
        // up to `1 + 2·max_splits` sub-box analyses on top of the base
        // pass; scale its hint by the split budget so deep refinements
        // cannot sneak past the cap priced as a single analysis.
        let cost_us = match kind {
            WorkKind::Plain => entry.stats.estimate_cost_us(&image, eps),
            WorkKind::Complete(budget) => entry
                .stats
                .estimate_cost_us(&image, eps)
                .saturating_mul(1 + u64::from(budget.max_splits)),
        };
        if let Some(cap) = self.cfg.queue_cost_cap {
            let pending = entry.stats.pending_cost_us.load(Ordering::Acquire);
            let cap_us = u64::try_from(cap.as_micros()).unwrap_or(u64::MAX);
            if !cost_admission_ok(pending, cost_us, cap_us) {
                entry.stats.rejected_cost.fetch_add(1, Ordering::Relaxed);
                entry
                    .stats
                    .rejected_overload
                    .fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::Overloaded(format!(
                    "estimated backlog for `{model}` exceeds {cap:?} \
                     ({pending} us pending, {cost_us} us incoming)"
                )));
            }
        }

        let (reply, rx) = std::sync::mpsc::channel();
        // Gauge up *before* try_send: the worker decrements when it pops
        // (cost when it answers), so the pairs can never go negative, and a
        // successfully queued item is always counted.
        entry.stats.queue_depth.fetch_add(1, Ordering::AcqRel);
        entry.stats.in_flight.fetch_add(1, Ordering::AcqRel);
        entry
            .stats
            .pending_cost_us
            .fetch_add(cost_us, Ordering::AcqRel);
        match entry.queue.try_send(WorkItem {
            image,
            label,
            eps,
            kind,
            // Admission-time deadline: the serving layer stops waiting for
            // this item's reply after `request_timeout`, so any later
            // verification would go unread — the worker drops it instead.
            deadline: Some(Instant::now() + self.cfg.request_timeout),
            cost_us,
            reply,
        }) {
            Ok(()) => Ok(rx),
            Err(err) => {
                entry.stats.queue_depth.fetch_sub(1, Ordering::AcqRel);
                entry.stats.in_flight.fetch_sub(1, Ordering::AcqRel);
                entry
                    .stats
                    .pending_cost_us
                    .fetch_sub(cost_us, Ordering::AcqRel);
                match err {
                    TrySendError::Full(_) => {
                        entry
                            .stats
                            .rejected_overload
                            .fetch_add(1, Ordering::Relaxed);
                        Err(SubmitError::Overloaded(format!(
                            "admission queue for `{model}` is full ({} waiting)",
                            self.cfg.queue_cap
                        )))
                    }
                    TrySendError::Disconnected(_) => {
                        // The worker died (it can only exit when its queue
                        // closes or its thread panicked fatally at startup);
                        // drop the corpse so a retry reloads cleanly.
                        if let Some(dead) = entries.remove(model) {
                            dead.shut_down();
                        }
                        Err(SubmitError::LoadFailed(format!(
                            "model worker for `{model}` is gone; retry to reload"
                        )))
                    }
                }
            }
        }
    }

    /// Loads `model` into a resident worker. Caller holds the model's
    /// loading gate (so this runs at most once per model at a time) but
    /// NOT the entries lock — file reads, JSON parsing and engine weight
    /// packing must never stall traffic for already-resident models. The
    /// entries lock is taken only briefly, for eviction and insertion.
    fn load_model(&self, model: &str) -> Result<(), SubmitError> {
        if !self.model_file_exists(model) {
            return Err(SubmitError::UnknownModel(self.unknown_model_error(model)));
        }
        let net: Network<f32> = store::load(&self.cfg.model_dir, model)
            .map_err(|e| SubmitError::LoadFailed(e.to_string()))?;
        self.meta.lock().insert(
            model.to_string(),
            (net.input_shape().len(), net.output_len()),
        );
        // A tiered worker keeps both precisions resident: f32 + f64 weights
        // are 3× the f32 bytes, so budget-driven eviction must make room
        // for the real footprint up front.
        let tier_factor = if self.cfg.precision_tier { 3 } else { 1 };
        let incoming = net.param_count() * std::mem::size_of::<f32>() * tier_factor;
        {
            let mut entries = self.entries.lock();
            self.make_room(&mut entries, incoming)?;
        }
        let stats = Arc::new(ModelStats::default());
        stats.last_used_ms.store(self.now_ms(), Ordering::Release);
        let (queue, join) = spawn_worker(
            model.to_string(),
            net,
            self.device.clone(),
            self.cfg.verify,
            self.cfg.policy,
            self.cfg.queue_cap,
            self.cfg.precision_tier,
            stats.clone(),
        )
        .map_err(SubmitError::LoadFailed)?;
        let entry = ModelEntry {
            queue,
            join: Some(join),
            stats,
        };
        {
            let mut entries = self.entries.lock();
            // Linearize against drain() via the entries lock: a drain that
            // already swept the map must not be followed by a late insert
            // whose worker nobody would ever join.
            if !self.closed.load(Ordering::Acquire) {
                entries.insert(model.to_string(), entry);
                return Ok(());
            }
        }
        entry.shut_down();
        Err(SubmitError::Overloaded("daemon shutting down".into()))
    }

    /// Reclaims device memory until `incoming` more bytes fit under the
    /// budget: shelved pool bytes first (an idle cache, cheaper to drop
    /// than a model), then LRU idle models.
    ///
    /// The budget is enforced at admission time; concurrent loads that
    /// both passed this check can transiently overshoot it, and the
    /// device's own capacity (set to the budget by the server) is the
    /// hard backstop — engines fall back to host-resident weights and
    /// chunked backsubstitution rather than failing.
    fn make_room(
        &self,
        entries: &mut HashMap<String, ModelEntry>,
        incoming: usize,
    ) -> Result<(), SubmitError> {
        let Some(budget) = self.cfg.memory_budget else {
            return Ok(());
        };
        // Clear the pool at most once per call: active workers re-shelve
        // buffers continuously, so "pool non-empty" alone must never keep
        // this loop (which holds the entries lock) spinning.
        let mut pool_cleared = false;
        loop {
            if self.device.memory_in_use().saturating_add(incoming) <= budget {
                return Ok(());
            }
            if !pool_cleared && self.device.buffer_pool_bytes() > 0 {
                self.device.buffer_pool_clear();
                pool_cleared = true;
                continue;
            }
            let victim = entries
                .iter()
                .filter(|(_, e)| e.stats.idle())
                .min_by_key(|(_, e)| e.stats.last_used_ms.load(Ordering::Acquire))
                .map(|(name, _)| name.clone());
            match victim {
                Some(name) => {
                    let entry = entries.remove(&name).expect("victim exists");
                    entry.shut_down();
                }
                None => {
                    return Err(SubmitError::Overloaded(format!(
                        "memory budget exhausted ({} of {budget} bytes in use, \
                         {incoming} more needed) and every resident model is busy",
                        self.device.memory_in_use()
                    )));
                }
            }
        }
    }

    /// Every model the daemon can serve (directory listing), with residency
    /// flags and I/O shapes.
    ///
    /// Dims for never-seen models require parsing their files once (the
    /// JSON format has no separate header); that parsing happens without
    /// holding any registry lock, so a `models` request over a directory
    /// of large files never stalls verification traffic. Parsed dims are
    /// cached, so the cost is paid once per model per daemon lifetime.
    ///
    /// # Errors
    ///
    /// The directory-read error message when the model dir is unreadable.
    pub fn list_models(&self) -> Result<Vec<ModelInfo>, String> {
        let names = store::list(&self.cfg.model_dir).map_err(|e| e.to_string())?;
        let resident: std::collections::HashSet<String> =
            self.entries.lock().keys().cloned().collect();
        let mut out = Vec::with_capacity(names.len());
        for name in names {
            let cached = self.meta.lock().get(&name).copied();
            let dims = match cached {
                Some(dims) => Some(dims),
                None => match store::load::<f32>(&self.cfg.model_dir, &name) {
                    Ok(net) => {
                        let dims = (net.input_shape().len(), net.output_len());
                        self.meta.lock().insert(name.clone(), dims);
                        Some(dims)
                    }
                    // Listed but unloadable: report it with zero dims so
                    // clients can see the name (verify will fail typed).
                    Err(_) => None,
                },
            };
            let (input_len, outputs) = dims.unwrap_or((0, 0));
            out.push(ModelInfo {
                loaded: resident.contains(&name),
                name,
                input_len,
                outputs,
            });
        }
        Ok(out)
    }

    /// Counter snapshots for every resident model, sorted by name.
    pub fn model_stats(&self) -> Vec<ModelStatsWire> {
        let entries = self.entries.lock();
        let mut out: Vec<ModelStatsWire> = entries
            .iter()
            .map(|(name, e)| {
                let s = &e.stats;
                let load = |a: &std::sync::atomic::AtomicU64| a.load(Ordering::Acquire);
                ModelStatsWire {
                    name: name.clone(),
                    resident_bytes: load(&s.resident_bytes),
                    queue_depth: load(&s.queue_depth),
                    in_flight: load(&s.in_flight),
                    completed: load(&s.completed),
                    rejected_overload: load(&s.rejected_overload),
                    batches: load(&s.batches),
                    batch_items: load(&s.batch_items),
                    max_batch: load(&s.max_batch),
                    cache_hits: load(&s.cache_hits),
                    cache_misses: load(&s.cache_misses),
                    fused_batches: load(&s.fused_batches),
                    pending_cost_us: load(&s.pending_cost_us),
                    rejected_cost: load(&s.rejected_cost),
                    ewma_ms_per_cost: s.ewma_ms_per_cost(),
                    fast_pass_resolved: load(&s.fast_pass_resolved),
                    escalated: load(&s.escalated),
                    expired_dropped: load(&s.expired_dropped),
                    splits: load(&s.splits),
                    frontier_peak: load(&s.frontier_peak),
                    proven_by_split: load(&s.proven_by_split),
                    cex_found: load(&s.cex_found),
                }
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Evicts one model by name (admin/testing); `true` if it was resident.
    pub fn evict(&self, model: &str) -> bool {
        let entry = self.entries.lock().remove(model);
        match entry {
            Some(entry) => {
                entry.shut_down();
                true
            }
            None => false,
        }
    }

    /// Names of the currently resident models, sorted.
    pub fn resident(&self) -> Vec<String> {
        let mut names: Vec<String> = self.entries.lock().keys().cloned().collect();
        names.sort();
        names
    }

    /// Refuses new work, closes every admission queue and joins every
    /// worker; all resident engines drop and their device memory returns.
    pub fn drain(&self) {
        self.closed.store(true, Ordering::Release);
        let drained: Vec<ModelEntry> = {
            let mut entries = self.entries.lock();
            entries.drain().map(|(_, e)| e).collect()
        };
        for entry in drained {
            entry.shut_down();
        }
    }
}

impl<B: Backend> Drop for Registry<B> {
    fn drop(&mut self) {
        self.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpupoly_nn::builder::NetworkBuilder;
    use std::path::Path;
    use std::time::Duration;

    fn write_model(dir: &Path, name: &str, inputs: usize, width: usize) {
        let mix = |i: usize| ((((i + 3) * 2654435761) % 997) as f32 / 499.0 - 1.0) * 0.3;
        let net = NetworkBuilder::new_flat(inputs)
            .dense_flat(
                width,
                (0..width * inputs).map(mix).collect(),
                (0..width).map(mix).collect(),
            )
            .relu()
            .dense_flat(3, (0..3 * width).map(mix).collect(), vec![0.0; 3])
            .build()
            .unwrap();
        store::save(dir, name, &net).unwrap();
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "gpupoly-registry-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn recv(rx: Receiver<WorkReply>) -> WorkReply {
        rx.recv_timeout(Duration::from_secs(30)).expect("reply")
    }

    #[test]
    fn lazy_load_serve_and_list() {
        let dir = temp_dir("lazy");
        write_model(&dir, "a", 4, 6);
        write_model(&dir, "b", 5, 4);
        let registry = Registry::new(Device::default(), RegistryConfig::new(&dir));
        assert!(registry.resident().is_empty());

        let verdict = recv(registry.submit("a", vec![0.5; 4], 0, 0.01).unwrap());
        assert!(verdict.is_ok());
        assert_eq!(registry.resident(), vec!["a"]);

        let models = registry.list_models().unwrap();
        assert_eq!(models.len(), 2);
        assert!(models[0].loaded && models[0].name == "a" && models[0].input_len == 4);
        assert!(!models[1].loaded && models[1].name == "b" && models[1].input_len == 5);

        match registry.submit("ghost", vec![0.5; 4], 0, 0.01) {
            Err(SubmitError::UnknownModel(_)) => {}
            other => panic!("expected UnknownModel, got {other:?}"),
        }
        match registry.submit("../../etc/passwd", vec![0.5; 4], 0, 0.01) {
            Err(SubmitError::UnknownModel(_)) => {}
            other => panic!("expected UnknownModel, got {other:?}"),
        }

        let stats = registry.model_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].completed, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn memory_budget_evicts_lru_idle_models() {
        let dir = temp_dir("budget");
        write_model(&dir, "m1", 8, 24);
        write_model(&dir, "m2", 8, 24);
        write_model(&dir, "m3", 8, 24);
        // Each model pins (24*8 + 24 + 3*24 + 3) floats ≈ 1.2 KB of weights:
        // a 3 KB budget fits two resident models but not three.
        let device: Device = Device::default();
        let mut cfg = RegistryConfig::new(&dir);
        cfg.memory_budget = Some(3000);
        let registry = Registry::new(device, cfg);

        assert!(recv(registry.submit("m1", vec![0.5; 8], 0, 0.01).unwrap()).is_ok());
        assert!(recv(registry.submit("m2", vec![0.5; 8], 1, 0.01).unwrap()).is_ok());
        // Touch m2 so m1 is the LRU victim when m3 needs room.
        assert!(recv(registry.submit("m2", vec![0.4; 8], 1, 0.01).unwrap()).is_ok());
        assert!(recv(registry.submit("m3", vec![0.5; 8], 2, 0.01).unwrap()).is_ok());
        let resident = registry.resident();
        assert!(
            resident.contains(&"m3".to_string()),
            "newly requested model must be resident, got {resident:?}"
        );
        assert!(
            !resident.contains(&"m1".to_string()),
            "LRU model must have been evicted, got {resident:?}"
        );
        // Evicted models reload transparently on the next request.
        assert!(recv(registry.submit("m1", vec![0.5; 8], 0, 0.01).unwrap()).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cost_cap_bounces_only_into_nonempty_backlogs() {
        let dir = temp_dir("costcap");
        write_model(&dir, "m", 8, 24);
        let mut cfg = RegistryConfig::new(&dir);
        // A zero-microsecond cost cap: once the EWMA is warm, any query
        // behind pending work must bounce on estimated cost.
        cfg.queue_cost_cap = Some(Duration::from_nanos(1));
        // A long coalescing window keeps the probe query unanswered (its
        // cost pending) while the bounce candidate arrives.
        cfg.policy = BatchPolicy {
            max_batch: 16,
            max_delay: Duration::from_millis(1500),
        };
        let registry = Registry::new(Device::default(), cfg);

        // Cold EWMA estimates zero cost: count-based admission governs.
        assert!(recv(registry.submit("m", vec![0.5; 8], 0, 0.05).unwrap()).is_ok());
        let stats = registry.model_stats();
        assert!(
            stats[0].ewma_ms_per_cost > 0.0,
            "first measured batch must warm the EWMA: {stats:?}"
        );

        // Warm EWMA + zero cap: the first query of an empty backlog is
        // still admitted (bouncing it would starve the model), the query
        // behind it bounces with structured overload.
        let rx = registry.submit("m", vec![0.45; 8], 1, 0.05).unwrap();
        match registry.submit("m", vec![0.4; 8], 2, 0.05) {
            Err(SubmitError::Overloaded(msg)) => {
                assert!(msg.contains("backlog"), "untyped bounce: {msg}")
            }
            other => panic!("expected cost bounce, got {other:?}"),
        }
        assert!(recv(rx).is_ok(), "the admitted query still completes");

        let stats = registry.model_stats();
        assert_eq!(stats[0].rejected_cost, 1);
        assert_eq!(stats[0].rejected_overload, 1);
        assert_eq!(stats[0].completed, 2);
        assert_eq!(
            stats[0].pending_cost_us, 0,
            "every admitted cost must be credited back on reply"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drain_refuses_new_work_and_returns_memory() {
        let dir = temp_dir("drain");
        write_model(&dir, "m", 4, 8);
        let device: Device = Device::default();
        let registry = Registry::new(device.clone(), RegistryConfig::new(&dir));
        assert!(recv(registry.submit("m", vec![0.5; 4], 0, 0.01).unwrap()).is_ok());
        assert!(device.memory_in_use() > 0);
        registry.drain();
        assert_eq!(device.memory_in_use(), 0);
        match registry.submit("m", vec![0.5; 4], 0, 0.01) {
            Err(SubmitError::Overloaded(_)) => {}
            other => panic!("expected Overloaded after drain, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
