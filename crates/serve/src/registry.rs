//! The model registry: name → resident engine(s), loaded lazily onto a
//! device pool, evicted LRU under a per-device memory budget.
//!
//! A [`DevicePool`] backs every resident model. Placement is sticky and
//! least-loaded: a cold model lands on the pool's least-loaded device and
//! stays there; a **hot** model whose admission queues saturate is
//! *replicated* onto the least-loaded device not yet holding it, and
//! admission then routes each query to the least-loaded replica. In
//! tensor-parallel mode every model instead gets one worker whose
//! backsubstitution row space is sharded across the whole pool
//! ([`gpupoly_core::ShardedEngine`]), bit-identical to the single-device
//! walk.
//!
//! Each device's `memory_in_use()` is the source of truth its budget is
//! enforced against. Loading a model that would exceed the target device's
//! budget reclaims memory in cost order: first the buffer pool's shelved
//! (idle, recyclable) bytes, then whole **unpinned** models on that device,
//! least-recently-used first. A model is pinned while it has any
//! admitted-but-unanswered query (one refcount covering queue + in-flight +
//! maintenance windows), so eviction can never race a worker that still
//! owes replies. When nothing reclaimable remains the submission is
//! bounced with a structured overload — the daemon never wedges itself by
//! thrashing models in and out under pressure.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use gpupoly_core::{RefineBudget, VerifyConfig};
use gpupoly_device::{Backend, Device};
use gpupoly_nn::{store, Network};
use gpupoly_shard::DevicePool;

use crate::batcher::{spawn_worker, BatchPolicy, WorkItem, WorkKind, WorkReply};
use crate::protocol::{ModelInfo, ModelStatsWire};
use crate::stats::{cost_admission_ok, ModelStats};

/// Registry construction knobs.
#[derive(Clone, Debug)]
pub struct RegistryConfig {
    /// Directory of `<name>.json` model files.
    pub model_dir: PathBuf,
    /// Admission batching policy applied to every model worker.
    pub policy: BatchPolicy,
    /// Admission-queue capacity per model; a full queue bounces requests
    /// with `overloaded` instead of queueing unboundedly.
    pub queue_cap: usize,
    /// Cost-aware admission cap: the most *estimated* wall time of
    /// admitted-but-unanswered work a model may hold (each query weighed by
    /// its `gpupoly_core::query_cost_hint` times the engine's measured
    /// ms-per-cost EWMA). Queries beyond it bounce with the same structured
    /// `overloaded` as a full queue — the count-based `queue_cap` stays as
    /// the backstop (and governs alone while the EWMA is cold or this is
    /// `None`). A query is never bounced into an empty backlog.
    pub queue_cost_cap: Option<Duration>,
    /// How long a requester waits for a verdict once admitted. Stamped
    /// into every queued item as its expiry deadline: items still queued
    /// past it are dropped by the worker with a typed `Expired` reply
    /// instead of verified — nobody is listening for that verdict anymore.
    pub request_timeout: Duration,
    /// Device-memory budget in bytes for resident models (`None` =
    /// whatever the device allows).
    pub memory_budget: Option<usize>,
    /// Verifier configuration for every engine.
    pub verify: VerifyConfig,
    /// Serve every model through a precision-tiered engine: an `f32` fast
    /// pass with sound `f64` escalation for Unknown or narrow-margin
    /// verdicts. Costs roughly 3× the resident weight bytes per model
    /// (both precisions stay resident); escalated verdicts match an
    /// all-`f64` engine exactly. Mutually exclusive with
    /// `tensor_parallel` (the tiered engine is single-device).
    pub precision_tier: bool,
    /// Serve every model through one tensor-parallel worker whose fused
    /// backsubstitution row space is sharded across *all* pool devices
    /// per layer step (margins bit-identical to a single-device run).
    /// Weights are resident on every device; with it off, devices instead
    /// hold disjoint models with hot-model replication.
    pub tensor_parallel: bool,
    /// Serve every model through one FSDP-style weight-sharded worker: the
    /// model's layers are partitioned across *all* pool devices (each holds
    /// ~1/N of the weight bytes) and all-gathered onto the executing device
    /// just in time per layer step (margins bit-identical to a
    /// single-device run). Admission accounts per-device *shard* bytes, so
    /// a model bigger than any one device's budget still loads across the
    /// pool. Combined with `tensor_parallel` this becomes **hybrid 2D
    /// sharding**: the same weight partition, but every device walks its
    /// own row block and gathers remote layers onto itself. Mutually
    /// exclusive with `precision_tier`.
    pub weight_sharded: bool,
}

impl RegistryConfig {
    /// Defaults for a model directory.
    pub fn new(model_dir: impl Into<PathBuf>) -> Self {
        Self {
            model_dir: model_dir.into(),
            policy: BatchPolicy::default(),
            queue_cap: 128,
            queue_cost_cap: Some(Duration::from_secs(30)),
            request_timeout: Duration::from_secs(120),
            memory_budget: None,
            verify: VerifyConfig::default(),
            precision_tier: false,
            tensor_parallel: false,
            weight_sharded: false,
        }
    }
}

/// Why a submission was refused before reaching a worker.
#[derive(Clone, Debug, PartialEq)]
pub enum SubmitError {
    /// No such model file in the model directory.
    UnknownModel(String),
    /// The model file exists but could not be loaded or prepared.
    LoadFailed(String),
    /// Engine construction hit the device's memory capacity: the model's
    /// resident weights do not fit on the device(s) it was placed on.
    /// (Weight-sharded pools spread the footprint, so a model that earns
    /// this on one device can still load across several.)
    DeviceOom(String),
    /// Queue full, memory budget exhausted, or the registry is shutting
    /// down; the client should retry later (against this or another
    /// replica).
    Overloaded(String),
}

/// What happened to a query inside `enqueue_locked`.
enum EnqueueOutcome {
    /// Admitted; the worker will answer on this receiver.
    Enqueued(Receiver<WorkReply>),
    /// Every live replica's queue is full. The image is handed back so the
    /// caller can retry after replicating the model onto another device.
    Saturated(Vec<f32>),
}

/// One worker serving a model: its admission queue, thread and the device
/// footprint it occupies.
struct Replica {
    queue: std::sync::mpsc::SyncSender<WorkItem>,
    join: Option<JoinHandle<()>>,
    /// Every pool device this worker holds weights on (all of them for a
    /// tensor-parallel worker, one otherwise). `devices[0]` is the *home*
    /// device whose load gauge this replica's admissions charge.
    devices: Vec<usize>,
}

impl Replica {
    fn home(&self) -> usize {
        self.devices[0]
    }

    /// Closes the admission queue and waits for the worker to drain and
    /// drop its engine.
    fn shut_down(mut self) {
        drop(self.queue);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

struct ModelEntry {
    /// The workers serving this model, in spawn order. Always non-empty
    /// while the entry is in the map.
    replicas: Vec<Replica>,
    /// Shared across replicas: admission gauges, the eviction pin and the
    /// wire counters are per *model*, not per replica.
    stats: Arc<ModelStats>,
}

impl ModelEntry {
    /// Closes every admission queue first (so replicas drain in parallel),
    /// then joins all workers.
    fn shut_down(self) {
        let joins: Vec<JoinHandle<()>> = self
            .replicas
            .into_iter()
            .filter_map(|mut r| {
                drop(r.queue);
                r.join.take()
            })
            .collect();
        for join in joins {
            let _ = join.join();
        }
    }
}

/// The registry of resident models. See the module docs.
pub struct Registry<B: Backend> {
    pool: Arc<DevicePool<B>>,
    cfg: RegistryConfig,
    epoch: Instant,
    entries: Mutex<HashMap<String, ModelEntry>>,
    /// Per-model gates serializing concurrent cold loads and replications:
    /// the first requester loads, the rest block on the gate and then
    /// re-check the entries map. Never held together with a long-running
    /// operation's data locks — see [`Registry::submit`].
    loading: Mutex<HashMap<String, Arc<Mutex<()>>>>,
    /// `(input_len, outputs)` per model name, filled on first listing/load.
    meta: Mutex<HashMap<String, (usize, usize)>>,
    closed: AtomicBool,
}

impl<B: Backend> Registry<B> {
    /// Creates a single-device registry serving models from
    /// `cfg.model_dir` on `device` (a one-device pool).
    pub fn new(device: Device<B>, cfg: RegistryConfig) -> Self {
        Self::with_pool(Arc::new(DevicePool::from_devices(vec![device])), cfg)
    }

    /// Creates a registry serving models from `cfg.model_dir` across a
    /// device pool.
    pub fn with_pool(pool: Arc<DevicePool<B>>, cfg: RegistryConfig) -> Self {
        Self {
            pool,
            cfg,
            epoch: Instant::now(),
            entries: Mutex::new(HashMap::new()),
            loading: Mutex::new(HashMap::new()),
            meta: Mutex::new(HashMap::new()),
            closed: AtomicBool::new(false),
        }
    }

    /// The pool's first device (the only one for a single-device registry).
    pub fn device(&self) -> &Device<B> {
        self.pool.device(0)
    }

    /// The device pool all resident engines run on.
    pub fn pool(&self) -> &Arc<DevicePool<B>> {
        &self.pool
    }

    /// The active configuration.
    pub fn config(&self) -> &RegistryConfig {
        &self.cfg
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Whether `model` names a loadable file in the model directory — the
    /// single resolution rule shared by `submit`'s cold-path fast check
    /// and `load_model`'s authoritative check under the loading gate.
    fn model_file_exists(&self, model: &str) -> bool {
        store::valid_name(model)
            && store::model_path(&self.cfg.model_dir, model)
                .map(|p| p.is_file())
                .unwrap_or(false)
    }

    fn unknown_model_error(&self, model: &str) -> String {
        format!("no model `{model}` in {}", self.cfg.model_dir.display())
    }

    /// Submits one verification query for `model`, lazily making the model
    /// resident. Returns the receiver the worker will answer on.
    ///
    /// Loading happens *outside* the entries lock, behind a per-model gate:
    /// the first requester of a cold model loads it, concurrent requesters
    /// for the same model wait on the gate, and traffic for models that are
    /// already resident is never blocked behind someone else's slow load.
    ///
    /// # Errors
    ///
    /// [`SubmitError`] when the model is unknown, cannot be loaded, or the
    /// daemon is saturated — all structured, none blocking.
    pub fn submit(
        &self,
        model: &str,
        image: Vec<f32>,
        label: usize,
        eps: f32,
    ) -> Result<Receiver<WorkReply>, SubmitError> {
        self.submit_kind(model, image, label, eps, WorkKind::Plain)
    }

    /// Submits one *complete-mode* query: plain analysis first, then
    /// branch-and-bound refinement under `budget` if the verdict is
    /// Unknown. Admission prices the query at up to `1 + max_splits`
    /// analyses, so a deep refinement budget weighs accordingly against
    /// the cost cap.
    ///
    /// # Errors
    ///
    /// Same as [`Registry::submit`].
    pub fn submit_complete(
        &self,
        model: &str,
        image: Vec<f32>,
        label: usize,
        eps: f32,
        budget: RefineBudget,
    ) -> Result<Receiver<WorkReply>, SubmitError> {
        self.submit_kind(model, image, label, eps, WorkKind::Complete(budget))
    }

    fn submit_kind(
        &self,
        model: &str,
        image: Vec<f32>,
        label: usize,
        eps: f32,
        kind: WorkKind,
    ) -> Result<Receiver<WorkReply>, SubmitError> {
        /// Removes the loading-gate map entry even if the claim owner
        /// unwinds (a leaked gate would wedge the model forever: later
        /// submitters would find an ownerless gate, lock it instantly and
        /// busy-spin through the retry loop).
        struct GateCleanup<'a, B: Backend>(&'a Registry<B>, &'a str);
        impl<B: Backend> Drop for GateCleanup<'_, B> {
            fn drop(&mut self) {
                self.0.loading.lock().remove(self.1);
            }
        }

        // Bounded retries: under extreme budget pressure a freshly loaded
        // model can be evicted by a competing load before this thread
        // enqueues (load/evict ping-pong). Retrying a few times absorbs
        // benign races; past that the honest answer is backpressure, not
        // an unbounded stall inside submit.
        let mut image = image;
        for _attempt in 0..8 {
            if self.closed.load(Ordering::Acquire) {
                return Err(SubmitError::Overloaded("daemon shutting down".into()));
            }
            let saturated = {
                let mut entries = self.entries.lock();
                if entries.contains_key(model) {
                    match self.enqueue_locked(&mut entries, model, image, label, eps, kind)? {
                        EnqueueOutcome::Enqueued(rx) => return Ok(rx),
                        // Every replica's queue is full: maybe replicate.
                        EnqueueOutcome::Saturated(img) => {
                            image = img;
                            true
                        }
                    }
                } else {
                    false
                }
            };
            if saturated {
                // A saturated model replicates onto a device not yet
                // holding it — unless every model already spans the pool
                // (tensor-parallel mode) or the pool is covered, in which
                // case the honest answer is the same structured overload
                // as a full single-device queue.
                let can_replicate = !self.cfg.tensor_parallel
                    && !self.cfg.weight_sharded
                    && self.pool.len() > 1
                    && self.pool.replication_candidate(model).is_some();
                if can_replicate && self.replicate(model)? {
                    continue; // retry through the widened replica set
                }
                if let Some(entry) = self.entries.lock().get(model) {
                    entry
                        .stats
                        .rejected_overload
                        .fetch_add(1, Ordering::Relaxed);
                }
                return Err(SubmitError::Overloaded(format!(
                    "admission queue for `{model}` is full ({} waiting)",
                    self.cfg.queue_cap
                )));
            }
            // Cold path only (a resident model must stay serveable even if
            // its backing file vanished, and hot traffic must not stat the
            // disk): answer unknown models from a direct file check before
            // touching the loading gate. Nonexistent names — typos,
            // hostile probes, many clients chasing the same ghost in
            // lockstep — must neither serialize behind loading gates nor
            // exhaust the retry budget and get misreported as
            // `Overloaded`. `load_model` re-checks under the gate, so a
            // racing file deletion is still handled correctly.
            if !self.model_file_exists(model) {
                return Err(SubmitError::UnknownModel(self.unknown_model_error(model)));
            }
            // Claim the load, or wait for the thread already performing it
            // (then re-check the entries map).
            let claimed = {
                let mut loading = self.loading.lock();
                match loading.get(model) {
                    Some(gate) => Err(gate.clone()),
                    None => {
                        let gate = Arc::new(Mutex::new(()));
                        loading.insert(model.to_string(), gate.clone());
                        Ok(gate)
                    }
                }
            };
            match claimed {
                Err(gate) => {
                    // Block until the owner finishes, then retry. If the
                    // owner's load failed, this requester retries the load
                    // itself (the file may have been fixed meanwhile).
                    drop(gate.lock());
                }
                Ok(gate) => {
                    let _cleanup = GateCleanup(self, model);
                    let _guard = gate.lock();
                    // Re-check: an owner may have finished between our map
                    // miss and our claim.
                    if !self.entries.lock().contains_key(model) {
                        self.load_model(model)?;
                    }
                    // Loop back to enqueue through the freshly inserted
                    // entry.
                }
            }
        }
        Err(SubmitError::Overloaded(format!(
            "model `{model}` keeps getting evicted under memory pressure; retry later"
        )))
    }

    /// Enqueues one query on a resident model. Caller holds the entries
    /// lock and has checked the entry exists.
    fn enqueue_locked(
        &self,
        entries: &mut HashMap<String, ModelEntry>,
        model: &str,
        image: Vec<f32>,
        label: usize,
        eps: f32,
        kind: WorkKind,
    ) -> Result<EnqueueOutcome, SubmitError> {
        let entry = entries.get(model).expect("caller checked");
        entry
            .stats
            .last_used_ms
            .store(self.now_ms(), Ordering::Release);

        // Cost-aware admission: weigh the backlog by estimated wall time
        // (cost hint × measured EWMA), not only by query count. Same
        // structured bounce as a full queue. A complete-mode query may run
        // up to `1 + 2·max_splits` sub-box analyses on top of the base
        // pass; scale its hint by the split budget so deep refinements
        // cannot sneak past the cap priced as a single analysis.
        let cost_us = match kind {
            WorkKind::Plain => entry.stats.estimate_cost_us(&image, eps),
            WorkKind::Complete(budget) => entry
                .stats
                .estimate_cost_us(&image, eps)
                .saturating_mul(1 + u64::from(budget.max_splits)),
        };
        if let Some(cap) = self.cfg.queue_cost_cap {
            let pending = entry.stats.pending_cost_us.load(Ordering::Acquire);
            let cap_us = u64::try_from(cap.as_micros()).unwrap_or(u64::MAX);
            if !cost_admission_ok(pending, cost_us, cap_us) {
                entry.stats.rejected_cost.fetch_add(1, Ordering::Relaxed);
                entry
                    .stats
                    .rejected_overload
                    .fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::Overloaded(format!(
                    "estimated backlog for `{model}` exceeds {cap:?} \
                     ({pending} us pending, {cost_us} us incoming)"
                )));
            }
        }

        let (reply, rx) = std::sync::mpsc::channel();
        // Gauge up *before* try_send: the worker decrements when it pops
        // (cost when it answers), so the pairs can never go negative, and a
        // successfully queued item is always counted. The eviction pin
        // rides the same discipline — pinned at admission, released by the
        // worker's reply (or the rollback below), so make_room can never
        // observe a window where admitted work isn't pinned.
        entry.stats.queue_depth.fetch_add(1, Ordering::AcqRel);
        entry.stats.in_flight.fetch_add(1, Ordering::AcqRel);
        entry
            .stats
            .pending_cost_us
            .fetch_add(cost_us, Ordering::AcqRel);
        entry.stats.pin();

        // Route to the least-loaded replica, falling back through the rest
        // in ascending load order when queues are full.
        let mut order: Vec<usize> = (0..entry.replicas.len()).collect();
        order.sort_by_key(|&i| {
            (
                self.pool.load(entry.replicas[i].home()),
                entry.replicas[i].home(),
            )
        });
        let mut item = WorkItem {
            image,
            label,
            eps,
            kind,
            // Admission-time deadline: the serving layer stops waiting for
            // this item's reply after `request_timeout`, so any later
            // verification would go unread — the worker drops it instead.
            deadline: Some(Instant::now() + self.cfg.request_timeout),
            cost_us,
            reply,
        };
        let mut dead: Vec<usize> = Vec::new();
        for i in order {
            let replica = &entry.replicas[i];
            match replica.queue.try_send(item) {
                Ok(()) => {
                    // Charge the replica's home device so least-loaded
                    // routing sees this item until the worker retires it.
                    self.pool.note_enqueued(replica.home(), cost_us.max(1));
                    return Ok(EnqueueOutcome::Enqueued(rx));
                }
                Err(TrySendError::Full(it)) => item = it,
                Err(TrySendError::Disconnected(it)) => {
                    item = it;
                    dead.push(i);
                }
            }
        }

        // Nothing accepted the item: roll every admission gauge back.
        entry.stats.queue_depth.fetch_sub(1, Ordering::AcqRel);
        entry.stats.in_flight.fetch_sub(1, Ordering::AcqRel);
        entry
            .stats
            .pending_cost_us
            .fetch_sub(cost_us, Ordering::AcqRel);
        entry.stats.unpin();

        if !dead.is_empty() {
            // A worker died (it can only exit when its queue closes or its
            // thread panicked fatally); prune the corpses so retries route
            // around them, and drop the whole entry when none survive.
            let entry = entries.get_mut(model).expect("caller checked");
            for &i in dead.iter().rev() {
                let corpse = entry.replicas.remove(i);
                self.pool.remove_replica(model, corpse.home());
                corpse.shut_down();
            }
            if entry.replicas.is_empty() {
                if let Some(empty) = entries.remove(model) {
                    self.pool.remove_model(model);
                    empty.shut_down();
                }
                return Err(SubmitError::LoadFailed(format!(
                    "model worker for `{model}` is gone; retry to reload"
                )));
            }
        }
        Ok(EnqueueOutcome::Saturated(item.image))
    }

    /// The f32-weight bytes a resident copy of `net` will pin per device,
    /// scaled for the tiered worker's double residency.
    fn incoming_bytes(&self, net: &Network<f32>) -> usize {
        // A weight-sharded (or hybrid) worker pins only its worst device's
        // shard plus the gather working set (whose floor is the double
        // buffer) per device — that per-device figure is what lets a model
        // bigger than any one device's budget admit. In hybrid mode every
        // device both holds a shard and gathers, so the same worst-device
        // charge covers each of them.
        if self.cfg.weight_sharded {
            return gpupoly_core::weight_shard_budget(net, self.pool.len()).worst_device_bytes();
        }
        // A tiered worker keeps both precisions resident: f32 + f64 weights
        // are 3× the f32 bytes, so budget-driven eviction must make room
        // for the real footprint up front.
        let tier_factor = if self.cfg.precision_tier { 3 } else { 1 };
        net.param_count() * std::mem::size_of::<f32>() * tier_factor
    }

    /// The devices a fresh worker for `model` should span: the whole pool
    /// in tensor-parallel or weight-sharded mode, else the model's sticky
    /// least-loaded placement.
    fn placement(&self, model: &str) -> Vec<usize> {
        if (self.cfg.tensor_parallel || self.cfg.weight_sharded) && self.pool.len() > 1 {
            (0..self.pool.len()).collect()
        } else {
            vec![self.pool.place(model)]
        }
    }

    /// Spawns one worker for `model` spanning `device_indices`, wiring its
    /// reply path to retire admission charges from the home device's load
    /// gauge.
    fn spawn_replica(
        &self,
        model: &str,
        net: Network<f32>,
        device_indices: &[usize],
        stats: Arc<ModelStats>,
    ) -> Result<Replica, SubmitError> {
        let devices: Vec<Device<B>> = device_indices
            .iter()
            .map(|&i| self.pool.device(i).clone())
            .collect();
        let home = device_indices[0];
        let pool = self.pool.clone();
        let (queue, join) = spawn_worker(
            model.to_string(),
            net,
            devices,
            self.cfg.verify,
            self.cfg.policy,
            self.cfg.queue_cap,
            self.cfg.precision_tier,
            self.cfg.weight_sharded,
            self.cfg.tensor_parallel,
            stats,
            Arc::new(move |cost| pool.note_done(home, cost.max(1))),
        )
        .map_err(|e| match e {
            gpupoly_core::VerifyError::Device(_) => SubmitError::DeviceOom(e.to_string()),
            other => SubmitError::LoadFailed(other.to_string()),
        })?;
        Ok(Replica {
            queue,
            join: Some(join),
            devices: device_indices.to_vec(),
        })
    }

    /// Loads `model` into a resident worker. Caller holds the model's
    /// loading gate (so this runs at most once per model at a time) but
    /// NOT the entries lock — file reads, JSON parsing and engine weight
    /// packing must never stall traffic for already-resident models. The
    /// entries lock is taken only briefly, for eviction and insertion.
    fn load_model(&self, model: &str) -> Result<(), SubmitError> {
        if !self.model_file_exists(model) {
            return Err(SubmitError::UnknownModel(self.unknown_model_error(model)));
        }
        let net: Network<f32> = store::load(&self.cfg.model_dir, model)
            .map_err(|e| SubmitError::LoadFailed(e.to_string()))?;
        self.meta.lock().insert(
            model.to_string(),
            (net.input_shape().len(), net.output_len()),
        );
        let incoming = self.incoming_bytes(&net);
        let device_indices = self.placement(model);
        {
            let mut entries = self.entries.lock();
            self.make_room(&mut entries, incoming, &device_indices)?;
        }
        let stats = Arc::new(ModelStats::default());
        stats.last_used_ms.store(self.now_ms(), Ordering::Release);
        let replica = self.spawn_replica(model, net, &device_indices, stats.clone())?;
        let entry = ModelEntry {
            replicas: vec![replica],
            stats,
        };
        {
            let mut entries = self.entries.lock();
            // Linearize against drain() via the entries lock: a drain that
            // already swept the map must not be followed by a late insert
            // whose worker nobody would ever join.
            if !self.closed.load(Ordering::Acquire) {
                for &idx in &device_indices {
                    self.pool.add_replica(model, idx);
                }
                entries.insert(model.to_string(), entry);
                return Ok(());
            }
        }
        self.pool.remove_model(model);
        entry.shut_down();
        Err(SubmitError::Overloaded("daemon shutting down".into()))
    }

    /// Adds one replica of a saturated resident model on the least-loaded
    /// device not already holding it, serialized through the model's
    /// loading gate. Returns `true` when the caller should retry admission
    /// (a replica was added, or another thread changed the replica set
    /// meanwhile) and `false` when replication cannot help right now —
    /// the caller then bounces with the structured overload.
    ///
    /// The entry is **pinned** for the whole spawn: the new engine is built
    /// outside the entries lock, and without the pin a concurrent load's
    /// make-room sweep could evict the very model being replicated.
    fn replicate(&self, model: &str) -> Result<bool, SubmitError> {
        struct GateCleanup<'a, B: Backend>(&'a Registry<B>, &'a str);
        impl<B: Backend> Drop for GateCleanup<'_, B> {
            fn drop(&mut self) {
                self.0.loading.lock().remove(self.1);
            }
        }
        /// Drops the replication pin on every exit path, including unwinds.
        struct Unpin<'a>(&'a ModelStats);
        impl Drop for Unpin<'_> {
            fn drop(&mut self) {
                self.0.unpin();
            }
        }

        let claimed = {
            let mut loading = self.loading.lock();
            match loading.get(model) {
                Some(gate) => Err(gate.clone()),
                None => {
                    let gate = Arc::new(Mutex::new(()));
                    loading.insert(model.to_string(), gate.clone());
                    Ok(gate)
                }
            }
        };
        let gate = match claimed {
            Err(gate) => {
                // Someone else is loading or replicating this model: wait
                // for them, then retry admission against their result.
                drop(gate.lock());
                return Ok(true);
            }
            Ok(gate) => gate,
        };
        let _cleanup = GateCleanup(self, model);
        let _guard = gate.lock();

        let (stats, replica_count) = {
            let entries = self.entries.lock();
            match entries.get(model) {
                // Evicted while we claimed the gate; the cold-load path
                // will reload it on retry.
                None => return Ok(true),
                Some(entry) => {
                    entry.stats.pin();
                    (entry.stats.clone(), entry.replicas.len())
                }
            }
        };
        let _unpin = Unpin(&stats);

        let Some(candidate) = self.pool.replication_candidate(model) else {
            return Ok(false);
        };
        // Failures from here on don't fail the request — the model is
        // still serveable on its existing replicas, so the caller bounces
        // with overload instead of surfacing a replication-internal error.
        if !self.model_file_exists(model) {
            return Ok(false);
        }
        let Ok(net) = store::load::<f32>(&self.cfg.model_dir, model) else {
            return Ok(false);
        };
        let incoming = self.incoming_bytes(&net);
        {
            let mut entries = self.entries.lock();
            if self
                .make_room(&mut entries, incoming, &[candidate])
                .is_err()
            {
                return Ok(false);
            }
        }
        let Ok(replica) = self.spawn_replica(model, net, &[candidate], stats.clone()) else {
            return Ok(false);
        };
        {
            let mut entries = self.entries.lock();
            if !self.closed.load(Ordering::Acquire) {
                if let Some(entry) = entries.get_mut(model) {
                    if entry.replicas.len() == replica_count {
                        entry.replicas.push(replica);
                        self.pool.add_replica(model, candidate);
                        return Ok(true);
                    }
                }
            }
        }
        // The entry changed (or the daemon is closing) while we were
        // spawning: discard the fresh worker and let the caller retry.
        replica.shut_down();
        Ok(true)
    }

    /// Reclaims memory on each target device until `incoming` more bytes
    /// fit under its (per-device) budget: shelved pool bytes first (an
    /// idle cache, cheaper to drop than a model), then LRU **unpinned**
    /// models resident on that device. A pinned model has admitted work a
    /// worker still owes replies for (or a replica spawn in progress), so
    /// evicting it would race the worker — it is never a victim, however
    /// stale its LRU stamp.
    ///
    /// The budget is enforced at admission time; concurrent loads that
    /// both passed this check can transiently overshoot it, and each
    /// device's own capacity (set to the budget by the server) is the
    /// hard backstop — engines fall back to host-resident weights and
    /// chunked backsubstitution rather than failing.
    fn make_room(
        &self,
        entries: &mut HashMap<String, ModelEntry>,
        incoming: usize,
        device_indices: &[usize],
    ) -> Result<(), SubmitError> {
        let Some(budget) = self.cfg.memory_budget else {
            return Ok(());
        };
        // A footprint over the per-device budget can never fit, however
        // much is evicted — a permanent, typed condition, not a retriable
        // overload. (Weight sharding shrinks `incoming` to the worst
        // device's shard + gather buffer, which is how a model bigger than
        // one device still clears this gate across a pool.)
        if incoming > budget {
            return Err(SubmitError::DeviceOom(format!(
                "model needs {incoming} resident bytes but the per-device memory \
                 budget is {budget}; it can never fit on one device \
                 (a multi-device pool can still serve it with --weight-sharded)"
            )));
        }
        for &idx in device_indices {
            let device = self.pool.device(idx);
            // Clear the buffer pool at most once per device: active workers
            // re-shelve buffers continuously, so "pool non-empty" alone must
            // never keep this loop (which holds the entries lock) spinning.
            let mut pool_cleared = false;
            loop {
                if device.memory_in_use().saturating_add(incoming) <= budget {
                    break;
                }
                if !pool_cleared && device.buffer_pool_bytes() > 0 {
                    device.buffer_pool_clear();
                    pool_cleared = true;
                    continue;
                }
                let victim = entries
                    .iter()
                    .filter(|(_, e)| !e.stats.is_pinned())
                    .filter(|(_, e)| e.replicas.iter().any(|r| r.devices.contains(&idx)))
                    .min_by_key(|(_, e)| e.stats.last_used_ms.load(Ordering::Acquire))
                    .map(|(name, _)| name.clone());
                match victim {
                    Some(name) => {
                        let entry = entries.remove(&name).expect("victim exists");
                        self.pool.remove_model(&name);
                        entry.shut_down();
                    }
                    None => {
                        return Err(SubmitError::Overloaded(format!(
                            "memory budget exhausted on device `{}` ({} of {budget} \
                             bytes in use, {incoming} more needed) and every resident \
                             model there is pinned by in-flight work",
                            device.name(),
                            device.memory_in_use()
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Every model the daemon can serve (directory listing), with residency
    /// flags and I/O shapes.
    ///
    /// Dims for never-seen models require parsing their files once (the
    /// JSON format has no separate header); that parsing happens without
    /// holding any registry lock, so a `models` request over a directory
    /// of large files never stalls verification traffic. Parsed dims are
    /// cached, so the cost is paid once per model per daemon lifetime.
    ///
    /// # Errors
    ///
    /// The directory-read error message when the model dir is unreadable.
    pub fn list_models(&self) -> Result<Vec<ModelInfo>, String> {
        let names = store::list(&self.cfg.model_dir).map_err(|e| e.to_string())?;
        let resident: std::collections::HashSet<String> =
            self.entries.lock().keys().cloned().collect();
        let mut out = Vec::with_capacity(names.len());
        for name in names {
            let cached = self.meta.lock().get(&name).copied();
            let dims = match cached {
                Some(dims) => Some(dims),
                None => match store::load::<f32>(&self.cfg.model_dir, &name) {
                    Ok(net) => {
                        let dims = (net.input_shape().len(), net.output_len());
                        self.meta.lock().insert(name.clone(), dims);
                        Some(dims)
                    }
                    // Listed but unloadable: report it with zero dims so
                    // clients can see the name (verify will fail typed).
                    Err(_) => None,
                },
            };
            let (input_len, outputs) = dims.unwrap_or((0, 0));
            out.push(ModelInfo {
                loaded: resident.contains(&name),
                name,
                input_len,
                outputs,
            });
        }
        Ok(out)
    }

    /// Counter snapshots for every resident model, sorted by name.
    pub fn model_stats(&self) -> Vec<ModelStatsWire> {
        let entries = self.entries.lock();
        let mut out: Vec<ModelStatsWire> = entries
            .iter()
            .map(|(name, e)| {
                let s = &e.stats;
                let load = |a: &std::sync::atomic::AtomicU64| a.load(Ordering::Acquire);
                ModelStatsWire {
                    name: name.clone(),
                    resident_bytes: load(&s.resident_bytes),
                    queue_depth: load(&s.queue_depth),
                    in_flight: load(&s.in_flight),
                    completed: load(&s.completed),
                    rejected_overload: load(&s.rejected_overload),
                    batches: load(&s.batches),
                    batch_items: load(&s.batch_items),
                    max_batch: load(&s.max_batch),
                    cache_hits: load(&s.cache_hits),
                    cache_misses: load(&s.cache_misses),
                    fused_batches: load(&s.fused_batches),
                    pending_cost_us: load(&s.pending_cost_us),
                    rejected_cost: load(&s.rejected_cost),
                    ewma_ms_per_cost: s.ewma_ms_per_cost(),
                    fast_pass_resolved: load(&s.fast_pass_resolved),
                    escalated: load(&s.escalated),
                    expired_dropped: load(&s.expired_dropped),
                    splits: load(&s.splits),
                    frontier_peak: load(&s.frontier_peak),
                    proven_by_split: load(&s.proven_by_split),
                    cex_found: load(&s.cex_found),
                }
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Evicts one model by name (admin/testing); `true` if it was resident.
    pub fn evict(&self, model: &str) -> bool {
        let entry = self.entries.lock().remove(model);
        match entry {
            Some(entry) => {
                self.pool.remove_model(model);
                entry.shut_down();
                true
            }
            None => false,
        }
    }

    /// Names of the currently resident models, sorted.
    pub fn resident(&self) -> Vec<String> {
        let mut names: Vec<String> = self.entries.lock().keys().cloned().collect();
        names.sort();
        names
    }

    /// Refuses new work, closes every admission queue and joins every
    /// worker; all resident engines drop and their device memory returns.
    pub fn drain(&self) {
        self.closed.store(true, Ordering::Release);
        let drained: Vec<(String, ModelEntry)> = {
            let mut entries = self.entries.lock();
            entries.drain().collect()
        };
        for (name, entry) in drained {
            self.pool.remove_model(&name);
            entry.shut_down();
        }
    }
}

impl<B: Backend> Drop for Registry<B> {
    fn drop(&mut self) {
        self.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpupoly_nn::builder::NetworkBuilder;
    use std::path::Path;
    use std::time::Duration;

    fn write_model(dir: &Path, name: &str, inputs: usize, width: usize) {
        let mix = |i: usize| ((((i + 3) * 2654435761) % 997) as f32 / 499.0 - 1.0) * 0.3;
        let net = NetworkBuilder::new_flat(inputs)
            .dense_flat(
                width,
                (0..width * inputs).map(mix).collect(),
                (0..width).map(mix).collect(),
            )
            .relu()
            .dense_flat(3, (0..3 * width).map(mix).collect(), vec![0.0; 3])
            .build()
            .unwrap();
        store::save(dir, name, &net).unwrap();
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "gpupoly-registry-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn recv(rx: Receiver<WorkReply>) -> WorkReply {
        rx.recv_timeout(Duration::from_secs(30)).expect("reply")
    }

    #[test]
    fn lazy_load_serve_and_list() {
        let dir = temp_dir("lazy");
        write_model(&dir, "a", 4, 6);
        write_model(&dir, "b", 5, 4);
        let registry = Registry::new(Device::default(), RegistryConfig::new(&dir));
        assert!(registry.resident().is_empty());

        let verdict = recv(registry.submit("a", vec![0.5; 4], 0, 0.01).unwrap());
        assert!(verdict.is_ok());
        assert_eq!(registry.resident(), vec!["a"]);

        let models = registry.list_models().unwrap();
        assert_eq!(models.len(), 2);
        assert!(models[0].loaded && models[0].name == "a" && models[0].input_len == 4);
        assert!(!models[1].loaded && models[1].name == "b" && models[1].input_len == 5);

        match registry.submit("ghost", vec![0.5; 4], 0, 0.01) {
            Err(SubmitError::UnknownModel(_)) => {}
            other => panic!("expected UnknownModel, got {other:?}"),
        }
        match registry.submit("../../etc/passwd", vec![0.5; 4], 0, 0.01) {
            Err(SubmitError::UnknownModel(_)) => {}
            other => panic!("expected UnknownModel, got {other:?}"),
        }

        let stats = registry.model_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].completed, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn memory_budget_evicts_lru_idle_models() {
        let dir = temp_dir("budget");
        write_model(&dir, "m1", 8, 24);
        write_model(&dir, "m2", 8, 24);
        write_model(&dir, "m3", 8, 24);
        // Each model pins (24*8 + 24 + 3*24 + 3) floats ≈ 1.2 KB of weights:
        // a 3 KB budget fits two resident models but not three.
        let device: Device = Device::default();
        let mut cfg = RegistryConfig::new(&dir);
        cfg.memory_budget = Some(3000);
        let registry = Registry::new(device, cfg);

        assert!(recv(registry.submit("m1", vec![0.5; 8], 0, 0.01).unwrap()).is_ok());
        assert!(recv(registry.submit("m2", vec![0.5; 8], 1, 0.01).unwrap()).is_ok());
        // Touch m2 so m1 is the LRU victim when m3 needs room.
        assert!(recv(registry.submit("m2", vec![0.4; 8], 1, 0.01).unwrap()).is_ok());
        assert!(recv(registry.submit("m3", vec![0.5; 8], 2, 0.01).unwrap()).is_ok());
        let resident = registry.resident();
        assert!(
            resident.contains(&"m3".to_string()),
            "newly requested model must be resident, got {resident:?}"
        );
        assert!(
            !resident.contains(&"m1".to_string()),
            "LRU model must have been evicted, got {resident:?}"
        );
        // Evicted models reload transparently on the next request.
        assert!(recv(registry.submit("m1", vec![0.5; 8], 0, 0.01).unwrap()).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cost_cap_bounces_only_into_nonempty_backlogs() {
        let dir = temp_dir("costcap");
        write_model(&dir, "m", 8, 24);
        let mut cfg = RegistryConfig::new(&dir);
        // A zero-microsecond cost cap: once the EWMA is warm, any query
        // behind pending work must bounce on estimated cost.
        cfg.queue_cost_cap = Some(Duration::from_nanos(1));
        // A long coalescing window keeps the probe query unanswered (its
        // cost pending) while the bounce candidate arrives.
        cfg.policy = BatchPolicy {
            max_batch: 16,
            max_delay: Duration::from_millis(1500),
        };
        let registry = Registry::new(Device::default(), cfg);

        // Cold EWMA estimates zero cost: count-based admission governs.
        assert!(recv(registry.submit("m", vec![0.5; 8], 0, 0.05).unwrap()).is_ok());
        let stats = registry.model_stats();
        assert!(
            stats[0].ewma_ms_per_cost > 0.0,
            "first measured batch must warm the EWMA: {stats:?}"
        );

        // Warm EWMA + zero cap: the first query of an empty backlog is
        // still admitted (bouncing it would starve the model), the query
        // behind it bounces with structured overload.
        let rx = registry.submit("m", vec![0.45; 8], 1, 0.05).unwrap();
        match registry.submit("m", vec![0.4; 8], 2, 0.05) {
            Err(SubmitError::Overloaded(msg)) => {
                assert!(msg.contains("backlog"), "untyped bounce: {msg}")
            }
            other => panic!("expected cost bounce, got {other:?}"),
        }
        assert!(recv(rx).is_ok(), "the admitted query still completes");

        let stats = registry.model_stats();
        assert_eq!(stats[0].rejected_cost, 1);
        assert_eq!(stats[0].rejected_overload, 1);
        assert_eq!(stats[0].completed, 2);
        assert_eq!(
            stats[0].pending_cost_us, 0,
            "every admitted cost must be credited back on reply"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn models_with_in_flight_work_are_pinned_against_eviction() {
        let dir = temp_dir("pinned");
        write_model(&dir, "m1", 8, 24);
        write_model(&dir, "m2", 8, 24);
        // Budget fits exactly one ~1.2 KB resident model.
        let mut cfg = RegistryConfig::new(&dir);
        cfg.memory_budget = Some(2000);
        // A long coalescing window keeps m1's query admitted-but-unanswered
        // (hence pinned) while m2 tries to load.
        cfg.policy = BatchPolicy {
            max_batch: 16,
            max_delay: Duration::from_millis(1500),
        };
        let registry = Registry::new(Device::default(), cfg);

        let pending = registry.submit("m1", vec![0.5; 8], 0, 0.01).unwrap();
        // m1 has one in-flight query: loading m2 needs its bytes, but the
        // pin must win — the old idle()-based sweep raced the worker here.
        match registry.submit("m2", vec![0.5; 8], 1, 0.01) {
            Err(SubmitError::Overloaded(msg)) => {
                assert!(msg.contains("pinned"), "untyped pressure bounce: {msg}")
            }
            other => panic!("expected Overloaded while m1 is pinned, got {other:?}"),
        }
        assert_eq!(registry.resident(), vec!["m1"]);
        assert!(recv(pending).is_ok(), "the pinned model still answers");

        // Once the reply is out the pin is gone: m2 now evicts m1 cleanly.
        assert!(recv(registry.submit("m2", vec![0.5; 8], 1, 0.01).unwrap()).is_ok());
        let resident = registry.resident();
        assert!(resident.contains(&"m2".to_string()), "{resident:?}");
        assert!(!resident.contains(&"m1".to_string()), "{resident:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn saturated_models_replicate_onto_idle_devices() {
        use gpupoly_device::DeviceConfig;
        use gpupoly_shard::DevicePool;
        let dir = temp_dir("replicate");
        // A wide two-hidden-layer model so each single-query verify keeps
        // its worker measurably busy — the saturation below is sequenced on
        // that, not on sleeps.
        let mix = |i: usize| ((((i + 5) * 2654435761) % 997) as f32 / 499.0 - 1.0) * 0.2;
        let wide = NetworkBuilder::new_flat(8)
            .dense_flat(150, (0..150 * 8).map(mix).collect(), vec![0.0; 150])
            .relu()
            .dense_flat(150, (0..150 * 150).map(mix).collect(), vec![0.0; 150])
            .relu()
            .dense_flat(3, (0..3 * 150).map(mix).collect(), vec![0.0; 3])
            .build()
            .unwrap();
        store::save(&dir, "m", &wide).unwrap();

        let mut cfg = RegistryConfig::new(&dir);
        // Single-query batches + a one-slot queue: one verify in flight and
        // one queued item saturate a replica.
        cfg.queue_cap = 1;
        cfg.policy = BatchPolicy {
            max_batch: 1,
            max_delay: Duration::from_millis(1),
        };
        let pool: Arc<DevicePool<gpupoly_device::CpuSimBackend>> =
            Arc::new(DevicePool::build(2, DeviceConfig::new().workers(1)));
        let registry = Registry::with_pool(pool.clone(), cfg);

        // Waits until every queued item has been popped (the workers are
        // busy verifying, their queues empty) so the next submission lands
        // in a known queue state.
        let drained_queues = |registry: &Registry<gpupoly_device::CpuSimBackend>| {
            let deadline = Instant::now() + Duration::from_secs(30);
            loop {
                let stats = registry.model_stats();
                if stats[0].queue_depth == 0 {
                    return;
                }
                assert!(Instant::now() < deadline, "workers never popped: {stats:?}");
                std::thread::sleep(Duration::from_millis(1));
            }
        };

        // q1 occupies the worker, q2 fills its one-slot queue.
        let q1 = registry.submit("m", vec![0.5; 8], 0, 0.01).unwrap();
        assert_eq!(pool.replicas("m").len(), 1, "cold load places one replica");
        drained_queues(&registry);
        let q2 = registry.submit("m", vec![0.45; 8], 1, 0.01).unwrap();
        // q3 finds every queue full: the model replicates onto the second
        // device instead of bouncing, and the query rides the new replica.
        let q3 = registry.submit("m", vec![0.4; 8], 2, 0.01).unwrap();
        assert_eq!(
            pool.replicas("m").len(),
            2,
            "saturation must have replicated the model"
        );
        assert!(
            pool.device(0).memory_in_use() > 0 && pool.device(1).memory_in_use() > 0,
            "weights resident on both devices"
        );
        for rx in [q1, q2, q3] {
            assert!(recv(rx).is_ok());
        }
        let stats = registry.model_stats();
        assert_eq!(stats[0].completed, 3);
        assert_eq!(stats[0].rejected_overload, 0, "nothing bounced");

        // With the pool covered, saturation of both replicas bounces with
        // the structured overload: two verifying workers, two full queues,
        // and a fifth query with nowhere left to replicate.
        let busy_a = registry.submit("m", vec![0.5; 8], 0, 0.01).unwrap();
        drained_queues(&registry);
        let busy_b = registry.submit("m", vec![0.44; 8], 1, 0.01).unwrap();
        drained_queues(&registry);
        let queued_a = registry.submit("m", vec![0.43; 8], 2, 0.01).unwrap();
        let queued_b = registry.submit("m", vec![0.42; 8], 0, 0.01).unwrap();
        match registry.submit("m", vec![0.41; 8], 1, 0.01) {
            Err(SubmitError::Overloaded(msg)) => {
                assert!(msg.contains("full"), "untyped bounce: {msg}")
            }
            other => panic!("expected Overloaded on a covered pool, got {other:?}"),
        }
        for rx in [busy_a, busy_b, queued_a, queued_b] {
            assert!(recv(rx).is_ok());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tensor_parallel_registry_spans_the_pool_per_model() {
        use gpupoly_device::DeviceConfig;
        use gpupoly_shard::DevicePool;
        let dir = temp_dir("tp");
        write_model(&dir, "m", 8, 24);
        let mut cfg = RegistryConfig::new(&dir);
        cfg.tensor_parallel = true;
        let pool: Arc<DevicePool<gpupoly_device::CpuSimBackend>> =
            Arc::new(DevicePool::build(2, DeviceConfig::new().workers(1)));
        let registry = Registry::with_pool(pool.clone(), cfg);

        assert!(recv(registry.submit("m", vec![0.5; 8], 0, 0.01).unwrap()).is_ok());
        // One worker, weights resident on every pool device.
        assert_eq!(pool.replicas("m").len(), 2);
        assert!(
            pool.device(0).memory_in_use() > 0 && pool.device(1).memory_in_use() > 0,
            "tensor-parallel weights span the pool"
        );
        registry.drain();
        assert_eq!(pool.device(0).memory_in_use(), 0);
        assert_eq!(pool.device(1).memory_in_use(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drain_refuses_new_work_and_returns_memory() {
        let dir = temp_dir("drain");
        write_model(&dir, "m", 4, 8);
        let device: Device = Device::default();
        let registry = Registry::new(device.clone(), RegistryConfig::new(&dir));
        assert!(recv(registry.submit("m", vec![0.5; 4], 0, 0.01).unwrap()).is_ok());
        assert!(device.memory_in_use() > 0);
        registry.drain();
        assert_eq!(device.memory_in_use(), 0);
        match registry.submit("m", vec![0.5; 4], 0, 0.01) {
            Err(SubmitError::Overloaded(_)) => {}
            other => panic!("expected Overloaded after drain, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
