//! The `gpupoly-serve` daemon binary.
//!
//! ```text
//! gpupoly-serve serve --models DIR [--addr 127.0.0.1] [--port 7411]
//!                     [--max-batch N] [--max-delay-ms MS] [--queue-cap N]
//!                     [--queue-cost-ms MS] [--memory-budget BYTES]
//!                     [--workers N] [--request-timeout-ms MS]
//!                     [--devices N] [--tensor-parallel] [--weight-sharded]
//! gpupoly-serve init-zoo DIR [--scale S] [--seed N]
//! gpupoly-serve smoke ADDR [--ping-only]
//! ```
//!
//! `--weight-sharded` and `--tensor-parallel` compose: passing both with
//! `--devices N` (N > 1) serves each model with hybrid 2D sharding —
//! weights partitioned across devices and every device walking its own
//! contiguous row block over the gathered layers.
//!
//! The kernel backend is selected with `GPUPOLY_BACKEND=cpusim|reference`
//! (default `cpusim`), mirroring the test suite's backend matrix.

use std::process::ExitCode;
use std::time::Duration;

use gpupoly_device::{CpuSimBackend, ReferenceBackend};
use gpupoly_nn::{store, zoo};
use gpupoly_serve::{BatchPolicy, Client, ClientError, Server, ServerConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("init-zoo") => cmd_init_zoo(&args[1..]),
        Some("smoke") => cmd_smoke(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            eprint!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown subcommand `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("gpupoly-serve: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
gpupoly-serve — batch-admission verification daemon over resident engines

USAGE:
  gpupoly-serve serve --models DIR [--addr A] [--port P] [--max-batch N]
                      [--max-delay-ms MS] [--queue-cap N] [--queue-cost-ms MS]
                      [--memory-budget BYTES] [--workers N]
                      [--request-timeout-ms MS] [--max-frame-bytes N]
                      [--precision-tier] [--devices N] [--tensor-parallel]
                      [--weight-sharded]
  gpupoly-serve init-zoo DIR [--scale S] [--seed N]
  gpupoly-serve smoke ADDR [--ping-only]

`--weight-sharded --tensor-parallel` together select hybrid 2D sharding.

ENVIRONMENT:
  GPUPOLY_BACKEND   kernel backend: cpusim (default) | reference
";

/// Pulls `--flag value` out of an argument list; remaining args stay put.
struct Flags {
    args: Vec<String>,
}

impl Flags {
    fn new(args: &[String]) -> Self {
        Self {
            args: args.to_vec(),
        }
    }

    fn take(&mut self, flag: &str) -> Result<Option<String>, String> {
        match self.args.iter().position(|a| a == flag) {
            None => Ok(None),
            Some(i) if i + 1 < self.args.len() => {
                self.args.remove(i);
                Ok(Some(self.args.remove(i)))
            }
            Some(_) => Err(format!("flag {flag} needs a value")),
        }
    }

    fn take_parsed<T: std::str::FromStr>(&mut self, flag: &str) -> Result<Option<T>, String> {
        match self.take(flag)? {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| format!("flag {flag}: cannot parse {raw:?}")),
        }
    }

    fn take_bool(&mut self, flag: &str) -> bool {
        match self.args.iter().position(|a| a == flag) {
            Some(i) => {
                self.args.remove(i);
                true
            }
            None => false,
        }
    }

    fn finish(self) -> Result<Vec<String>, String> {
        if let Some(stray) = self.args.iter().find(|a| a.starts_with("--")) {
            return Err(format!("unknown flag {stray}"));
        }
        Ok(self.args)
    }
}

fn backend_name() -> Result<&'static str, String> {
    match std::env::var("GPUPOLY_BACKEND").as_deref() {
        Ok("reference") => Ok("reference"),
        Ok("cpusim") | Ok("") | Err(_) => Ok("cpusim"),
        Ok(other) => Err(format!(
            "unknown GPUPOLY_BACKEND {other:?} (use cpusim|reference)"
        )),
    }
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut flags = Flags::new(args);
    let models = flags
        .take("--models")?
        .ok_or("serve requires --models DIR")?;
    let addr = flags.take("--addr")?.unwrap_or_else(|| "127.0.0.1".into());
    let port: u16 = flags.take_parsed("--port")?.unwrap_or(7411);
    let mut cfg = ServerConfig::new(&models);
    let mut policy = BatchPolicy::default();
    if let Some(n) = flags.take_parsed::<usize>("--max-batch")? {
        policy.max_batch = n.max(1);
    }
    if let Some(ms) = flags.take_parsed::<u64>("--max-delay-ms")? {
        policy.max_delay = Duration::from_millis(ms);
    }
    cfg.policy = policy;
    if let Some(n) = flags.take_parsed("--queue-cap")? {
        cfg.queue_cap = n;
    }
    if let Some(ms) = flags.take_parsed::<u64>("--queue-cost-ms")? {
        // 0 disables cost weighing; the count cap then governs alone.
        cfg.queue_cost_cap = (ms > 0).then(|| Duration::from_millis(ms));
    }
    if let Some(b) = flags.take_parsed("--memory-budget")? {
        cfg.memory_budget = Some(b);
    }
    if let Some(w) = flags.take_parsed("--workers")? {
        cfg.workers = Some(w);
    }
    if let Some(ms) = flags.take_parsed::<u64>("--request-timeout-ms")? {
        cfg.request_timeout = Duration::from_millis(ms);
    }
    if let Some(n) = flags.take_parsed("--max-frame-bytes")? {
        cfg.max_frame_len = n;
    }
    // f32 fast pass with sound f64 escalation; ~3× resident bytes/model.
    cfg.precision_tier = flags.take_bool("--precision-tier");
    // Pool size: >1 enables least-loaded placement and hot-model
    // replication (or, with --tensor-parallel, row-sharded walks).
    if let Some(n) = flags.take_parsed::<usize>("--devices")? {
        cfg.devices = n.max(1);
    }
    cfg.tensor_parallel = flags.take_bool("--tensor-parallel");
    // FSDP-style: each device holds ~1/N of every model's weight bytes,
    // layer shards are all-gathered just in time during backsubstitution.
    // Combined with --tensor-parallel this becomes hybrid 2D sharding:
    // every device walks its own row block over the gathered layers.
    cfg.weight_sharded = flags.take_bool("--weight-sharded");
    if cfg.tensor_parallel && cfg.precision_tier {
        return Err("--tensor-parallel and --precision-tier are mutually exclusive".into());
    }
    if cfg.weight_sharded && cfg.precision_tier {
        return Err("--weight-sharded and --precision-tier are mutually exclusive".into());
    }
    let rest = flags.finish()?;
    if !rest.is_empty() {
        return Err(format!("unexpected arguments {rest:?}"));
    }
    if !std::path::Path::new(&models).is_dir() {
        return Err(format!("--models {models}: not a directory"));
    }

    let backend = backend_name()?;
    let bind = format!("{addr}:{port}");
    match backend {
        "reference" => {
            let server = Server::<ReferenceBackend>::bind(&bind, cfg).map_err(|e| e.to_string())?;
            announce(server.local_addr(), backend, &models);
            server.run();
        }
        _ => {
            let server = Server::<CpuSimBackend>::bind(&bind, cfg).map_err(|e| e.to_string())?;
            announce(server.local_addr(), backend, &models);
            server.run();
        }
    }
    Ok(())
}

fn announce(addr: std::net::SocketAddr, backend: &str, models: &str) {
    // Scripts (and the CI smoke leg) key on this exact line.
    println!("gpupoly-serve listening on {addr} backend={backend} models={models}");
}

fn cmd_init_zoo(args: &[String]) -> Result<(), String> {
    let mut flags = Flags::new(args);
    let scale: f64 = flags.take_parsed("--scale")?.unwrap_or(0.05);
    let seed: u64 = flags.take_parsed("--seed")?.unwrap_or(7);
    let rest = flags.finish()?;
    let [dir] = rest.as_slice() else {
        return Err("init-zoo requires exactly one DIR argument".into());
    };
    // Small members of the paper's Table-1 families: one fully-connected,
    // one convolutional — enough for a multi-model smoke without making CI
    // wait on a full-scale build.
    let picks = [
        ("mnist_6x500", zoo::ArchId::Fc6x500, zoo::Dataset::MnistLike),
        (
            "mnist_convbig",
            zoo::ArchId::ConvBig,
            zoo::Dataset::MnistLike,
        ),
    ];
    for (i, (name, arch, dataset)) in picks.iter().enumerate() {
        let net = zoo::build_arch(*arch, *dataset, scale, seed + i as u64)
            .map_err(|e| format!("build {name}: {e}"))?;
        store::save(dir, name, &net).map_err(|e| format!("save {name}: {e}"))?;
        println!(
            "wrote {dir}/{name}.json ({} neurons, {} layers, input {})",
            net.neuron_count(),
            net.layer_count(),
            net.input_shape().len(),
        );
    }
    Ok(())
}

fn cmd_smoke(args: &[String]) -> Result<(), String> {
    let mut flags = Flags::new(args);
    let ping_only = flags.take_bool("--ping-only");
    let rest = flags.finish()?;
    let [addr] = rest.as_slice() else {
        return Err("smoke requires exactly one ADDR argument".into());
    };
    let mut client = Client::connect(addr.as_str()).map_err(|e| format!("connect {addr}: {e}"))?;
    client
        .set_read_timeout(Some(Duration::from_secs(120)))
        .map_err(|e| e.to_string())?;
    client.ping().map_err(|e| format!("ping: {e}"))?;
    if ping_only {
        println!("smoke: ping ok");
        return Ok(());
    }

    // A malformed frame must earn an error reply on a *surviving*
    // connection.
    match client.send_raw("{ this is not json") {
        Ok(gpupoly_serve::protocol::Reply::Error { .. }) => {}
        other => {
            return Err(format!(
                "malformed frame: expected error reply, got {other:?}"
            ))
        }
    }
    client
        .ping()
        .map_err(|e| format!("connection died after malformed frame: {e}"))?;

    let models = client.models().map_err(|e| format!("models: {e}"))?;
    if models.is_empty() {
        return Err("daemon serves no models".into());
    }
    for info in &models {
        let image = vec![0.5f32; info.input_len];
        let verdict = client
            .verify(&info.name, &image, 0, 1.0 / 255.0)
            .map_err(|e| format!("verify {}: {e}", info.name))?;
        if verdict.margins.len() + 1 != info.outputs {
            return Err(format!(
                "verify {}: expected {} margins, got {}",
                info.name,
                info.outputs - 1,
                verdict.margins.len()
            ));
        }
        println!(
            "smoke: {} verified={} margins={}",
            info.name,
            verdict.verified,
            verdict.margins.len()
        );
    }

    // Multiplexed pipelining: several id-tagged frames down one
    // connection; replies come back matched by id, possibly out of order,
    // and the connection then still serves plain in-order frames.
    {
        use gpupoly_serve::protocol::{Reply, Request};
        let target = &models[0];
        let image = vec![0.5f32; target.input_len];
        const PIPELINED: u64 = 4;
        for id in 0..PIPELINED {
            client
                .send_request(
                    &Request::Verify {
                        model: target.name.clone(),
                        image: image.clone(),
                        label: 0,
                        eps: 1.0 / 255.0,
                    },
                    Some(id),
                )
                .map_err(|e| format!("mux send {id}: {e}"))?;
        }
        let mut seen = [false; PIPELINED as usize];
        for _ in 0..PIPELINED {
            let (id, reply) = client.recv_any().map_err(|e| format!("mux recv: {e}"))?;
            let id = id.ok_or("mux reply carried no id")?;
            if !matches!(reply, Reply::Verdict { .. }) {
                return Err(format!("mux reply {id}: expected verdict, got {reply:?}"));
            }
            let slot = seen
                .get_mut(id as usize)
                .ok_or_else(|| format!("mux reply echoed unknown id {id}"))?;
            if *slot {
                return Err(format!("mux reply id {id} answered twice"));
            }
            *slot = true;
        }
        client
            .ping()
            .map_err(|e| format!("connection broken after mux exchange: {e}"))?;
        println!("smoke: multiplexed {PIPELINED} pipelined verifies ok");
    }

    // Complete mode round-trips: the same query refines under a small
    // split budget and must answer with a typed status, never an error.
    let first = &models[0];
    let outcome = client
        .verify_complete(
            &first.name,
            &vec![0.5f32; first.input_len],
            0,
            1.0 / 255.0,
            Some(8),
            Some(30_000),
        )
        .map_err(|e| format!("verify_complete {}: {e}", first.name))?;
    println!(
        "smoke: {} complete status={} splits={} frontier={}",
        first.name,
        outcome.status.as_str(),
        outcome.splits,
        outcome.frontier_remaining
    );

    // An unknown model and a wrong-dimension query map to their typed codes.
    use gpupoly_serve::protocol::ErrorCode;
    match client.verify("no_such_model", &[0.0], 0, 0.01) {
        Err(ClientError::Server {
            code: ErrorCode::UnknownModel,
            ..
        }) => {}
        other => return Err(format!("expected unknown_model, got {other:?}")),
    }
    match client.verify(&models[0].name, &[0.25], 0, 0.01) {
        Err(ClientError::Server {
            code: ErrorCode::BadQuery,
            ..
        }) => {}
        other => return Err(format!("expected bad_query, got {other:?}")),
    }

    let stats = client.stats().map_err(|e| format!("stats: {e}"))?;
    // The plain verifies plus the complete-mode query must all be counted.
    if stats.models.iter().map(|m| m.completed).sum::<u64>() < models.len() as u64 + 1 {
        return Err("stats do not reflect the served queries".into());
    }
    // The refinement and expiry counters must round-trip the stats wire
    // (typed deserialization already proves the fields are present; sanity:
    // nothing expired during this smoke, and split counters are coherent).
    let expired: u64 = stats.models.iter().map(|m| m.expired_dropped).sum();
    if expired != 0 {
        return Err(format!("smoke queries unexpectedly expired ({expired})"));
    }
    let splits: u64 = stats.models.iter().map(|m| m.splits).sum();
    if outcome.splits > 0 && splits == 0 {
        return Err("split counter did not round-trip through stats".into());
    }
    // The device work meter must round-trip the wire: the verifies above
    // launched kernels and metered flops, so zeros here mean the counters
    // fell off the stats endpoint.
    if stats.device.launches == 0 || stats.device.flops == 0 {
        return Err(format!(
            "device launch/flop counters did not round-trip through stats \
             (launches={} flops={})",
            stats.device.launches, stats.device.flops
        ));
    }
    // The aggregate row must cover the whole pool: per-device rows are
    // present and their meters sum to the top-level meters exactly.
    if stats.devices.is_empty() {
        return Err("stats carry no per-device breakdown".into());
    }
    let summed: u64 = stats.devices.iter().map(|d| d.launches).sum();
    if summed != stats.device.launches {
        return Err(format!(
            "aggregate launches ({}) disagree with the per-device sum ({summed})",
            stats.device.launches
        ));
    }
    println!(
        "smoke: ok — backend={} devices={} models={} completed={}",
        stats.device.backend,
        stats.devices.len(),
        stats.models.len(),
        stats.models.iter().map(|m| m.completed).sum::<u64>(),
    );
    Ok(())
}
