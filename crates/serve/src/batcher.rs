//! The admission batcher: one worker thread per resident model.
//!
//! The thread *owns* its `Network` and the `Engine` built over it — the
//! engine borrows the network, so tying both to one thread's stack gives the
//! resident pair a single owner with no self-referential storage. Requests
//! arrive over a bounded channel (the admission queue); the worker coalesces
//! whatever is in flight into one [`Engine::verify_batch`] call, bounded by
//! a max-batch / max-delay policy:
//!
//! * the first request of a batch is taken blocking (an idle model costs
//!   nothing),
//! * further requests are drained until the batch holds `max_batch` queries
//!   or `max_delay` has passed since the batch opened — the classic
//!   admission trade of a little latency for a lot of coalescing,
//! * the whole batch runs as one `verify_batch` (LPT-scheduled, analysis
//!   cache shared), and every requester gets its own reply.
//!
//! Dropping the queue sender shuts the worker down: it answers what is
//! already queued, then the engine drops and every device byte the model
//! pinned (weights and pooled buffers) returns to the device.

use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gpupoly_core::{
    CompleteVerdict, Engine, EngineOptions, EngineStats, Query, RefineBudget, RobustnessVerdict,
    ShardedEngine, TieredEngine, VerifyConfig, VerifyError,
};
use gpupoly_device::{Backend, Device};
use gpupoly_nn::Network;

use crate::stats::ModelStats;

/// Called with the admission cost charge whenever an item is answered (on
/// every path: verdict, per-query error, expiry, contained panic). The
/// registry uses it to retire the item's charge from the device pool's load
/// gauge, keeping least-loaded routing honest without coupling this module
/// to the pool type.
pub(crate) type RetireFn = Arc<dyn Fn(u64) + Send + Sync>;

/// What the batching loop needs from a resident verification engine: one
/// fused batch call at serving precision, one branch-and-bound refinement
/// call, and a stats snapshot to mirror. Implemented by the plain `f32`
/// [`Engine`], by the precision-tiered [`TieredEngine`], and by the
/// tensor-parallel [`ShardedEngine`], so one loop serves every worker
/// flavor.
trait BatchVerifier {
    fn verify(&self, queries: &[Query<f32>]) -> Vec<Result<RobustnessVerdict<f32>, VerifyError>>;
    /// Complete-mode verdicts always cross the worker boundary as `f64`:
    /// the tiered engine escalates before splitting, and the plain `f32`
    /// engine's verdicts widen losslessly.
    fn verify_complete(
        &self,
        queries: &[Query<f32>],
        budget: &RefineBudget,
    ) -> Vec<Result<CompleteVerdict<f64>, VerifyError>>;
    fn stats(&self) -> EngineStats;
}

impl<B: Backend> BatchVerifier for Engine<'_, f32, B> {
    fn verify(&self, queries: &[Query<f32>]) -> Vec<Result<RobustnessVerdict<f32>, VerifyError>> {
        self.verify_batch_fused(queries)
    }
    fn verify_complete(
        &self,
        queries: &[Query<f32>],
        budget: &RefineBudget,
    ) -> Vec<Result<CompleteVerdict<f64>, VerifyError>> {
        self.verify_complete_batch(queries, budget)
            .into_iter()
            .map(|r| r.map(|v| v.widen()))
            .collect()
    }
    fn stats(&self) -> EngineStats {
        Engine::stats(self)
    }
}

impl<B: Backend> BatchVerifier for TieredEngine<'_, B> {
    fn verify(&self, queries: &[Query<f32>]) -> Vec<Result<RobustnessVerdict<f32>, VerifyError>> {
        self.verify_batch(queries)
    }
    fn verify_complete(
        &self,
        queries: &[Query<f32>],
        budget: &RefineBudget,
    ) -> Vec<Result<CompleteVerdict<f64>, VerifyError>> {
        self.verify_complete_batch(queries, budget)
    }
    fn stats(&self) -> EngineStats {
        TieredEngine::stats(self)
    }
}

impl<B: Backend> BatchVerifier for ShardedEngine<'_, f32, B> {
    fn verify(&self, queries: &[Query<f32>]) -> Vec<Result<RobustnessVerdict<f32>, VerifyError>> {
        self.verify_batch_sharded(queries)
    }
    fn verify_complete(
        &self,
        queries: &[Query<f32>],
        budget: &RefineBudget,
    ) -> Vec<Result<CompleteVerdict<f64>, VerifyError>> {
        self.verify_complete_batch(queries, budget)
            .into_iter()
            .map(|r| r.map(|v| v.widen()))
            .collect()
    }
    fn stats(&self) -> EngineStats {
        // Aggregated across all pool devices — launch/FLOP/bytes meters sum
        // the whole walk, not just the first device's shard.
        ShardedEngine::stats(self)
    }
}

/// How a model worker coalesces queued requests into batches.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Largest coalesced batch.
    pub max_batch: usize,
    /// Longest a batch stays open waiting for more requests once it has one.
    pub max_delay: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self {
            max_batch: 16,
            max_delay: Duration::from_millis(2),
        }
    }
}

/// Why a submitted query did not produce a verdict.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkError {
    /// The engine rejected or failed the query.
    Verify(VerifyError),
    /// The verification panicked; the panic was contained in the worker.
    Panicked,
    /// The item sat in the admission queue past its deadline and was
    /// dropped before dispatch — the requester already timed out, so
    /// verifying it would only delay live queries.
    Expired,
}

/// Which verification flavor a queued item asks for.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum WorkKind {
    /// One incomplete (DeepPoly) robustness pass.
    Plain,
    /// Branch-and-bound refinement under this budget.
    Complete(RefineBudget),
}

/// A successful verification outcome, shaped by the request's [`WorkKind`].
#[derive(Clone, Debug)]
pub enum WorkOutput {
    /// Reply to a plain robustness query.
    Plain(RobustnessVerdict<f32>),
    /// Reply to a complete-mode query (always `f64`; see `BatchVerifier`).
    Complete(CompleteVerdict<f64>),
}

/// The reply side of one submitted query.
pub type WorkReply = Result<WorkOutput, WorkError>;

/// A reply channel paired with the admission cost charge it must credit
/// back when answered.
type ChargedReply = (Sender<WorkReply>, u64);

/// One queued verification request.
pub(crate) struct WorkItem {
    pub image: Vec<f32>,
    pub label: usize,
    pub eps: f32,
    pub kind: WorkKind,
    /// The admission-time reply deadline. Items still queued past it are
    /// dropped with a typed `Expired` reply instead of dispatched — the
    /// serving layer stopped waiting at exactly this instant, so any
    /// verification after it is pure waste.
    pub deadline: Option<Instant>,
    /// Estimated wall microseconds charged to `pending_cost_us` at
    /// admission; the worker credits back exactly this amount when the
    /// reply goes out, so the gauge can never drift.
    pub cost_us: u64,
    pub reply: Sender<WorkReply>,
}

/// Spawns the worker thread for one model and waits for its engine to come
/// up. On success the model is resident: `stats.resident_bytes` is set and
/// the returned sender is the admission queue (capacity `queue_cap`).
///
/// With one device the worker runs a plain [`Engine`] (or a
/// [`TieredEngine`] when `precision_tier` is set); with several it runs a
/// tensor-parallel [`ShardedEngine`] whose backsubstitution row space is
/// partitioned across all of them per layer step. The tiered flavor is
/// single-device only (the registry validates that), so `precision_tier`
/// with several devices uses the first alone. When `weight_sharded` is set
/// the worker instead runs an FSDP-style weight-sharded [`ShardedEngine`]:
/// the model's layers are partitioned across all devices (each holds ~1/N
/// of the weight bytes) and all-gathered just in time per layer step. Set
/// **together with** `tensor_parallel` on a multi-device pool, the worker
/// runs the hybrid 2D-sharded flavor — every device walks its own row
/// block through the shared weight shards, gathering remote layers onto
/// itself. Only the precision tier refuses to combine (the registry
/// validates that).
///
/// `retire` is invoked with the item's admission cost charge every time a
/// reply goes out — the hook the registry uses to credit the device pool's
/// load gauge.
///
/// # Errors
///
/// The typed engine-construction error when the network cannot be prepared
/// on the device(s) — `VerifyError::Device` in particular keeps its type so
/// the registry can answer a model that simply doesn't fit with a
/// structured `device_oom` instead of a generic load failure.
#[allow(clippy::too_many_arguments)]
pub(crate) fn spawn_worker<B: Backend>(
    name: String,
    net: Network<f32>,
    devices: Vec<Device<B>>,
    verify: VerifyConfig,
    policy: BatchPolicy,
    queue_cap: usize,
    precision_tier: bool,
    weight_sharded: bool,
    tensor_parallel: bool,
    stats: Arc<ModelStats>,
    retire: RetireFn,
) -> Result<(SyncSender<WorkItem>, JoinHandle<()>), VerifyError> {
    if devices.is_empty() {
        return Err(VerifyError::Internal(
            "worker needs at least one device".to_string(),
        ));
    }
    let (tx, rx) = std::sync::mpsc::sync_channel::<WorkItem>(queue_cap.max(1));
    let (startup_tx, startup_rx) = std::sync::mpsc::channel::<Result<(), VerifyError>>();
    let join = std::thread::Builder::new()
        .name(format!("gpupoly-serve-{name}"))
        .spawn(move || {
            // Every engine flavor borrows networks living on this thread's
            // stack; the startup handshake and batching loop are shared.
            let startup = |engine: &dyn BatchVerifier| {
                let snapshot = engine.stats();
                stats
                    .resident_bytes
                    .store(snapshot.resident_bytes as u64, Ordering::Release);
                // Admission threads compute cost hints from this depth.
                stats
                    .relu_layers
                    .store(snapshot.relu_layers as u64, Ordering::Release);
                let _ = startup_tx.send(Ok(()));
            };
            if weight_sharded {
                // Weight shards alone walk on device 0; with
                // tensor_parallel riding along, every device walks its own
                // row block over the shared shards (hybrid 2D sharding).
                let hybrid = tensor_parallel && devices.len() > 1;
                let build = if hybrid {
                    ShardedEngine::new_hybrid
                } else {
                    ShardedEngine::new_weight_sharded
                };
                let engine = match build(devices, &net, verify, EngineOptions::default()) {
                    Ok(engine) => engine,
                    Err(e) => {
                        let _ = startup_tx.send(Err(e));
                        return;
                    }
                };
                startup(&engine);
                run_loop(&engine, &rx, policy, &stats, &retire);
            } else if precision_tier {
                // The widened copy also lives on this stack, so the tiered
                // engine's two borrows share the worker as their owner.
                let device = devices.into_iter().next().expect("checked non-empty");
                let wide = net.widen();
                let engine = match TieredEngine::new(device, &net, &wide, verify) {
                    Ok(engine) => engine,
                    Err(e) => {
                        let _ = startup_tx.send(Err(e));
                        return;
                    }
                };
                startup(&engine);
                run_loop(&engine, &rx, policy, &stats, &retire);
            } else if devices.len() > 1 {
                let engine =
                    match ShardedEngine::new(devices, &net, verify, EngineOptions::default()) {
                        Ok(engine) => engine,
                        Err(e) => {
                            let _ = startup_tx.send(Err(e));
                            return;
                        }
                    };
                startup(&engine);
                run_loop(&engine, &rx, policy, &stats, &retire);
            } else {
                let device = devices.into_iter().next().expect("checked non-empty");
                let engine = match Engine::new(device, &net, verify) {
                    Ok(engine) => engine,
                    Err(e) => {
                        let _ = startup_tx.send(Err(e));
                        return;
                    }
                };
                startup(&engine);
                run_loop(&engine, &rx, policy, &stats, &retire);
            }
        })
        .map_err(|e| VerifyError::Internal(format!("spawn worker thread: {e}")))?;
    match startup_rx.recv() {
        Ok(Ok(())) => Ok((tx, join)),
        Ok(Err(e)) => {
            let _ = join.join();
            Err(e)
        }
        Err(_) => {
            // The worker died before reporting: surface it as a load failure.
            let _ = join.join();
            Err(VerifyError::Internal(
                "model worker exited during startup".to_string(),
            ))
        }
    }
}

fn run_loop(
    engine: &dyn BatchVerifier,
    rx: &Receiver<WorkItem>,
    policy: BatchPolicy,
    stats: &ModelStats,
    retire: &RetireFn,
) {
    loop {
        // Block for the head of the next batch; channel closed = shut down.
        let Ok(first) = rx.recv() else {
            return;
        };
        stats.queue_depth.fetch_sub(1, Ordering::AcqRel);
        let mut batch = vec![first];
        let deadline = Instant::now() + policy.max_delay;
        while batch.len() < policy.max_batch.max(1) {
            let timeout = deadline.saturating_duration_since(Instant::now());
            match rx.recv_timeout(timeout) {
                Ok(item) => {
                    stats.queue_depth.fetch_sub(1, Ordering::AcqRel);
                    batch.push(item);
                }
                Err(RecvTimeoutError::Timeout) => break,
                // Sender gone: answer what we have, then exit via recv().
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        run_batch(engine, batch, stats, retire);
    }
}

/// Mirrors the engine-side counters into the serving stats. Called after
/// every engine call and *before* the replies it produced go out, so a
/// requester that has its verdict in hand already sees consistent stats.
fn mirror_engine_stats(engine: &dyn BatchVerifier, stats: &ModelStats) {
    let snapshot = engine.stats();
    stats
        .cache_hits
        .store(snapshot.cache_hits, Ordering::Release);
    stats
        .cache_misses
        .store(snapshot.cache_misses, Ordering::Release);
    stats
        .fused_batches
        .store(snapshot.fused_batches, Ordering::Release);
    stats
        .fast_pass_resolved
        .store(snapshot.fast_pass_resolved, Ordering::Release);
    stats.escalated.store(snapshot.escalated, Ordering::Release);
    stats.splits.store(snapshot.splits, Ordering::Release);
    stats
        .frontier_peak
        .store(snapshot.frontier_peak, Ordering::Release);
    stats
        .proven_by_split
        .store(snapshot.proven_by_split, Ordering::Release);
    stats.cex_found.store(snapshot.cex_found, Ordering::Release);
    // Feed the measured per-batch wall time (folded by the engine into its
    // ms-per-cost EWMA) back to the admission side.
    stats
        .ewma_ms_per_cost_bits
        .store(snapshot.ewma_ms_per_cost.to_bits(), Ordering::Release);
}

fn run_batch(
    engine: &dyn BatchVerifier,
    batch: Vec<WorkItem>,
    stats: &ModelStats,
    retire: &RetireFn,
) {
    let answer = |reply: &Sender<WorkReply>, cost_us: u64, result: WorkReply| {
        stats.completed.fetch_add(1, Ordering::Relaxed);
        stats.in_flight.fetch_sub(1, Ordering::AcqRel);
        stats.pending_cost_us.fetch_sub(cost_us, Ordering::AcqRel);
        // Release the admission pin and the pool load charge on every reply
        // path — verdict, typed error, expiry, and contained panic alike —
        // so eviction pinning and least-loaded routing both stay exact.
        stats.unpin();
        retire(cost_us);
        let _ = reply.send(result);
    };

    // Drop expired items before any engine work: their requesters stopped
    // waiting at the stamped deadline, so dispatching them would spend
    // engine time on queries nobody can receive — and delay live ones.
    let now = Instant::now();
    let mut plain: Vec<WorkItem> = Vec::new();
    let mut complete: Vec<(RefineBudget, Vec<WorkItem>)> = Vec::new();
    for item in batch {
        if item.deadline.is_some_and(|d| now >= d) {
            stats.expired_dropped.fetch_add(1, Ordering::Relaxed);
            answer(&item.reply, item.cost_us, Err(WorkError::Expired));
            continue;
        }
        match item.kind {
            WorkKind::Plain => plain.push(item),
            // Complete-mode items coalesce per identical budget, so one
            // frontier dispatch refines all sub-boxes of a budget class
            // together (distinct budgets per batch are rare and few).
            WorkKind::Complete(budget) => match complete.iter_mut().find(|(b, _)| *b == budget) {
                Some((_, items)) => items.push(item),
                None => complete.push((budget, vec![item])),
            },
        }
    }
    let live = plain.len() + complete.iter().map(|(_, items)| items.len()).sum::<usize>();
    if live == 0 {
        return;
    }
    stats.record_batch(live);

    // Move each image out of its work item (no per-query copy on the hot
    // path); only the reply senders and admission cost charges survive the
    // split. A coalesced admission batch is exactly a set of same-network
    // queries: dispatch through the fused cross-query path, which stacks
    // their backsubstitution rows into one launch per layer step (and falls
    // back to per-query dispatch itself when fusion is unprofitable). A
    // panic anywhere inside verification must reach every requester as a
    // typed reply, never unwind through the daemon or strand a client.
    let split = |items: Vec<WorkItem>| -> (Vec<Query<f32>>, Vec<ChargedReply>) {
        items
            .into_iter()
            .map(|item| {
                (
                    Query::new(item.image, item.label, item.eps),
                    (item.reply, item.cost_us),
                )
            })
            .unzip()
    };
    let settle = |replies: &[ChargedReply], results: Result<Vec<WorkReply>, ()>| {
        mirror_engine_stats(engine, stats);
        match results {
            Ok(results) => {
                for ((reply, cost_us), result) in replies.iter().zip(results) {
                    answer(reply, *cost_us, result);
                }
            }
            Err(()) => {
                for (reply, cost_us) in replies {
                    answer(reply, *cost_us, Err(WorkError::Panicked));
                }
            }
        }
    };

    if !plain.is_empty() {
        let (queries, replies) = split(plain);
        let results =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| engine.verify(&queries)));
        settle(
            &replies,
            results
                .map(|rs| {
                    rs.into_iter()
                        .map(|r| r.map(WorkOutput::Plain).map_err(WorkError::Verify))
                        .collect()
                })
                .map_err(|_| ()),
        );
    }
    for (budget, items) in complete {
        let (queries, replies) = split(items);
        let results = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.verify_complete(&queries, &budget)
        }));
        settle(
            &replies,
            results
                .map(|rs| {
                    rs.into_iter()
                        .map(|r| r.map(WorkOutput::Complete).map_err(WorkError::Verify))
                        .collect()
                })
                .map_err(|_| ()),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpupoly_nn::builder::NetworkBuilder;

    fn tiny_net() -> Network<f32> {
        NetworkBuilder::new_flat(2)
            .dense(&[[1.0_f32, -1.0], [1.0, 1.0]], &[0.0, 0.0])
            .relu()
            .dense(&[[1.0_f32, 1.0], [1.0, -1.0]], &[0.5, 0.0])
            .build()
            .unwrap()
    }

    fn submit_item(
        tx: &SyncSender<WorkItem>,
        stats: &ModelStats,
        image: Vec<f32>,
        label: usize,
        eps: f32,
        kind: WorkKind,
        deadline: Option<Instant>,
    ) -> Receiver<WorkReply> {
        let (reply, rx) = std::sync::mpsc::channel();
        stats.queue_depth.fetch_add(1, Ordering::AcqRel);
        stats.in_flight.fetch_add(1, Ordering::AcqRel);
        stats.pin();
        tx.try_send(WorkItem {
            image,
            label,
            eps,
            kind,
            deadline,
            cost_us: 0,
            reply,
        })
        .expect("queue has room");
        rx
    }

    fn submit(
        tx: &SyncSender<WorkItem>,
        stats: &ModelStats,
        image: Vec<f32>,
        label: usize,
        eps: f32,
    ) -> Receiver<WorkReply> {
        submit_item(tx, stats, image, label, eps, WorkKind::Plain, None)
    }

    fn plain(output: WorkOutput) -> RobustnessVerdict<f32> {
        match output {
            WorkOutput::Plain(v) => v,
            other => panic!("expected a plain verdict, got {other:?}"),
        }
    }

    #[test]
    fn worker_serves_batches_and_shuts_down_cleanly() {
        let device = Device::default();
        let stats = Arc::new(ModelStats::default());
        let (tx, join) = spawn_worker(
            "tiny".into(),
            tiny_net(),
            vec![device.clone()],
            VerifyConfig::default(),
            BatchPolicy {
                max_batch: 8,
                max_delay: Duration::from_millis(20),
            },
            16,
            false,
            false,
            false,
            stats.clone(),
            Arc::new(|_| {}),
        )
        .unwrap();
        assert!(stats.resident_bytes.load(Ordering::Acquire) > 0);

        let replies: Vec<Receiver<WorkReply>> = (0..6)
            .map(|i| submit(&tx, &stats, vec![0.4, 0.6], 0, 0.01 + 0.005 * i as f32))
            .collect();
        for rx in replies {
            let verdict = plain(
                rx.recv_timeout(Duration::from_secs(10))
                    .expect("worker replies")
                    .expect("query succeeds"),
            );
            assert!(verdict.verified);
        }
        assert_eq!(stats.completed.load(Ordering::Relaxed), 6);
        assert!(stats.batches.load(Ordering::Relaxed) >= 1);
        assert!(stats.idle());

        // Bad queries come back as typed errors through the same queue.
        let rx = submit(&tx, &stats, vec![0.4], 0, 0.01);
        match rx.recv_timeout(Duration::from_secs(10)).unwrap() {
            Err(WorkError::Verify(VerifyError::BadQuery(_))) => {}
            other => panic!("expected BadQuery, got {other:?}"),
        }

        drop(tx);
        join.join().expect("worker exits without panicking");
        assert_eq!(device.memory_in_use(), 0, "eviction returns every byte");
    }

    #[test]
    fn tiered_worker_serves_and_reports_tier_split() {
        let device = Device::default();
        let stats = Arc::new(ModelStats::default());
        let (tx, join) = spawn_worker(
            "tiny-tiered".into(),
            tiny_net(),
            vec![device.clone()],
            VerifyConfig::default(),
            BatchPolicy {
                max_batch: 8,
                max_delay: Duration::from_millis(20),
            },
            16,
            true,
            false,
            false,
            stats.clone(),
            Arc::new(|_| {}),
        )
        .unwrap();
        // Both precisions' weights are resident.
        assert!(stats.resident_bytes.load(Ordering::Acquire) > 0);

        // Easy queries resolve in the fast tier; the hopeless one escalates.
        let easy: Vec<Receiver<WorkReply>> = (0..4)
            .map(|_| submit(&tx, &stats, vec![0.4, 0.6], 0, 0.01))
            .collect();
        for rx in easy {
            let verdict = plain(
                rx.recv_timeout(Duration::from_secs(10))
                    .expect("worker replies")
                    .expect("query succeeds"),
            );
            assert!(verdict.verified);
        }
        let rx = submit(&tx, &stats, vec![0.5, 0.5], 1, 0.9);
        let verdict = plain(
            rx.recv_timeout(Duration::from_secs(10))
                .expect("worker replies")
                .expect("query runs"),
        );
        assert!(!verdict.verified);

        assert_eq!(
            stats.fast_pass_resolved.load(Ordering::Acquire)
                + stats.escalated.load(Ordering::Acquire),
            5,
            "every query is attributed to exactly one tier"
        );
        assert!(stats.escalated.load(Ordering::Acquire) >= 1);

        drop(tx);
        join.join().expect("worker exits without panicking");
        assert_eq!(device.memory_in_use(), 0, "both tiers return every byte");
    }

    #[test]
    fn sharded_worker_spans_devices_retires_charges_and_frees_all() {
        use gpupoly_device::DeviceConfig;
        use std::sync::atomic::AtomicU64;
        let devices: Vec<Device> = (0..2)
            .map(|i| Device::new(DeviceConfig::new().workers(1).name(format!("w{i}"))))
            .collect();
        let handles = devices.clone();
        let stats = Arc::new(ModelStats::default());
        let retired = Arc::new(AtomicU64::new(0));
        let retired_in_worker = retired.clone();
        let (tx, join) = spawn_worker(
            "tiny-sharded".into(),
            tiny_net(),
            devices,
            VerifyConfig::default(),
            BatchPolicy {
                max_batch: 8,
                max_delay: Duration::from_millis(20),
            },
            16,
            false,
            false,
            false,
            stats.clone(),
            Arc::new(move |cost| {
                retired_in_worker.fetch_add(cost.max(1), Ordering::AcqRel);
            }),
        )
        .unwrap();
        // Weights resident on *both* devices; resident_bytes sums them.
        assert!(handles.iter().all(|d| d.memory_in_use() > 0));
        assert!(
            stats.resident_bytes.load(Ordering::Acquire) as usize
                >= handles.iter().map(|d| d.memory_in_use()).sum::<usize>()
        );

        let replies: Vec<Receiver<WorkReply>> = (0..5)
            .map(|i| submit(&tx, &stats, vec![0.4, 0.6], 0, 0.01 + 0.004 * i as f32))
            .collect();
        for rx in replies {
            let verdict = plain(
                rx.recv_timeout(Duration::from_secs(10))
                    .expect("worker replies")
                    .expect("query succeeds"),
            );
            assert!(verdict.verified);
        }
        assert_eq!(stats.completed.load(Ordering::Relaxed), 5);
        assert_eq!(
            retired.load(Ordering::Acquire),
            5,
            "every reply retires its charge"
        );
        assert_eq!(
            stats.pinned.load(Ordering::Acquire),
            0,
            "every reply unpins"
        );

        drop(tx);
        join.join().expect("sharded worker exits cleanly");
        for d in &handles {
            assert_eq!(d.memory_in_use(), 0, "eviction frees every device");
        }
    }

    #[test]
    fn expired_items_are_dropped_before_dispatch_with_typed_replies() {
        let device = Device::default();
        let stats = Arc::new(ModelStats::default());
        let (tx, join) = spawn_worker(
            "expiry".into(),
            tiny_net(),
            vec![device],
            VerifyConfig::default(),
            BatchPolicy {
                max_batch: 8,
                max_delay: Duration::from_millis(20),
            },
            16,
            false,
            false,
            false,
            stats.clone(),
            Arc::new(|_| {}),
        )
        .unwrap();

        // One item admitted with an already-passed deadline (deterministic:
        // no sleep needed, the worker must see it as expired however fast
        // it pops) coalesced with one live item.
        let past = Instant::now() - Duration::from_secs(1);
        let dead = submit_item(
            &tx,
            &stats,
            vec![0.4, 0.6],
            0,
            0.01,
            WorkKind::Plain,
            Some(past),
        );
        let live = submit_item(
            &tx,
            &stats,
            vec![0.4, 0.6],
            0,
            0.01,
            WorkKind::Plain,
            Some(Instant::now() + Duration::from_secs(60)),
        );

        match dead.recv_timeout(Duration::from_secs(10)).unwrap() {
            Err(WorkError::Expired) => {}
            other => panic!("expected Expired, got {other:?}"),
        }
        let verdict = plain(
            live.recv_timeout(Duration::from_secs(10))
                .unwrap()
                .expect("live item still verifies"),
        );
        assert!(verdict.verified);
        assert_eq!(stats.expired_dropped.load(Ordering::Acquire), 1);
        assert_eq!(stats.completed.load(Ordering::Relaxed), 2);
        assert!(stats.idle(), "expired items settle every gauge");

        drop(tx);
        join.join().unwrap();
    }

    #[test]
    fn complete_mode_items_ride_the_same_queue() {
        let device = Device::default();
        let stats = Arc::new(ModelStats::default());
        let (tx, join) = spawn_worker(
            "complete".into(),
            tiny_net(),
            vec![device],
            VerifyConfig::default(),
            BatchPolicy {
                max_batch: 8,
                max_delay: Duration::from_millis(20),
            },
            16,
            false,
            false,
            false,
            stats.clone(),
            Arc::new(|_| {}),
        )
        .unwrap();

        let rx = submit_item(
            &tx,
            &stats,
            vec![0.4, 0.6],
            0,
            0.01,
            WorkKind::Complete(RefineBudget::with_max_splits(4)),
            None,
        );
        match rx.recv_timeout(Duration::from_secs(10)).unwrap().unwrap() {
            WorkOutput::Complete(CompleteVerdict::Proven { base, splits }) => {
                assert!(base.is_some(), "decided base rides along");
                assert_eq!(splits, 0, "an easy query spends no splits");
            }
            other => panic!("expected a complete Proven verdict, got {other:?}"),
        }

        drop(tx);
        join.join().unwrap();
    }

    #[test]
    fn startup_failure_is_reported_not_hung() {
        // Residual branches that agree in *length* but not in shape pass
        // network validation (which compares lengths) yet are rejected by
        // engine preparation (which needs identical shapes for the cuboid
        // merge) — exactly the kind of model file a daemon must refuse to
        // load without hanging the requester.
        use gpupoly_nn::Shape;
        let net = NetworkBuilder::new(Shape::new(2, 2, 1))
            .residual(
                |a| a.conv(1, (1, 1), (1, 1), (0, 0), vec![1.0_f32], vec![0.0]),
                |b| b.dense_flat(4, vec![0.0_f32; 16], vec![0.0; 4]),
            )
            .build()
            .expect("passes length-based network validation");
        let device: Device = Device::default();
        let stats = Arc::new(ModelStats::default());
        let err = spawn_worker(
            "mismatched".into(),
            net,
            vec![device.clone()],
            VerifyConfig::default(),
            BatchPolicy::default(),
            4,
            false,
            false,
            false,
            stats,
            Arc::new(|_| {}),
        )
        .map(|_| ())
        .unwrap_err()
        .to_string();
        assert!(err.contains("shape"), "unhelpful startup error: {err}");
        assert_eq!(device.memory_in_use(), 0, "failed startup leaks nothing");
    }
}
