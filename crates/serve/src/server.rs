//! The TCP serving layer: accept loop, per-connection framing, and the
//! mapping from every failure to a typed protocol error.
//!
//! One thread per connection reads line-delimited JSON frames and answers
//! each with exactly one reply line. Frames carrying an `"id"` are
//! dispatched concurrently and may be answered out of order (the id is
//! echoed back); id-less frames keep the legacy synchronous in-order
//! contract. All request handling is wrapped in `catch_unwind`, and worker
//! replies are awaited with a deadline, so a connection can observe `error`
//! replies but never a panic, a silent drop or an unbounded hang.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use gpupoly_core::{CompleteVerdict, RefineBudget, VerifyConfig, VerifyError};
use gpupoly_device::{Backend, Device, DeviceConfig};
use gpupoly_shard::DevicePool;
use parking_lot::Mutex;
use serde::Value;

use crate::batcher::{BatchPolicy, WorkError, WorkOutput};
use crate::protocol::{
    frame_id, frame_with_id, CompleteStatus, DeviceStatsWire, ErrorCode, Reply, Request,
    StatsReply, WireMargin,
};
use crate::registry::{Registry, RegistryConfig, SubmitError};

/// Daemon configuration (CLI flags map 1:1 onto this).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Directory of `<name>.json` model files.
    pub model_dir: PathBuf,
    /// Admission batching policy.
    pub policy: BatchPolicy,
    /// Admission-queue capacity per model.
    pub queue_cap: usize,
    /// Cost-aware admission cap: maximum *estimated* wall time of queued
    /// work per model (see `RegistryConfig::queue_cost_cap`); `None`
    /// disables cost weighing, leaving only the count-based bound.
    pub queue_cost_cap: Option<Duration>,
    /// Device-memory budget for resident models (also installed as the
    /// device's capacity so engines chunk/fallback against it).
    pub memory_budget: Option<usize>,
    /// Device worker count (`None` = all host cores).
    pub workers: Option<usize>,
    /// Deadline for answering one request once admitted.
    pub request_timeout: Duration,
    /// Largest accepted request frame in bytes. A connection streaming a
    /// longer line (hostile or broken framing) gets one `parse_error`
    /// reply and is closed — memory per connection stays bounded.
    pub max_frame_len: usize,
    /// Verifier configuration for every engine.
    pub verify: VerifyConfig,
    /// Serve through precision-tiered engines (`f32` fast pass, sound
    /// `f64` escalation). See `RegistryConfig::precision_tier`.
    pub precision_tier: bool,
    /// Number of pool devices to build (`workers` and `memory_budget`
    /// apply per device). With more than one device, models are placed
    /// least-loaded and hot models replicate onto idle devices.
    pub devices: usize,
    /// Serve every model tensor-parallel across the whole pool instead of
    /// replicating (see `RegistryConfig::tensor_parallel`). Mutually
    /// exclusive with `precision_tier`.
    pub tensor_parallel: bool,
    /// Serve every model FSDP-style weight-sharded across the whole pool:
    /// each device holds ~1/N of the weight bytes and layers are
    /// all-gathered just in time (see `RegistryConfig::weight_sharded`).
    /// Combined with `tensor_parallel`, serving is **hybrid**: every
    /// device walks its own row block through the shared weight shards,
    /// gathering remote layers onto itself. Mutually exclusive with
    /// `precision_tier`.
    pub weight_sharded: bool,
}

impl ServerConfig {
    /// Defaults for a model directory.
    pub fn new(model_dir: impl Into<PathBuf>) -> Self {
        Self {
            model_dir: model_dir.into(),
            policy: BatchPolicy::default(),
            queue_cap: 128,
            queue_cost_cap: Some(Duration::from_secs(30)),
            memory_budget: None,
            workers: None,
            request_timeout: Duration::from_secs(120),
            max_frame_len: 8 << 20,
            verify: VerifyConfig::default(),
            precision_tier: false,
            devices: 1,
            tensor_parallel: false,
            weight_sharded: false,
        }
    }
}

/// Per-connection limits, fixed at bind time.
#[derive(Copy, Clone, Debug)]
struct ConnLimits {
    request_timeout: Duration,
    max_frame_len: usize,
}

/// A bound (not yet serving) daemon over backend `B`.
pub struct Server<B: Backend> {
    listener: TcpListener,
    registry: Arc<Registry<B>>,
    limits: ConnLimits,
}

impl<B: Backend + Default> Server<B> {
    /// Binds `addr` (port 0 = ephemeral) and builds the device pool and
    /// registry. Nothing is served until [`Server::run`] or
    /// [`Server::spawn`].
    ///
    /// # Errors
    ///
    /// Any socket error from binding, or `InvalidInput` when
    /// `tensor_parallel` or `weight_sharded` is combined with
    /// `precision_tier` (the tiered engine is single-device and keeps full
    /// weights on one device). `tensor_parallel` + `weight_sharded`
    /// composes as hybrid 2D sharding.
    pub fn bind(addr: impl ToSocketAddrs, cfg: ServerConfig) -> std::io::Result<Self> {
        if cfg.tensor_parallel && cfg.precision_tier {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "tensor-parallel serving and the precision tier are mutually exclusive",
            ));
        }
        if cfg.weight_sharded && cfg.precision_tier {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "weight-sharded serving and the precision tier are mutually exclusive",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let n = cfg.devices.max(1);
        let devices: Vec<Device<B>> = (0..n)
            .map(|i| {
                let name = if n == 1 {
                    "gpupoly-serve".to_string()
                } else {
                    format!("gpupoly-serve-d{i}")
                };
                let mut dev_cfg = DeviceConfig::new().name(name);
                if let Some(workers) = cfg.workers {
                    dev_cfg = dev_cfg.workers(workers);
                }
                if let Some(budget) = cfg.memory_budget {
                    dev_cfg = dev_cfg.memory_capacity(budget);
                }
                Device::with_backend(B::default(), dev_cfg)
            })
            .collect();
        let registry = Registry::with_pool(
            Arc::new(DevicePool::from_devices(devices)),
            RegistryConfig {
                model_dir: cfg.model_dir,
                policy: cfg.policy,
                queue_cap: cfg.queue_cap,
                queue_cost_cap: cfg.queue_cost_cap,
                request_timeout: cfg.request_timeout,
                memory_budget: cfg.memory_budget,
                verify: cfg.verify,
                precision_tier: cfg.precision_tier,
                tensor_parallel: cfg.tensor_parallel,
                weight_sharded: cfg.weight_sharded,
            },
        );
        Ok(Self {
            listener,
            registry: Arc::new(registry),
            limits: ConnLimits {
                request_timeout: cfg.request_timeout,
                max_frame_len: cfg.max_frame_len.max(1024),
            },
        })
    }
}

impl<B: Backend> Server<B> {
    /// The bound address (resolves port 0).
    ///
    /// # Panics
    ///
    /// Panics if the socket has no local address (cannot happen for a
    /// bound listener).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener")
    }

    /// The registry behind this server.
    pub fn registry(&self) -> &Arc<Registry<B>> {
        &self.registry
    }

    /// Serves connections on the calling thread until the process exits
    /// (the daemon binary's mode).
    pub fn run(self) {
        let shutdown = Arc::new(AtomicBool::new(false));
        accept_loop(self.listener, self.registry, self.limits, &shutdown);
    }

    /// Serves connections on a background thread; the returned handle
    /// shuts the daemon down cleanly when asked (tests, embedding).
    pub fn spawn(self) -> ServerHandle<B> {
        let addr = self.local_addr();
        let shutdown = Arc::new(AtomicBool::new(false));
        let registry = self.registry.clone();
        let listener = self.listener;
        let limits = self.limits;
        let flag = shutdown.clone();
        let accept = std::thread::Builder::new()
            .name("gpupoly-serve-accept".into())
            .spawn(move || accept_loop(listener, registry, limits, &flag))
            .expect("spawn accept thread");
        ServerHandle {
            addr,
            shutdown,
            accept: Some(accept),
            registry: self.registry,
        }
    }
}

fn accept_loop<B: Backend>(
    listener: TcpListener,
    registry: Arc<Registry<B>>,
    limits: ConnLimits,
    shutdown: &AtomicBool,
) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        let stream = match stream {
            Ok(stream) => stream,
            Err(_) => {
                // Persistent accept errors (EMFILE under connection
                // exhaustion) would otherwise turn this loop into a
                // 100%-CPU spin; back off briefly and retry.
                std::thread::sleep(Duration::from_millis(50));
                continue;
            }
        };
        let registry = registry.clone();
        let _ = std::thread::Builder::new()
            .name("gpupoly-serve-conn".into())
            .spawn(move || handle_connection(stream, &registry, limits));
    }
}

/// A handle to a daemon serving in the background.
pub struct ServerHandle<B: Backend> {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    registry: Arc<Registry<B>>,
}

impl<B: Backend> ServerHandle<B> {
    /// The address the daemon listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry behind this daemon.
    pub fn registry(&self) -> &Arc<Registry<B>> {
        &self.registry
    }

    /// Stops accepting, drains every model worker and joins the accept
    /// thread. Existing connections die with their sockets.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.registry.drain();
    }
}

impl<B: Backend> Drop for ServerHandle<B> {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.shutdown_inner();
        }
    }
}

/// Maximum concurrently-outstanding multiplexed requests per connection.
/// Id-carrying frames beyond this window earn a typed `overloaded` reply
/// (with their id) instead of an unbounded thread pile-up.
const MUX_WINDOW: usize = 64;

fn handle_connection<B: Backend>(stream: TcpStream, registry: &Registry<B>, limits: ConnLimits) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let writer = Mutex::new(stream);
    let mut reader = BufReader::new(read_half);
    let mut buf = Vec::new();
    let outstanding = AtomicUsize::new(0);
    // The scope joins every in-flight multiplexed request before the
    // connection thread exits, so a reply is never written to a socket the
    // loop has already abandoned to another connection's reuse.
    std::thread::scope(|scope| loop {
        let line = match read_frame(&mut reader, &mut buf, limits.max_frame_len) {
            FrameRead::Frame(line) => line,
            FrameRead::TooLong => {
                // The rest of the oversized line was discarded unbuffered;
                // answer with a typed error and keep serving the connection
                // (closing here would race the reply against a TCP reset
                // from the peer's unread bytes).
                let reply = Reply::error(
                    ErrorCode::ParseError,
                    format!("frame exceeds {} bytes", limits.max_frame_len),
                );
                if write_framed(&writer, &reply, None).is_err() {
                    break;
                }
                continue;
            }
            FrameRead::Closed => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let value: Value = match serde_json::from_str(&line) {
            Ok(v) => v,
            Err(e) => {
                let reply = Reply::error(ErrorCode::ParseError, format!("invalid JSON: {e}"));
                if write_framed(&writer, &reply, None).is_err() {
                    break;
                }
                continue;
            }
        };
        let id = match frame_id(&value) {
            Ok(id) => id,
            Err(e) => {
                // The id itself is malformed, so no id can be echoed.
                let reply = Reply::error(ErrorCode::BadRequest, format!("bad frame id: {e}"));
                if write_framed(&writer, &reply, None).is_err() {
                    break;
                }
                continue;
            }
        };
        match id {
            // Id-less frame: the legacy synchronous contract — one reply,
            // in order, before the next frame is read.
            None => {
                let reply = guarded_reply(&value, registry, limits.request_timeout);
                if write_framed(&writer, &reply, None).is_err() {
                    break;
                }
            }
            // Multiplexed frame: dispatch concurrently, echo the id.
            Some(id) => {
                if outstanding.load(Ordering::Acquire) >= MUX_WINDOW {
                    let reply = Reply::error(
                        ErrorCode::Overloaded,
                        format!(
                            "more than {MUX_WINDOW} multiplexed requests outstanding on this connection"
                        ),
                    );
                    if write_framed(&writer, &reply, Some(id)).is_err() {
                        break;
                    }
                    continue;
                }
                outstanding.fetch_add(1, Ordering::AcqRel);
                let (writer, outstanding) = (&writer, &outstanding);
                scope.spawn(move || {
                    let reply = guarded_reply(&value, registry, limits.request_timeout);
                    // A write error here ends only this request; the read
                    // loop observes the dead socket on its own.
                    let _ = write_framed(writer, &reply, Some(id));
                    outstanding.fetch_sub(1, Ordering::AcqRel);
                });
            }
        }
    });
}

/// Computes the reply for one parsed frame, converting panics into typed
/// `internal` errors so a connection never observes a dead socket.
fn guarded_reply<B: Backend>(value: &Value, registry: &Registry<B>, timeout: Duration) -> Reply {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        handle_value(value, registry, timeout)
    }))
    .unwrap_or_else(|_| {
        Reply::error(
            ErrorCode::Internal,
            "request handling panicked; the connection survives",
        )
    })
}

enum FrameRead {
    /// One complete line (newline stripped by the JSON parser's ws rules).
    Frame(String),
    /// The line outran the frame limit; its remainder was discarded
    /// without buffering, so connection memory stays bounded.
    TooLong,
    /// Peer closed (or the socket errored).
    Closed,
}

/// Reads one newline-delimited frame without ever buffering more than
/// `max_len + 1` bytes — the bound that keeps a hostile newline-free
/// stream from growing daemon memory without limit. An over-long line is
/// consumed (and dropped) through the BufReader's fixed-size buffer up to
/// its terminating newline, leaving the stream aligned on the next frame.
fn read_frame(reader: &mut impl BufRead, buf: &mut Vec<u8>, max_len: usize) -> FrameRead {
    buf.clear();
    let mut limited = std::io::Read::take(&mut *reader, max_len as u64 + 1);
    match limited.read_until(b'\n', buf) {
        Ok(0) => FrameRead::Closed,
        Ok(_) if buf.last() != Some(&b'\n') && buf.len() > max_len => {
            // Discard the rest of the line, a buffer at a time.
            loop {
                let (consumed, done) = match reader.fill_buf() {
                    Ok([]) | Err(_) => return FrameRead::Closed,
                    Ok(chunk) => match chunk.iter().position(|&b| b == b'\n') {
                        Some(at) => (at + 1, true),
                        None => (chunk.len(), false),
                    },
                };
                reader.consume(consumed);
                if done {
                    return FrameRead::TooLong;
                }
            }
        }
        Ok(_) => FrameRead::Frame(String::from_utf8_lossy(buf).into_owned()),
        Err(_) => FrameRead::Closed,
    }
}

/// Writes one reply line behind the connection's shared write lock,
/// echoing the request id when present. The lock scope covers the whole
/// line, so concurrent multiplexed replies never interleave bytes.
fn write_framed(writer: &Mutex<TcpStream>, reply: &Reply, id: Option<u64>) -> std::io::Result<()> {
    let framed = frame_with_id(reply, id);
    let text = serde_json::to_string(&framed).map_err(std::io::Error::other)?;
    let mut w = writer.lock();
    w.write_all(text.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

fn handle_value<B: Backend>(
    value: &Value,
    registry: &Registry<B>,
    request_timeout: Duration,
) -> Reply {
    use serde::Deserialize;
    let request = match Request::from_value(value) {
        Ok(r) => r,
        Err(e) => return Reply::error(ErrorCode::BadRequest, e.to_string()),
    };
    match request {
        Request::Ping => Reply::Pong,
        Request::Models => match registry.list_models() {
            Ok(models) => Reply::Models { models },
            Err(e) => Reply::error(ErrorCode::Internal, e),
        },
        Request::Stats => Reply::Stats(stats_snapshot(registry)),
        Request::Verify {
            model,
            image,
            label,
            eps,
        } => handle_verify(registry, model, image, label, eps, request_timeout),
        Request::VerifyComplete {
            model,
            image,
            label,
            eps,
            max_splits,
            deadline_ms,
        } => {
            let budget = RefineBudget {
                max_splits: max_splits.unwrap_or(RefineBudget::default().max_splits),
                deadline: deadline_ms.map(Duration::from_millis),
                ..RefineBudget::default()
            };
            handle_verify_complete(registry, model, image, label, eps, budget, request_timeout)
        }
    }
}

fn device_wire<B: Backend>(device: &Device<B>) -> DeviceStatsWire {
    DeviceStatsWire {
        backend: device.backend().label().to_string(),
        name: device.name().to_string(),
        workers: device.workers() as u64,
        memory_in_use: device.memory_in_use() as u64,
        peak_memory: device.peak_memory() as u64,
        capacity: device.memory_capacity().map(|c| c as u64),
        bytes_allocated: device.stats().bytes_allocated(),
        pool_bytes: device.buffer_pool_bytes() as u64,
        launches: device.stats().launches(),
        flops: device.stats().flops(),
        bytes_moved: device.stats().bytes_moved(),
        resident_bytes: device.stats().resident_bytes(),
        peak_resident_bytes: device.stats().peak_resident_bytes(),
        comms_bytes: device.stats().kernel_work("comms").bytes_moved,
        // Per-label launch counts of the zero-byte gather-cache records
        // (see `gpupoly_core`'s fsdp module): misses are the `comms`
        // copies themselves.
        gather_hits: device.stats().kernel_work("gather_hit").launches,
        gather_misses: device.stats().kernel_work("comms").launches,
        gather_evictions: device.stats().kernel_work("gather_evict").launches,
    }
}

/// Sums a pool's per-device rows into the aggregate `device` row, so the
/// top-level launch/FLOP/byte meters cover every device — not just device
/// 0, which undercounts as soon as work shards or replicates. `capacity`
/// is the pool total only when every device has a budget; a single-device
/// pool reports that device verbatim.
fn aggregate_device_stats(devices: &[DeviceStatsWire]) -> DeviceStatsWire {
    if devices.len() == 1 {
        return devices[0].clone();
    }
    DeviceStatsWire {
        backend: devices
            .first()
            .map(|d| d.backend.clone())
            .unwrap_or_default(),
        name: format!("pool[{}]", devices.len()),
        workers: devices.iter().map(|d| d.workers).sum(),
        memory_in_use: devices.iter().map(|d| d.memory_in_use).sum(),
        peak_memory: devices.iter().map(|d| d.peak_memory).sum(),
        capacity: devices
            .iter()
            .try_fold(0u64, |acc, d| d.capacity.map(|c| acc + c)),
        bytes_allocated: devices.iter().map(|d| d.bytes_allocated).sum(),
        pool_bytes: devices.iter().map(|d| d.pool_bytes).sum(),
        launches: devices.iter().map(|d| d.launches).sum(),
        flops: devices.iter().map(|d| d.flops).sum(),
        bytes_moved: devices.iter().map(|d| d.bytes_moved).sum(),
        resident_bytes: devices.iter().map(|d| d.resident_bytes).sum(),
        peak_resident_bytes: devices.iter().map(|d| d.peak_resident_bytes).sum(),
        comms_bytes: devices.iter().map(|d| d.comms_bytes).sum(),
        gather_hits: devices.iter().map(|d| d.gather_hits).sum(),
        gather_misses: devices.iter().map(|d| d.gather_misses).sum(),
        gather_evictions: devices.iter().map(|d| d.gather_evictions).sum(),
    }
}

fn stats_snapshot<B: Backend>(registry: &Registry<B>) -> StatsReply {
    let devices: Vec<DeviceStatsWire> = registry.pool().devices().iter().map(device_wire).collect();
    StatsReply {
        device: aggregate_device_stats(&devices),
        devices,
        models: registry.model_stats(),
    }
}

fn submit_error_reply(err: SubmitError) -> Reply {
    match err {
        SubmitError::UnknownModel(msg) => Reply::error(ErrorCode::UnknownModel, msg),
        SubmitError::LoadFailed(msg) => Reply::error(ErrorCode::ModelLoadFailed, msg),
        SubmitError::DeviceOom(msg) => Reply::error(ErrorCode::DeviceOom, msg),
        SubmitError::Overloaded(msg) => Reply::error(ErrorCode::Overloaded, msg),
    }
}

/// Awaits one worker reply, folding every failure into a typed error
/// reply. `Ok` carries the successful output for the caller to shape.
/// (The error side is boxed: `Reply` is a wide enum and this sits on the
/// per-request hot path.)
fn await_output(
    rx: &std::sync::mpsc::Receiver<crate::batcher::WorkReply>,
    request_timeout: Duration,
) -> Result<WorkOutput, Box<Reply>> {
    let error = |code, message: String| Err(Box::new(Reply::error(code, message)));
    match rx.recv_timeout(request_timeout) {
        Ok(Ok(output)) => Ok(output),
        Ok(Err(WorkError::Verify(e))) => {
            let code = match &e {
                VerifyError::BadQuery(_) => ErrorCode::BadQuery,
                VerifyError::Device(_) => ErrorCode::DeviceOom,
                VerifyError::Network(_) => ErrorCode::ModelLoadFailed,
                VerifyError::Internal(_) => ErrorCode::Internal,
            };
            error(code, e.to_string())
        }
        Ok(Err(WorkError::Panicked)) => error(
            ErrorCode::Internal,
            "verification panicked inside the worker; the model stays resident".to_string(),
        ),
        Ok(Err(WorkError::Expired)) => error(
            ErrorCode::Timeout,
            "the request expired in the admission queue before dispatch".to_string(),
        ),
        Err(RecvTimeoutError::Timeout) => error(
            ErrorCode::Timeout,
            format!("no verdict within {request_timeout:?}"),
        ),
        Err(RecvTimeoutError::Disconnected) => error(
            ErrorCode::Internal,
            "model worker dropped the request; retry to reload the model".to_string(),
        ),
    }
}

fn handle_verify<B: Backend>(
    registry: &Registry<B>,
    model: String,
    image: Vec<f32>,
    label: usize,
    eps: f32,
    request_timeout: Duration,
) -> Reply {
    let rx = match registry.submit(&model, image, label, eps) {
        Ok(rx) => rx,
        Err(err) => return submit_error_reply(err),
    };
    match await_output(&rx, request_timeout) {
        Ok(WorkOutput::Plain(verdict)) => Reply::Verdict {
            model,
            verified: verdict.verified,
            margins: verdict
                .margins
                .iter()
                .map(|m| WireMargin {
                    adversary: m.adversary,
                    lower: m.lower,
                    proven: m.proven,
                })
                .collect(),
        },
        Ok(other) => Reply::error(
            ErrorCode::Internal,
            format!("worker answered a plain query with {other:?}"),
        ),
        Err(reply) => *reply,
    }
}

fn handle_verify_complete<B: Backend>(
    registry: &Registry<B>,
    model: String,
    image: Vec<f32>,
    label: usize,
    eps: f32,
    budget: RefineBudget,
    request_timeout: Duration,
) -> Reply {
    let rx = match registry.submit_complete(&model, image, label, eps, budget) {
        Ok(rx) => rx,
        Err(err) => return submit_error_reply(err),
    };
    match await_output(&rx, request_timeout) {
        Ok(WorkOutput::Complete(verdict)) => match verdict {
            CompleteVerdict::Proven { splits, .. } => Reply::Complete {
                model,
                status: CompleteStatus::Proven,
                splits,
                frontier_remaining: 0,
                counterexample: None,
                adversary: None,
            },
            CompleteVerdict::Falsified {
                counterexample,
                adversary,
                splits,
            } => Reply::Complete {
                model,
                status: CompleteStatus::Falsified,
                splits,
                frontier_remaining: 0,
                counterexample: Some(counterexample),
                adversary: Some(adversary),
            },
            CompleteVerdict::Unknown {
                splits_exhausted,
                frontier_remaining,
                ..
            } => Reply::Complete {
                model,
                status: CompleteStatus::Unknown,
                splits: splits_exhausted,
                frontier_remaining: frontier_remaining as u64,
                counterexample: None,
                adversary: None,
            },
        },
        Ok(other) => Reply::error(
            ErrorCode::Internal,
            format!("worker answered a complete-mode query with {other:?}"),
        ),
        Err(reply) => *reply,
    }
}
