//! The wire protocol: line-delimited JSON frames over TCP.
//!
//! Every request is one JSON object on one line; every request produces
//! exactly one reply object on one line. Malformed frames get an `error`
//! reply with a typed [`ErrorCode`] and the connection stays open — a client
//! can never crash a connection, only earn error replies.
//!
//! Numbers ride as JSON numbers (f64). Every `f32` the verifier produces
//! round-trips exactly through f64 and shortest-round-trip printing, so a
//! margin read off the wire is bit-identical to the engine's.
//!
//! # Multiplexing
//!
//! A frame may carry an optional `"id"` (a non-negative integer ≤ 2⁵³). A
//! frame *without* an id is answered synchronously, in order — the legacy
//! one-at-a-time contract. A frame *with* an id is dispatched concurrently:
//! the server may interleave replies out of order, and echoes the id back
//! on the reply frame (including error replies, whenever the id could be
//! parsed off the frame) so one connection can keep many verifications in
//! flight. The server bounds the per-connection outstanding window; frames
//! beyond it earn a typed `overloaded` reply carrying their id.
//!
//! # Frames
//!
//! | request                                                | reply |
//! |--------------------------------------------------------|-------|
//! | `{"type":"ping"}`                                      | `{"type":"pong"}` |
//! | `{"type":"models"}`                                    | `{"type":"models","models":[...]}` |
//! | `{"type":"stats"}`                                     | `{"type":"stats","device":{...},"devices":[...],"models":[...]}` |
//! | `{"type":"verify","model":m,"image":[..],"label":l,"eps":e}` | `{"type":"verdict",...}` or `{"type":"error",...}` |
//! | any of the above + `"id":n`                            | the same reply + `"id":n`, possibly out of order |

use serde::{DeError, Deserialize, Serialize, Value};

/// A client request frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// List the models the daemon can serve.
    Models,
    /// Queue depths, batch counters, cache hits, memory/pool accounting.
    Stats,
    /// Certify L∞ robustness of `image` for `label` within `eps` on `model`.
    Verify {
        /// Model name (resolved against the daemon's model directory).
        model: String,
        /// Center image.
        image: Vec<f32>,
        /// Claimed label.
        label: usize,
        /// L∞ radius.
        eps: f32,
    },
    /// Complete-mode verification: plain analysis first, then budgeted
    /// branch-and-bound refinement of an Unknown verdict (input-box
    /// bisection). Answers [`Reply::Complete`].
    VerifyComplete {
        /// Model name (resolved against the daemon's model directory).
        model: String,
        /// Center image.
        image: Vec<f32>,
        /// Claimed label.
        label: usize,
        /// L∞ radius.
        eps: f32,
        /// Maximum bisections to spend (`None` = server default of 32).
        max_splits: Option<u32>,
        /// Wall-clock allowance for the refinement in milliseconds
        /// (`None` = splits-only budgeting).
        deadline_ms: Option<u64>,
    },
}

/// A server reply frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// Reply to [`Request::Ping`].
    Pong,
    /// Reply to [`Request::Models`].
    Models {
        /// One entry per model file in the daemon's directory.
        models: Vec<ModelInfo>,
    },
    /// Reply to [`Request::Stats`].
    Stats(StatsReply),
    /// Successful [`Request::Verify`].
    Verdict {
        /// The model that served the query.
        model: String,
        /// `true` when every margin was proven positive.
        verified: bool,
        /// Certified margins against every adversary class.
        margins: Vec<WireMargin>,
    },
    /// Successful [`Request::VerifyComplete`].
    Complete {
        /// The model that served the query.
        model: String,
        /// Refinement outcome.
        status: CompleteStatus,
        /// Bisections actually spent.
        splits: u64,
        /// Sub-boxes still undecided when the budget ran out (`0` unless
        /// `status` is `Unknown`).
        frontier_remaining: u64,
        /// The verified adversarial input, when `status` is `Falsified`.
        /// `f64` on the wire: complete-mode verdicts are produced at (or
        /// widened to) full precision server-side.
        counterexample: Option<Vec<f64>>,
        /// The class the counterexample provably wins, when `Falsified`.
        adversary: Option<usize>,
    },
    /// Any failure, with a machine-readable code.
    Error {
        /// The error class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Reply {
    /// Builds an error reply.
    pub fn error(code: ErrorCode, message: impl Into<String>) -> Self {
        Reply::Error {
            code,
            message: message.into(),
        }
    }
}

/// Outcome class of a [`Reply::Complete`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CompleteStatus {
    /// Every sub-box (or the base analysis) certified the property.
    Proven,
    /// A concrete counterexample was found and independently verified.
    Falsified,
    /// The split or wall-clock budget ran out with sub-boxes undecided.
    Unknown,
}

impl CompleteStatus {
    /// The wire spelling of the status.
    pub fn as_str(self) -> &'static str {
        match self {
            CompleteStatus::Proven => "proven",
            CompleteStatus::Falsified => "falsified",
            CompleteStatus::Unknown => "unknown",
        }
    }

    /// Parses the wire spelling.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "proven" => CompleteStatus::Proven,
            "falsified" => CompleteStatus::Falsified,
            "unknown" => CompleteStatus::Unknown,
            _ => return None,
        })
    }
}

/// One certified margin on the wire (mirrors `gpupoly_core::Margin<f32>`).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct WireMargin {
    /// The competing class.
    pub adversary: usize,
    /// Certified lower bound on `y_label − y_adversary` (bit-exact f32).
    pub lower: f32,
    /// Whether this margin was proven positive.
    pub proven: bool,
}

/// One row of a [`Reply::Models`] listing.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelInfo {
    /// Model name (file stem in the model directory).
    pub name: String,
    /// Whether a resident engine currently serves this model.
    pub loaded: bool,
    /// Input dimension (flattened).
    pub input_len: usize,
    /// Output dimension (class count).
    pub outputs: usize,
}

/// Device-level counters of a [`Reply::Stats`].
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceStatsWire {
    /// Kernel backend label (`cpusim` / `reference` / ...).
    pub backend: String,
    /// Device name (`pool[n]` for the aggregate row of a multi-device pool).
    pub name: String,
    /// Device worker count.
    pub workers: u64,
    /// Bytes currently allocated on the device.
    pub memory_in_use: u64,
    /// High-water mark of allocated bytes.
    pub peak_memory: u64,
    /// Configured capacity (absent = unlimited).
    pub capacity: Option<u64>,
    /// Cumulative bytes ever allocated (flat across a drained steady state).
    pub bytes_allocated: u64,
    /// Bytes currently shelved in the buffer pool.
    pub pool_bytes: u64,
    /// Kernel launches issued by the device.
    pub launches: u64,
    /// Scalar-equivalent flops metered by the device's kernels.
    pub flops: u64,
    /// Bytes read + written by the device's kernels.
    pub bytes_moved: u64,
    /// Bytes of model weights currently resident on the device. On a
    /// weight-sharded pool each device reports only its own shard here.
    pub resident_bytes: u64,
    /// High-water mark of resident model-weight bytes on the device.
    pub peak_resident_bytes: u64,
    /// Bytes all-gathered between devices by weight-sharded / hybrid walks
    /// (the `comms` kernel label); `0` on row-sharded or single-device
    /// pools.
    pub comms_bytes: u64,
    /// Remote-layer gathers served from this device's gather cache
    /// (weight-sharded / hybrid pools; `0` otherwise and on frames from
    /// older servers).
    pub gather_hits: u64,
    /// Remote-layer gathers that copied bytes onto this device — the
    /// `comms` traffic, in events (`0` on frames from older servers).
    pub gather_misses: u64,
    /// Gathered layers evicted from this device's cache by the
    /// next-use-distance policy (`0` on frames from older servers).
    pub gather_evictions: u64,
}

/// Per-model counters of a [`Reply::Stats`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ModelStatsWire {
    /// Model name.
    pub name: String,
    /// Bytes of this model's weights resident on the device.
    pub resident_bytes: u64,
    /// Requests currently waiting in the admission queue.
    pub queue_depth: u64,
    /// Requests admitted but not yet answered.
    pub in_flight: u64,
    /// Requests answered (successfully or with a per-query error).
    pub completed: u64,
    /// Requests bounced with `overloaded` by the admission queue.
    pub rejected_overload: u64,
    /// `verify_batch` calls issued.
    pub batches: u64,
    /// Total queries across all batches (`batch_items / batches` = mean
    /// coalesced batch size).
    pub batch_items: u64,
    /// Largest coalesced batch so far.
    pub max_batch: u64,
    /// Engine analysis-cache hits.
    pub cache_hits: u64,
    /// Engine analysis-cache misses.
    pub cache_misses: u64,
    /// Batches served by the engine's fused cross-query path.
    pub fused_batches: u64,
    /// Estimated microseconds of admitted-but-unanswered work.
    pub pending_cost_us: u64,
    /// Requests bounced by the cost-aware admission cap (subset of
    /// `rejected_overload`).
    pub rejected_cost: u64,
    /// Measured wall milliseconds per unit of query cost (EWMA; `0` until
    /// the first measured batch).
    pub ewma_ms_per_cost: f64,
    /// Queries resolved by the `f32` fast tier (precision-tiered workers
    /// only; `0` otherwise).
    pub fast_pass_resolved: u64,
    /// Queries escalated to the `f64` tier (precision-tiered workers only).
    pub escalated: u64,
    /// Queued items dropped unverified because their admission deadline
    /// passed before dispatch (each answered with a typed `timeout`).
    pub expired_dropped: u64,
    /// Branch-and-bound bisections spent across all complete-mode queries.
    pub splits: u64,
    /// Largest refinement frontier any single generation held.
    pub frontier_peak: u64,
    /// Complete-mode queries that flipped Unknown → Proven via splitting.
    pub proven_by_split: u64,
    /// Complete-mode queries refuted by a verified concrete counterexample.
    pub cex_found: u64,
}

/// Body of a [`Reply::Stats`].
#[derive(Clone, Debug, PartialEq)]
pub struct StatsReply {
    /// Pool-aggregate device counters (sums across every device; equals the
    /// single device's counters on a 1-device pool). Launch/FLOP/byte meters
    /// here cover the *whole* pool, not just device 0.
    pub device: DeviceStatsWire,
    /// Per-device breakdown, one entry per pool device in index order.
    pub devices: Vec<DeviceStatsWire>,
    /// One entry per *loaded* model.
    pub models: Vec<ModelStatsWire>,
}

/// Machine-readable error classes. Every failure path of the daemon maps to
/// exactly one of these; clients can branch on the code without parsing
/// messages.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame was not valid JSON.
    ParseError,
    /// Valid JSON, but not a well-formed request.
    BadRequest,
    /// The named model does not exist in the model directory.
    UnknownModel,
    /// The model file exists but could not be loaded/prepared.
    ModelLoadFailed,
    /// The verifier rejected the query (wrong dimension, bad label, ...).
    BadQuery,
    /// Admission queue full or device memory budget exhausted; retry later.
    Overloaded,
    /// The device ran out of memory even after chunking.
    DeviceOom,
    /// The request exceeded the server's reply deadline.
    Timeout,
    /// A server-side invariant broke; the connection survives.
    Internal,
}

impl ErrorCode {
    /// The wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::ParseError => "parse_error",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownModel => "unknown_model",
            ErrorCode::ModelLoadFailed => "model_load_failed",
            ErrorCode::BadQuery => "bad_query",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::DeviceOom => "device_oom",
            ErrorCode::Timeout => "timeout",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parses the wire spelling.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "parse_error" => ErrorCode::ParseError,
            "bad_request" => ErrorCode::BadRequest,
            "unknown_model" => ErrorCode::UnknownModel,
            "model_load_failed" => ErrorCode::ModelLoadFailed,
            "bad_query" => ErrorCode::BadQuery,
            "overloaded" => ErrorCode::Overloaded,
            "device_oom" => ErrorCode::DeviceOom,
            "timeout" => ErrorCode::Timeout,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

// ---------------------------------------------------------------------------
// serde impls (hand-written over the shim's value model)

/// Reads a non-negative integer field (rejecting fractions and negatives,
/// which `as usize` casts would silently mangle).
fn as_index(v: &Value) -> Result<usize, DeError> {
    let x = v.as_f64()?;
    if x < 0.0 || x.fract() != 0.0 || x > 9.0e15 {
        return Err(DeError(format!("expected a non-negative integer, got {x}")));
    }
    Ok(x as usize)
}

/// Reads an optional field: absent and JSON `null` both mean `None`.
fn opt_field<'a>(v: &'a Value, name: &str) -> Option<&'a Value> {
    match v.field(name) {
        Ok(Value::Null) | Err(_) => None,
        Ok(x) => Some(x),
    }
}

/// Extracts the optional multiplexing `"id"` off a raw frame value.
///
/// `Ok(None)` for id-less frames (the synchronous in-order path),
/// `Ok(Some(id))` for multiplexed frames, `Err` when an `id` field is
/// present but is not a non-negative integer — such frames are answered
/// with a `bad_request` error that necessarily carries no id.
pub fn frame_id(v: &Value) -> Result<Option<u64>, DeError> {
    match opt_field(v, "id") {
        None => Ok(None),
        Some(n) => Ok(Some(as_index(n)? as u64)),
    }
}

/// Serializes a frame (request or reply), attaching `id` when present.
/// This is the only place frames acquire their id: the [`Request`] and
/// [`Reply`] types themselves stay id-agnostic.
pub fn frame_with_id(frame: &impl Serialize, id: Option<u64>) -> Value {
    let mut v = frame.to_value();
    if let (Some(id), Value::Obj(fields)) = (id, &mut v) {
        fields.push(("id".to_string(), Value::Num(id as f64)));
    }
    v
}

/// Reads the echoed id off a reply frame (client side).
pub fn reply_id(v: &Value) -> Option<u64> {
    frame_id(v).ok().flatten()
}

impl Serialize for Request {
    fn to_value(&self) -> Value {
        match self {
            Request::Ping => Value::obj([("type", Value::Str("ping".into()))]),
            Request::Models => Value::obj([("type", Value::Str("models".into()))]),
            Request::Stats => Value::obj([("type", Value::Str("stats".into()))]),
            Request::Verify {
                model,
                image,
                label,
                eps,
            } => Value::obj([
                ("type", Value::Str("verify".into())),
                ("model", Value::Str(model.clone())),
                ("image", image.to_value()),
                ("label", Value::Num(*label as f64)),
                ("eps", Value::Num(f64::from(*eps))),
            ]),
            Request::VerifyComplete {
                model,
                image,
                label,
                eps,
                max_splits,
                deadline_ms,
            } => Value::obj([
                ("type", Value::Str("verify_complete".into())),
                ("model", Value::Str(model.clone())),
                ("image", image.to_value()),
                ("label", Value::Num(*label as f64)),
                ("eps", Value::Num(f64::from(*eps))),
                (
                    "max_splits",
                    match max_splits {
                        Some(n) => Value::Num(f64::from(*n)),
                        None => Value::Null,
                    },
                ),
                (
                    "deadline_ms",
                    match deadline_ms {
                        Some(ms) => Value::Num(*ms as f64),
                        None => Value::Null,
                    },
                ),
            ]),
        }
    }
}

impl<'de> Deserialize<'de> for Request {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.field("type")?.as_str()? {
            "ping" => Ok(Request::Ping),
            "models" => Ok(Request::Models),
            "stats" => Ok(Request::Stats),
            "verify" => Ok(Request::Verify {
                model: v.field("model")?.as_str()?.to_string(),
                image: Vec::from_value(v.field("image")?)?,
                label: as_index(v.field("label")?)?,
                eps: f32::from_value(v.field("eps")?)?,
            }),
            "verify_complete" => Ok(Request::VerifyComplete {
                model: v.field("model")?.as_str()?.to_string(),
                image: Vec::from_value(v.field("image")?)?,
                label: as_index(v.field("label")?)?,
                eps: f32::from_value(v.field("eps")?)?,
                max_splits: match opt_field(v, "max_splits") {
                    Some(n) => Some(u32::try_from(as_index(n)?).map_err(|_| {
                        DeError("max_splits exceeds the 32-bit split budget".into())
                    })?),
                    None => None,
                },
                deadline_ms: match opt_field(v, "deadline_ms") {
                    Some(ms) => Some(as_index(ms)? as u64),
                    None => None,
                },
            }),
            other => Err(DeError(format!("unknown request type `{other}`"))),
        }
    }
}

impl Serialize for WireMargin {
    fn to_value(&self) -> Value {
        Value::obj([
            ("adversary", Value::Num(self.adversary as f64)),
            ("lower", Value::Num(f64::from(self.lower))),
            ("proven", Value::Bool(self.proven)),
        ])
    }
}

impl<'de> Deserialize<'de> for WireMargin {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(WireMargin {
            adversary: as_index(v.field("adversary")?)?,
            lower: f32::from_value(v.field("lower")?)?,
            proven: bool::from_value(v.field("proven")?)?,
        })
    }
}

impl Serialize for ModelInfo {
    fn to_value(&self) -> Value {
        Value::obj([
            ("name", Value::Str(self.name.clone())),
            ("loaded", Value::Bool(self.loaded)),
            ("input_len", Value::Num(self.input_len as f64)),
            ("outputs", Value::Num(self.outputs as f64)),
        ])
    }
}

impl<'de> Deserialize<'de> for ModelInfo {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(ModelInfo {
            name: v.field("name")?.as_str()?.to_string(),
            loaded: bool::from_value(v.field("loaded")?)?,
            input_len: as_index(v.field("input_len")?)?,
            outputs: as_index(v.field("outputs")?)?,
        })
    }
}

impl Serialize for DeviceStatsWire {
    fn to_value(&self) -> Value {
        Value::obj([
            ("backend", Value::Str(self.backend.clone())),
            ("name", Value::Str(self.name.clone())),
            ("workers", Value::Num(self.workers as f64)),
            ("memory_in_use", Value::Num(self.memory_in_use as f64)),
            ("peak_memory", Value::Num(self.peak_memory as f64)),
            (
                "capacity",
                match self.capacity {
                    Some(c) => Value::Num(c as f64),
                    None => Value::Null,
                },
            ),
            ("bytes_allocated", Value::Num(self.bytes_allocated as f64)),
            ("pool_bytes", Value::Num(self.pool_bytes as f64)),
            ("launches", Value::Num(self.launches as f64)),
            ("flops", Value::Num(self.flops as f64)),
            ("bytes_moved", Value::Num(self.bytes_moved as f64)),
            ("resident_bytes", Value::Num(self.resident_bytes as f64)),
            (
                "peak_resident_bytes",
                Value::Num(self.peak_resident_bytes as f64),
            ),
            ("comms_bytes", Value::Num(self.comms_bytes as f64)),
            ("gather_hits", Value::Num(self.gather_hits as f64)),
            ("gather_misses", Value::Num(self.gather_misses as f64)),
            ("gather_evictions", Value::Num(self.gather_evictions as f64)),
        ])
    }
}

impl<'de> Deserialize<'de> for DeviceStatsWire {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(DeviceStatsWire {
            backend: v.field("backend")?.as_str()?.to_string(),
            // Absent on pre-pool frames: old daemons named no devices.
            name: match opt_field(v, "name") {
                Some(n) => n.as_str()?.to_string(),
                None => String::new(),
            },
            workers: as_index(v.field("workers")?)? as u64,
            memory_in_use: as_index(v.field("memory_in_use")?)? as u64,
            peak_memory: as_index(v.field("peak_memory")?)? as u64,
            capacity: match v.field("capacity")? {
                Value::Null => None,
                num => Some(as_index(num)? as u64),
            },
            bytes_allocated: as_index(v.field("bytes_allocated")?)? as u64,
            pool_bytes: as_index(v.field("pool_bytes")?)? as u64,
            launches: as_index(v.field("launches")?)? as u64,
            flops: as_index(v.field("flops")?)? as u64,
            bytes_moved: as_index(v.field("bytes_moved")?)? as u64,
            // Absent on pre-weight-sharding frames: default to zero.
            resident_bytes: match opt_field(v, "resident_bytes") {
                Some(n) => as_index(n)? as u64,
                None => 0,
            },
            peak_resident_bytes: match opt_field(v, "peak_resident_bytes") {
                Some(n) => as_index(n)? as u64,
                None => 0,
            },
            comms_bytes: match opt_field(v, "comms_bytes") {
                Some(n) => as_index(n)? as u64,
                None => 0,
            },
            // Absent on pre-hybrid frames: default to zero.
            gather_hits: match opt_field(v, "gather_hits") {
                Some(n) => as_index(n)? as u64,
                None => 0,
            },
            gather_misses: match opt_field(v, "gather_misses") {
                Some(n) => as_index(n)? as u64,
                None => 0,
            },
            gather_evictions: match opt_field(v, "gather_evictions") {
                Some(n) => as_index(n)? as u64,
                None => 0,
            },
        })
    }
}

impl Serialize for ModelStatsWire {
    fn to_value(&self) -> Value {
        Value::obj([
            ("name", Value::Str(self.name.clone())),
            ("resident_bytes", Value::Num(self.resident_bytes as f64)),
            ("queue_depth", Value::Num(self.queue_depth as f64)),
            ("in_flight", Value::Num(self.in_flight as f64)),
            ("completed", Value::Num(self.completed as f64)),
            (
                "rejected_overload",
                Value::Num(self.rejected_overload as f64),
            ),
            ("batches", Value::Num(self.batches as f64)),
            ("batch_items", Value::Num(self.batch_items as f64)),
            ("max_batch", Value::Num(self.max_batch as f64)),
            ("cache_hits", Value::Num(self.cache_hits as f64)),
            ("cache_misses", Value::Num(self.cache_misses as f64)),
            ("fused_batches", Value::Num(self.fused_batches as f64)),
            ("pending_cost_us", Value::Num(self.pending_cost_us as f64)),
            ("rejected_cost", Value::Num(self.rejected_cost as f64)),
            ("ewma_ms_per_cost", Value::Num(self.ewma_ms_per_cost)),
            (
                "fast_pass_resolved",
                Value::Num(self.fast_pass_resolved as f64),
            ),
            ("escalated", Value::Num(self.escalated as f64)),
            ("expired_dropped", Value::Num(self.expired_dropped as f64)),
            ("splits", Value::Num(self.splits as f64)),
            ("frontier_peak", Value::Num(self.frontier_peak as f64)),
            ("proven_by_split", Value::Num(self.proven_by_split as f64)),
            ("cex_found", Value::Num(self.cex_found as f64)),
        ])
    }
}

impl<'de> Deserialize<'de> for ModelStatsWire {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let num = |name: &str| -> Result<u64, DeError> { Ok(as_index(v.field(name)?)? as u64) };
        Ok(ModelStatsWire {
            name: v.field("name")?.as_str()?.to_string(),
            resident_bytes: num("resident_bytes")?,
            queue_depth: num("queue_depth")?,
            in_flight: num("in_flight")?,
            completed: num("completed")?,
            rejected_overload: num("rejected_overload")?,
            batches: num("batches")?,
            batch_items: num("batch_items")?,
            max_batch: num("max_batch")?,
            cache_hits: num("cache_hits")?,
            cache_misses: num("cache_misses")?,
            fused_batches: num("fused_batches")?,
            pending_cost_us: num("pending_cost_us")?,
            rejected_cost: num("rejected_cost")?,
            ewma_ms_per_cost: v.field("ewma_ms_per_cost")?.as_f64()?,
            fast_pass_resolved: num("fast_pass_resolved")?,
            escalated: num("escalated")?,
            expired_dropped: num("expired_dropped")?,
            splits: num("splits")?,
            frontier_peak: num("frontier_peak")?,
            proven_by_split: num("proven_by_split")?,
            cex_found: num("cex_found")?,
        })
    }
}

impl Serialize for Reply {
    fn to_value(&self) -> Value {
        match self {
            Reply::Pong => Value::obj([("type", Value::Str("pong".into()))]),
            Reply::Models { models } => Value::obj([
                ("type", Value::Str("models".into())),
                ("models", models.to_value()),
            ]),
            Reply::Stats(stats) => Value::obj([
                ("type", Value::Str("stats".into())),
                ("device", stats.device.to_value()),
                ("devices", stats.devices.to_value()),
                ("models", stats.models.to_value()),
            ]),
            Reply::Verdict {
                model,
                verified,
                margins,
            } => Value::obj([
                ("type", Value::Str("verdict".into())),
                ("model", Value::Str(model.clone())),
                ("verified", Value::Bool(*verified)),
                ("margins", margins.to_value()),
            ]),
            Reply::Complete {
                model,
                status,
                splits,
                frontier_remaining,
                counterexample,
                adversary,
            } => Value::obj([
                ("type", Value::Str("complete".into())),
                ("model", Value::Str(model.clone())),
                ("status", Value::Str(status.as_str().into())),
                ("splits", Value::Num(*splits as f64)),
                ("frontier_remaining", Value::Num(*frontier_remaining as f64)),
                (
                    "counterexample",
                    match counterexample {
                        Some(cx) => cx.to_value(),
                        None => Value::Null,
                    },
                ),
                (
                    "adversary",
                    match adversary {
                        Some(a) => Value::Num(*a as f64),
                        None => Value::Null,
                    },
                ),
            ]),
            Reply::Error { code, message } => Value::obj([
                ("type", Value::Str("error".into())),
                ("code", Value::Str(code.as_str().into())),
                ("message", Value::Str(message.clone())),
            ]),
        }
    }
}

impl<'de> Deserialize<'de> for Reply {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.field("type")?.as_str()? {
            "pong" => Ok(Reply::Pong),
            "models" => Ok(Reply::Models {
                models: Vec::from_value(v.field("models")?)?,
            }),
            "stats" => Ok(Reply::Stats(StatsReply {
                device: DeviceStatsWire::from_value(v.field("device")?)?,
                // Absent on pre-pool frames: the aggregate was the only row.
                devices: match opt_field(v, "devices") {
                    Some(d) => Vec::from_value(d)?,
                    None => Vec::new(),
                },
                models: Vec::from_value(v.field("models")?)?,
            })),
            "verdict" => Ok(Reply::Verdict {
                model: v.field("model")?.as_str()?.to_string(),
                verified: bool::from_value(v.field("verified")?)?,
                margins: Vec::from_value(v.field("margins")?)?,
            }),
            "complete" => {
                let status = v.field("status")?.as_str()?;
                Ok(Reply::Complete {
                    model: v.field("model")?.as_str()?.to_string(),
                    status: CompleteStatus::parse(status)
                        .ok_or_else(|| DeError(format!("unknown complete status `{status}`")))?,
                    splits: as_index(v.field("splits")?)? as u64,
                    frontier_remaining: as_index(v.field("frontier_remaining")?)? as u64,
                    counterexample: match opt_field(v, "counterexample") {
                        Some(cx) => Some(Vec::from_value(cx)?),
                        None => None,
                    },
                    adversary: match opt_field(v, "adversary") {
                        Some(a) => Some(as_index(a)?),
                        None => None,
                    },
                })
            }
            "error" => {
                let code = v.field("code")?.as_str()?;
                Ok(Reply::Error {
                    code: ErrorCode::parse(code)
                        .ok_or_else(|| DeError(format!("unknown error code `{code}`")))?,
                    message: v.field("message")?.as_str()?.to_string(),
                })
            }
            other => Err(DeError(format!("unknown reply type `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: &Request) {
        let text = serde_json::to_string(req).unwrap();
        let back: Request = serde_json::from_str(&text).unwrap();
        assert_eq!(&back, req, "{text}");
    }

    fn round_trip_reply(reply: &Reply) {
        let text = serde_json::to_string(reply).unwrap();
        assert!(!text.contains('\n'), "frames must be single lines");
        let back: Reply = serde_json::from_str(&text).unwrap();
        assert_eq!(&back, reply, "{text}");
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(&Request::Ping);
        round_trip_request(&Request::Models);
        round_trip_request(&Request::Stats);
        round_trip_request(&Request::Verify {
            model: "mnist_6x500".into(),
            image: vec![0.1, 0.25, f32::MIN_POSITIVE, 1.0],
            label: 7,
            eps: 8.0 / 255.0,
        });
        round_trip_request(&Request::VerifyComplete {
            model: "mnist_6x500".into(),
            image: vec![0.1, 0.25, 1.0],
            label: 7,
            eps: 8.0 / 255.0,
            max_splits: Some(64),
            deadline_ms: None,
        });
        round_trip_request(&Request::VerifyComplete {
            model: "m".into(),
            image: vec![0.5],
            label: 0,
            eps: 0.1,
            max_splits: None,
            deadline_ms: Some(2500),
        });
        // Omitted optional budget fields parse as None.
        let sparse: Request = serde_json::from_str(
            r#"{"type":"verify_complete","model":"m","image":[0.5],"label":0,"eps":0.1}"#,
        )
        .unwrap();
        assert_eq!(
            sparse,
            Request::VerifyComplete {
                model: "m".into(),
                image: vec![0.5],
                label: 0,
                eps: 0.1,
                max_splits: None,
                deadline_ms: None,
            }
        );
    }

    #[test]
    fn replies_round_trip() {
        round_trip_reply(&Reply::Pong);
        round_trip_reply(&Reply::Models {
            models: vec![ModelInfo {
                name: "m".into(),
                loaded: true,
                input_len: 784,
                outputs: 10,
            }],
        });
        round_trip_reply(&Reply::Verdict {
            model: "m".into(),
            verified: false,
            margins: vec![
                WireMargin {
                    adversary: 1,
                    lower: -0.125,
                    proven: false,
                },
                WireMargin {
                    adversary: 2,
                    lower: 1.0e-30,
                    proven: true,
                },
            ],
        });
        round_trip_reply(&Reply::Stats(StatsReply {
            device: DeviceStatsWire {
                backend: "cpusim".into(),
                name: "pool[2]".into(),
                workers: 8,
                memory_in_use: 123,
                peak_memory: 456,
                capacity: None,
                bytes_allocated: 789,
                pool_bytes: 10,
                launches: 41,
                flops: 123_456,
                bytes_moved: 7_890,
                resident_bytes: 2_000,
                peak_resident_bytes: 2_100,
                comms_bytes: 512,
                gather_hits: 30,
                gather_misses: 2,
                gather_evictions: 1,
            },
            devices: vec![
                DeviceStatsWire {
                    backend: "cpusim".into(),
                    name: "d0".into(),
                    workers: 4,
                    memory_in_use: 100,
                    peak_memory: 200,
                    capacity: Some(1 << 20),
                    bytes_allocated: 400,
                    pool_bytes: 5,
                    launches: 21,
                    flops: 61_728,
                    bytes_moved: 3_945,
                    resident_bytes: 1_000,
                    peak_resident_bytes: 1_050,
                    comms_bytes: 512,
                    gather_hits: 18,
                    gather_misses: 2,
                    gather_evictions: 1,
                },
                DeviceStatsWire {
                    backend: "cpusim".into(),
                    name: "d1".into(),
                    workers: 4,
                    memory_in_use: 23,
                    peak_memory: 256,
                    capacity: Some(1 << 20),
                    bytes_allocated: 389,
                    pool_bytes: 5,
                    launches: 20,
                    flops: 61_728,
                    bytes_moved: 3_945,
                    resident_bytes: 1_000,
                    peak_resident_bytes: 1_050,
                    comms_bytes: 0,
                    gather_hits: 12,
                    gather_misses: 0,
                    gather_evictions: 0,
                },
            ],
            models: vec![ModelStatsWire {
                name: "m".into(),
                resident_bytes: 1,
                queue_depth: 2,
                in_flight: 3,
                completed: 4,
                rejected_overload: 5,
                batches: 6,
                batch_items: 7,
                max_batch: 8,
                cache_hits: 9,
                cache_misses: 10,
                fused_batches: 11,
                pending_cost_us: 12,
                rejected_cost: 13,
                ewma_ms_per_cost: 0.25,
                fast_pass_resolved: 14,
                escalated: 15,
                expired_dropped: 16,
                splits: 17,
                frontier_peak: 18,
                proven_by_split: 19,
                cex_found: 20,
            }],
        }));
        round_trip_reply(&Reply::Complete {
            model: "m".into(),
            status: CompleteStatus::Proven,
            splits: 5,
            frontier_remaining: 0,
            counterexample: None,
            adversary: None,
        });
        round_trip_reply(&Reply::Complete {
            model: "m".into(),
            status: CompleteStatus::Falsified,
            splits: 0,
            frontier_remaining: 0,
            counterexample: Some(vec![0.125, 0.75, 1.0e-12]),
            adversary: Some(3),
        });
        round_trip_reply(&Reply::Complete {
            model: "m".into(),
            status: CompleteStatus::Unknown,
            splits: 32,
            frontier_remaining: 33,
            counterexample: None,
            adversary: None,
        });
        round_trip_reply(&Reply::error(ErrorCode::Overloaded, "queue full"));
    }

    #[test]
    fn frame_ids_extract_and_echo() {
        // Requests parse unchanged with an id riding along.
        let v: Value = serde_json::from_str(r#"{"type":"ping","id":42}"#).expect("frame parses");
        assert_eq!(frame_id(&v), Ok(Some(42)));
        assert_eq!(Request::from_value(&v), Ok(Request::Ping));
        // Id-less frames are the synchronous path.
        let bare: Value = serde_json::from_str(r#"{"type":"ping"}"#).unwrap();
        assert_eq!(frame_id(&bare), Ok(None));
        // Negative / fractional ids are rejected, not cast.
        for bad in [r#"{"type":"ping","id":-3}"#, r#"{"type":"ping","id":1.5}"#] {
            let v: Value = serde_json::from_str(bad).unwrap();
            assert!(frame_id(&v).is_err(), "{bad}");
        }
        // Replies echo the id and the id survives reserialization.
        let framed = frame_with_id(&Reply::Pong, Some(7));
        let text = serde_json::to_string(&framed).unwrap();
        let back: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(reply_id(&back), Some(7));
        assert_eq!(Reply::from_value(&back), Ok(Reply::Pong));
        // No id: the frame is untouched.
        assert_eq!(frame_with_id(&Reply::Pong, None), Reply::Pong.to_value());
    }

    #[test]
    fn stats_tolerate_pre_pool_frames() {
        // A frame from an old single-device daemon: no `name`, no `devices`.
        let text = r#"{"type":"stats","device":{"backend":"cpusim","workers":2,
            "memory_in_use":1,"peak_memory":2,"capacity":null,"bytes_allocated":3,
            "pool_bytes":0,"launches":4,"flops":5,"bytes_moved":6},"models":[]}"#
            .replace('\n', " ");
        let reply: Reply = serde_json::from_str(&text).expect("old frame parses");
        match reply {
            Reply::Stats(s) => {
                assert_eq!(s.device.name, "");
                assert!(s.devices.is_empty());
                // Pre-weight-sharding fields default rather than fail.
                assert_eq!(s.device.resident_bytes, 0);
                assert_eq!(s.device.peak_resident_bytes, 0);
                assert_eq!(s.device.comms_bytes, 0);
                // Pre-hybrid gather-cache fields default rather than fail.
                assert_eq!(s.device.gather_hits, 0);
                assert_eq!(s.device.gather_misses, 0);
                assert_eq!(s.device.gather_evictions, 0);
            }
            other => panic!("wrong reply {other:?}"),
        }
    }

    #[test]
    fn margins_survive_the_wire_bit_exactly() {
        for lower in [0.1f32, -1.5e-7, f32::MAX, f32::MIN_POSITIVE, -0.0] {
            let reply = Reply::Verdict {
                model: "m".into(),
                verified: lower > 0.0,
                margins: vec![WireMargin {
                    adversary: 0,
                    lower,
                    proven: lower > 0.0,
                }],
            };
            let text = serde_json::to_string(&reply).unwrap();
            let back: Reply = serde_json::from_str(&text).unwrap();
            match back {
                Reply::Verdict { margins, .. } => {
                    assert_eq!(margins[0].lower.to_bits(), lower.to_bits(), "{text}");
                }
                other => panic!("wrong reply {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_frames_are_typed_errors() {
        assert!(serde_json::from_str::<Request>("{ nope").is_err());
        assert!(serde_json::from_str::<Request>("{\"type\":\"warp\"}").is_err());
        // Negative / fractional labels are rejected, not cast.
        for bad in [
            r#"{"type":"verify","model":"m","image":[0.1],"label":-1,"eps":0.1}"#,
            r#"{"type":"verify","model":"m","image":[0.1],"label":1.5,"eps":0.1}"#,
        ] {
            assert!(serde_json::from_str::<Request>(bad).is_err(), "{bad}");
        }
        // Every error code round-trips its wire spelling.
        for code in [
            ErrorCode::ParseError,
            ErrorCode::BadRequest,
            ErrorCode::UnknownModel,
            ErrorCode::ModelLoadFailed,
            ErrorCode::BadQuery,
            ErrorCode::Overloaded,
            ErrorCode::DeviceOom,
            ErrorCode::Timeout,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
    }
}
