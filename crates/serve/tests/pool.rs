//! End-to-end coverage of the sharded serving surface: the multiplexed
//! wire (id-tagged pipelined frames over one connection) and a 2-device
//! pool serving tensor-parallel — margins bit-identical to a single-device
//! engine, per-device stats on the wire, both devices doing real work.

use std::path::PathBuf;
use std::time::Duration;

use gpupoly_core::{Engine, Query, VerifyConfig};
use gpupoly_device::{CpuSimBackend, Device, DeviceConfig};
use gpupoly_nn::builder::NetworkBuilder;
use gpupoly_nn::{store, Network};
use gpupoly_serve::protocol::{ErrorCode, Reply, Request};
use gpupoly_serve::{
    Client, ClientError, DevicePool, Registry, RegistryConfig, Server, ServerConfig,
};

/// Deterministic dense ReLU net: `inputs → width (ReLU) → outputs`.
fn make_net(seed: u64, inputs: usize, width: usize, outputs: usize) -> Network<f32> {
    let mix = |i: usize, s: u64| {
        ((((i as u64 + 11) * (s + 37)) * 2654435761 % 1999) as f32 / 999.0 - 1.0) * 0.4
    };
    NetworkBuilder::new_flat(inputs)
        .dense_flat(
            width,
            (0..width * inputs).map(|i| mix(i, seed)).collect(),
            (0..width).map(|i| mix(i, seed + 5) * 0.3).collect(),
        )
        .relu()
        .dense_flat(
            outputs,
            (0..outputs * width).map(|i| mix(i, seed + 9)).collect(),
            vec![0.0; outputs],
        )
        .build()
        .expect("valid net")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gpupoly-pool-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One connection, many outstanding id-tagged requests: every reply comes
/// back with its id (possibly out of order), an interleaved id-less frame
/// keeps the synchronous contract, and the connection survives the lot.
#[test]
fn multiplexed_frames_answer_by_id_on_one_connection() {
    let dir = temp_dir("mux");
    let net = make_net(3, 6, 10, 3);
    store::save(&dir, "alpha", &net).unwrap();
    let server = Server::<CpuSimBackend>::bind("127.0.0.1:0", ServerConfig::new(&dir)).unwrap();
    let handle = server.spawn();

    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();

    // Pipeline 8 id-tagged verifies without reading a single reply.
    const PIPELINED: u64 = 8;
    for id in 0..PIPELINED {
        let image: Vec<f32> = (0..6)
            .map(|i| 0.2 + 0.05 * ((id as usize + i) % 9) as f32)
            .collect();
        client
            .send_request(
                &Request::Verify {
                    model: "alpha".into(),
                    image,
                    label: id as usize % 3,
                    eps: 0.01,
                },
                Some(id),
            )
            .expect("pipelined send");
    }
    let mut seen = [false; PIPELINED as usize];
    for _ in 0..PIPELINED {
        let (id, reply) = client.recv_any().expect("mux reply");
        let id = id.expect("reply must echo its id") as usize;
        assert!(matches!(reply, Reply::Verdict { .. }), "id {id}: {reply:?}");
        assert!(!seen[id], "id {id} answered twice");
        seen[id] = true;
    }
    assert!(seen.iter().all(|&s| s), "every pipelined id answered");

    // An id-tagged error keeps its id too: bad label → typed error + id.
    client
        .send_request(
            &Request::Verify {
                model: "alpha".into(),
                image: vec![0.5; 6],
                label: 99,
                eps: 0.01,
            },
            Some(1234),
        )
        .unwrap();
    let (id, reply) = client.recv_any().unwrap();
    assert_eq!(id, Some(1234));
    assert!(matches!(reply, Reply::Error { .. }), "{reply:?}");

    // Id-less frames still work on the same connection (legacy contract).
    client.ping().expect("untagged frame after mux traffic");

    handle.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A 2-device tensor-parallel pool serves margins bit-identical to a
/// single-device engine, reports both devices on the stats wire, and the
/// aggregate meters are the per-device sums — both devices did real work.
#[test]
fn tensor_parallel_pool_is_bit_identical_and_metered_per_device() {
    let dir = temp_dir("tp");
    let net = make_net(7, 8, 14, 4);
    store::save(&dir, "beta", &net).unwrap();

    let mut cfg = ServerConfig::new(&dir);
    cfg.devices = 2;
    cfg.tensor_parallel = true;
    cfg.workers = Some(1);
    cfg.verify = VerifyConfig {
        early_termination: false,
        ..Default::default()
    };
    let server = Server::<CpuSimBackend>::bind("127.0.0.1:0", cfg).unwrap();
    let handle = server.spawn();

    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();

    let queries: Vec<(Vec<f32>, usize, f32)> = (0..6)
        .map(|q| {
            let image: Vec<f32> = (0..8)
                .map(|i| 0.15 + 0.7 * (((q * 31 + i * 7) % 101) as f32 / 101.0))
                .collect();
            (image, q % 4, 0.005 + 0.003 * (q % 3) as f32)
        })
        .collect();
    let mut served = Vec::new();
    for (image, label, eps) in &queries {
        served.push(client.verify("beta", image, *label, *eps).expect("verify"));
    }

    // Bit-identity against a direct single-device engine.
    let direct_device = Device::with_backend(CpuSimBackend, DeviceConfig::new().workers(1));
    let engine = Engine::new(
        direct_device,
        &net,
        VerifyConfig {
            early_termination: false,
            ..Default::default()
        },
    )
    .unwrap();
    let direct = engine.verify_batch(
        &queries
            .iter()
            .map(|(image, label, eps)| Query::new(image.clone(), *label, *eps))
            .collect::<Vec<_>>(),
    );
    for (s, d) in served.iter().zip(direct) {
        let d = d.expect("direct verdict");
        assert_eq!(s.verified, d.verified);
        for (sm, dm) in s.margins.iter().zip(&d.margins) {
            assert_eq!(sm.adversary, dm.adversary);
            assert_eq!(sm.proven, dm.proven);
            assert_eq!(
                sm.lower.to_bits(),
                dm.lower.to_bits(),
                "tensor-parallel margin must be bit-identical to one device"
            );
        }
    }

    // Per-device breakdown on the wire: two named rows, both metered, and
    // the aggregate row is their exact sum.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.devices.len(), 2, "{stats:?}");
    assert!(stats.devices.iter().all(|d| !d.name.is_empty()));
    assert!(
        stats.devices.iter().all(|d| d.launches > 0 && d.flops > 0),
        "the row-sharded walk must run kernels on every device: {:?}",
        stats.devices
    );
    assert!(
        stats.devices.iter().all(|d| d.memory_in_use > 0),
        "tensor-parallel weights must be resident on every device"
    );
    assert_eq!(stats.device.name, "pool[2]");
    assert_eq!(
        stats.device.launches,
        stats.devices.iter().map(|d| d.launches).sum::<u64>()
    );
    assert_eq!(
        stats.device.flops,
        stats.devices.iter().map(|d| d.flops).sum::<u64>()
    );

    handle.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A deep dense ReLU chain: `inputs → width×depth (ReLU each) → outputs`.
/// Many same-sized hidden layers keep the largest single layer (and so the
/// gather double-buffer overhead) small relative to the full model — the
/// regime where weight sharding's per-device footprint win shows up.
fn make_deep_net(
    seed: u64,
    inputs: usize,
    width: usize,
    depth: usize,
    outputs: usize,
) -> Network<f32> {
    let mix = |i: usize, s: u64| {
        ((((i as u64 + 11) * (s + 37)) * 2654435761 % 1999) as f32 / 999.0 - 1.0) * 0.25
    };
    let mut b = NetworkBuilder::new_flat(inputs).dense_flat(
        width,
        (0..width * inputs).map(|i| mix(i, seed)).collect(),
        (0..width).map(|i| mix(i, seed + 5) * 0.3).collect(),
    );
    for layer in 1..depth {
        b = b.relu().dense_flat(
            width,
            (0..width * width)
                .map(|i| mix(i, seed + layer as u64))
                .collect(),
            (0..width)
                .map(|i| mix(i, seed + 50 + layer as u64) * 0.3)
                .collect(),
        );
    }
    b.relu()
        .dense_flat(
            outputs,
            (0..outputs * width).map(|i| mix(i, seed + 9)).collect(),
            vec![0.0; outputs],
        )
        .build()
        .expect("valid deep net")
}

/// A 2-device weight-sharded pool serves margins bit-identical to a
/// single-device engine, holds a shard of the weights resident on *every*
/// device, and meters the gathers on the stats wire (`comms_bytes`,
/// `resident_bytes`, `peak_resident_bytes` per device row).
#[test]
fn weight_sharded_pool_is_bit_identical_and_metered_per_device() {
    let dir = temp_dir("ws");
    let net = make_net(7, 8, 14, 4);
    store::save(&dir, "gamma", &net).unwrap();

    let mut cfg = ServerConfig::new(&dir);
    cfg.devices = 2;
    cfg.weight_sharded = true;
    cfg.workers = Some(1);
    cfg.verify = VerifyConfig {
        early_termination: false,
        ..Default::default()
    };
    let server = Server::<CpuSimBackend>::bind("127.0.0.1:0", cfg).unwrap();
    let handle = server.spawn();

    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();

    let queries: Vec<(Vec<f32>, usize, f32)> = (0..6)
        .map(|q| {
            let image: Vec<f32> = (0..8)
                .map(|i| 0.15 + 0.7 * (((q * 31 + i * 7) % 101) as f32 / 101.0))
                .collect();
            (image, q % 4, 0.005 + 0.003 * (q % 3) as f32)
        })
        .collect();
    let mut served = Vec::new();
    for (image, label, eps) in &queries {
        served.push(client.verify("gamma", image, *label, *eps).expect("verify"));
    }

    // Bit-identity against a direct single-device engine: weight residency
    // is invisible in the margins.
    let direct_device = Device::with_backend(CpuSimBackend, DeviceConfig::new().workers(1));
    let engine = Engine::new(
        direct_device,
        &net,
        VerifyConfig {
            early_termination: false,
            ..Default::default()
        },
    )
    .unwrap();
    let direct = engine.verify_batch(
        &queries
            .iter()
            .map(|(image, label, eps)| Query::new(image.clone(), *label, *eps))
            .collect::<Vec<_>>(),
    );
    for (s, d) in served.iter().zip(direct) {
        let d = d.expect("direct verdict");
        assert_eq!(s.verified, d.verified);
        for (sm, dm) in s.margins.iter().zip(&d.margins) {
            assert_eq!(sm.adversary, dm.adversary);
            assert_eq!(sm.proven, dm.proven);
            assert_eq!(
                sm.lower.to_bits(),
                dm.lower.to_bits(),
                "weight-sharded margin must be bit-identical to one device"
            );
        }
    }

    // Per-device wire rows: every device holds a shard (resident gauge and
    // its high-water both nonzero), the executing device metered gathered
    // bytes under `comms`, and the aggregate row is the exact sum.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.devices.len(), 2, "{stats:?}");
    assert!(
        stats
            .devices
            .iter()
            .all(|d| d.resident_bytes > 0 && d.memory_in_use > 0),
        "every device must hold a weight shard: {:?}",
        stats.devices
    );
    assert!(
        stats
            .devices
            .iter()
            .all(|d| d.peak_resident_bytes >= d.resident_bytes),
        "peak resident is a high-water mark: {:?}",
        stats.devices
    );
    assert!(
        stats.devices[0].comms_bytes > 0,
        "gathers land on the executing device: {:?}",
        stats.devices
    );
    assert_eq!(stats.device.name, "pool[2]");
    assert_eq!(
        stats.device.resident_bytes,
        stats.devices.iter().map(|d| d.resident_bytes).sum::<u64>()
    );
    assert_eq!(
        stats.device.comms_bytes,
        stats.devices.iter().map(|d| d.comms_bytes).sum::<u64>()
    );

    handle.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Hybrid 2D sharding over the wire: `--weight-sharded --tensor-parallel`
/// on a 2-device pool serves margins bit-identical to one device while
/// *every* device both walks rows (launches, flops) and gathers remote
/// layers onto itself (`comms_bytes`, gather hit/miss counters) — unlike
/// plain weight sharding, where only device 0 executes.
#[test]
fn hybrid_sharded_pool_walks_and_gathers_on_every_device() {
    let dir = temp_dir("hybrid");
    let net = make_deep_net(11, 8, 12, 4, 4);
    store::save(&dir, "delta", &net).unwrap();

    let mut cfg = ServerConfig::new(&dir);
    cfg.devices = 2;
    cfg.weight_sharded = true;
    cfg.tensor_parallel = true;
    cfg.workers = Some(1);
    cfg.verify = VerifyConfig {
        early_termination: false,
        ..Default::default()
    };
    let server = Server::<CpuSimBackend>::bind("127.0.0.1:0", cfg).unwrap();
    let handle = server.spawn();

    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();

    let queries: Vec<(Vec<f32>, usize, f32)> = (0..6)
        .map(|q| {
            let image: Vec<f32> = (0..8)
                .map(|i| 0.15 + 0.7 * (((q * 29 + i * 13) % 101) as f32 / 101.0))
                .collect();
            (image, q % 4, 0.004 + 0.002 * (q % 3) as f32)
        })
        .collect();
    let mut served = Vec::new();
    for (image, label, eps) in &queries {
        served.push(client.verify("delta", image, *label, *eps).expect("verify"));
    }

    let direct_device = Device::with_backend(CpuSimBackend, DeviceConfig::new().workers(1));
    let engine = Engine::new(
        direct_device,
        &net,
        VerifyConfig {
            early_termination: false,
            ..Default::default()
        },
    )
    .unwrap();
    let direct = engine.verify_batch(
        &queries
            .iter()
            .map(|(image, label, eps)| Query::new(image.clone(), *label, *eps))
            .collect::<Vec<_>>(),
    );
    for (s, d) in served.iter().zip(direct) {
        let d = d.expect("direct verdict");
        assert_eq!(s.verified, d.verified);
        for (sm, dm) in s.margins.iter().zip(&d.margins) {
            assert_eq!(sm.adversary, dm.adversary);
            assert_eq!(sm.proven, dm.proven);
            assert_eq!(
                sm.lower.to_bits(),
                dm.lower.to_bits(),
                "hybrid margin must be bit-identical to one device"
            );
        }
    }

    // Every device is metered on the wire: rows walked (launches, flops),
    // a shard held resident, and remote layers gathered onto it (comms,
    // gather counters). The aggregate row is the exact per-field sum.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.devices.len(), 2, "{stats:?}");
    assert!(
        stats.devices.iter().all(|d| d.launches > 0 && d.flops > 0),
        "every device must walk its own row block: {:?}",
        stats.devices
    );
    assert!(
        stats
            .devices
            .iter()
            .all(|d| d.resident_bytes > 0 && d.memory_in_use > 0),
        "every device must hold a weight shard: {:?}",
        stats.devices
    );
    assert!(
        stats.devices.iter().all(|d| d.comms_bytes > 0),
        "every device must gather remote layers onto itself: {:?}",
        stats.devices
    );
    assert!(
        stats.devices.iter().all(|d| d.gather_misses > 0),
        "gather misses are the metered copies: {:?}",
        stats.devices
    );
    assert_eq!(stats.device.name, "pool[2]");
    for (sum, agg, what) in [
        (
            stats.devices.iter().map(|d| d.comms_bytes).sum::<u64>(),
            stats.device.comms_bytes,
            "comms_bytes",
        ),
        (
            stats.devices.iter().map(|d| d.gather_hits).sum::<u64>(),
            stats.device.gather_hits,
            "gather_hits",
        ),
        (
            stats.devices.iter().map(|d| d.gather_misses).sum::<u64>(),
            stats.device.gather_misses,
            "gather_misses",
        ),
        (
            stats
                .devices
                .iter()
                .map(|d| d.gather_evictions)
                .sum::<u64>(),
            stats.device.gather_evictions,
            "gather_evictions",
        ),
    ] {
        assert_eq!(agg, sum, "aggregate {what} must be the per-device sum");
    }

    handle.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Eviction interaction of weight-sharded workers: a model pinned by
/// admitted-but-unanswered work survives memory pressure; once unpinned it
/// is evicted whole — and eviction frees the shard on *every* pool device,
/// not just the worker's home.
#[test]
fn weight_sharded_eviction_frees_every_devices_shard_and_respects_pins() {
    use gpupoly_serve::BatchPolicy;
    let dir = temp_dir("ws-evict");
    store::save(&dir, "m1", &make_net(3, 8, 24, 4)).unwrap();
    store::save(&dir, "m2", &make_net(4, 8, 24, 4)).unwrap();

    // ~1264 full bytes per model; worst shard + double buffer ≈ 2592. A
    // 3000-byte per-device budget fits one weight-sharded model, never two.
    let mut cfg = RegistryConfig::new(&dir);
    cfg.weight_sharded = true;
    cfg.memory_budget = Some(3000);
    // A long coalescing window keeps m1's query admitted-but-unanswered
    // (hence pinned) while m2 applies pressure.
    cfg.policy = BatchPolicy {
        max_batch: 16,
        max_delay: Duration::from_millis(1500),
    };
    let pool: std::sync::Arc<DevicePool<CpuSimBackend>> =
        std::sync::Arc::new(DevicePool::build(2, DeviceConfig::new().workers(1)));
    let registry = Registry::with_pool(pool.clone(), cfg);

    let pending = registry.submit("m1", vec![0.5; 8], 0, 0.01).unwrap();
    assert!(
        (0..2).all(|i| pool.device(i).stats().resident_bytes() > 0),
        "m1's shards must be resident on every device"
    );

    // Pinned: m2's make-room pressure must bounce, not evict mid-flight m1.
    match registry.submit("m2", vec![0.5; 8], 1, 0.01) {
        Err(gpupoly_serve::SubmitError::Overloaded(msg)) => {
            assert!(msg.contains("pinned"), "untyped pressure bounce: {msg}")
        }
        other => panic!("expected Overloaded while m1 is pinned, got {other:?}"),
    }
    assert!(
        pending
            .recv_timeout(Duration::from_secs(30))
            .expect("m1 replies")
            .is_ok(),
        "the pinned model still answers"
    );

    // Unpinned: m2 now evicts m1 whole — both devices swap to m2's shards.
    assert!(registry
        .submit("m2", vec![0.5; 8], 1, 0.01)
        .unwrap()
        .recv_timeout(Duration::from_secs(30))
        .expect("m2 replies")
        .is_ok());
    assert_eq!(registry.resident(), vec!["m2"]);
    assert!(
        pool.replicas("m1").is_empty(),
        "m1's placement is forgotten"
    );
    assert!(
        (0..2).all(|i| pool.device(i).stats().resident_bytes() > 0),
        "m2's shards span the pool after the eviction"
    );

    // Explicit eviction returns every device's shard bytes (and the gather
    // scratch riding on the executing device).
    assert!(registry.evict("m2"));
    for i in 0..2 {
        let dev = pool.device(i);
        assert_eq!(
            dev.stats().resident_bytes(),
            0,
            "device {i} still holds shard bytes after eviction"
        );
        assert_eq!(
            dev.memory_in_use(),
            0,
            "device {i} still holds allocations after eviction"
        );
        assert!(
            dev.stats().peak_resident_bytes() > 0,
            "the high-water mark survives eviction for capacity planning"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A model whose full weights exceed ONE device's memory budget loads and
/// answers (bit-identically) across a weight-sharded pool — and without
/// `--weight-sharded` the same model earns a typed `device_oom`, because
/// no amount of eviction can ever fit it on a single device.
#[test]
fn oversized_model_loads_weight_sharded_and_device_ooms_without() {
    let dir = temp_dir("ws-big");
    // 25 dense layers, ~100 KB of weights; largest layer ~4.2 KB. Per-device:
    // worst shard ≈ 51 KB + 8.4 KB double buffer — comfortably under an
    // 80 KB budget that the 100 KB full model busts.
    let net = make_deep_net(11, 12, 32, 24, 8);
    store::save(&dir, "big", &net).unwrap();
    let budget = 80_000;
    assert!(net.param_count() * 4 > budget, "model must bust one device");

    // Without weight sharding: typed device_oom at admission.
    let mut plain = ServerConfig::new(&dir);
    plain.devices = 2;
    plain.memory_budget = Some(budget);
    plain.workers = Some(1);
    let server = Server::<CpuSimBackend>::bind("127.0.0.1:0", plain).unwrap();
    let handle = server.spawn();
    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    match client.verify("big", &[0.5; 12], 0, 0.002) {
        Err(ClientError::Server {
            code: ErrorCode::DeviceOom,
            ..
        }) => {}
        other => panic!("expected device_oom for the oversized model, got {other:?}"),
    }
    handle.shutdown();

    // Weight-sharded across 2 devices: the same model loads and answers
    // bit-identically to an (unbudgeted) single-device engine.
    let mut ws = ServerConfig::new(&dir);
    ws.devices = 2;
    ws.weight_sharded = true;
    ws.memory_budget = Some(budget);
    ws.workers = Some(1);
    let server = Server::<CpuSimBackend>::bind("127.0.0.1:0", ws).unwrap();
    let handle = server.spawn();
    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let image: Vec<f32> = (0..12).map(|i| 0.3 + 0.04 * (i % 7) as f32).collect();
    let served = client
        .verify("big", &image, 0, 0.002)
        .expect("oversized model must serve across the weight-sharded pool");

    let engine = Engine::new(
        Device::with_backend(CpuSimBackend, DeviceConfig::new().workers(1)),
        &net,
        VerifyConfig::default(),
    )
    .unwrap();
    let direct = engine.verify_batch(&[Query::new(image, 0, 0.002)]);
    let direct = direct[0].as_ref().expect("direct verdict");
    assert_eq!(served.verified, direct.verified);
    for (sm, dm) in served.margins.iter().zip(&direct.margins) {
        assert_eq!(sm.lower.to_bits(), dm.lower.to_bits());
    }

    // The stats wire shows the win: no single device holds the full model.
    let stats = client.stats().expect("stats");
    let full = (net.param_count() * 4) as u64;
    assert!(stats
        .devices
        .iter()
        .all(|d| d.resident_bytes > 0 && d.resident_bytes < full));

    handle.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Weight sharding composes with tensor-parallel serving (hybrid 2D
/// sharding) but still refuses the single-device precision tier at bind.
#[test]
fn weight_sharded_excludes_tensor_parallel_and_precision_tier_at_bind() {
    let dir = temp_dir("ws-excl");
    store::save(&dir, "m", &make_net(1, 6, 8, 3)).unwrap();

    // Hybrid is a supported composition: bind must succeed.
    let mut cfg = ServerConfig::new(&dir);
    cfg.devices = 2;
    cfg.weight_sharded = true;
    cfg.tensor_parallel = true;
    let server = Server::<CpuSimBackend>::bind("127.0.0.1:0", cfg)
        .expect("hybrid (--weight-sharded --tensor-parallel) must bind");
    drop(server);

    let mut cfg = ServerConfig::new(&dir);
    cfg.devices = 2;
    cfg.weight_sharded = true;
    cfg.precision_tier = true;
    match Server::<CpuSimBackend>::bind("127.0.0.1:0", cfg) {
        Err(err) => assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput, "{err}"),
        Ok(_) => panic!("bind must refuse --weight-sharded with --precision-tier"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The tiered engine is single-device: combining it with tensor-parallel
/// serving must be refused at bind time, not discovered at load time.
#[test]
fn tensor_parallel_excludes_precision_tier_at_bind() {
    let dir = temp_dir("excl");
    let mut cfg = ServerConfig::new(&dir);
    cfg.devices = 2;
    cfg.tensor_parallel = true;
    cfg.precision_tier = true;
    match Server::<CpuSimBackend>::bind("127.0.0.1:0", cfg) {
        Err(err) => assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput),
        Ok(_) => panic!("tensor-parallel + precision-tier must be refused at bind"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
