//! End-to-end coverage of the sharded serving surface: the multiplexed
//! wire (id-tagged pipelined frames over one connection) and a 2-device
//! pool serving tensor-parallel — margins bit-identical to a single-device
//! engine, per-device stats on the wire, both devices doing real work.

use std::path::PathBuf;
use std::time::Duration;

use gpupoly_core::{Engine, Query, VerifyConfig};
use gpupoly_device::{CpuSimBackend, Device, DeviceConfig};
use gpupoly_nn::builder::NetworkBuilder;
use gpupoly_nn::{store, Network};
use gpupoly_serve::protocol::{Reply, Request};
use gpupoly_serve::{Client, Server, ServerConfig};

/// Deterministic dense ReLU net: `inputs → width (ReLU) → outputs`.
fn make_net(seed: u64, inputs: usize, width: usize, outputs: usize) -> Network<f32> {
    let mix = |i: usize, s: u64| {
        ((((i as u64 + 11) * (s + 37)) * 2654435761 % 1999) as f32 / 999.0 - 1.0) * 0.4
    };
    NetworkBuilder::new_flat(inputs)
        .dense_flat(
            width,
            (0..width * inputs).map(|i| mix(i, seed)).collect(),
            (0..width).map(|i| mix(i, seed + 5) * 0.3).collect(),
        )
        .relu()
        .dense_flat(
            outputs,
            (0..outputs * width).map(|i| mix(i, seed + 9)).collect(),
            vec![0.0; outputs],
        )
        .build()
        .expect("valid net")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gpupoly-pool-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One connection, many outstanding id-tagged requests: every reply comes
/// back with its id (possibly out of order), an interleaved id-less frame
/// keeps the synchronous contract, and the connection survives the lot.
#[test]
fn multiplexed_frames_answer_by_id_on_one_connection() {
    let dir = temp_dir("mux");
    let net = make_net(3, 6, 10, 3);
    store::save(&dir, "alpha", &net).unwrap();
    let server = Server::<CpuSimBackend>::bind("127.0.0.1:0", ServerConfig::new(&dir)).unwrap();
    let handle = server.spawn();

    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();

    // Pipeline 8 id-tagged verifies without reading a single reply.
    const PIPELINED: u64 = 8;
    for id in 0..PIPELINED {
        let image: Vec<f32> = (0..6)
            .map(|i| 0.2 + 0.05 * ((id as usize + i) % 9) as f32)
            .collect();
        client
            .send_request(
                &Request::Verify {
                    model: "alpha".into(),
                    image,
                    label: id as usize % 3,
                    eps: 0.01,
                },
                Some(id),
            )
            .expect("pipelined send");
    }
    let mut seen = [false; PIPELINED as usize];
    for _ in 0..PIPELINED {
        let (id, reply) = client.recv_any().expect("mux reply");
        let id = id.expect("reply must echo its id") as usize;
        assert!(matches!(reply, Reply::Verdict { .. }), "id {id}: {reply:?}");
        assert!(!seen[id], "id {id} answered twice");
        seen[id] = true;
    }
    assert!(seen.iter().all(|&s| s), "every pipelined id answered");

    // An id-tagged error keeps its id too: bad label → typed error + id.
    client
        .send_request(
            &Request::Verify {
                model: "alpha".into(),
                image: vec![0.5; 6],
                label: 99,
                eps: 0.01,
            },
            Some(1234),
        )
        .unwrap();
    let (id, reply) = client.recv_any().unwrap();
    assert_eq!(id, Some(1234));
    assert!(matches!(reply, Reply::Error { .. }), "{reply:?}");

    // Id-less frames still work on the same connection (legacy contract).
    client.ping().expect("untagged frame after mux traffic");

    handle.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A 2-device tensor-parallel pool serves margins bit-identical to a
/// single-device engine, reports both devices on the stats wire, and the
/// aggregate meters are the per-device sums — both devices did real work.
#[test]
fn tensor_parallel_pool_is_bit_identical_and_metered_per_device() {
    let dir = temp_dir("tp");
    let net = make_net(7, 8, 14, 4);
    store::save(&dir, "beta", &net).unwrap();

    let mut cfg = ServerConfig::new(&dir);
    cfg.devices = 2;
    cfg.tensor_parallel = true;
    cfg.workers = Some(1);
    cfg.verify = VerifyConfig {
        early_termination: false,
        ..Default::default()
    };
    let server = Server::<CpuSimBackend>::bind("127.0.0.1:0", cfg).unwrap();
    let handle = server.spawn();

    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();

    let queries: Vec<(Vec<f32>, usize, f32)> = (0..6)
        .map(|q| {
            let image: Vec<f32> = (0..8)
                .map(|i| 0.15 + 0.7 * (((q * 31 + i * 7) % 101) as f32 / 101.0))
                .collect();
            (image, q % 4, 0.005 + 0.003 * (q % 3) as f32)
        })
        .collect();
    let mut served = Vec::new();
    for (image, label, eps) in &queries {
        served.push(client.verify("beta", image, *label, *eps).expect("verify"));
    }

    // Bit-identity against a direct single-device engine.
    let direct_device = Device::with_backend(CpuSimBackend, DeviceConfig::new().workers(1));
    let engine = Engine::new(
        direct_device,
        &net,
        VerifyConfig {
            early_termination: false,
            ..Default::default()
        },
    )
    .unwrap();
    let direct = engine.verify_batch(
        &queries
            .iter()
            .map(|(image, label, eps)| Query::new(image.clone(), *label, *eps))
            .collect::<Vec<_>>(),
    );
    for (s, d) in served.iter().zip(direct) {
        let d = d.expect("direct verdict");
        assert_eq!(s.verified, d.verified);
        for (sm, dm) in s.margins.iter().zip(&d.margins) {
            assert_eq!(sm.adversary, dm.adversary);
            assert_eq!(sm.proven, dm.proven);
            assert_eq!(
                sm.lower.to_bits(),
                dm.lower.to_bits(),
                "tensor-parallel margin must be bit-identical to one device"
            );
        }
    }

    // Per-device breakdown on the wire: two named rows, both metered, and
    // the aggregate row is their exact sum.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.devices.len(), 2, "{stats:?}");
    assert!(stats.devices.iter().all(|d| !d.name.is_empty()));
    assert!(
        stats.devices.iter().all(|d| d.launches > 0 && d.flops > 0),
        "the row-sharded walk must run kernels on every device: {:?}",
        stats.devices
    );
    assert!(
        stats.devices.iter().all(|d| d.memory_in_use > 0),
        "tensor-parallel weights must be resident on every device"
    );
    assert_eq!(stats.device.name, "pool[2]");
    assert_eq!(
        stats.device.launches,
        stats.devices.iter().map(|d| d.launches).sum::<u64>()
    );
    assert_eq!(
        stats.device.flops,
        stats.devices.iter().map(|d| d.flops).sum::<u64>()
    );

    handle.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The tiered engine is single-device: combining it with tensor-parallel
/// serving must be refused at bind time, not discovered at load time.
#[test]
fn tensor_parallel_excludes_precision_tier_at_bind() {
    let dir = temp_dir("excl");
    let mut cfg = ServerConfig::new(&dir);
    cfg.devices = 2;
    cfg.tensor_parallel = true;
    cfg.precision_tier = true;
    match Server::<CpuSimBackend>::bind("127.0.0.1:0", cfg) {
        Err(err) => assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput),
        Ok(_) => panic!("tensor-parallel + precision-tier must be refused at bind"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
