//! End-to-end soak of the daemon: concurrent clients, multiple models,
//! mixed good/malformed traffic — asserting the three serving guarantees:
//!
//! 1. every verdict's margins are **bit-identical** to a direct
//!    `Engine::verify_batch` on the same network and configuration,
//! 2. malformed frames and overload earn **typed error replies** on a
//!    surviving connection — no panic, no hang, no dropped socket,
//! 3. device accounting is **flat after drain**: once traffic stops, the
//!    bytes in use are exactly resident weights plus shelved pool bytes,
//!    and (on pooling backends) further steady-state traffic allocates
//!    nothing fresh.
//!
//! The whole body is backend-generic and runs on both `CpuSimBackend` and
//! `ReferenceBackend`.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use gpupoly_core::{Engine, Query, VerifyConfig};
use gpupoly_device::{Backend, CpuSimBackend, Device, DeviceConfig, ReferenceBackend};
use gpupoly_nn::builder::NetworkBuilder;
use gpupoly_nn::{store, Network};
use gpupoly_serve::protocol::ErrorCode;
use gpupoly_serve::{BatchPolicy, Client, ClientError, Server, ServerConfig};

/// Deterministic dense ReLU net: `inputs → width (ReLU) → outputs`.
fn make_net(seed: u64, inputs: usize, width: usize, outputs: usize) -> Network<f32> {
    let mix = |i: usize, s: u64| {
        ((((i as u64 + 11) * (s + 37)) * 2654435761 % 1999) as f32 / 999.0 - 1.0) * 0.4
    };
    NetworkBuilder::new_flat(inputs)
        .dense_flat(
            width,
            (0..width * inputs).map(|i| mix(i, seed)).collect(),
            (0..width).map(|i| mix(i, seed + 5) * 0.3).collect(),
        )
        .relu()
        .dense_flat(
            outputs,
            (0..outputs * width).map(|i| mix(i, seed + 9)).collect(),
            vec![0.0; outputs],
        )
        .build()
        .expect("valid net")
}

struct ModelFixture {
    name: &'static str,
    net: Network<f32>,
    inputs: usize,
    outputs: usize,
}

fn fixtures() -> Vec<ModelFixture> {
    vec![
        ModelFixture {
            name: "alpha",
            net: make_net(3, 6, 10, 3),
            inputs: 6,
            outputs: 3,
        },
        ModelFixture {
            name: "beta",
            net: make_net(8, 8, 12, 4),
            inputs: 8,
            outputs: 4,
        },
    ]
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gpupoly-soak-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The deterministic query stream one client sends: `(model index, image,
/// label, eps)` per step.
fn query_for(client_id: usize, step: usize, fx: &[ModelFixture]) -> (usize, Vec<f32>, usize, f32) {
    let which = (client_id + step) % fx.len();
    let m = &fx[which];
    let image: Vec<f32> = (0..m.inputs)
        .map(|i| 0.15 + 0.7 * (((client_id * 131 + step * 29 + i * 7) % 101) as f32 / 101.0))
        .collect();
    let label = (client_id + step) % m.outputs;
    let eps = 0.004 + 0.003 * ((client_id + step) % 4) as f32;
    (which, image, label, eps)
}

/// The verifier configuration the soak pins on both sides of the wire.
/// Early termination is off so every query has input-independent batch
/// geometry — that is what makes steady-state allocation exactly flat.
fn soak_verify_config() -> VerifyConfig {
    VerifyConfig {
        early_termination: false,
        ..Default::default()
    }
}

fn soak_backend<B: Backend + Default>() {
    let fx = fixtures();
    let dir = temp_dir(std::any::type_name::<B>().rsplit(':').next().unwrap());
    for m in &fx {
        store::save(&dir, m.name, &m.net).unwrap();
    }

    let mut cfg = ServerConfig::new(&dir);
    cfg.policy = BatchPolicy {
        max_batch: 8,
        max_delay: Duration::from_millis(2),
    };
    cfg.verify = soak_verify_config();
    cfg.workers = Some(2);
    cfg.request_timeout = Duration::from_secs(60);
    // The soak asserts every well-formed query verifies; estimated-cost
    // admission scales with measured wall time, so on a slow/contended
    // machine it could bounce good queries and flake the invariant. Cost
    // bouncing has its own deterministic test
    // (`registry::cost_cap_bounces_only_into_nonempty_backlogs`).
    cfg.queue_cost_cap = None;
    let server = Server::<B>::bind("127.0.0.1:0", cfg).expect("bind");
    let device = server.registry().device().clone();
    let registry = server.registry().clone();
    let handle = server.spawn();
    let addr = handle.addr();

    // -- Warmup: make both models resident and exercise every size class
    // once, so the soak measures steady state, not first-touch allocation.
    {
        let mut client = Client::connect(addr).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        for (i, m) in fx.iter().enumerate() {
            let v = client
                .verify(m.name, &vec![0.4 + 0.05 * i as f32; m.inputs], 0, 0.01)
                .expect("warmup verify");
            assert_eq!(v.margins.len(), m.outputs - 1);
        }
    }

    // -- Soak: concurrent clients, mixed traffic, every reply collected.
    const CLIENTS: usize = 6;
    const STEPS: usize = 20;
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let fx = Arc::new(fx);
    let mut joins = Vec::new();
    for client_id in 0..CLIENTS {
        let barrier = barrier.clone();
        let fx = fx.clone();
        joins.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            client
                .set_read_timeout(Some(Duration::from_secs(60)))
                .unwrap();
            barrier.wait();
            let mut verdicts = Vec::new();
            for step in 0..STEPS {
                // Interleave a malformed frame and typed-error probes into
                // the stream; the connection must survive all of them.
                match step % 5 {
                    1 => {
                        let reply = client
                            .send_raw("{\"type\":\"verify\", oops")
                            .expect("malformed frame still gets a reply");
                        match reply {
                            gpupoly_serve::protocol::Reply::Error { code, .. } => {
                                assert_eq!(code, ErrorCode::ParseError)
                            }
                            other => panic!("expected error reply, got {other:?}"),
                        }
                    }
                    3 => {
                        let err = client
                            .verify("no_such_model", &[0.1], 0, 0.01)
                            .expect_err("unknown model must fail");
                        match err {
                            ClientError::Server { code, .. } => {
                                assert_eq!(code, ErrorCode::UnknownModel)
                            }
                            other => panic!("expected server error, got {other:?}"),
                        }
                    }
                    4 => {
                        // Wrong input dimension: typed bad_query, not a
                        // panic, not a dropped connection.
                        let m = &fx[client_id % fx.len()];
                        let err = client
                            .verify(m.name, &vec![0.5; m.inputs + 1], 0, 0.01)
                            .expect_err("wrong dimension must fail");
                        match err {
                            ClientError::Server { code, .. } => {
                                assert_eq!(code, ErrorCode::BadQuery)
                            }
                            other => panic!("expected server error, got {other:?}"),
                        }
                    }
                    _ => {}
                }
                let (which, image, label, eps) = query_for(client_id, step, &fx);
                let verdict = client
                    .verify(fx[which].name, &image, label, eps)
                    .expect("good query verifies");
                verdicts.push((which, image, label, eps, verdict));
            }
            // The connection survived the whole mixed stream.
            client.ping().expect("connection alive after soak");
            verdicts
        }));
    }
    let mut collected = Vec::new();
    for join in joins {
        collected.extend(join.join().expect("client thread"));
    }
    assert_eq!(collected.len(), CLIENTS * STEPS);

    // -- Drain: wait for the workers to go fully idle.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = registry.model_stats();
        if stats.iter().all(|m| m.queue_depth == 0 && m.in_flight == 0) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "workers never drained: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // -- Accounting after drain: bytes in use are exactly resident weights
    // plus shelved pool bytes — every transient working buffer was returned.
    let stats = registry.model_stats();
    let resident: u64 = stats.iter().map(|m| m.resident_bytes).sum();
    assert!(resident > 0, "models must be weight-resident");
    assert_eq!(
        device.memory_in_use() as u64,
        resident + device.buffer_pool_bytes() as u64,
        "working memory leaked past the drain"
    );
    if device.backend().pooling() {
        assert!(device.buffer_pool_bytes() > 0, "pool should hold shelves");
        // Steady state: more traffic at drained concurrency allocates
        // nothing fresh — the pool serves every transient buffer.
        let steady = device.stats().bytes_allocated();
        let mut client = Client::connect(addr).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        for step in 0..8 {
            let (which, image, label, eps) = query_for(997, step, &fx);
            client
                .verify(fx[which].name, &image, label, eps)
                .expect("steady-state query");
        }
        assert_eq!(
            device.stats().bytes_allocated(),
            steady,
            "steady-state serving must not allocate fresh device bytes"
        );
    } else {
        assert_eq!(
            device.buffer_pool_bytes(),
            0,
            "non-pooling backend must shelve nothing"
        );
    }

    // -- Batch accounting is coherent (coalescing itself is pinned
    // deterministically by `bursts_coalesce_into_batches` below).
    let stats = registry.model_stats();
    let batches: u64 = stats.iter().map(|m| m.batches).sum();
    let items: u64 = stats.iter().map(|m| m.batch_items).sum();
    assert!(
        batches > 0 && items >= batches,
        "incoherent batching: {stats:?}"
    );

    // -- Bit-identity: replay every collected verdict against a direct
    // engine on a fresh device of the same backend and configuration.
    type Collected = (Vec<f32>, usize, f32, gpupoly_serve::Verdict);
    let mut by_model: HashMap<usize, Vec<Collected>> = HashMap::new();
    for (which, image, label, eps, verdict) in collected {
        by_model
            .entry(which)
            .or_default()
            .push((image, label, eps, verdict));
    }
    for (which, entries) in by_model {
        let m = &fx[which];
        let direct_device = Device::with_backend(B::default(), DeviceConfig::new().workers(2));
        let engine = Engine::new(direct_device, &m.net, soak_verify_config()).unwrap();
        let queries: Vec<Query<f32>> = entries
            .iter()
            .map(|(image, label, eps, _)| Query::new(image.clone(), *label, *eps))
            .collect();
        let direct = engine.verify_batch(&queries);
        for ((_, _, _, served), direct) in entries.iter().zip(direct) {
            let direct = direct.expect("direct query succeeds");
            assert_eq!(served.verified, direct.verified);
            assert_eq!(served.margins.len(), direct.margins.len());
            for (s, d) in served.margins.iter().zip(&direct.margins) {
                assert_eq!(s.adversary, d.adversary);
                assert_eq!(s.proven, d.proven);
                assert_eq!(
                    s.lower.to_bits(),
                    d.lower.to_bits(),
                    "daemon margin {} != direct margin {} on model {}",
                    s.lower,
                    d.lower,
                    m.name
                );
            }
        }
    }

    // -- Shutdown returns every device byte.
    drop(registry);
    handle.shutdown();
    assert_eq!(device.memory_in_use(), 0, "shutdown must free everything");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn soak_cpusim_backend() {
    soak_backend::<CpuSimBackend>();
}

#[test]
fn soak_reference_backend() {
    soak_backend::<ReferenceBackend>();
}

/// Frame-length bound: a line longer than the configured frame cap is
/// discarded without buffering and earns exactly one `parse_error` reply
/// on a surviving connection — per-connection memory stays bounded and
/// nothing hangs.
#[test]
fn oversized_frames_are_bounced_not_buffered() {
    let dir = temp_dir("frames");
    store::save(&dir, "tiny", &make_net(5, 4, 6, 3)).unwrap();
    let mut cfg = ServerConfig::new(&dir);
    cfg.max_frame_len = 64 * 1024;
    let server = Server::<CpuSimBackend>::bind("127.0.0.1:0", cfg).expect("bind");
    let handle = server.spawn();

    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    // A line just under the cap still parses (to a typed parse error —
    // it is garbage, but framed garbage).
    match client.send_raw(&"x".repeat(60 * 1024)).unwrap() {
        gpupoly_serve::protocol::Reply::Error { code, .. } => {
            assert_eq!(code, ErrorCode::ParseError)
        }
        other => panic!("expected parse_error, got {other:?}"),
    }
    client
        .ping()
        .expect("under-cap garbage keeps the connection");

    // A line over the cap is discarded (bounded memory), answered with a
    // typed error, and the connection keeps serving.
    match client.send_raw(&"y".repeat(300 * 1024)).unwrap() {
        gpupoly_serve::protocol::Reply::Error { code, message } => {
            assert_eq!(code, ErrorCode::ParseError);
            assert!(message.contains("bytes"), "{message}");
        }
        other => panic!("expected parse_error, got {other:?}"),
    }
    client
        .ping()
        .expect("connection survives an over-cap frame");

    handle.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Admission coalescing: while the worker chews on one query, a
/// synchronized burst queues up behind it and the next wakeup runs the
/// whole backlog as one `verify_batch` — visible as `max_batch >= 2`.
#[test]
fn bursts_coalesce_into_batches() {
    let dir = temp_dir("coalesce");
    // Wide enough that one verification outlasts the burst's send phase.
    let net = make_net(33, 16, 48, 4);
    store::save(&dir, "busy", &net).unwrap();

    let mut cfg = ServerConfig::new(&dir);
    cfg.policy = BatchPolicy {
        max_batch: 16,
        max_delay: Duration::from_millis(5),
    };
    cfg.queue_cap = 32;
    cfg.workers = Some(2);
    cfg.verify = soak_verify_config();
    // Machine-speed-independent: see the soak's queue_cost_cap note.
    cfg.queue_cost_cap = None;
    let server = Server::<CpuSimBackend>::bind("127.0.0.1:0", cfg).expect("bind");
    let registry = server.registry().clone();
    let handle = server.spawn();
    let addr = handle.addr();

    const BURST: usize = 8;
    let barrier = Arc::new(Barrier::new(BURST + 1));
    let mut joins = Vec::new();
    for i in 0..BURST {
        let barrier = barrier.clone();
        joins.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            client
                .set_read_timeout(Some(Duration::from_secs(60)))
                .unwrap();
            let image: Vec<f32> = (0..16)
                .map(|j| 0.2 + 0.03 * ((i + j) % 17) as f32)
                .collect();
            barrier.wait();
            client.verify("busy", &image, i % 4, 0.02).expect("verify");
        }));
    }
    {
        // Occupy the worker first so the burst piles up behind it.
        let mut client = Client::connect(addr).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        barrier.wait();
        client.verify("busy", &[0.5; 16], 0, 0.02).unwrap();
    }
    for join in joins {
        join.join().expect("burst thread");
    }
    let stats = registry.model_stats();
    assert!(
        stats[0].max_batch >= 2,
        "a {BURST}-wide burst behind a busy worker must coalesce: {stats:?}"
    );
    assert_eq!(stats[0].completed, BURST as u64 + 1);
    // A coalesced batch of same-network queries is exactly the fused
    // cross-query shape: the worker must have dispatched at least one
    // batch through the fused path (its margins are pinned bit-identical
    // to the per-query path by the engine's own tests).
    assert!(
        stats[0].fused_batches >= 1,
        "coalesced batches must dispatch through the fused path: {stats:?}"
    );
    assert!(
        stats[0].ewma_ms_per_cost > 0.0,
        "measured batches must warm the admission EWMA: {stats:?}"
    );

    drop(registry);
    handle.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Backpressure: with a single-slot admission queue and a busy worker, a
/// synchronized burst must earn immediate structured `overloaded` replies —
/// never a hang — while at least one query still succeeds.
#[test]
fn overload_is_a_reply_not_a_hang() {
    let dir = temp_dir("overload");
    // Wide enough that one verification keeps the worker busy for a while.
    let net = make_net(21, 16, 48, 4);
    store::save(&dir, "busy", &net).unwrap();

    let mut cfg = ServerConfig::new(&dir);
    cfg.policy = BatchPolicy {
        max_batch: 1,
        max_delay: Duration::from_millis(0),
    };
    cfg.queue_cap = 1;
    cfg.workers = Some(1);
    cfg.verify = soak_verify_config();
    let server = Server::<CpuSimBackend>::bind("127.0.0.1:0", cfg).expect("bind");
    let registry = server.registry().clone();
    let handle = server.spawn();
    let addr = handle.addr();

    // Make the model resident first so the burst measures admission, not
    // loading.
    {
        let mut client = Client::connect(addr).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        client.verify("busy", &[0.5; 16], 0, 0.02).unwrap();
    }

    const BURST: usize = 12;
    let ok = Arc::new(AtomicU64::new(0));
    let overloaded = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(BURST));
    let mut joins = Vec::new();
    for i in 0..BURST {
        let ok = ok.clone();
        let overloaded = overloaded.clone();
        let barrier = barrier.clone();
        joins.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            client
                .set_read_timeout(Some(Duration::from_secs(60)))
                .unwrap();
            let image: Vec<f32> = (0..16)
                .map(|j| 0.2 + 0.04 * ((i + j) % 13) as f32)
                .collect();
            barrier.wait();
            match client.verify("busy", &image, i % 4, 0.02) {
                Ok(_) => {
                    ok.fetch_add(1, Ordering::Relaxed);
                }
                Err(ClientError::Server {
                    code: ErrorCode::Overloaded,
                    ..
                }) => {
                    overloaded.fetch_add(1, Ordering::Relaxed);
                }
                Err(other) => panic!("burst reply must be verdict or overloaded: {other}"),
            }
            // The bounced connection is still perfectly usable.
            client.ping().expect("connection alive after overload");
        }));
    }
    for join in joins {
        join.join().expect("burst thread");
    }
    let ok = ok.load(Ordering::Relaxed);
    let overloaded = overloaded.load(Ordering::Relaxed);
    assert_eq!(ok + overloaded, BURST as u64);
    assert!(ok >= 1, "the burst must not starve completely");
    assert!(
        overloaded >= 1,
        "a single-slot queue under a {BURST}-wide synchronized burst must bounce someone"
    );
    let stats = registry.model_stats();
    assert_eq!(stats[0].rejected_overload, overloaded);

    drop(registry);
    handle.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}
