//! `gpupoly-shard`: multi-device sharding for GPUPoly serving.
//!
//! Three coordinated layers turn the single-device daemon into a pool:
//!
//! * **[`DevicePool`]** — owns N device handles with per-device memory
//!   budgets and an outstanding-work gauge per device; placement is
//!   least-loaded with sticky model→device affinity, and a hot model can be
//!   **replicated** onto further devices (the registry drives that when a
//!   model's admission queue saturates).
//! * **routing** — [`DevicePool::place`] answers "which device serves this
//!   model?" deterministically: an existing replica if one exists (the
//!   least-loaded of them), otherwise the least-loaded device overall,
//!   recorded as the model's new affinity.
//! * **sharded walks** — [`ShardedEngine`] (re-exported from
//!   `gpupoly_core`) spans the pool in any of three modes: tensor-parallel
//!   *row* sharding packs one resident engine per device and partitions the
//!   fused backsubstitution row space across them per layer step;
//!   FSDP-style *weight* sharding partitions the model's layers across the
//!   pool (each device holds ~1/N of the weight bytes) and all-gathers them
//!   onto device 0 just in time — serving models bigger than any one
//!   device; *hybrid* 2D sharding composes both, every device walking its
//!   own row block and gathering remote layers onto itself. All three keep
//!   margins bit-identical to the single-device walk. Admission charges
//!   weight-sharded and hybrid workers the same per-device bound — the
//!   worst shard plus the gather cache's double-buffer floor
//!   (`weight_shard_budget(...).worst_device_bytes()`): in hybrid mode
//!   every device both holds a shard and gathers, so one worst-device
//!   charge covers each of them.
//!
//! The pool itself is policy + bookkeeping over cheap-clone [`Device`]
//! handles; it spawns no threads and owns no model state — the serving
//! registry composes it with workers and queues.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use gpupoly_device::{Backend, Device, DeviceConfig};

pub use gpupoly_core::ShardedEngine;

/// A pool of N devices with per-device load gauges and sticky model
/// placement.
///
/// Load is whatever unit the caller accounts in (the serving layer uses
/// estimated microseconds of admitted work); the pool only compares it.
/// All methods are safe under concurrent use: gauges are atomics and the
/// affinity map sits behind its own lock.
pub struct DevicePool<B: Backend> {
    devices: Vec<Device<B>>,
    load: Vec<AtomicU64>,
    affinity: Mutex<HashMap<String, Vec<usize>>>,
}

impl<B: Backend + Default> DevicePool<B> {
    /// Builds `n` devices from one base configuration. Each device gets
    /// the base name suffixed `-d<i>` (default base `pool`) and its own
    /// copy of the worker count / memory capacity / GEMM tile — the
    /// capacity is a **per-device** budget, so total pool memory is
    /// `n × capacity`.
    pub fn build(n: usize, base: DeviceConfig) -> Self {
        assert!(n > 0, "a device pool needs at least one device");
        let devices = (0..n)
            .map(|i| {
                let named = base.clone().name(format!("d{i}"));
                Device::with_backend(B::default(), named)
            })
            .collect();
        Self::from_devices(devices)
    }
}

impl<B: Backend> DevicePool<B> {
    /// Wraps existing devices (heterogeneous configs allowed) as a pool.
    pub fn from_devices(devices: Vec<Device<B>>) -> Self {
        assert!(
            !devices.is_empty(),
            "a device pool needs at least one device"
        );
        let load = devices.iter().map(|_| AtomicU64::new(0)).collect();
        Self {
            devices,
            load,
            affinity: Mutex::new(HashMap::new()),
        }
    }

    /// Number of devices in the pool.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the pool is empty (never true — construction requires ≥ 1).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The pool's devices, in index order.
    pub fn devices(&self) -> &[Device<B>] {
        &self.devices
    }

    /// One device by index.
    ///
    /// # Panics
    ///
    /// When `idx` is out of range.
    pub fn device(&self, idx: usize) -> &Device<B> {
        &self.devices[idx]
    }

    /// Current outstanding load on one device, in the caller's units.
    pub fn load(&self, idx: usize) -> u64 {
        self.load[idx].load(Ordering::Acquire)
    }

    /// The least-loaded device index (ties break to the lowest index, so
    /// routing is deterministic for a given gauge state).
    pub fn least_loaded(&self) -> usize {
        self.least_loaded_of(0..self.devices.len())
            .expect("pool is never empty")
    }

    /// Least-loaded among a candidate subset; `None` for an empty subset.
    pub fn least_loaded_of(&self, candidates: impl IntoIterator<Item = usize>) -> Option<usize> {
        candidates.into_iter().min_by_key(|&i| (self.load(i), i))
    }

    /// The device that should serve `model`: the least-loaded existing
    /// replica when the model is already placed, otherwise the least-loaded
    /// device overall — which becomes the model's recorded affinity.
    pub fn place(&self, model: &str) -> usize {
        let mut affinity = self.affinity.lock();
        if let Some(replicas) = affinity.get(model) {
            if let Some(idx) = self.least_loaded_of(replicas.iter().copied()) {
                return idx;
            }
        }
        let idx = self.least_loaded();
        affinity.insert(model.to_string(), vec![idx]);
        idx
    }

    /// The model's replica device indices (empty when never placed).
    pub fn replicas(&self, model: &str) -> Vec<usize> {
        self.affinity.lock().get(model).cloned().unwrap_or_default()
    }

    /// A replication candidate for a hot model: the least-loaded device
    /// *not* already holding a replica, or `None` when the model covers the
    /// pool.
    pub fn replication_candidate(&self, model: &str) -> Option<usize> {
        let affinity = self.affinity.lock();
        let held = affinity.get(model).cloned().unwrap_or_default();
        self.least_loaded_of((0..self.devices.len()).filter(|i| !held.contains(i)))
    }

    /// Records that `model` now also resides on device `idx`.
    pub fn add_replica(&self, model: &str, idx: usize) {
        assert!(idx < self.devices.len(), "replica device out of range");
        let mut affinity = self.affinity.lock();
        let replicas = affinity.entry(model.to_string()).or_default();
        if !replicas.contains(&idx) {
            replicas.push(idx);
        }
    }

    /// Forgets a model's placement entirely (eviction from the registry).
    pub fn remove_model(&self, model: &str) {
        self.affinity.lock().remove(model);
    }

    /// Drops one replica placement (partial eviction of a replicated
    /// model).
    pub fn remove_replica(&self, model: &str, idx: usize) {
        let mut affinity = self.affinity.lock();
        if let Some(replicas) = affinity.get_mut(model) {
            replicas.retain(|&r| r != idx);
            if replicas.is_empty() {
                affinity.remove(model);
            }
        }
    }

    /// Adds admitted work to a device's load gauge.
    pub fn note_enqueued(&self, idx: usize, cost: u64) {
        self.load[idx].fetch_add(cost, Ordering::AcqRel);
    }

    /// Retires completed (or bounced) work from a device's load gauge,
    /// saturating at zero so double-retires can never wrap the gauge.
    pub fn note_done(&self, idx: usize, cost: u64) {
        let _ = self.load[idx].fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
            Some(cur.saturating_sub(cost))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpupoly_device::CpuSimBackend;

    fn pool(n: usize) -> DevicePool<CpuSimBackend> {
        DevicePool::build(n, DeviceConfig::new().workers(1))
    }

    #[test]
    fn build_names_and_sizes_devices() {
        let p = pool(3);
        assert_eq!(p.len(), 3);
        assert_eq!(p.device(0).name(), "d0");
        assert_eq!(p.device(2).name(), "d2");
        assert_eq!(p.device(1).workers(), 1);
    }

    #[test]
    fn least_loaded_routing_with_deterministic_ties() {
        let p = pool(3);
        assert_eq!(p.least_loaded(), 0); // all zero: lowest index
        p.note_enqueued(0, 10);
        p.note_enqueued(1, 5);
        assert_eq!(p.least_loaded(), 2);
        p.note_enqueued(2, 7);
        assert_eq!(p.least_loaded(), 1);
        p.note_done(1, 5);
        p.note_done(1, 999); // saturates, never wraps
        assert_eq!(p.load(1), 0);
        assert_eq!(p.least_loaded(), 1);
    }

    #[test]
    fn placement_is_sticky_and_replicas_share_load() {
        let p = pool(2);
        p.note_enqueued(0, 100);
        assert_eq!(p.place("m"), 1); // least-loaded at first placement
        p.note_enqueued(1, 1000);
        // Sticky: device 0 is now idle, but the model stays on its replica.
        assert_eq!(p.place("m"), 1);
        assert_eq!(p.replicas("m"), vec![1]);

        // Replication candidate avoids held devices; after replication,
        // placement picks the least-loaded replica.
        assert_eq!(p.replication_candidate("m"), Some(0));
        p.add_replica("m", 0);
        assert_eq!(p.replicas("m"), vec![1, 0]);
        assert_eq!(p.place("m"), 0);
        assert_eq!(p.replication_candidate("m"), None); // covers the pool

        p.remove_replica("m", 0);
        assert_eq!(p.replicas("m"), vec![1]);
        p.remove_model("m");
        assert!(p.replicas("m").is_empty());
    }
}
