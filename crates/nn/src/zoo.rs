//! The model zoo: every architecture of the paper's Table 1.
//!
//! Networks are generated at a configurable `scale` (multiplying channel
//! counts and dense widths) with deterministic He-uniform initialization;
//! the training regimes of the paper (normal, PGD, DiffAI-style, CROWN-IBP
//! style) are applied by `gpupoly-train`. Exact neuron counts at `scale=1.0`
//! land close to the paper's (the originals' private architecture details
//! are approximated from the ERAN repository's conventions) and the actual
//! counts are printed by the Table-1 benchmark binary.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::builder::{BranchBuilder, NetworkBuilder};
use crate::{Network, NetworkError, Shape};

/// The dataset a model is built for (determines the input shape).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// 28×28×1 grayscale images, 10 classes (MNIST-like).
    MnistLike,
    /// 32×32×3 color images, 10 classes (CIFAR-10-like).
    Cifar10Like,
}

impl Dataset {
    /// Input shape of images from this dataset.
    pub fn input_shape(self) -> Shape {
        match self {
            Dataset::MnistLike => Shape::new(28, 28, 1),
            Dataset::Cifar10Like => Shape::new(32, 32, 3),
        }
    }

    /// Number of classes.
    pub fn classes(self) -> usize {
        10
    }

    /// Display name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::MnistLike => "MNIST",
            Dataset::Cifar10Like => "CIFAR10",
        }
    }
}

/// How a model is trained (paper Table 1, "Training" column).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum TrainingRegime {
    /// Standard cross-entropy training.
    Normal,
    /// Adversarial training with projected gradient descent.
    Pgd,
    /// Provably robust training, DiffAI-style (IBP loss).
    DiffAi,
    /// Provably robust training, CROWN-IBP-style (IBP loss, eps schedule).
    CrownIbp,
}

impl TrainingRegime {
    /// Display name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            TrainingRegime::Normal => "Normal",
            TrainingRegime::Pgd => "PGD",
            TrainingRegime::DiffAi => "DiffAI",
            TrainingRegime::CrownIbp => "CR-IBP",
        }
    }

    /// `true` for regimes that certify-train (DiffAI / CROWN-IBP): their
    /// networks have few unstable ReLUs, so early termination usually fires.
    pub fn is_provable(self) -> bool {
        matches!(self, TrainingRegime::DiffAi | TrainingRegime::CrownIbp)
    }
}

/// The architecture families of Table 1.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ArchId {
    /// 6 hidden dense layers of 500 (plus a 10-way output).
    Fc6x500,
    /// 4 convolutions + 3 dense layers (DiffAI "convBig").
    ConvBig,
    /// 4 stride-1 valid convolutions + 3 dense layers ("convSuper").
    ConvSuper,
    /// 5 convolutions + 2 dense layers (CROWN-IBP "large"; the paper's
    /// ConvLarge and IBP_large rows share it).
    ConvLarge,
    /// Small residual network (~12 affine layers).
    ResNetTiny,
    /// Residual network with conv skips on downsampling stages (18 layers).
    ResNet18,
    /// ResNet18 with identity skips wherever shapes allow.
    SkipNet18,
    /// Deeper residual network (34 affine layers).
    ResNet34,
}

impl ArchId {
    /// Display name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            ArchId::Fc6x500 => "6x500",
            ArchId::ConvBig => "ConvBig",
            ArchId::ConvSuper => "ConvSuper",
            ArchId::ConvLarge => "ConvLarge",
            ArchId::ResNetTiny => "ResNetTiny",
            ArchId::ResNet18 => "ResNet18",
            ArchId::SkipNet18 => "SkipNet18",
            ArchId::ResNet34 => "ResNet34",
        }
    }

    /// Network type string for Table 1.
    pub fn type_name(self) -> &'static str {
        match self {
            ArchId::Fc6x500 => "Fully-connected",
            ArchId::ConvBig | ArchId::ConvSuper | ArchId::ConvLarge => "Convolutional",
            _ => "Residual",
        }
    }

    /// `true` for residual architectures (the paper's "big networks").
    pub fn is_residual(self) -> bool {
        matches!(
            self,
            ArchId::ResNetTiny | ArchId::ResNet18 | ArchId::SkipNet18 | ArchId::ResNet34
        )
    }
}

/// One row of Table 1: a network to build, train and verify.
#[derive(Clone, Debug)]
pub struct ModelSpec {
    /// Unique identifier, e.g. `"mnist_convbig_diffai"`.
    pub id: &'static str,
    /// Dataset the model is trained on.
    pub dataset: Dataset,
    /// Architecture family.
    pub arch: ArchId,
    /// Training regime.
    pub training: TrainingRegime,
    /// The L∞ radius the paper verifies this network with.
    pub eps: f32,
    /// Neuron count reported in the paper (for the Table-1 comparison).
    pub paper_neurons: usize,
    /// Layer count reported in the paper.
    pub paper_layers: usize,
}

/// All 16 networks of the paper's Table 1, with the ε values of Tables 2–4.
pub fn table1_specs() -> Vec<ModelSpec> {
    use ArchId::*;
    use Dataset::*;
    use TrainingRegime::*;
    vec![
        spec(
            "mnist_6x500",
            MnistLike,
            Fc6x500,
            Normal,
            8.0 / 255.0,
            3_010,
            6,
        ),
        spec(
            "mnist_convbig_diffai",
            MnistLike,
            ConvBig,
            DiffAi,
            0.3,
            48_000,
            6,
        ),
        spec(
            "mnist_convsuper",
            MnistLike,
            ConvSuper,
            Normal,
            8.0 / 255.0,
            88_000,
            6,
        ),
        spec(
            "mnist_ibp_large_02",
            MnistLike,
            ConvLarge,
            CrownIbp,
            0.258,
            176_000,
            6,
        ),
        spec(
            "mnist_ibp_large_04",
            MnistLike,
            ConvLarge,
            CrownIbp,
            0.3,
            176_000,
            6,
        ),
        spec(
            "cifar_6x500",
            Cifar10Like,
            Fc6x500,
            Normal,
            1.0 / 500.0,
            3_010,
            6,
        ),
        spec(
            "cifar_convbig_diffai",
            Cifar10Like,
            ConvBig,
            DiffAi,
            8.0 / 255.0,
            62_000,
            6,
        ),
        spec(
            "cifar_convlarge_diffai",
            Cifar10Like,
            ConvLarge,
            DiffAi,
            8.0 / 255.0,
            230_000,
            6,
        ),
        spec(
            "cifar_ibp_large_2_255",
            Cifar10Like,
            ConvLarge,
            CrownIbp,
            2.0 / 255.0,
            230_000,
            6,
        ),
        spec(
            "cifar_ibp_large_8_255",
            Cifar10Like,
            ConvLarge,
            CrownIbp,
            8.0 / 255.0,
            230_000,
            6,
        ),
        spec(
            "cifar_resnettiny_pgd",
            Cifar10Like,
            ResNetTiny,
            Pgd,
            1.0 / 500.0,
            311_000,
            12,
        ),
        spec(
            "cifar_resnet18_pgd",
            Cifar10Like,
            ResNet18,
            Pgd,
            1.0 / 500.0,
            558_000,
            18,
        ),
        spec(
            "cifar_resnettiny_diffai",
            Cifar10Like,
            ResNetTiny,
            DiffAi,
            8.0 / 255.0,
            311_000,
            12,
        ),
        spec(
            "cifar_resnet18_diffai",
            Cifar10Like,
            ResNet18,
            DiffAi,
            8.0 / 255.0,
            558_000,
            18,
        ),
        spec(
            "cifar_skipnet18_diffai",
            Cifar10Like,
            SkipNet18,
            DiffAi,
            8.0 / 255.0,
            558_000,
            18,
        ),
        spec(
            "cifar_resnet34_diffai",
            Cifar10Like,
            ResNet34,
            DiffAi,
            8.0 / 255.0,
            967_000,
            34,
        ),
    ]
}

fn spec(
    id: &'static str,
    dataset: Dataset,
    arch: ArchId,
    training: TrainingRegime,
    eps: f32,
    paper_neurons: usize,
    paper_layers: usize,
) -> ModelSpec {
    ModelSpec {
        id,
        dataset,
        arch,
        training,
        eps,
        paper_neurons,
        paper_layers,
    }
}

fn scaled(n: usize, scale: f64) -> usize {
    ((n as f64 * scale).round() as usize).max(1)
}

/// He-uniform initialization bound for a given fan-in.
fn he_bound(fan_in: usize) -> f32 {
    (6.0 / fan_in.max(1) as f32).sqrt()
}

struct Init {
    rng: StdRng,
}

impl Init {
    fn conv_w(&mut self, kh: usize, kw: usize, co: usize, ci: usize) -> Vec<f32> {
        let a = he_bound(kh * kw * ci);
        (0..kh * kw * co * ci)
            .map(|_| self.rng.random_range(-a..a))
            .collect()
    }

    fn dense_w(&mut self, out: usize, inp: usize) -> Vec<f32> {
        let a = he_bound(inp);
        (0..out * inp)
            .map(|_| self.rng.random_range(-a..a))
            .collect()
    }

    fn bias(&mut self, n: usize) -> Vec<f32> {
        (0..n).map(|_| self.rng.random_range(-0.01..0.01)).collect()
    }
}

/// Builds an architecture at the given width `scale` with deterministic
/// He-uniform random weights (to be trained by `gpupoly-train`).
///
/// # Errors
///
/// Propagates [`NetworkError`] when the scaled geometry becomes invalid
/// (e.g. a filter larger than the input at extreme scales).
pub fn build_arch(
    arch: ArchId,
    dataset: Dataset,
    scale: f64,
    seed: u64,
) -> Result<Network<f32>, NetworkError> {
    let mut init = Init {
        rng: StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15),
    };
    let input = dataset.input_shape();
    let classes = dataset.classes();
    let b = NetworkBuilder::new(input);
    match arch {
        ArchId::Fc6x500 => {
            let width = scaled(500, scale);
            let mut b = b;
            let mut in_len = input.len();
            for _ in 0..6 {
                let w = init.dense_w(width, in_len);
                let bias = init.bias(width);
                b = b.dense_flat(width, w, bias).relu();
                in_len = width;
            }
            let w = init.dense_w(classes, in_len);
            let bias = init.bias(classes);
            b.dense_flat(classes, w, bias).build()
        }
        ArchId::ConvBig => {
            let (c1, c2) = (scaled(32, scale), scaled(64, scale));
            let fc = scaled(512, scale);
            conv_stack(
                b,
                &mut init,
                &[(c1, 3, 1, 1), (c1, 4, 2, 1), (c2, 3, 1, 1), (c2, 4, 2, 1)],
                &[fc, fc],
                classes,
            )
        }
        ArchId::ConvSuper => {
            let (c1, c2) = (scaled(32, scale), scaled(64, scale));
            let fc = scaled(512, scale);
            conv_stack(
                b,
                &mut init,
                &[(c1, 3, 1, 0), (c1, 4, 1, 0), (c2, 3, 1, 0), (c2, 4, 1, 0)],
                &[fc, fc],
                classes,
            )
        }
        ArchId::ConvLarge => {
            let (c1, c2) = (scaled(64, scale), scaled(128, scale));
            let fc = scaled(512, scale);
            conv_stack(
                b,
                &mut init,
                &[
                    (c1, 3, 1, 1),
                    (c1, 3, 1, 1),
                    (c2, 3, 2, 1),
                    (c2, 3, 1, 1),
                    (c2, 3, 1, 1),
                ],
                &[fc],
                classes,
            )
        }
        // Stage widths of 48/96/192/384 land the full-scale neuron counts
        // close to the paper's (ERAN's ResNets are narrower than torchvision's).
        ArchId::ResNetTiny => resnet(
            b,
            &mut init,
            scale,
            &[(48, 1), (96, 1), (192, 1), (384, 1)],
            &[512, 256],
            true,
            classes,
        ),
        ArchId::ResNet18 => resnet(
            b,
            &mut init,
            scale,
            &[(48, 2), (96, 2), (192, 2), (384, 2)],
            &[],
            true,
            classes,
        ),
        ArchId::SkipNet18 => resnet(
            b,
            &mut init,
            scale,
            &[(64, 2), (128, 2), (256, 2), (512, 2)],
            &[],
            false,
            classes,
        ),
        ArchId::ResNet34 => resnet(
            b,
            &mut init,
            scale,
            &[(48, 3), (96, 4), (192, 6), (384, 3)],
            &[],
            true,
            classes,
        ),
    }
}

/// conv layers described as `(c_out, k, stride, pad)`, each followed by
/// ReLU, then dense layers, then the classifier head.
fn conv_stack(
    mut b: NetworkBuilder<f32>,
    init: &mut Init,
    convs: &[(usize, usize, usize, usize)],
    dense: &[usize],
    classes: usize,
) -> Result<Network<f32>, NetworkError> {
    for &(co, k, s, p) in convs {
        let ci = b.current_shape().c;
        let w = init.conv_w(k, k, co, ci);
        let bias = init.bias(co);
        b = b.conv(co, (k, k), (s, s), (p, p), w, bias).relu();
    }
    for &d in dense {
        let in_len = b.current_shape().len();
        let w = init.dense_w(d, in_len);
        let bias = init.bias(d);
        b = b.dense_flat(d, w, bias).relu();
    }
    let in_len = b.current_shape().len();
    let w = init.dense_w(classes, in_len);
    let bias = init.bias(classes);
    b.dense_flat(classes, w, bias).build()
}

/// A CIFAR-style ResNet: an entry convolution, then stages of residual
/// blocks (`(channels, blocks)` per stage; the first block of each stage
/// after the first downsamples with stride 2), then optional dense layers
/// and the classifier head. `conv_skip = true` puts a 1×1 convolution on
/// every skip branch (the paper's ResNet flavor); `false` uses identity
/// skips wherever the shape allows (SkipNet).
#[allow(clippy::too_many_arguments)]
fn resnet(
    mut b: NetworkBuilder<f32>,
    init: &mut Init,
    scale: f64,
    stages: &[(usize, usize)],
    dense_head: &[usize],
    conv_skip: bool,
    classes: usize,
) -> Result<Network<f32>, NetworkError> {
    let c0 = scaled(stages[0].0, scale);
    {
        let ci = b.current_shape().c;
        let w = init.conv_w(3, 3, c0, ci);
        let bias = init.bias(c0);
        b = b.conv(c0, (3, 3), (1, 1), (1, 1), w, bias).relu();
    }
    for (si, &(ch, blocks)) in stages.iter().enumerate() {
        let ch = scaled(ch, scale);
        for bi in 0..blocks {
            let downsample = si > 0 && bi == 0;
            let stride = if downsample { 2 } else { 1 };
            let cin = b.current_shape().c;
            // Pre-generate weights outside the closures (Init is not Sync).
            let w1 = init.conv_w(3, 3, ch, cin);
            let b1 = init.bias(ch);
            let w2 = init.conv_w(3, 3, ch, ch);
            let b2 = init.bias(ch);
            let needs_proj = downsample || cin != ch;
            let wskip = if conv_skip || needs_proj {
                Some((init.conv_w(1, 1, ch, cin), init.bias(ch)))
            } else {
                None
            };
            b = b.residual(
                move |br: BranchBuilder<f32>| {
                    br.conv(ch, (3, 3), (stride, stride), (1, 1), w1, b1)
                        .relu()
                        .conv(ch, (3, 3), (1, 1), (1, 1), w2, b2)
                },
                move |br: BranchBuilder<f32>| match wskip {
                    Some((w, bias)) => br.conv(ch, (1, 1), (stride, stride), (0, 0), w, bias),
                    None => br,
                },
            );
            b = b.relu();
        }
    }
    for &d in dense_head {
        let d = scaled(d, scale);
        let in_len = b.current_shape().len();
        let w = init.dense_w(d, in_len);
        let bias = init.bias(d);
        b = b.dense_flat(d, w, bias).relu();
    }
    let in_len = b.current_shape().len();
    let w = init.dense_w(classes, in_len);
    let bias = init.bias(classes);
    b.dense_flat(classes, w, bias).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_cover_all_sixteen_networks() {
        let specs = table1_specs();
        assert_eq!(specs.len(), 16);
        let mnist = specs
            .iter()
            .filter(|s| s.dataset == Dataset::MnistLike)
            .count();
        assert_eq!(mnist, 5);
        let residual = specs.iter().filter(|s| s.arch.is_residual()).count();
        assert_eq!(residual, 6);
        // unique ids
        let mut ids: Vec<_> = specs.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 16);
    }

    #[test]
    fn fc_arch_matches_paper_count_exactly() {
        let net = build_arch(ArchId::Fc6x500, Dataset::MnistLike, 1.0, 0).unwrap();
        assert_eq!(net.neuron_count(), 3_010);
        assert_eq!(net.layer_count(), 7); // 6 hidden + classifier
    }

    #[test]
    fn convbig_counts_land_near_paper() {
        let m = build_arch(ArchId::ConvBig, Dataset::MnistLike, 1.0, 0).unwrap();
        // paper: 48K (MNIST)
        assert!(
            (40_000..60_000).contains(&m.neuron_count()),
            "{}",
            m.neuron_count()
        );
        let c = build_arch(ArchId::ConvBig, Dataset::Cifar10Like, 1.0, 0).unwrap();
        // paper: 62K (CIFAR)
        assert!(
            (55_000..75_000).contains(&c.neuron_count()),
            "{}",
            c.neuron_count()
        );
    }

    #[test]
    fn convlarge_counts_land_near_paper() {
        let m = build_arch(ArchId::ConvLarge, Dataset::MnistLike, 1.0, 0).unwrap();
        assert!(
            (150_000..200_000).contains(&m.neuron_count()),
            "{}",
            m.neuron_count()
        );
        let c = build_arch(ArchId::ConvLarge, Dataset::Cifar10Like, 1.0, 0).unwrap();
        assert!(
            (200_000..260_000).contains(&c.neuron_count()),
            "{}",
            c.neuron_count()
        );
    }

    #[test]
    fn resnets_scale_up_in_size_and_depth() {
        let scale = 0.25; // keep the test quick
        let tiny = build_arch(ArchId::ResNetTiny, Dataset::Cifar10Like, scale, 0).unwrap();
        let r18 = build_arch(ArchId::ResNet18, Dataset::Cifar10Like, scale, 0).unwrap();
        let r34 = build_arch(ArchId::ResNet34, Dataset::Cifar10Like, scale, 0).unwrap();
        assert!(tiny.neuron_count() < r18.neuron_count());
        assert!(r18.neuron_count() < r34.neuron_count());
        assert!(tiny.layer_count() < r18.layer_count());
        assert!(r18.layer_count() < r34.layer_count());
        assert_eq!(r34.layer_count(), 34);
        assert_eq!(r18.layer_count(), 18);
    }

    #[test]
    fn skipnet_uses_identity_skips() {
        let scale = 0.25;
        let skip = build_arch(ArchId::SkipNet18, Dataset::Cifar10Like, scale, 0).unwrap();
        let res = build_arch(ArchId::ResNet18, Dataset::Cifar10Like, scale, 0).unwrap();
        // identity skips mean fewer total affine layers at the same depth
        assert!(skip.affine_count() < res.affine_count());
        assert_eq!(skip.layer_count(), res.layer_count());
        // but inference still works
        let x = vec![0.5_f32; 32 * 32 * 3];
        assert_eq!(skip.infer(&x).len(), 10);
    }

    #[test]
    fn scaled_models_infer() {
        for arch in [ArchId::ConvBig, ArchId::ConvSuper, ArchId::ConvLarge] {
            let net = build_arch(arch, Dataset::MnistLike, 0.2, 7).unwrap();
            let x = vec![0.3_f32; 28 * 28];
            let y = net.infer(&x);
            assert_eq!(y.len(), 10);
            assert!(y.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn same_seed_same_network() {
        let a = build_arch(ArchId::ConvBig, Dataset::MnistLike, 0.2, 42).unwrap();
        let b = build_arch(ArchId::ConvBig, Dataset::MnistLike, 0.2, 42).unwrap();
        let c = build_arch(ArchId::ConvBig, Dataset::MnistLike, 0.2, 43).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
