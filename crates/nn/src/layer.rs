//! Layer definitions: dense (fully-connected), 2-D convolution and ReLU.

use gpupoly_interval::{Fp, Itv};
use serde::{DeError, Deserialize, Serialize, Value};

use crate::{NetworkError, Shape};

/// A fully-connected affine layer `y = W·x + b`.
///
/// `weight` is row-major `[out_len × in_len]`; fields are public passive
/// data (the trainer mutates them in place) but [`Dense::new`] validates
/// sizes.
///
/// # Example
///
/// ```
/// use gpupoly_nn::Dense;
///
/// let d = Dense::new(2, 3, vec![1.0_f32, 0.0, -1.0, 0.5, 0.5, 0.5], vec![0.0, 1.0])?;
/// let mut y = [0.0; 2];
/// d.forward(&[1.0, 2.0, 3.0], &mut y);
/// assert_eq!(y, [-2.0, 4.0]);
/// # Ok::<(), gpupoly_nn::NetworkError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Dense<F> {
    /// Number of outputs (rows of `W`).
    pub out_len: usize,
    /// Number of inputs (columns of `W`).
    pub in_len: usize,
    /// Row-major `[out_len × in_len]` weights.
    pub weight: Vec<F>,
    /// Per-output bias.
    pub bias: Vec<F>,
}

impl<F: Fp> Dense<F> {
    /// Creates a validated dense layer.
    ///
    /// # Errors
    ///
    /// [`NetworkError::SizeMismatch`] when the weight or bias length does not
    /// match `out_len`/`in_len`.
    pub fn new(
        out_len: usize,
        in_len: usize,
        weight: Vec<F>,
        bias: Vec<F>,
    ) -> Result<Self, NetworkError> {
        if weight.len() != out_len * in_len {
            return Err(NetworkError::SizeMismatch {
                what: "dense weight",
                expected: out_len * in_len,
                got: weight.len(),
            });
        }
        if bias.len() != out_len {
            return Err(NetworkError::SizeMismatch {
                what: "dense bias",
                expected: out_len,
                got: bias.len(),
            });
        }
        Ok(Self {
            out_len,
            in_len,
            weight,
            bias,
        })
    }

    /// One row of the weight matrix.
    #[inline]
    pub fn row(&self, i: usize) -> &[F] {
        &self.weight[i * self.in_len..(i + 1) * self.in_len]
    }

    /// Round-to-nearest forward pass (inference).
    ///
    /// # Panics
    ///
    /// Panics when `x` or `y` have the wrong length.
    pub fn forward(&self, x: &[F], y: &mut [F]) {
        assert_eq!(x.len(), self.in_len, "dense input length");
        assert_eq!(y.len(), self.out_len, "dense output length");
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = self.bias[i];
            for (&w, &xi) in self.row(i).iter().zip(x) {
                acc = w.mul_add(xi, acc);
            }
            *yi = acc;
        }
    }

    /// Sound interval forward pass (outward rounding) — interval bound
    /// propagation through the layer.
    ///
    /// # Panics
    ///
    /// Panics when `x` or `y` have the wrong length.
    pub fn forward_itv(&self, x: &[Itv<F>], y: &mut [Itv<F>]) {
        assert_eq!(x.len(), self.in_len, "dense input length");
        assert_eq!(y.len(), self.out_len, "dense output length");
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = Itv::point(self.bias[i]);
            for (&w, &xi) in self.row(i).iter().zip(x) {
                acc = xi.mul_add_f(w, acc);
            }
            *yi = acc;
        }
    }

    /// The same layer with every parameter widened to `f64` (lossless for
    /// `f32` parameters — every `f32` is exactly representable in `f64`).
    pub fn widen(&self) -> Dense<f64> {
        Dense {
            out_len: self.out_len,
            in_len: self.in_len,
            weight: self.weight.iter().map(|w| w.to_f64()).collect(),
            bias: self.bias.iter().map(|b| b.to_f64()).collect(),
        }
    }
}

/// A 2-D convolution layer.
///
/// Weight layout is `[kh][kw][c_out][c_in]` with `c_in` innermost — the
/// `F_k[f][g][d][c]` tensor of the paper's Algorithm 1, whose inner loop
/// over `c` (the layer-`k-1` channels) is the memory-contiguous, parallel
/// dimension of the GBC kernel. Padding is symmetric zero-padding.
///
/// # Example
///
/// ```
/// use gpupoly_nn::{Conv2d, Shape};
///
/// // 3x3 input, one channel, 2x2 filter of ones, stride 1, no padding.
/// let c = Conv2d::new(Shape::new(3, 3, 1), 1, (2, 2), (1, 1), (0, 0),
///                     vec![1.0_f32; 4], vec![0.0])?;
/// assert_eq!(c.out_shape, Shape::new(2, 2, 1));
/// let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
/// let mut y = [0.0; 4];
/// c.forward(&x, &mut y);
/// assert_eq!(y, [12.0, 16.0, 24.0, 28.0]);
/// # Ok::<(), gpupoly_nn::NetworkError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Conv2d<F> {
    /// Input activation shape.
    pub in_shape: Shape,
    /// Output activation shape (derived).
    pub out_shape: Shape,
    /// Filter height.
    pub kh: usize,
    /// Filter width.
    pub kw: usize,
    /// Vertical stride.
    pub sh: usize,
    /// Horizontal stride.
    pub sw: usize,
    /// Vertical zero padding (same on both sides).
    pub ph: usize,
    /// Horizontal zero padding (same on both sides).
    pub pw: usize,
    /// Filter weights, `[kh][kw][c_out][c_in]`, `c_in` innermost.
    pub weight: Vec<F>,
    /// Per-output-channel bias.
    pub bias: Vec<F>,
}

impl<F: Fp> Conv2d<F> {
    /// Creates a validated convolution layer; the output shape is derived
    /// from the geometry.
    ///
    /// # Errors
    ///
    /// [`NetworkError::BadGeometry`] for zero strides/filters or an empty
    /// output; [`NetworkError::SizeMismatch`] for wrong weight/bias lengths.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        in_shape: Shape,
        c_out: usize,
        (kh, kw): (usize, usize),
        (sh, sw): (usize, usize),
        (ph, pw): (usize, usize),
        weight: Vec<F>,
        bias: Vec<F>,
    ) -> Result<Self, NetworkError> {
        if kh == 0 || kw == 0 || sh == 0 || sw == 0 || c_out == 0 {
            return Err(NetworkError::BadGeometry(format!(
                "conv with zero dimension: k=({kh},{kw}) s=({sh},{sw}) c_out={c_out}"
            )));
        }
        if in_shape.h + 2 * ph < kh || in_shape.w + 2 * pw < kw {
            return Err(NetworkError::BadGeometry(format!(
                "filter ({kh},{kw}) larger than padded input {in_shape}"
            )));
        }
        let oh = (in_shape.h + 2 * ph - kh) / sh + 1;
        let ow = (in_shape.w + 2 * pw - kw) / sw + 1;
        let out_shape = Shape::new(oh, ow, c_out);
        let want_w = kh * kw * c_out * in_shape.c;
        if weight.len() != want_w {
            return Err(NetworkError::SizeMismatch {
                what: "conv weight",
                expected: want_w,
                got: weight.len(),
            });
        }
        if bias.len() != c_out {
            return Err(NetworkError::SizeMismatch {
                what: "conv bias",
                expected: c_out,
                got: bias.len(),
            });
        }
        Ok(Self {
            in_shape,
            out_shape,
            kh,
            kw,
            sh,
            sw,
            ph,
            pw,
            weight,
            bias,
        })
    }

    /// Linear index into the weight tensor for `(f, g, co, ci)`.
    #[inline(always)]
    pub fn widx(&self, f: usize, g: usize, co: usize, ci: usize) -> usize {
        ((f * self.kw + g) * self.out_shape.c + co) * self.in_shape.c + ci
    }

    /// Round-to-nearest forward pass.
    ///
    /// # Panics
    ///
    /// Panics when `x` or `y` have the wrong length.
    pub fn forward(&self, x: &[F], y: &mut [F]) {
        assert_eq!(x.len(), self.in_shape.len(), "conv input length");
        assert_eq!(y.len(), self.out_shape.len(), "conv output length");
        let (ci_n, co_n) = (self.in_shape.c, self.out_shape.c);
        for oh in 0..self.out_shape.h {
            for ow in 0..self.out_shape.w {
                let base = self.out_shape.idx(oh, ow, 0);
                y[base..base + co_n].copy_from_slice(&self.bias);
                for f in 0..self.kh {
                    let ih = (oh * self.sh + f) as isize - self.ph as isize;
                    if ih < 0 || ih as usize >= self.in_shape.h {
                        continue;
                    }
                    for g in 0..self.kw {
                        let iw = (ow * self.sw + g) as isize - self.pw as isize;
                        if iw < 0 || iw as usize >= self.in_shape.w {
                            continue;
                        }
                        let xin = self.in_shape.idx(ih as usize, iw as usize, 0);
                        for co in 0..co_n {
                            let mut acc = y[base + co];
                            let wbase = self.widx(f, g, co, 0);
                            for ci in 0..ci_n {
                                acc = self.weight[wbase + ci].mul_add(x[xin + ci], acc);
                            }
                            y[base + co] = acc;
                        }
                    }
                }
            }
        }
    }

    /// Sound interval forward pass (outward rounding).
    ///
    /// # Panics
    ///
    /// Panics when `x` or `y` have the wrong length.
    pub fn forward_itv(&self, x: &[Itv<F>], y: &mut [Itv<F>]) {
        assert_eq!(x.len(), self.in_shape.len(), "conv input length");
        assert_eq!(y.len(), self.out_shape.len(), "conv output length");
        let (ci_n, co_n) = (self.in_shape.c, self.out_shape.c);
        for oh in 0..self.out_shape.h {
            for ow in 0..self.out_shape.w {
                let base = self.out_shape.idx(oh, ow, 0);
                for (co, b) in self.bias.iter().enumerate() {
                    y[base + co] = Itv::point(*b);
                }
                for f in 0..self.kh {
                    let ih = (oh * self.sh + f) as isize - self.ph as isize;
                    if ih < 0 || ih as usize >= self.in_shape.h {
                        continue;
                    }
                    for g in 0..self.kw {
                        let iw = (ow * self.sw + g) as isize - self.pw as isize;
                        if iw < 0 || iw as usize >= self.in_shape.w {
                            continue;
                        }
                        let xin = self.in_shape.idx(ih as usize, iw as usize, 0);
                        for co in 0..co_n {
                            let mut acc = y[base + co];
                            let wbase = self.widx(f, g, co, 0);
                            for ci in 0..ci_n {
                                acc = x[xin + ci].mul_add_f(self.weight[wbase + ci], acc);
                            }
                            y[base + co] = acc;
                        }
                    }
                }
            }
        }
    }

    /// The same layer with every parameter widened to `f64` (lossless for
    /// `f32` parameters); the geometry is unchanged.
    pub fn widen(&self) -> Conv2d<f64> {
        Conv2d {
            in_shape: self.in_shape,
            out_shape: self.out_shape,
            kh: self.kh,
            kw: self.kw,
            sh: self.sh,
            sw: self.sw,
            ph: self.ph,
            pw: self.pw,
            weight: self.weight.iter().map(|w| w.to_f64()).collect(),
            bias: self.bias.iter().map(|b| b.to_f64()).collect(),
        }
    }
}

impl<F: Serialize> Serialize for Dense<F> {
    fn to_value(&self) -> Value {
        Value::obj([
            ("out_len", self.out_len.to_value()),
            ("in_len", self.in_len.to_value()),
            ("weight", self.weight.to_value()),
            ("bias", self.bias.to_value()),
        ])
    }
}

impl<'de, F: Deserialize<'de>> Deserialize<'de> for Dense<F> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Dense {
            out_len: usize::from_value(v.field("out_len")?)?,
            in_len: usize::from_value(v.field("in_len")?)?,
            weight: Vec::from_value(v.field("weight")?)?,
            bias: Vec::from_value(v.field("bias")?)?,
        })
    }
}

impl<F: Serialize> Serialize for Conv2d<F> {
    fn to_value(&self) -> Value {
        Value::obj([
            ("in_shape", self.in_shape.to_value()),
            ("out_shape", self.out_shape.to_value()),
            ("kh", self.kh.to_value()),
            ("kw", self.kw.to_value()),
            ("sh", self.sh.to_value()),
            ("sw", self.sw.to_value()),
            ("ph", self.ph.to_value()),
            ("pw", self.pw.to_value()),
            ("weight", self.weight.to_value()),
            ("bias", self.bias.to_value()),
        ])
    }
}

impl<'de, F: Deserialize<'de>> Deserialize<'de> for Conv2d<F> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Conv2d {
            in_shape: Shape::from_value(v.field("in_shape")?)?,
            out_shape: Shape::from_value(v.field("out_shape")?)?,
            kh: usize::from_value(v.field("kh")?)?,
            kw: usize::from_value(v.field("kw")?)?,
            sh: usize::from_value(v.field("sh")?)?,
            sw: usize::from_value(v.field("sw")?)?,
            ph: usize::from_value(v.field("ph")?)?,
            pw: usize::from_value(v.field("pw")?)?,
            weight: Vec::from_value(v.field("weight")?)?,
            bias: Vec::from_value(v.field("bias")?)?,
        })
    }
}

/// Element-wise ReLU, `y_i = max(x_i, 0)`.
pub fn relu_forward<F: Fp>(x: &[F], y: &mut [F]) {
    assert_eq!(x.len(), y.len(), "relu length");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi = xi.max(F::ZERO);
    }
}

/// Element-wise interval ReLU: `[max(l,0), max(u,0)]` (exact, no rounding).
pub fn relu_forward_itv<F: Fp>(x: &[Itv<F>], y: &mut [Itv<F>]) {
    assert_eq!(x.len(), y.len(), "relu length");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi = Itv::new(xi.lo.max(F::ZERO), xi.hi.max(F::ZERO));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_rejects_bad_sizes() {
        assert!(matches!(
            Dense::<f32>::new(2, 2, vec![0.0; 3], vec![0.0; 2]),
            Err(NetworkError::SizeMismatch {
                what: "dense weight",
                ..
            })
        ));
        assert!(matches!(
            Dense::<f32>::new(2, 2, vec![0.0; 4], vec![0.0; 3]),
            Err(NetworkError::SizeMismatch {
                what: "dense bias",
                ..
            })
        ));
    }

    #[test]
    fn dense_forward_itv_contains_point_forward() {
        let d = Dense::new(
            2,
            3,
            vec![0.1_f32, -0.2, 0.3, 0.5, 0.5, -0.5],
            vec![1.0, -1.0],
        )
        .unwrap();
        let x = [0.3_f32, 0.7, -0.2];
        let mut y = [0.0_f32; 2];
        d.forward(&x, &mut y);
        let xi: Vec<Itv<f32>> = x.iter().map(|&v| Itv::point(v)).collect();
        let mut yi = [Itv::zero(); 2];
        d.forward_itv(&xi, &mut yi);
        for (a, b) in yi.iter().zip(&y) {
            assert!(a.contains(*b), "{a} misses {b}");
        }
    }

    #[test]
    fn conv_shape_derivation() {
        let mk = |h, w, c, cout, k, s, p| {
            Conv2d::<f32>::new(
                Shape::new(h, w, c),
                cout,
                (k, k),
                (s, s),
                (p, p),
                vec![0.0; k * k * cout * c],
                vec![0.0; cout],
            )
            .unwrap()
            .out_shape
        };
        assert_eq!(mk(28, 28, 1, 32, 3, 1, 1), Shape::new(28, 28, 32));
        assert_eq!(mk(28, 28, 32, 32, 4, 2, 1), Shape::new(14, 14, 32));
        assert_eq!(mk(5, 5, 2, 2, 2, 1, 0), Shape::new(4, 4, 2));
    }

    #[test]
    fn conv_rejects_bad_geometry() {
        assert!(matches!(
            Conv2d::<f32>::new(
                Shape::new(2, 2, 1),
                1,
                (3, 3),
                (1, 1),
                (0, 0),
                vec![0.0; 9],
                vec![0.0]
            ),
            Err(NetworkError::BadGeometry(_))
        ));
        assert!(matches!(
            Conv2d::<f32>::new(
                Shape::new(4, 4, 1),
                1,
                (2, 2),
                (0, 1),
                (0, 0),
                vec![0.0; 4],
                vec![0.0]
            ),
            Err(NetworkError::BadGeometry(_))
        ));
    }

    #[test]
    fn conv_padding_zero_pads() {
        // 1x1 input, 3x3 filter, padding 1: output 1x1 sees only the center.
        let mut w = vec![0.0_f32; 9];
        w[4] = 2.0; // center tap (f=1, g=1)
        let c = Conv2d::new(Shape::new(1, 1, 1), 1, (3, 3), (1, 1), (1, 1), w, vec![0.5]).unwrap();
        let mut y = [0.0_f32];
        c.forward(&[3.0], &mut y);
        assert_eq!(y[0], 6.5);
    }

    #[test]
    fn conv_multichannel_accumulates_over_cin() {
        // 1x1 spatial, 2 in channels, 1 out channel, 1x1 filter.
        let c = Conv2d::new(
            Shape::new(1, 1, 2),
            1,
            (1, 1),
            (1, 1),
            (0, 0),
            vec![2.0_f32, 3.0],
            vec![1.0],
        )
        .unwrap();
        let mut y = [0.0_f32];
        c.forward(&[10.0, 100.0], &mut y);
        assert_eq!(y[0], 1.0 + 20.0 + 300.0);
    }

    #[test]
    fn conv_stride_skips_positions() {
        // 4x1 input, 2x1 filter of ones, stride 2.
        let c = Conv2d::new(
            Shape::new(4, 1, 1),
            1,
            (2, 1),
            (2, 1),
            (0, 0),
            vec![1.0_f32, 1.0],
            vec![0.0],
        )
        .unwrap();
        assert_eq!(c.out_shape, Shape::new(2, 1, 1));
        let mut y = [0.0_f32; 2];
        c.forward(&[1.0, 2.0, 3.0, 4.0], &mut y);
        assert_eq!(y, [3.0, 7.0]);
    }

    #[test]
    fn conv_forward_itv_contains_point_forward() {
        let shape = Shape::new(4, 4, 2);
        let cout = 3;
        let n_w = 2 * 2 * cout * 2;
        let w: Vec<f32> = (0..n_w).map(|i| ((i % 7) as f32 - 3.0) * 0.25).collect();
        let c = Conv2d::new(shape, cout, (2, 2), (1, 1), (1, 1), w, vec![0.1, -0.1, 0.0]).unwrap();
        let x: Vec<f32> = (0..shape.len())
            .map(|i| ((i % 5) as f32 - 2.0) * 0.3)
            .collect();
        let mut y = vec![0.0_f32; c.out_shape.len()];
        c.forward(&x, &mut y);
        let xi: Vec<Itv<f32>> = x.iter().map(|&v| Itv::point(v)).collect();
        let mut yi = vec![Itv::zero(); c.out_shape.len()];
        c.forward_itv(&xi, &mut yi);
        for (a, b) in yi.iter().zip(&y) {
            assert!(a.contains(*b), "{a} misses {b}");
        }
    }

    #[test]
    fn relu_clamps() {
        let x = [-1.0_f32, 0.0, 2.5];
        let mut y = [0.0_f32; 3];
        relu_forward(&x, &mut y);
        assert_eq!(y, [0.0, 0.0, 2.5]);
        let xi = [
            Itv::new(-2.0_f32, -1.0),
            Itv::new(-1.0, 1.0),
            Itv::new(0.5, 2.0),
        ];
        let mut yi = [Itv::zero(); 3];
        relu_forward_itv(&xi, &mut yi);
        assert_eq!(yi[0], Itv::zero());
        assert_eq!(yi[1], Itv::new(0.0, 1.0));
        assert_eq!(yi[2], Itv::new(0.5, 2.0));
    }
}
