//! Neural-network substrate for polyhedral verification.
//!
//! GPUPoly (MLSys 2021) verifies fully-connected, convolutional and residual
//! ReLU networks. This crate provides that substrate from scratch:
//!
//! * [`Shape`] — activation tensor shapes (channel-innermost, matching the
//!   memory layout the paper's Algorithm 1 parallelizes over),
//! * [`Dense`], [`Conv2d`] and ReLU layers with both round-to-nearest
//!   inference and sound interval (IBP) forward passes,
//! * [`Network`] — validated structured networks with width-2 residual
//!   blocks (the paper's §3.1 assumption), flattened on demand into the
//!   "network DAG" [`Graph`] that drives both inference and backsubstitution,
//! * [`builder::NetworkBuilder`] — ergonomic construction,
//! * [`zoo`] — every architecture of the paper's Table 1, generated at a
//!   configurable scale.
//!
//! # Example
//!
//! ```
//! use gpupoly_nn::builder::NetworkBuilder;
//! use gpupoly_interval::Itv;
//!
//! let net = NetworkBuilder::new_flat(2)
//!     .dense(&[[1.0_f32, 1.0], [1.0, -1.0]], &[0.0, 0.0])
//!     .relu()
//!     .dense(&[[1.0_f32, 0.0], [0.0, 1.0]], &[0.0, 0.0])
//!     .build()?;
//!
//! // Point inference and sound interval inference agree.
//! let y = net.infer(&[0.5, 0.25]);
//! let bounds = net.infer_itv(&[Itv::new(0.4, 0.6), Itv::new(0.2, 0.3)]);
//! assert!(bounds[0].contains(y[0]) && bounds[1].contains(y[1]));
//! # Ok::<(), gpupoly_nn::NetworkError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
mod error;
mod layer;
mod network;
mod shape;
pub mod store;
pub mod zoo;

pub use error::NetworkError;
pub use layer::{relu_forward, relu_forward_itv, Conv2d, Dense};
pub use network::{Block, Graph, Layer, Network, Node, NodeId, Op};
pub use shape::Shape;
