//! Structured networks and their flattened computation graphs.

use gpupoly_interval::{Fp, Itv};
use serde::{DeError, Deserialize, Serialize, Value};

use crate::{relu_forward, relu_forward_itv, Conv2d, Dense, NetworkError, Shape};

/// A single layer of a network.
#[derive(Clone, Debug, PartialEq)]
pub enum Layer<F> {
    /// Fully-connected affine layer.
    Dense(Dense<F>),
    /// 2-D convolution.
    Conv(Conv2d<F>),
    /// Element-wise ReLU.
    Relu,
}

impl<F: Fp> Layer<F> {
    /// Output shape given the input shape.
    ///
    /// # Errors
    ///
    /// [`NetworkError::SizeMismatch`] / [`NetworkError::BadGeometry`] when
    /// the layer cannot consume the given shape.
    pub fn out_shape(&self, in_shape: Shape) -> Result<Shape, NetworkError> {
        match self {
            Layer::Dense(d) => {
                if in_shape.len() != d.in_len {
                    return Err(NetworkError::SizeMismatch {
                        what: "dense input",
                        expected: d.in_len,
                        got: in_shape.len(),
                    });
                }
                Ok(Shape::flat(d.out_len))
            }
            Layer::Conv(c) => {
                if in_shape != c.in_shape {
                    return Err(NetworkError::BadGeometry(format!(
                        "conv expects input {}, got {}",
                        c.in_shape, in_shape
                    )));
                }
                Ok(c.out_shape)
            }
            Layer::Relu => Ok(in_shape),
        }
    }

    /// `true` for affine (dense/conv) layers.
    pub fn is_affine(&self) -> bool {
        matches!(self, Layer::Dense(_) | Layer::Conv(_))
    }
}

/// One block of a structured network: a plain layer, or a residual block of
/// two parallel branches whose outputs are added.
///
/// An empty branch is the identity (a skip connection). The paper assumes
/// residual width two (§3.1), i.e. no nested residual blocks — the type
/// enforces this: branches are flat layer lists.
#[derive(Clone, Debug, PartialEq)]
pub enum Block<F> {
    /// A single layer.
    Single(Layer<F>),
    /// A residual block: `out = a(x) + b(x)`.
    Residual {
        /// Main branch (may be empty = identity).
        a: Vec<Layer<F>>,
        /// Skip branch (may be empty = identity).
        b: Vec<Layer<F>>,
    },
}

/// A validated feed-forward network with optional residual blocks.
///
/// Construct through [`Network::new`] or
/// [`crate::builder::NetworkBuilder`]; both validate all shapes by building
/// the computation graph once.
///
/// # Example
///
/// ```
/// use gpupoly_nn::builder::NetworkBuilder;
///
/// let net = NetworkBuilder::new_flat(3)
///     .dense_flat(2, vec![1.0_f32, 0.0, 0.0, 0.0, 1.0, 0.0], vec![0.0, 0.0])
///     .relu()
///     .build()?;
/// assert_eq!(net.infer(&[1.0, -2.0, 5.0]), vec![1.0, 0.0]);
/// assert_eq!(net.neuron_count(), 2);
/// # Ok::<(), gpupoly_nn::NetworkError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Network<F> {
    input_shape: Shape,
    blocks: Vec<Block<F>>,
}

// Hand-written serialization over the serde shim's value model, following
// serde's default conventions (externally tagged enums) so the JSON format
// matches what the derive macros would have produced.

impl<F: Serialize> Serialize for Layer<F> {
    fn to_value(&self) -> Value {
        match self {
            Layer::Dense(d) => Value::obj([("Dense", d.to_value())]),
            Layer::Conv(c) => Value::obj([("Conv", c.to_value())]),
            Layer::Relu => Value::Str("Relu".to_string()),
        }
    }
}

impl<'de, F: Deserialize<'de>> Deserialize<'de> for Layer<F> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s == "Relu" => Ok(Layer::Relu),
            Value::Obj(fields) if fields.len() == 1 => match fields[0].0.as_str() {
                "Dense" => Ok(Layer::Dense(Dense::from_value(&fields[0].1)?)),
                "Conv" => Ok(Layer::Conv(Conv2d::from_value(&fields[0].1)?)),
                other => Err(DeError(format!("unknown Layer variant `{other}`"))),
            },
            _ => Err(DeError("expected a Layer variant".to_string())),
        }
    }
}

impl<F: Serialize> Serialize for Block<F> {
    fn to_value(&self) -> Value {
        match self {
            Block::Single(layer) => Value::obj([("Single", layer.to_value())]),
            Block::Residual { a, b } => Value::obj([(
                "Residual",
                Value::obj([("a", a.to_value()), ("b", b.to_value())]),
            )]),
        }
    }
}

impl<'de, F: Deserialize<'de>> Deserialize<'de> for Block<F> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(fields) if fields.len() == 1 => match fields[0].0.as_str() {
                "Single" => Ok(Block::Single(Layer::from_value(&fields[0].1)?)),
                "Residual" => Ok(Block::Residual {
                    a: Vec::from_value(fields[0].1.field("a")?)?,
                    b: Vec::from_value(fields[0].1.field("b")?)?,
                }),
                other => Err(DeError(format!("unknown Block variant `{other}`"))),
            },
            _ => Err(DeError("expected a Block variant".to_string())),
        }
    }
}

impl<F: Serialize> Serialize for Network<F> {
    fn to_value(&self) -> Value {
        Value::obj([
            ("input_shape", self.input_shape.to_value()),
            ("blocks", self.blocks.to_value()),
        ])
    }
}

impl<'de, F: Deserialize<'de>> Deserialize<'de> for Network<F> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Network {
            input_shape: Shape::from_value(v.field("input_shape")?)?,
            blocks: Vec::from_value(v.field("blocks")?)?,
        })
    }
}

impl<F: Fp + Serialize + for<'de> Deserialize<'de>> Network<F> {
    /// Serializes the network to JSON.
    ///
    /// # Errors
    ///
    /// [`NetworkError::Io`] when serialization fails.
    pub fn to_json(&self) -> Result<String, NetworkError> {
        serde_json::to_string(self).map_err(|e| NetworkError::Io(e.to_string()))
    }

    /// Deserializes and validates a network from JSON.
    ///
    /// # Errors
    ///
    /// [`NetworkError::Io`] on malformed JSON, or any validation error from
    /// [`Network::new`].
    pub fn from_json(s: &str) -> Result<Self, NetworkError> {
        let raw: Network<F> =
            serde_json::from_str(s).map_err(|e| NetworkError::Io(e.to_string()))?;
        Network::new(raw.input_shape, raw.blocks)
    }
}

impl<F: Fp> Network<F> {
    /// Creates a network after validating every layer shape.
    ///
    /// # Errors
    ///
    /// Any shape or geometry error discovered while threading the input
    /// shape through the blocks, or [`NetworkError::Empty`] for zero blocks.
    pub fn new(input_shape: Shape, blocks: Vec<Block<F>>) -> Result<Self, NetworkError> {
        if blocks.is_empty() {
            return Err(NetworkError::Empty);
        }
        let net = Self {
            input_shape,
            blocks,
        };
        net.build_graph()?; // validation
        Ok(net)
    }

    /// The input shape.
    pub fn input_shape(&self) -> Shape {
        self.input_shape
    }

    /// The blocks of the network.
    pub fn blocks(&self) -> &[Block<F>] {
        &self.blocks
    }

    /// Mutable access to the blocks, for in-place weight updates (training).
    ///
    /// Mutating weight *values* is always safe; changing layer shapes or the
    /// block structure may invalidate the network — call
    /// [`Network::new`] again (or re-validate through `graph()`) if you do.
    pub fn blocks_mut(&mut self) -> &mut [Block<F>] {
        &mut self.blocks
    }

    /// The flattened computation graph (validated at construction).
    pub fn graph(&self) -> Graph<'_, F> {
        self.build_graph()
            .expect("network was validated at construction")
    }

    fn build_graph(&self) -> Result<Graph<'_, F>, NetworkError> {
        let mut nodes = vec![Node {
            op: Op::Input,
            parents: Vec::new(),
            shape: self.input_shape,
        }];
        let mut cur = 0usize;
        fn chain<'a, F: Fp>(
            nodes: &mut Vec<Node<'a, F>>,
            layers: &'a [Layer<F>],
            from: NodeId,
        ) -> Result<NodeId, NetworkError> {
            let mut at = from;
            for layer in layers {
                let shape = layer.out_shape(nodes[at].shape)?;
                let op = match layer {
                    Layer::Dense(d) => Op::Dense(d),
                    Layer::Conv(c) => Op::Conv(c),
                    Layer::Relu => Op::Relu,
                };
                nodes.push(Node {
                    op,
                    parents: vec![at],
                    shape,
                });
                at = nodes.len() - 1;
            }
            Ok(at)
        }
        for block in &self.blocks {
            match block {
                Block::Single(layer) => {
                    cur = chain(&mut nodes, std::slice::from_ref(layer), cur)?;
                }
                Block::Residual { a, b } => {
                    let head = cur;
                    let ta = chain(&mut nodes, a, head)?;
                    let tb = chain(&mut nodes, b, head)?;
                    let (sa, sb) = (nodes[ta].shape, nodes[tb].shape);
                    if sa.len() != sb.len() {
                        return Err(NetworkError::ResidualShapeMismatch(format!(
                            "branch a yields {sa}, branch b yields {sb}"
                        )));
                    }
                    nodes.push(Node {
                        op: Op::Add { head },
                        parents: vec![ta, tb],
                        shape: sa,
                    });
                    cur = nodes.len() - 1;
                }
            }
        }
        Ok(Graph { nodes })
    }

    /// Number of neurons, counted as the outputs of affine layers (the
    /// convention of the paper's Table 1: the 6×500 MNIST net has
    /// 6·500 + 10 = 3010 neurons).
    pub fn neuron_count(&self) -> usize {
        self.graph()
            .nodes
            .iter()
            .filter(|n| matches!(n.op, Op::Dense(_) | Op::Conv(_)))
            .map(|n| n.shape.len())
            .sum()
    }

    /// Network depth: the number of affine layers on the longest
    /// input→output path (the paper's "#Layers" convention — parallel skip
    /// projections inside residual blocks do not add depth).
    pub fn layer_count(&self) -> usize {
        let g = self.graph();
        let mut depth = vec![0usize; g.nodes.len()];
        for (i, node) in g.nodes.iter().enumerate() {
            let parent_depth = node.parents.iter().map(|&p| depth[p]).max().unwrap_or(0);
            let own = usize::from(matches!(node.op, Op::Dense(_) | Op::Conv(_)));
            depth[i] = parent_depth + own;
        }
        depth[g.output()]
    }

    /// Total number of stored parameters (weights and biases) — times
    /// `size_of::<F>()`, the device bytes a fully packed engine will pin,
    /// which is what a serving layer budgets before loading a model.
    pub fn param_count(&self) -> usize {
        fn layer_params<F>(layer: &Layer<F>) -> usize {
            match layer {
                Layer::Dense(d) => d.weight.len() + d.bias.len(),
                Layer::Conv(c) => c.weight.len() + c.bias.len(),
                Layer::Relu => 0,
            }
        }
        self.blocks
            .iter()
            .map(|b| match b {
                Block::Single(layer) => layer_params(layer),
                Block::Residual { a, b } => {
                    a.iter().map(layer_params).sum::<usize>()
                        + b.iter().map(layer_params).sum::<usize>()
                }
            })
            .sum()
    }

    /// Total number of affine layers, including parallel skip projections.
    pub fn affine_count(&self) -> usize {
        self.graph()
            .nodes
            .iter()
            .filter(|n| matches!(n.op, Op::Dense(_) | Op::Conv(_)))
            .count()
    }

    /// Length of the output vector.
    pub fn output_len(&self) -> usize {
        self.graph().nodes.last().expect("non-empty").shape.len()
    }

    /// Round-to-nearest inference; returns the output activations.
    ///
    /// # Panics
    ///
    /// Panics when `input` does not match the input shape.
    pub fn infer(&self, input: &[F]) -> Vec<F> {
        let g = self.graph();
        g.eval(input).pop().expect("non-empty graph")
    }

    /// The predicted label: index of the maximal output.
    ///
    /// # Panics
    ///
    /// Panics when `input` does not match the input shape.
    pub fn classify(&self, input: &[F]) -> usize {
        let out = self.infer(input);
        let mut best = 0;
        for (i, &v) in out.iter().enumerate() {
            if v > out[best] {
                best = i;
            }
        }
        best
    }

    /// Sound interval inference (interval bound propagation); returns the
    /// output bounds.
    ///
    /// # Panics
    ///
    /// Panics when `input` does not match the input shape.
    pub fn infer_itv(&self, input: &[Itv<F>]) -> Vec<Itv<F>> {
        let g = self.graph();
        g.eval_itv(input).pop().expect("non-empty graph")
    }

    /// The same network with every parameter widened to `f64`.
    ///
    /// For an `f32` network the widening is **lossless** — every `f32`
    /// value is exactly representable in `f64` — so the widened network
    /// computes over the *identical* real-valued function; only the
    /// arithmetic precision of downstream analyses changes. This is the
    /// full-precision companion a precision-tiered verifier escalates to.
    /// Shapes are untouched, so no revalidation is needed.
    pub fn widen(&self) -> Network<f64> {
        fn widen_layer<F: Fp>(layer: &Layer<F>) -> Layer<f64> {
            match layer {
                Layer::Dense(d) => Layer::Dense(d.widen()),
                Layer::Conv(c) => Layer::Conv(c.widen()),
                Layer::Relu => Layer::Relu,
            }
        }
        let blocks = self
            .blocks
            .iter()
            .map(|block| match block {
                Block::Single(layer) => Block::Single(widen_layer(layer)),
                Block::Residual { a, b } => Block::Residual {
                    a: a.iter().map(widen_layer).collect(),
                    b: b.iter().map(widen_layer).collect(),
                },
            })
            .collect();
        Network {
            input_shape: self.input_shape,
            blocks,
        }
    }
}

/// Identifier of a node in a [`Graph`] (its index; node 0 is the input).
pub type NodeId = usize;

/// The operation a graph node performs.
#[derive(Clone, Copy, Debug)]
pub enum Op<'a, F> {
    /// The network input.
    Input,
    /// Fully-connected affine transform.
    Dense(&'a Dense<F>),
    /// 2-D convolution.
    Conv(&'a Conv2d<F>),
    /// Element-wise ReLU.
    Relu,
    /// Element-wise addition of the two parents (exit of a residual block).
    Add {
        /// The node where the two branches forked — the "head" of the
        /// residual block, at which backsubstituted branch expressions merge.
        head: NodeId,
    },
}

/// One node of the flattened computation graph.
#[derive(Clone, Debug)]
pub struct Node<'a, F> {
    /// The operation.
    pub op: Op<'a, F>,
    /// Parent nodes ([] for input, [x] for layers, [a, b] for Add).
    pub parents: Vec<NodeId>,
    /// Output shape of this node.
    pub shape: Shape,
}

/// A network flattened into a topologically ordered node list — the "network
/// DAG" of the paper's §3.1, specialized to residual width two.
#[derive(Clone, Debug)]
pub struct Graph<'a, F> {
    /// Topologically ordered nodes; node 0 is the input, the last node is
    /// the output.
    pub nodes: Vec<Node<'a, F>>,
}

impl<F: Fp> Graph<'_, F> {
    /// The output node's id.
    pub fn output(&self) -> NodeId {
        self.nodes.len() - 1
    }

    /// Evaluates every node round-to-nearest; returns activations per node.
    ///
    /// # Panics
    ///
    /// Panics when `input` has the wrong length.
    pub fn eval(&self, input: &[F]) -> Vec<Vec<F>> {
        assert_eq!(
            input.len(),
            self.nodes[0].shape.len(),
            "input length mismatch"
        );
        let mut acts: Vec<Vec<F>> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let out = match &node.op {
                Op::Input => input.to_vec(),
                Op::Dense(d) => {
                    let x = &acts[node.parents[0]];
                    let mut y = vec![F::ZERO; d.out_len];
                    d.forward(x, &mut y);
                    y
                }
                Op::Conv(c) => {
                    let x = &acts[node.parents[0]];
                    let mut y = vec![F::ZERO; c.out_shape.len()];
                    c.forward(x, &mut y);
                    y
                }
                Op::Relu => {
                    let x = &acts[node.parents[0]];
                    let mut y = vec![F::ZERO; x.len()];
                    relu_forward(x, &mut y);
                    y
                }
                Op::Add { .. } => {
                    let a = &acts[node.parents[0]];
                    let b = &acts[node.parents[1]];
                    a.iter().zip(b).map(|(&x, &y)| x + y).collect()
                }
            };
            acts.push(out);
        }
        acts
    }

    /// Evaluates every node with sound interval arithmetic; returns bounds
    /// per node. This is the "forward interval analysis" GPUPoly runs as a
    /// preliminary step for early termination (§4.2).
    ///
    /// # Panics
    ///
    /// Panics when `input` has the wrong length.
    pub fn eval_itv(&self, input: &[Itv<F>]) -> Vec<Vec<Itv<F>>> {
        assert_eq!(
            input.len(),
            self.nodes[0].shape.len(),
            "input length mismatch"
        );
        let mut acts: Vec<Vec<Itv<F>>> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let out = match &node.op {
                Op::Input => input.to_vec(),
                Op::Dense(d) => {
                    let x = &acts[node.parents[0]];
                    let mut y = vec![Itv::zero(); d.out_len];
                    d.forward_itv(x, &mut y);
                    y
                }
                Op::Conv(c) => {
                    let x = &acts[node.parents[0]];
                    let mut y = vec![Itv::zero(); c.out_shape.len()];
                    c.forward_itv(x, &mut y);
                    y
                }
                Op::Relu => {
                    let x = &acts[node.parents[0]];
                    let mut y = vec![Itv::zero(); x.len()];
                    relu_forward_itv(x, &mut y);
                    y
                }
                Op::Add { .. } => {
                    let a = &acts[node.parents[0]];
                    let b = &acts[node.parents[1]];
                    a.iter().zip(b).map(|(&x, &y)| x.add(y)).collect()
                }
            };
            acts.push(out);
        }
        acts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;

    fn tiny() -> Network<f32> {
        NetworkBuilder::new_flat(2)
            .dense_flat(2, vec![1.0, -1.0, 1.0, 1.0], vec![0.0, 0.0])
            .relu()
            .dense_flat(2, vec![1.0, 1.0, 1.0, -1.0], vec![0.5, 0.0])
            .build()
            .unwrap()
    }

    #[test]
    fn empty_network_rejected() {
        assert_eq!(
            Network::<f32>::new(Shape::flat(2), vec![]).unwrap_err(),
            NetworkError::Empty
        );
    }

    #[test]
    fn shape_mismatch_rejected() {
        let bad = Network::new(
            Shape::flat(3),
            vec![Block::Single(Layer::Dense(
                Dense::<f32>::new(2, 2, vec![0.0; 4], vec![0.0; 2]).unwrap(),
            ))],
        );
        assert!(matches!(bad, Err(NetworkError::SizeMismatch { .. })));
    }

    #[test]
    fn residual_branch_mismatch_rejected() {
        let bad = Network::new(
            Shape::flat(2),
            vec![Block::Residual {
                a: vec![Layer::Dense(
                    Dense::<f32>::new(3, 2, vec![0.0; 6], vec![0.0; 3]).unwrap(),
                )],
                b: vec![],
            }],
        );
        assert!(matches!(bad, Err(NetworkError::ResidualShapeMismatch(_))));
    }

    #[test]
    fn infer_computes_relu_network() {
        let net = tiny();
        // x = (0.4, 0.6): layer1 = (-0.2, 1.0) -> relu (0, 1.0)
        // layer2 = (0 + 1 + 0.5, 0 - 1) = (1.5, -1.0)
        let out = net.infer(&[0.4, 0.6]);
        assert!((out[0] - 1.5).abs() < 1e-6);
        assert!((out[1] + 1.0).abs() < 1e-6);
        assert_eq!(net.classify(&[0.4, 0.6]), 0);
    }

    #[test]
    fn counts_follow_affine_outputs() {
        let net = tiny();
        assert_eq!(net.neuron_count(), 4);
        assert_eq!(net.layer_count(), 2);
        assert_eq!(net.output_len(), 2);
    }

    #[test]
    fn graph_structure_of_residual() {
        let id = |n: usize| -> Vec<f32> {
            // identity n x n
            let mut w = vec![0.0; n * n];
            for i in 0..n {
                w[i * n + i] = 1.0;
            }
            w
        };
        let net = NetworkBuilder::new_flat(2)
            .residual(|a| a.dense_flat(2, id(2), vec![0.0; 2]).relu(), |b| b)
            .build()
            .unwrap();
        let g = net.graph();
        // input, dense, relu, add
        assert_eq!(g.nodes.len(), 4);
        match g.nodes[3].op {
            Op::Add { head } => assert_eq!(head, 0),
            _ => panic!("expected Add"),
        }
        assert_eq!(g.nodes[3].parents, vec![2, 0]);
        // residual identity: out = relu(x) + x
        let out = net.infer(&[1.0, -2.0]);
        assert_eq!(out, vec![2.0, -2.0]);
    }

    #[test]
    fn interval_eval_contains_point_eval() {
        let net = tiny();
        let x = [0.3_f32, 0.9];
        let point = net.infer(&x);
        let eps = 0.05;
        let xi: Vec<Itv<f32>> = x.iter().map(|&v| Itv::new(v - eps, v + eps)).collect();
        let bounds = net.infer_itv(&xi);
        for (b, p) in bounds.iter().zip(&point) {
            assert!(b.contains(*p), "{b} misses {p}");
        }
        // And perturbed samples stay inside.
        let shifted = net.infer(&[0.3 + eps, 0.9 - eps]);
        for (b, p) in bounds.iter().zip(&shifted) {
            assert!(b.contains(*p));
        }
    }

    #[test]
    fn widen_is_lossless_and_structure_preserving() {
        let net = tiny();
        let wide = net.widen();
        assert_eq!(wide.layer_count(), net.layer_count());
        assert_eq!(wide.neuron_count(), net.neuron_count());
        assert_eq!(wide.param_count(), net.param_count());
        // Every widened parameter is the exact f64 image of its f32 source.
        let (Block::Single(Layer::Dense(d32)), Block::Single(Layer::Dense(d64))) =
            (&net.blocks()[0], &wide.blocks()[0])
        else {
            panic!("expected dense first blocks");
        };
        for (w32, w64) in d32.weight.iter().zip(&d64.weight) {
            assert_eq!(*w32 as f64, *w64);
        }
        // Inference on exactly-representable inputs agrees exactly.
        let out32 = net.infer(&[0.25, 0.5]);
        let out64 = wide.infer(&[0.25, 0.5]);
        for (a, b) in out32.iter().zip(&out64) {
            assert_eq!(*a as f64, *b);
        }
        // Residual structure survives widening.
        let res = NetworkBuilder::new_flat(2)
            .residual(
                |a| {
                    a.dense_flat(2, vec![1.0, 0.0, 0.0, 1.0], vec![0.0; 2])
                        .relu()
                },
                |b| b,
            )
            .build()
            .unwrap();
        let wide_res = res.widen();
        assert!(matches!(wide_res.blocks()[0], Block::Residual { .. }));
        assert_eq!(wide_res.infer(&[1.0, -2.0]), vec![2.0, -2.0]);
    }

    #[test]
    fn json_round_trip_revalidates() {
        let net = tiny();
        let s = net.to_json().unwrap();
        let back = Network::<f32>::from_json(&s).unwrap();
        assert_eq!(net, back);
        assert!(Network::<f32>::from_json("{ not json").is_err());
    }
}
