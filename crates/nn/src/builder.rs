//! Ergonomic construction of networks.

use gpupoly_interval::Fp;

use crate::{Block, Conv2d, Dense, Layer, Network, NetworkError, Shape};

/// Builds the layer list of one residual branch.
///
/// Obtained inside the closures passed to [`NetworkBuilder::residual`]; an
/// untouched branch builder is the identity (skip) branch.
#[derive(Debug)]
pub struct BranchBuilder<F> {
    shape: Shape,
    layers: Vec<Layer<F>>,
    error: Option<NetworkError>,
}

impl<F: Fp> BranchBuilder<F> {
    fn new(shape: Shape) -> Self {
        Self {
            shape,
            layers: Vec::new(),
            error: None,
        }
    }

    fn push(mut self, layer: Layer<F>) -> Self {
        if self.error.is_some() {
            return self;
        }
        match layer.out_shape(self.shape) {
            Ok(s) => {
                self.shape = s;
                self.layers.push(layer);
            }
            Err(e) => self.error = Some(e),
        }
        self
    }

    /// Appends a dense layer from a flat row-major weight vector.
    pub fn dense_flat(self, out_len: usize, weight: Vec<F>, bias: Vec<F>) -> Self {
        let in_len = self.shape.len();
        match Dense::new(out_len, in_len, weight, bias) {
            Ok(d) => self.push(Layer::Dense(d)),
            Err(e) => self.fail(e),
        }
    }

    /// Appends a convolution; the input shape is the branch's current shape.
    pub fn conv(
        self,
        c_out: usize,
        k: (usize, usize),
        s: (usize, usize),
        p: (usize, usize),
        weight: Vec<F>,
        bias: Vec<F>,
    ) -> Self {
        match Conv2d::new(self.shape, c_out, k, s, p, weight, bias) {
            Ok(c) => self.push(Layer::Conv(c)),
            Err(e) => self.fail(e),
        }
    }

    /// Appends a ReLU.
    pub fn relu(self) -> Self {
        self.push(Layer::Relu)
    }

    fn fail(mut self, e: NetworkError) -> Self {
        if self.error.is_none() {
            self.error = Some(e);
        }
        self
    }
}

/// A consuming builder for [`Network`].
///
/// Shape errors are deferred: the first one is reported by
/// [`NetworkBuilder::build`], so chains stay ergonomic.
///
/// # Example
///
/// ```
/// use gpupoly_nn::builder::NetworkBuilder;
/// use gpupoly_nn::Shape;
///
/// let net = NetworkBuilder::new(Shape::new(4, 4, 1))
///     .conv(2, (3, 3), (1, 1), (1, 1), vec![0.1_f32; 3 * 3 * 2 * 1], vec![0.0; 2])
///     .relu()
///     .flatten_dense(10, |i| (i as f32).sin() * 0.1, |_| 0.0)
///     .build()?;
/// assert_eq!(net.output_len(), 10);
/// # Ok::<(), gpupoly_nn::NetworkError>(())
/// ```
#[derive(Debug)]
pub struct NetworkBuilder<F> {
    input_shape: Shape,
    shape: Shape,
    blocks: Vec<Block<F>>,
    error: Option<NetworkError>,
}

impl<F: Fp> NetworkBuilder<F> {
    /// Starts a network with the given input shape.
    pub fn new(input_shape: Shape) -> Self {
        Self {
            input_shape,
            shape: input_shape,
            blocks: Vec::new(),
            error: None,
        }
    }

    /// Starts a network with a flat input of `n` values.
    pub fn new_flat(n: usize) -> Self {
        Self::new(Shape::flat(n))
    }

    /// The shape the next layer will consume.
    pub fn current_shape(&self) -> Shape {
        self.shape
    }

    fn push(mut self, layer: Layer<F>) -> Self {
        if self.error.is_some() {
            return self;
        }
        match layer.out_shape(self.shape) {
            Ok(s) => {
                self.shape = s;
                self.blocks.push(Block::Single(layer));
            }
            Err(e) => self.error = Some(e),
        }
        self
    }

    fn fail(mut self, e: NetworkError) -> Self {
        if self.error.is_none() {
            self.error = Some(e);
        }
        self
    }

    /// Appends a dense layer given its rows (`rows[i]` is output `i`'s
    /// weight vector).
    pub fn dense<R: AsRef<[F]>>(self, rows: &[R], bias: &[F]) -> Self {
        let out_len = rows.len();
        let mut weight = Vec::with_capacity(out_len * self.shape.len());
        for r in rows {
            weight.extend_from_slice(r.as_ref());
        }
        self.dense_flat(out_len, weight, bias.to_vec())
    }

    /// Appends a dense layer from a flat row-major weight vector.
    pub fn dense_flat(self, out_len: usize, weight: Vec<F>, bias: Vec<F>) -> Self {
        let in_len = self.shape.len();
        match Dense::new(out_len, in_len, weight, bias) {
            Ok(d) => self.push(Layer::Dense(d)),
            Err(e) => self.fail(e),
        }
    }

    /// Appends a dense layer whose weights and biases come from generator
    /// functions over the flat weight index (useful for synthetic nets).
    pub fn flatten_dense(
        self,
        out_len: usize,
        weight: impl Fn(usize) -> F,
        bias: impl Fn(usize) -> F,
    ) -> Self {
        let in_len = self.shape.len();
        let w: Vec<F> = (0..out_len * in_len).map(weight).collect();
        let b: Vec<F> = (0..out_len).map(bias).collect();
        self.dense_flat(out_len, w, b)
    }

    /// Appends a convolution consuming the current shape.
    pub fn conv(
        self,
        c_out: usize,
        k: (usize, usize),
        s: (usize, usize),
        p: (usize, usize),
        weight: Vec<F>,
        bias: Vec<F>,
    ) -> Self {
        match Conv2d::new(self.shape, c_out, k, s, p, weight, bias) {
            Ok(c) => self.push(Layer::Conv(c)),
            Err(e) => self.fail(e),
        }
    }

    /// Appends a ReLU.
    pub fn relu(self) -> Self {
        self.push(Layer::Relu)
    }

    /// Appends a residual block; each closure builds one branch from the
    /// block head's shape. An untouched builder is an identity skip.
    pub fn residual(
        mut self,
        a: impl FnOnce(BranchBuilder<F>) -> BranchBuilder<F>,
        b: impl FnOnce(BranchBuilder<F>) -> BranchBuilder<F>,
    ) -> Self {
        if self.error.is_some() {
            return self;
        }
        let ba = a(BranchBuilder::new(self.shape));
        let bb = b(BranchBuilder::new(self.shape));
        if let Some(e) = ba.error {
            return self.fail(e);
        }
        if let Some(e) = bb.error {
            return self.fail(e);
        }
        if ba.shape.len() != bb.shape.len() {
            return self.fail(NetworkError::ResidualShapeMismatch(format!(
                "branch a yields {}, branch b yields {}",
                ba.shape, bb.shape
            )));
        }
        self.shape = ba.shape;
        self.blocks.push(Block::Residual {
            a: ba.layers,
            b: bb.layers,
        });
        self
    }

    /// Finishes construction, revalidating the whole network.
    ///
    /// # Errors
    ///
    /// The first deferred error, or any validation error from
    /// [`Network::new`].
    pub fn build(self) -> Result<Network<F>, NetworkError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        Network::new(self.input_shape, self.blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deferred_errors_surface_at_build() {
        let r = NetworkBuilder::<f32>::new_flat(3)
            .dense_flat(2, vec![0.0; 5], vec![0.0; 2]) // wrong weight count
            .relu()
            .build();
        assert!(matches!(r, Err(NetworkError::SizeMismatch { .. })));
    }

    #[test]
    fn dense_from_rows() {
        let net = NetworkBuilder::new_flat(2)
            .dense(&[[1.0_f32, 2.0], [3.0, 4.0]], &[0.0, 1.0])
            .build()
            .unwrap();
        assert_eq!(net.infer(&[1.0, 1.0]), vec![3.0, 8.0]);
    }

    #[test]
    fn residual_identity_skip() {
        let net = NetworkBuilder::new_flat(2)
            .residual(
                |a| a.dense_flat(2, vec![2.0, 0.0, 0.0, 2.0], vec![0.0, 0.0]),
                |b| b,
            )
            .build()
            .unwrap();
        // out = 2x + x = 3x
        assert_eq!(net.infer(&[1.0, -1.0]), vec![3.0, -3.0]);
    }

    #[test]
    fn residual_branch_error_propagates() {
        let r = NetworkBuilder::<f32>::new_flat(2)
            .residual(|a| a.dense_flat(3, vec![0.0; 6], vec![0.0; 3]), |b| b)
            .build();
        assert!(matches!(r, Err(NetworkError::ResidualShapeMismatch(_))));
    }

    #[test]
    fn conv_then_dense_tracks_shapes() {
        let b = NetworkBuilder::<f32>::new(Shape::new(6, 6, 1)).conv(
            4,
            (3, 3),
            (1, 1),
            (0, 0),
            vec![0.0; 3 * 3 * 4],
            vec![0.0; 4],
        );
        assert_eq!(b.current_shape(), Shape::new(4, 4, 4));
        let net = b.relu().flatten_dense(5, |_| 0.0, |_| 1.0).build().unwrap();
        assert_eq!(net.infer(&[0.5; 36]), vec![1.0; 5]);
    }
}
