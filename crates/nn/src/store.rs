//! Named model storage: a directory of `<name>.json` network files.
//!
//! The serving daemon (and any tool that refers to models by name) resolves
//! a model name to `<dir>/<name>.json` through this module. Names are
//! restricted to a filesystem-safe alphabet so an untrusted name can never
//! escape the model directory (`../../etc/passwd` is rejected, not joined).
//!
//! # Example
//!
//! ```no_run
//! use gpupoly_nn::builder::NetworkBuilder;
//! use gpupoly_nn::store;
//!
//! let net = NetworkBuilder::new_flat(2)
//!     .dense(&[[1.0_f32, -1.0], [1.0, 1.0]], &[0.0, 0.0])
//!     .relu()
//!     .dense(&[[1.0_f32, 1.0]], &[0.0])
//!     .build()?;
//! store::save("models", "tiny", &net)?;
//! let back: gpupoly_nn::Network<f32> = store::load("models", "tiny")?;
//! assert_eq!(store::list("models")?, vec!["tiny".to_string()]);
//! # Ok::<(), gpupoly_nn::NetworkError>(())
//! ```

use std::path::{Path, PathBuf};

use gpupoly_interval::Fp;
use serde::{Deserialize, Serialize};

use crate::{Network, NetworkError};

/// `true` for names that are safe to join onto a model directory: non-empty,
/// at most 128 bytes, only ASCII alphanumerics, `_`, `-` and non-leading `.`.
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.'))
}

/// The path a model name resolves to: `<dir>/<name>.json`.
///
/// # Errors
///
/// [`NetworkError::Io`] when the name fails [`valid_name`] — the name is
/// never joined onto the directory in that case.
pub fn model_path(dir: impl AsRef<Path>, name: &str) -> Result<PathBuf, NetworkError> {
    if !valid_name(name) {
        return Err(NetworkError::Io(format!(
            "invalid model name {name:?} (allowed: ASCII alphanumerics, `_`, `-`, \
             non-leading `.`; at most 128 bytes)"
        )));
    }
    Ok(dir.as_ref().join(format!("{name}.json")))
}

/// Serializes a network to `<dir>/<name>.json`, creating `dir` if needed.
///
/// # Errors
///
/// [`NetworkError::Io`] on an invalid name, serialization failure or any
/// filesystem error.
pub fn save<F: Fp + Serialize + for<'de> Deserialize<'de>>(
    dir: impl AsRef<Path>,
    name: &str,
    net: &Network<F>,
) -> Result<(), NetworkError> {
    let path = model_path(&dir, name)?;
    std::fs::create_dir_all(dir.as_ref())
        .map_err(|e| NetworkError::Io(format!("create {}: {e}", dir.as_ref().display())))?;
    let json = net.to_json()?;
    std::fs::write(&path, json).map_err(|e| NetworkError::Io(format!("write {name}: {e}")))
}

/// Loads and re-validates the network stored as `<dir>/<name>.json`.
///
/// # Errors
///
/// [`NetworkError::Io`] on an invalid name, a missing/unreadable file or
/// malformed JSON; any validation error from [`Network::new`] for a
/// well-formed file describing an invalid network.
pub fn load<F: Fp + Serialize + for<'de> Deserialize<'de>>(
    dir: impl AsRef<Path>,
    name: &str,
) -> Result<Network<F>, NetworkError> {
    let path = model_path(dir, name)?;
    let json = std::fs::read_to_string(&path)
        .map_err(|e| NetworkError::Io(format!("read {}: {e}", path.display())))?;
    Network::from_json(&json)
}

/// Names of every model stored in `dir` (files ending in `.json` whose stem
/// passes [`valid_name`]), sorted.
///
/// # Errors
///
/// [`NetworkError::Io`] when the directory cannot be read.
pub fn list(dir: impl AsRef<Path>) -> Result<Vec<String>, NetworkError> {
    let dir = dir.as_ref();
    let entries = std::fs::read_dir(dir)
        .map_err(|e| NetworkError::Io(format!("read dir {}: {e}", dir.display())))?;
    let mut names = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| NetworkError::Io(format!("read dir entry: {e}")))?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
            if valid_name(stem) {
                names.push(stem.to_string());
            }
        }
    }
    names.sort();
    Ok(names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;

    fn tiny() -> Network<f32> {
        NetworkBuilder::new_flat(2)
            .dense(&[[1.0_f32, -1.0], [1.0, 1.0]], &[0.0, 0.0])
            .relu()
            .dense(&[[1.0_f32, 1.0]], &[0.5])
            .build()
            .unwrap()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "gpupoly-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_list_round_trip() {
        let dir = temp_dir("roundtrip");
        let net = tiny();
        save(&dir, "alpha", &net).unwrap();
        save(&dir, "beta.v2", &net).unwrap();
        // Non-model files are ignored by list().
        std::fs::write(dir.join("notes.txt"), "x").unwrap();
        assert_eq!(list(&dir).unwrap(), vec!["alpha", "beta.v2"]);
        let back: Network<f32> = load(&dir, "alpha").unwrap();
        assert_eq!(back, net);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hostile_names_never_touch_the_filesystem() {
        let dir = temp_dir("hostile");
        for name in [
            "",
            "..",
            "../evil",
            "a/b",
            "a\\b",
            ".hidden",
            "null\0byte",
            "名前",
            &"x".repeat(200),
        ] {
            assert!(!valid_name(name), "{name:?} accepted");
            assert!(matches!(load::<f32>(&dir, name), Err(NetworkError::Io(_))));
            assert!(matches!(
                save(&dir, name, &tiny()),
                Err(NetworkError::Io(_))
            ));
        }
        // The directory was never created by any rejected operation.
        assert!(!dir.exists());
    }

    #[test]
    fn missing_model_and_garbage_json_are_io_errors() {
        let dir = temp_dir("missing");
        assert!(matches!(
            load::<f32>(&dir, "ghost"),
            Err(NetworkError::Io(_))
        ));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("bad.json"), "{ not json").unwrap();
        assert!(load::<f32>(&dir, "bad").is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
