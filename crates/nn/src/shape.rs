//! Tensor shapes and index arithmetic.

use std::fmt;

use serde::{DeError, Deserialize, Serialize, Value};

/// The shape of a layer's activation tensor: `h × w × c` with the channel
/// dimension innermost in memory.
///
/// The channel-innermost layout matches the paper's Algorithm 1, where the
/// loop over channels `c` is "consecutive in memory" (§4.4) and therefore
/// the vectorized/parallel dimension of the GBC kernel. Flat (fully
/// connected) activations use `1 × 1 × n`.
///
/// # Example
///
/// ```
/// use gpupoly_nn::Shape;
///
/// let s = Shape::new(5, 4, 3);
/// assert_eq!(s.len(), 60);
/// assert_eq!(s.idx(0, 0, 2), 2);       // channels innermost
/// assert_eq!(s.idx(1, 0, 0), 12);      // one row = w * c
/// assert_eq!(Shape::flat(10).len(), 10);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Shape {
    /// Height (rows).
    pub h: usize,
    /// Width (columns).
    pub w: usize,
    /// Channels (innermost).
    pub c: usize,
}

impl Shape {
    /// Creates an `h × w × c` shape.
    pub fn new(h: usize, w: usize, c: usize) -> Self {
        Self { h, w, c }
    }

    /// A flat shape holding `n` values (`1 × 1 × n`).
    pub fn flat(n: usize) -> Self {
        Self { h: 1, w: 1, c: n }
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.h * self.w * self.c
    }

    /// `true` when the shape holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` for flat (`1 × 1 × n`) shapes.
    pub fn is_flat(&self) -> bool {
        self.h == 1 && self.w == 1
    }

    /// Linear index of position `(h, w, c)`.
    ///
    /// # Panics
    ///
    /// Debug builds panic when the position is out of bounds.
    #[inline(always)]
    pub fn idx(&self, h: usize, w: usize, c: usize) -> usize {
        debug_assert!(h < self.h && w < self.w && c < self.c, "index out of shape");
        (h * self.w + w) * self.c + c
    }

    /// Inverse of [`Shape::idx`]: position `(h, w, c)` of a linear index.
    ///
    /// # Panics
    ///
    /// Debug builds panic when the index is out of bounds.
    #[inline(always)]
    pub fn pos(&self, i: usize) -> (usize, usize, usize) {
        debug_assert!(i < self.len(), "linear index out of shape");
        let c = i % self.c;
        let wh = i / self.c;
        (wh / self.w, wh % self.w, c)
    }
}

impl Serialize for Shape {
    fn to_value(&self) -> Value {
        Value::obj([
            ("h", self.h.to_value()),
            ("w", self.w.to_value()),
            ("c", self.c.to_value()),
        ])
    }
}

impl<'de> Deserialize<'de> for Shape {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Shape {
            h: usize::from_value(v.field("h")?)?,
            w: usize::from_value(v.field("w")?)?,
            c: usize::from_value(v.field("c")?)?,
        })
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.h, self.w, self.c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idx_pos_round_trip() {
        let s = Shape::new(3, 5, 7);
        for i in 0..s.len() {
            let (h, w, c) = s.pos(i);
            assert_eq!(s.idx(h, w, c), i);
        }
    }

    #[test]
    fn channel_is_innermost() {
        let s = Shape::new(2, 2, 4);
        assert_eq!(s.idx(0, 0, 1) - s.idx(0, 0, 0), 1);
        assert_eq!(s.idx(0, 1, 0) - s.idx(0, 0, 0), 4);
        assert_eq!(s.idx(1, 0, 0) - s.idx(0, 0, 0), 8);
    }

    #[test]
    fn flat_shapes() {
        let s = Shape::flat(12);
        assert!(s.is_flat());
        assert_eq!(s.len(), 12);
        assert_eq!(s.idx(0, 0, 11), 11);
        assert!(!Shape::new(2, 1, 3).is_flat());
    }

    #[test]
    fn display() {
        assert_eq!(Shape::new(28, 28, 1).to_string(), "28x28x1");
    }
}
