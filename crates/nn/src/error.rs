//! Error type for network construction and I/O.

use std::fmt;

/// Errors from building, validating or (de)serializing networks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetworkError {
    /// A weight/bias/input buffer had the wrong number of elements.
    SizeMismatch {
        /// What was being checked (e.g. `"dense weight"`).
        what: &'static str,
        /// Expected element count.
        expected: usize,
        /// Actual element count.
        got: usize,
    },
    /// A convolution's geometry is impossible (empty output, zero stride...).
    BadGeometry(String),
    /// The network has no layers.
    Empty,
    /// The two branches of a residual block disagree on their output shape.
    ResidualShapeMismatch(String),
    /// Serialization or file I/O failed.
    Io(String),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::SizeMismatch {
                what,
                expected,
                got,
            } => write!(f, "{what}: expected {expected} elements, got {got}"),
            NetworkError::BadGeometry(msg) => write!(f, "bad layer geometry: {msg}"),
            NetworkError::Empty => write!(f, "network has no layers"),
            NetworkError::ResidualShapeMismatch(msg) => {
                write!(f, "residual branches disagree: {msg}")
            }
            NetworkError::Io(msg) => write!(f, "network i/o failed: {msg}"),
        }
    }
}

impl std::error::Error for NetworkError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = NetworkError::SizeMismatch {
            what: "dense weight",
            expected: 6,
            got: 5,
        };
        assert_eq!(e.to_string(), "dense weight: expected 6 elements, got 5");
        assert!(NetworkError::Empty.to_string().contains("no layers"));
    }
}
