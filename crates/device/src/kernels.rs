//! Wrappers for the verifier's walk-step kernels.
//!
//! Like [`crate::gemm`] and [`crate::scan`], the functions here are the
//! launch layer over the [`crate::Backend`] kernel surface: dimension
//! checks, launch recording and analytic flop / bytes-moved accounting
//! happen here, the math happens in the backend. Every backsubstitution
//! step of `gpupoly-core` goes through these wrappers, so
//! [`crate::DeviceStats`] sees one launch per kernel per plane — the
//! launch-count shape a real GPU port inherits unchanged — and the FLOP
//! meter ([`crate::DeviceStats::kernel_work`]) attributes arithmetic to
//! kernel labels without the verifier touching counters itself.
//!
//! Labels follow the historical `<kernel>_<plane>` convention
//! (`gbc_lo`/`gbc_hi`, `relu_step_lo`/`relu_step_hi`, ...), so launch-count
//! comparisons across engine versions and backends stay meaningful.

use gpupoly_interval::{Fp, Itv};

use crate::backend::{Backend, ExprGeom, GbcShape};
use crate::relax::ReluRelax;
use crate::Device;

fn itv_bytes<F>(elems: usize) -> u64 {
    (elems * std::mem::size_of::<Itv<F>>()) as u64
}

/// Scalar-equivalent flop count of one GBC plane launch: every (row,
/// window position, filter tap, channel pair) performs one interval×scalar
/// fused accumulate (2 multiplies + 2 adds).
pub fn flops_gbc(rows: usize, win: (usize, usize), conv: &GbcShape) -> u64 {
    4 * (rows * win.0 * win.1 * conv.kh * conv.kw * conv.cout * conv.cin) as u64
}

/// GBC transpose convolution, one plane per launch (paper Algorithm 1).
///
/// # Panics
///
/// Panics on geometry/shape mismatches.
#[allow(clippy::too_many_arguments)]
pub fn gbc<F: Fp, B: Backend>(
    device: &Device<B>,
    label: &'static str,
    src: &[Itv<F>],
    src_geom: &ExprGeom<'_>,
    weight: &[F],
    conv: &GbcShape,
    dst: &mut [Itv<F>],
    dst_origins: &[(i32, i32)],
    dst_cols: usize,
    dst_ww: usize,
) {
    let rows = src_geom.rows();
    assert_eq!(src.len(), rows * src_geom.cols(), "gbc: source shape");
    assert_eq!(dst.len(), rows * dst_cols, "gbc: destination shape");
    assert_eq!(dst_origins.len(), rows, "gbc: destination origins");
    assert_eq!(
        weight.len(),
        conv.kh * conv.kw * conv.cout * conv.cin,
        "gbc: filter tensor shape"
    );
    device.stats().record_work(
        label,
        flops_gbc(rows, (src_geom.win_h, src_geom.win_w), conv),
        itv_bytes::<F>(src.len() + dst.len()) + std::mem::size_of_val(weight) as u64,
    );
    device.backend().gbc(
        device,
        src,
        src_geom,
        weight,
        conv,
        dst,
        dst_origins,
        dst_cols,
        dst_ww,
    );
}

/// Bias absorption of the affine steps, one plane per launch.
///
/// # Panics
///
/// Panics on geometry/shape mismatches or an empty bias.
pub fn bias_fold<F: Fp, B: Backend>(
    device: &Device<B>,
    label: &'static str,
    plane: &[Itv<F>],
    geom: &ExprGeom<'_>,
    bias: &[F],
    src_cst: &[Itv<F>],
    out_cst: &mut [Itv<F>],
) {
    let rows = geom.rows();
    assert_eq!(plane.len(), rows * geom.cols(), "bias_fold: plane shape");
    assert_eq!(src_cst.len(), rows, "bias_fold: source constants");
    assert_eq!(out_cst.len(), rows, "bias_fold: output constants");
    assert!(!bias.is_empty() || rows == 0, "bias_fold: empty bias");
    device.stats().record_work(
        label,
        4 * plane.len() as u64,
        itv_bytes::<F>(plane.len() + src_cst.len() + out_cst.len()),
    );
    device
        .backend()
        .bias_fold(device, plane, geom, bias, src_cst, out_cst);
}

/// The DeepPoly ReLU substitution step, one plane per launch.
///
/// # Panics
///
/// Panics when a relaxation/bounds table does not cover the frontier or a
/// segment index is out of range.
#[allow(clippy::too_many_arguments)]
pub fn relu_step<F: Fp, B: Backend>(
    device: &Device<B>,
    label: &'static str,
    plane: &mut [Itv<F>],
    cst: &mut [Itv<F>],
    geom: &ExprGeom<'_>,
    relax_per_seg: &[&[ReluRelax<F>]],
    out_bounds_per_seg: &[&[Itv<F>]],
    upper: bool,
) {
    let rows = geom.rows();
    assert_eq!(plane.len(), rows * geom.cols(), "relu_step: plane shape");
    assert_eq!(cst.len(), rows, "relu_step: constants");
    assert_eq!(
        relax_per_seg.len(),
        out_bounds_per_seg.len(),
        "relu_step: relax/out-bounds segment counts differ"
    );
    for (relax, out_bounds) in relax_per_seg.iter().zip(out_bounds_per_seg) {
        assert_eq!(relax.len(), geom.frontier_len(), "relu_step: relax length");
        assert_eq!(
            out_bounds.len(),
            geom.frontier_len(),
            "relu_step: out bounds length"
        );
    }
    assert!(
        geom.seg.iter().all(|&s| (s as usize) < relax_per_seg.len()),
        "relu_step: segment index out of range for {} relaxation tables",
        relax_per_seg.len()
    );
    device.stats().record_work(
        label,
        4 * plane.len() as u64,
        itv_bytes::<F>(2 * plane.len() + 2 * cst.len()),
    );
    device.backend().relu_step(
        device,
        plane,
        cst,
        geom,
        relax_per_seg,
        out_bounds_per_seg,
        upper,
    );
}

/// Densify scatter, one plane per launch: cuboid windows expand into
/// full-frontier rows (`dst` zeroed by the caller).
///
/// # Panics
///
/// Panics on geometry/shape mismatches.
pub fn densify<F: Fp, B: Backend>(
    device: &Device<B>,
    label: &'static str,
    src: &[Itv<F>],
    geom: &ExprGeom<'_>,
    dst: &mut [Itv<F>],
    dst_cols: usize,
) {
    let rows = geom.rows();
    assert_eq!(src.len(), rows * geom.cols(), "densify: source shape");
    assert_eq!(dst.len(), rows * dst_cols, "densify: destination shape");
    assert_eq!(dst_cols, geom.frontier_len(), "densify: full-window width");
    device
        .stats()
        .record_work(label, 0, itv_bytes::<F>(src.len() + dst.len()));
    device.backend().densify(device, src, geom, dst, dst_cols);
}

/// Residual-merge accumulation, one plane per launch: both branch
/// expressions add into the zeroed union-window destination (Eq. 4).
///
/// # Panics
///
/// Panics on geometry/shape mismatches.
#[allow(clippy::too_many_arguments)]
pub fn residual_merge<F: Fp, B: Backend>(
    device: &Device<B>,
    label: &'static str,
    a: &[Itv<F>],
    a_geom: &ExprGeom<'_>,
    b: &[Itv<F>],
    b_geom: &ExprGeom<'_>,
    dst: &mut [Itv<F>],
    dst_origins: &[(i32, i32)],
    dst_cols: usize,
    dst_ww: usize,
) {
    let rows = dst_origins.len();
    assert_eq!(a.len(), rows * a_geom.cols(), "residual_merge: branch a");
    assert_eq!(b.len(), rows * b_geom.cols(), "residual_merge: branch b");
    assert_eq!(dst.len(), rows * dst_cols, "residual_merge: destination");
    device.stats().record_work(
        label,
        2 * (a.len() + b.len()) as u64,
        itv_bytes::<F>(a.len() + b.len() + dst.len()),
    );
    device.backend().residual_merge(
        device,
        a,
        a_geom,
        b,
        b_geom,
        dst,
        dst_origins,
        dst_cols,
        dst_ww,
    );
}

/// Candidate concretization: one launch evaluates every row's sound
/// `[lower, upper]` candidate against its segment's concrete bounds.
///
/// # Panics
///
/// Panics when a bounds slice does not cover the frontier or a segment
/// index is out of range.
#[allow(clippy::too_many_arguments)]
pub fn concretize<F: Fp, B: Backend>(
    device: &Device<B>,
    lo: &[Itv<F>],
    hi: &[Itv<F>],
    cst_lo: &[Itv<F>],
    cst_hi: &[Itv<F>],
    geom: &ExprGeom<'_>,
    bounds_per_seg: &[&[Itv<F>]],
    out: &mut [Itv<F>],
) {
    let rows = geom.rows();
    assert_eq!(lo.len(), rows * geom.cols(), "concretize: lower plane");
    assert_eq!(hi.len(), rows * geom.cols(), "concretize: upper plane");
    assert_eq!(cst_lo.len(), rows, "concretize: lower constants");
    assert_eq!(cst_hi.len(), rows, "concretize: upper constants");
    assert_eq!(out.len(), rows, "concretize: output length");
    for b in bounds_per_seg {
        assert_eq!(b.len(), geom.frontier_len(), "concretize: bounds length");
    }
    assert!(
        geom.seg
            .iter()
            .all(|&s| (s as usize) < bounds_per_seg.len()),
        "concretize: segment index out of range for {} bounds slices",
        bounds_per_seg.len()
    );
    device.stats().record_work(
        "concretize",
        4 * lo.len() as u64,
        itv_bytes::<F>(lo.len() + hi.len() + out.len()),
    );
    device
        .backend()
        .concretize(device, lo, hi, cst_lo, cst_hi, geom, bounds_per_seg, out);
}

/// Device→device copy between equal-length buffers (the plane duplications
/// of residual split and batch stacking). Recorded per label and in the
/// bytes-moved meter, but not as a kernel launch — copies ride the copy
/// engine (see [`crate::DeviceStats::record_copy`]).
///
/// # Panics
///
/// Panics when the lengths differ.
pub fn dtod<T: Clone + Send, B: Backend>(
    device: &Device<B>,
    label: &'static str,
    src: &[T],
    dst: &mut [T],
) {
    assert_eq!(src.len(), dst.len(), "dtod: length mismatch");
    device
        .stats()
        .record_copy(label, 2 * (std::mem::size_of_val(src)) as u64);
    device.backend().dtod(src, dst);
}
