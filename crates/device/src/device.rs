//! The device handle: worker pool, memory accounting, launch statistics.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::backend::{Backend, CpuSimBackend, GemmTile, ReferenceBackend};

/// Configuration of a simulated device.
///
/// # Example
///
/// ```
/// use gpupoly_device::{Device, DeviceConfig};
///
/// // A device with 2 workers and 1 MiB of "device memory", like a tiny GPU.
/// let dev = Device::new(DeviceConfig::new().workers(2).memory_capacity(1 << 20));
/// assert_eq!(dev.memory_capacity(), Some(1 << 20));
/// ```
#[derive(Clone, Debug, Default)]
pub struct DeviceConfig {
    workers: Option<usize>,
    memory_capacity: Option<usize>,
    name: Option<String>,
    gemm_tile: Option<GemmTile>,
}

impl DeviceConfig {
    /// Default configuration: all host cores, unlimited memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of parallel workers (the CPU stand-in for GPU SM occupancy).
    /// Defaults to the number of host cores.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = Some(n.max(1));
        self
    }

    /// Device memory capacity in bytes. Allocations beyond it fail with
    /// [`DeviceError::OutOfMemory`], which exercises the verifier's chunked
    /// backsubstitution path. Defaults to unlimited.
    pub fn memory_capacity(mut self, bytes: usize) -> Self {
        self.memory_capacity = Some(bytes);
        self
    }

    /// Human-readable device name for diagnostics.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Tile geometry of the blocked GEMM family (see [`GemmTile`]).
    /// Defaults to [`GemmTile::default`]. Every geometry produces
    /// bit-identical results — this is purely a performance knob, clamped
    /// once at device construction via [`GemmTile::clamped`].
    pub fn gemm_tile(mut self, tile: GemmTile) -> Self {
        self.gemm_tile = Some(tile);
        self
    }
}

/// Errors produced by device operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeviceError {
    /// An allocation did not fit into the remaining device memory.
    OutOfMemory {
        /// Bytes requested by the failed allocation.
        requested: usize,
        /// Bytes currently allocated.
        in_use: usize,
        /// Configured capacity.
        capacity: usize,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::OutOfMemory {
                requested,
                in_use,
                capacity,
            } => write!(
                f,
                "device out of memory: requested {requested} B with {in_use}/{capacity} B in use"
            ),
        }
    }
}

impl std::error::Error for DeviceError {}

/// Per-kernel-label work counters: how many launches a label has recorded
/// and how much arithmetic / data movement those launches performed.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct KernelWork {
    /// Launches recorded under this label.
    pub launches: u64,
    /// Scalar-equivalent floating-point operations (analytic counts).
    pub flops: u64,
    /// Bytes read plus bytes written by the kernel (analytic counts).
    pub bytes_moved: u64,
}

/// Aggregate counters describing the work a device has performed.
///
/// Counters are monotone; read them through [`Device::stats`]. Flop counts
/// are *scalar-equivalent* floating point operations, so the ≈2× overhead of
/// interval arithmetic (paper §4.1) is directly visible when comparing the
/// sound and unsound GEMM kernels. Every kernel wrapper additionally
/// reports its work under its launch label, so per-kernel flop and
/// bytes-moved breakdowns ([`DeviceStats::kernel_work`]) are available to
/// benchmarks and the serving stats endpoint.
#[derive(Debug, Default)]
pub struct DeviceStats {
    launches: AtomicU64,
    flops: AtomicU64,
    bytes_moved: AtomicU64,
    bytes_allocated: AtomicU64,
    pool_hits: AtomicU64,
    pool_misses: AtomicU64,
    resident_bytes: AtomicU64,
    peak_resident_bytes: AtomicU64,
    kernel_counts: Mutex<HashMap<&'static str, KernelWork>>,
}

impl DeviceStats {
    /// Total kernel launches.
    pub fn launches(&self) -> u64 {
        self.launches.load(Ordering::Relaxed)
    }

    /// Total scalar-equivalent floating point operations reported by kernels.
    pub fn flops(&self) -> u64 {
        self.flops.load(Ordering::Relaxed)
    }

    /// Total bytes read + written by kernels (analytic counts reported by
    /// the kernel wrappers; excludes allocation traffic).
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved.load(Ordering::Relaxed)
    }

    /// Total bytes ever allocated (not peak; see [`Device::peak_memory`]).
    pub fn bytes_allocated(&self) -> u64 {
        self.bytes_allocated.load(Ordering::Relaxed)
    }

    /// Buffer-pool hits: allocations served by recycling a shelved buffer
    /// instead of charging fresh device memory.
    pub fn pool_hits(&self) -> u64 {
        self.pool_hits.load(Ordering::Relaxed)
    }

    /// Buffer-pool misses: allocations that went to fresh device memory
    /// while the pool was active.
    pub fn pool_misses(&self) -> u64 {
        self.pool_misses.load(Ordering::Relaxed)
    }

    /// Number of launches of the kernel with the given label.
    pub fn kernel_launches(&self, label: &str) -> u64 {
        self.kernel_work(label).launches
    }

    /// Scalar-equivalent flops recorded under the given kernel label.
    pub fn kernel_flops(&self, label: &str) -> u64 {
        self.kernel_work(label).flops
    }

    /// The full work counters recorded under the given kernel label.
    pub fn kernel_work(&self, label: &str) -> KernelWork {
        self.kernel_counts
            .lock()
            .get(label)
            .copied()
            .unwrap_or_default()
    }

    /// A snapshot of every label's work counters, sorted by label.
    pub fn kernel_work_all(&self) -> Vec<(&'static str, KernelWork)> {
        let mut all: Vec<_> = self
            .kernel_counts
            .lock()
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect();
        all.sort_by_key(|&(k, _)| k);
        all
    }

    /// Records one kernel launch under `label`. Called by the device's own
    /// launch helpers and by the kernel wrappers in [`crate::gemm`] /
    /// [`crate::scan`] / [`crate::kernels`]; custom [`Backend`]
    /// implementations composing their own launches record them here so
    /// accounting stays comparable across backends.
    pub fn record_launch(&self, label: &'static str) {
        self.record_work(label, 0, 0);
    }

    /// Records one kernel launch under `label` together with its analytic
    /// flop and bytes-moved counts — the one entry point behind the FLOP
    /// meter, so per-label and aggregate counters can never drift apart.
    pub fn record_work(&self, label: &'static str, flops: u64, bytes_moved: u64) {
        self.launches.fetch_add(1, Ordering::Relaxed);
        if flops > 0 {
            self.flops.fetch_add(flops, Ordering::Relaxed);
        }
        if bytes_moved > 0 {
            self.bytes_moved.fetch_add(bytes_moved, Ordering::Relaxed);
        }
        let mut counts = self.kernel_counts.lock();
        let work = counts.entry(label).or_default();
        work.launches += 1;
        work.flops += flops;
        work.bytes_moved += bytes_moved;
    }

    /// Records one device↔device copy under `label`: tracked per label and
    /// in [`DeviceStats::bytes_moved`], but **not** in
    /// [`DeviceStats::launches`] — copies ride the copy engine, not the
    /// kernel pipeline (host↔device transfers are likewise uncounted), so
    /// launch-count comparisons across engine versions stay about kernels.
    pub fn record_copy(&self, label: &'static str, bytes_moved: u64) {
        self.bytes_moved.fetch_add(bytes_moved, Ordering::Relaxed);
        let mut counts = self.kernel_counts.lock();
        let work = counts.entry(label).or_default();
        work.launches += 1;
        work.bytes_moved += bytes_moved;
    }

    /// Bytes currently held by *persistent* allocations
    /// ([`crate::DeviceBuffer::into_persistent`]) — in practice, packed
    /// model weights resident on the device. Unlike
    /// [`Device::memory_in_use`] this gauge excludes transient working
    /// buffers and shelved pool storage, so it answers "how much of this
    /// device is pinned by loaded models".
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes.load(Ordering::Relaxed)
    }

    /// High-water mark of [`DeviceStats::resident_bytes`]: the most
    /// persistent (weight) bytes ever simultaneously resident on this
    /// device. Capacity planning for shard budgets reads this.
    pub fn peak_resident_bytes(&self) -> u64 {
        self.peak_resident_bytes.load(Ordering::Relaxed)
    }

    pub(crate) fn note_resident_alloc(&self, bytes: u64) {
        let new = self.resident_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak_resident_bytes.fetch_max(new, Ordering::Relaxed);
    }

    pub(crate) fn note_resident_free(&self, bytes: u64) {
        self.resident_bytes.fetch_sub(bytes, Ordering::Relaxed);
    }

    pub(crate) fn add_bytes(&self, n: usize) {
        self.bytes_allocated.fetch_add(n as u64, Ordering::Relaxed);
    }
}

/// Shelved buffers keyed by `(element type, byte size)`.
type Shelves = HashMap<(TypeId, usize), Vec<Box<dyn Any + Send>>>;

pub(crate) struct DeviceInner<B> {
    backend: B,
    pool: rayon::ThreadPool,
    capacity: Option<usize>,
    in_use: AtomicUsize,
    peak: AtomicUsize,
    stats: DeviceStats,
    name: String,
    workers: usize,
    gemm_tile: GemmTile,
    /// Reference count of buffer-pool users (engines). While non-zero (and
    /// the backend supports pooling), dropped pooled [`crate::DeviceBuffer`]s
    /// are shelved here for exact size-class reuse instead of being freed.
    recyclers: AtomicUsize,
    /// Shelved buffers keyed by `(element type, byte size)`. Shelved bytes
    /// stay charged against capacity; an allocation that would fail reclaims
    /// the shelf before reporting out-of-memory.
    shelves: Mutex<Shelves>,
    shelved_bytes: AtomicUsize,
}

/// A handle to a simulated GPU, generic over the kernel [`Backend`]
/// (defaulting to the CPU simulation, [`CpuSimBackend`]).
///
/// Cheap to clone (shared state behind an [`Arc`]); all kernels in this
/// crate and in `gpupoly-core` take a `&Device<B>`.
///
/// # Example
///
/// ```
/// use gpupoly_device::{scan, Device, DeviceConfig, ReferenceBackend};
///
/// let dev = Device::new(DeviceConfig::new().workers(4).name("sim-v100"));
/// let (prefix, total) = scan::exclusive_scan(&dev, &[1, 2, 3]);
/// assert_eq!((prefix, total), (vec![0, 1, 3], 6));
///
/// // The same code runs on the naive reference backend.
/// let naive = Device::with_backend(ReferenceBackend, DeviceConfig::new());
/// assert_eq!(naive.backend().label(), "reference");
/// # use gpupoly_device::Backend;
/// ```
pub struct Device<B: Backend = CpuSimBackend> {
    inner: Arc<DeviceInner<B>>,
}

impl<B: Backend> Clone for Device<B> {
    fn clone(&self) -> Self {
        Device {
            inner: self.inner.clone(),
        }
    }
}

impl<B: Backend> fmt::Debug for Device<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Device")
            .field("backend", &self.inner.backend.label())
            .field("name", &self.inner.name)
            .field("workers", &self.inner.workers)
            .field("capacity", &self.inner.capacity)
            .field("in_use", &self.memory_in_use())
            .finish()
    }
}

impl Default for Device<CpuSimBackend> {
    fn default() -> Self {
        Self::new(DeviceConfig::default())
    }
}

impl Device<CpuSimBackend> {
    /// Creates a CPU-simulation device from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the worker pool cannot be created.
    pub fn new(config: DeviceConfig) -> Self {
        Self::with_backend(CpuSimBackend, config)
    }
}

impl Device<ReferenceBackend> {
    /// Creates a device running the naive [`ReferenceBackend`].
    ///
    /// # Panics
    ///
    /// Panics if the worker pool cannot be created.
    pub fn reference(config: DeviceConfig) -> Self {
        Self::with_backend(ReferenceBackend, config)
    }
}

impl<B: Backend> Device<B> {
    /// Creates a device running the given kernel backend.
    ///
    /// # Panics
    ///
    /// Panics if the worker pool cannot be created.
    pub fn with_backend(backend: B, config: DeviceConfig) -> Self {
        let workers = config
            .workers
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()));
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(workers)
            .thread_name(|i| format!("gpupoly-dev-{i}"))
            .build()
            .expect("failed to build device worker pool");
        Device {
            inner: Arc::new(DeviceInner {
                backend,
                pool,
                capacity: config.memory_capacity,
                in_use: AtomicUsize::new(0),
                peak: AtomicUsize::new(0),
                stats: DeviceStats::default(),
                name: config.name.unwrap_or_else(|| "gpupoly-sim".to_string()),
                workers,
                gemm_tile: config.gemm_tile.unwrap_or_default().clamped(),
                recyclers: AtomicUsize::new(0),
                shelves: Mutex::new(Shelves::new()),
                shelved_bytes: AtomicUsize::new(0),
            }),
        }
    }

    /// The kernel backend this device runs on.
    pub fn backend(&self) -> &B {
        &self.inner.backend
    }

    /// The device name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Number of parallel workers.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Configured memory capacity in bytes (`None` = unlimited).
    pub fn memory_capacity(&self) -> Option<usize> {
        self.inner.capacity
    }

    /// The (clamped) blocked-GEMM tile geometry this device was configured
    /// with. Backends read it inside their GEMM kernels; it never affects
    /// results, only blocking.
    pub fn gemm_tile(&self) -> GemmTile {
        self.inner.gemm_tile
    }

    /// Bytes currently allocated on the device.
    pub fn memory_in_use(&self) -> usize {
        self.inner.in_use.load(Ordering::Relaxed)
    }

    /// High-water mark of allocated bytes.
    pub fn peak_memory(&self) -> usize {
        self.inner.peak.load(Ordering::Relaxed)
    }

    /// Bytes still allocatable (`usize::MAX` when unlimited).
    pub fn memory_free(&self) -> usize {
        match self.inner.capacity {
            Some(cap) => cap.saturating_sub(self.memory_in_use()),
            None => usize::MAX,
        }
    }

    /// Work counters.
    pub fn stats(&self) -> &DeviceStats {
        &self.inner.stats
    }

    pub(crate) fn track_alloc(&self, bytes: usize) -> Result<(), DeviceError> {
        let in_use = self.inner.in_use.load(Ordering::Relaxed);
        if let Some(cap) = self.inner.capacity {
            if in_use.saturating_add(bytes) > cap {
                return Err(DeviceError::OutOfMemory {
                    requested: bytes,
                    in_use,
                    capacity: cap,
                });
            }
        }
        let new = self.inner.in_use.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.inner.peak.fetch_max(new, Ordering::Relaxed);
        self.inner.stats.add_bytes(bytes);
        Ok(())
    }

    pub(crate) fn track_free(&self, bytes: usize) {
        self.inner.in_use.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// `true` while at least one buffer-pool user is registered *and* the
    /// backend supports pooling ([`Backend::pooling`]).
    pub fn buffer_pool_active(&self) -> bool {
        self.inner.backend.pooling() && self.inner.recyclers.load(Ordering::Relaxed) > 0
    }

    /// Registers a buffer-pool user: while any user is registered, dropped
    /// pool-eligible buffers are shelved for reuse instead of freed. Pair
    /// with [`Device::buffer_pool_release`]. A no-op in effect on backends
    /// that disable pooling (the user count is still balanced).
    pub fn buffer_pool_retain(&self) {
        self.inner.recyclers.fetch_add(1, Ordering::Relaxed);
    }

    /// Deregisters a buffer-pool user; the last release drains the pool and
    /// returns the shelved memory to the device.
    ///
    /// A release without a matching [`Device::buffer_pool_retain`] is a
    /// caller bug; it is reported by a debug assertion and otherwise
    /// ignored, so an unbalanced release can never underflow the user count
    /// into a permanently-active pool that shelves (leaks) every buffer.
    pub fn buffer_pool_release(&self) {
        let dec = self
            .inner
            .recyclers
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1));
        match dec {
            Ok(1) => self.buffer_pool_clear(),
            Ok(_) => {}
            Err(_) => debug_assert!(false, "buffer_pool_release without a matching retain"),
        }
    }

    /// Frees every shelved buffer immediately.
    pub fn buffer_pool_clear(&self) {
        let drained: Vec<_> = self.inner.shelves.lock().drain().collect();
        for ((_, bytes), entries) in drained {
            let freed = bytes * entries.len();
            self.inner.shelved_bytes.fetch_sub(freed, Ordering::Relaxed);
            self.track_free(freed);
        }
    }

    /// Bytes currently held by shelved (reusable) buffers. These count
    /// towards [`Device::memory_in_use`] until reclaimed.
    pub fn buffer_pool_bytes(&self) -> usize {
        self.inner.shelved_bytes.load(Ordering::Relaxed)
    }

    /// Takes a shelved buffer of exactly `len` elements of `T`, if any.
    /// The returned storage keeps its existing memory charge.
    pub(crate) fn pool_take<T: Send + 'static>(&self, len: usize) -> Option<Vec<T>> {
        if !self.buffer_pool_active() {
            return None;
        }
        let bytes = len.saturating_mul(std::mem::size_of::<T>());
        let key = (TypeId::of::<Vec<T>>(), bytes);
        let boxed = {
            let mut shelves = self.inner.shelves.lock();
            let entry = shelves.get_mut(&key)?;
            let boxed = entry.pop()?;
            if entry.is_empty() {
                shelves.remove(&key);
            }
            boxed
        };
        self.inner.shelved_bytes.fetch_sub(bytes, Ordering::Relaxed);
        self.inner.stats.pool_hits.fetch_add(1, Ordering::Relaxed);
        let vec = *boxed.downcast::<Vec<T>>().expect("pool key/type mismatch");
        debug_assert_eq!(vec.len(), len, "pooled buffer length drifted");
        Some(vec)
    }

    /// Shelves a buffer's storage for reuse, keeping its memory charge.
    /// Returns `false` (storage not taken) when the pool is inactive —
    /// the caller must then free the charge itself.
    pub(crate) fn pool_put<T: Send + 'static>(&self, data: Vec<T>, bytes: usize) -> bool {
        if bytes == 0 {
            return false;
        }
        debug_assert_eq!(data.len() * std::mem::size_of::<T>(), bytes);
        let key = (TypeId::of::<Vec<T>>(), bytes);
        let mut shelves = self.inner.shelves.lock();
        // Re-checked under the shelves lock: the final buffer_pool_release
        // drains under this lock after dropping the user count, so a put
        // that observes an active pool here cannot land after the drain.
        if !self.buffer_pool_active() {
            return false;
        }
        shelves.entry(key).or_default().push(Box::new(data));
        self.inner.shelved_bytes.fetch_add(bytes, Ordering::Relaxed);
        true
    }

    pub(crate) fn note_pool_miss(&self) {
        if self.buffer_pool_active() {
            self.inner.stats.pool_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Runs a closure inside the device's worker pool. This is how
    /// [`Backend`] implementations parallelize their kernels (compose
    /// rayon primitives inside); it is *not* a launch — the wrapper layer
    /// ([`crate::gemm`] / [`crate::scan`] / [`crate::kernels`]) records
    /// launches and work before delegating to the backend, so verifier
    /// compute can never bypass the metered kernel surface.
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        self.inner.pool.install(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_runs_in_the_worker_pool() {
        use rayon::prelude::*;
        let dev = Device::new(DeviceConfig::new().workers(3));
        let sum: u64 = dev.install(|| {
            (0..101usize)
                .into_par_iter()
                .map(|i| i as u64)
                .reduce(|| 0, |a, b| a + b)
        });
        assert_eq!(sum, 5050);
    }

    #[test]
    fn stats_count_launches_flops_and_bytes_by_label() {
        let dev = Device::default();
        dev.stats().record_work("alpha", 10, 100);
        dev.stats().record_work("alpha", 5, 50);
        dev.stats().record_launch("beta");
        assert_eq!(dev.stats().kernel_launches("alpha"), 2);
        assert_eq!(dev.stats().kernel_flops("alpha"), 15);
        assert_eq!(dev.stats().kernel_work("alpha").bytes_moved, 150);
        assert_eq!(dev.stats().kernel_launches("beta"), 1);
        assert_eq!(dev.stats().kernel_launches("missing"), 0);
        assert_eq!(dev.stats().launches(), 3);
        assert_eq!(dev.stats().flops(), 15);
        assert_eq!(dev.stats().bytes_moved(), 150);
    }

    #[test]
    fn copies_meter_bytes_without_counting_as_launches() {
        let dev = Device::default();
        dev.stats().record_copy("dtod_example", 64);
        assert_eq!(dev.stats().launches(), 0, "copies are not kernel launches");
        assert_eq!(dev.stats().kernel_launches("dtod_example"), 1);
        assert_eq!(dev.stats().bytes_moved(), 64);
    }

    #[test]
    fn memory_accounting_tracks_capacity() {
        let dev = Device::new(DeviceConfig::new().memory_capacity(100));
        assert!(dev.track_alloc(60).is_ok());
        let err = dev.track_alloc(60).unwrap_err();
        assert_eq!(
            err,
            DeviceError::OutOfMemory {
                requested: 60,
                in_use: 60,
                capacity: 100
            }
        );
        dev.track_free(60);
        assert!(dev.track_alloc(100).is_ok());
        assert_eq!(dev.peak_memory(), 100);
        dev.track_free(100);
        assert_eq!(dev.memory_in_use(), 0);
    }

    #[test]
    fn unlimited_device_never_ooms() {
        let dev = Device::default();
        assert!(dev.track_alloc(usize::MAX / 4).is_ok());
        assert_eq!(dev.memory_free(), usize::MAX);
        dev.track_free(usize::MAX / 4);
    }

    #[test]
    fn error_display_is_informative() {
        let e = DeviceError::OutOfMemory {
            requested: 10,
            in_use: 5,
            capacity: 12,
        };
        let s = e.to_string();
        assert!(s.contains("10") && s.contains("5") && s.contains("12"));
    }

    #[test]
    fn reference_backend_disables_pooling() {
        let dev = Device::reference(DeviceConfig::new().workers(2));
        dev.buffer_pool_retain();
        assert!(
            !dev.buffer_pool_active(),
            "reference backend must never shelve buffers"
        );
        dev.buffer_pool_release();
    }

    #[test]
    fn unbalanced_pool_release_does_not_underflow() {
        // A release without a retain must not wrap the user count to
        // usize::MAX (which would leave the pool permanently active and
        // shelve — leak — every subsequently dropped buffer).
        let dev = Device::default();
        if cfg!(debug_assertions) {
            let d = dev.clone();
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                d.buffer_pool_release();
            }));
            assert!(result.is_err(), "debug builds report the caller bug");
        } else {
            dev.buffer_pool_release();
        }
        assert!(!dev.buffer_pool_active(), "pool must stay inactive");
        {
            let _b = crate::DeviceBuffer::<u8>::zeroed(&dev, 64).unwrap();
        }
        assert_eq!(dev.memory_in_use(), 0, "dropped buffer must be freed");
        assert_eq!(dev.buffer_pool_bytes(), 0);
        // A later retain/release pair still works normally.
        dev.buffer_pool_retain();
        assert!(dev.buffer_pool_active());
        dev.buffer_pool_release();
        assert!(!dev.buffer_pool_active());
    }
}
