//! The device handle: worker pool, memory accounting, launch statistics.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rayon::prelude::*;

use crate::backend::{Backend, CpuSimBackend, ReferenceBackend};

/// Configuration of a simulated device.
///
/// # Example
///
/// ```
/// use gpupoly_device::{Device, DeviceConfig};
///
/// // A device with 2 workers and 1 MiB of "device memory", like a tiny GPU.
/// let dev = Device::new(DeviceConfig::new().workers(2).memory_capacity(1 << 20));
/// assert_eq!(dev.memory_capacity(), Some(1 << 20));
/// ```
#[derive(Clone, Debug, Default)]
pub struct DeviceConfig {
    workers: Option<usize>,
    memory_capacity: Option<usize>,
    name: Option<String>,
}

impl DeviceConfig {
    /// Default configuration: all host cores, unlimited memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of parallel workers (the CPU stand-in for GPU SM occupancy).
    /// Defaults to the number of host cores.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = Some(n.max(1));
        self
    }

    /// Device memory capacity in bytes. Allocations beyond it fail with
    /// [`DeviceError::OutOfMemory`], which exercises the verifier's chunked
    /// backsubstitution path. Defaults to unlimited.
    pub fn memory_capacity(mut self, bytes: usize) -> Self {
        self.memory_capacity = Some(bytes);
        self
    }

    /// Human-readable device name for diagnostics.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }
}

/// Errors produced by device operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeviceError {
    /// An allocation did not fit into the remaining device memory.
    OutOfMemory {
        /// Bytes requested by the failed allocation.
        requested: usize,
        /// Bytes currently allocated.
        in_use: usize,
        /// Configured capacity.
        capacity: usize,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::OutOfMemory {
                requested,
                in_use,
                capacity,
            } => write!(
                f,
                "device out of memory: requested {requested} B with {in_use}/{capacity} B in use"
            ),
        }
    }
}

impl std::error::Error for DeviceError {}

/// Aggregate counters describing the work a device has performed.
///
/// Counters are monotone; read them through [`Device::stats`]. Flop counts
/// are *scalar-equivalent* floating point operations, so the ≈2× overhead of
/// interval arithmetic (paper §4.1) is directly visible when comparing the
/// sound and unsound GEMM kernels.
#[derive(Debug, Default)]
pub struct DeviceStats {
    launches: AtomicU64,
    flops: AtomicU64,
    bytes_allocated: AtomicU64,
    pool_hits: AtomicU64,
    pool_misses: AtomicU64,
    kernel_counts: Mutex<HashMap<&'static str, u64>>,
}

impl DeviceStats {
    /// Total kernel launches.
    pub fn launches(&self) -> u64 {
        self.launches.load(Ordering::Relaxed)
    }

    /// Total scalar-equivalent floating point operations reported by kernels.
    pub fn flops(&self) -> u64 {
        self.flops.load(Ordering::Relaxed)
    }

    /// Total bytes ever allocated (not peak; see [`Device::peak_memory`]).
    pub fn bytes_allocated(&self) -> u64 {
        self.bytes_allocated.load(Ordering::Relaxed)
    }

    /// Buffer-pool hits: allocations served by recycling a shelved buffer
    /// instead of charging fresh device memory.
    pub fn pool_hits(&self) -> u64 {
        self.pool_hits.load(Ordering::Relaxed)
    }

    /// Buffer-pool misses: allocations that went to fresh device memory
    /// while the pool was active.
    pub fn pool_misses(&self) -> u64 {
        self.pool_misses.load(Ordering::Relaxed)
    }

    /// Number of launches of the kernel with the given label.
    pub fn kernel_launches(&self, label: &str) -> u64 {
        self.kernel_counts.lock().get(label).copied().unwrap_or(0)
    }

    /// Records one kernel launch under `label`. Called by the device's own
    /// launch helpers and by the kernel wrappers in [`crate::gemm`] /
    /// [`crate::scan`]; custom [`Backend`] implementations composing their
    /// own launches record them here so accounting stays comparable across
    /// backends.
    pub fn record_launch(&self, label: &'static str) {
        self.launches.fetch_add(1, Ordering::Relaxed);
        *self.kernel_counts.lock().entry(label).or_insert(0) += 1;
    }

    /// Adds scalar-equivalent flops (called by kernels with analytic counts).
    pub fn add_flops(&self, n: u64) {
        self.flops.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_bytes(&self, n: usize) {
        self.bytes_allocated.fetch_add(n as u64, Ordering::Relaxed);
    }
}

/// Shelved buffers keyed by `(element type, byte size)`.
type Shelves = HashMap<(TypeId, usize), Vec<Box<dyn Any + Send>>>;

pub(crate) struct DeviceInner<B> {
    backend: B,
    pool: rayon::ThreadPool,
    capacity: Option<usize>,
    in_use: AtomicUsize,
    peak: AtomicUsize,
    stats: DeviceStats,
    name: String,
    workers: usize,
    /// Reference count of buffer-pool users (engines). While non-zero (and
    /// the backend supports pooling), dropped pooled [`crate::DeviceBuffer`]s
    /// are shelved here for exact size-class reuse instead of being freed.
    recyclers: AtomicUsize,
    /// Shelved buffers keyed by `(element type, byte size)`. Shelved bytes
    /// stay charged against capacity; an allocation that would fail reclaims
    /// the shelf before reporting out-of-memory.
    shelves: Mutex<Shelves>,
    shelved_bytes: AtomicUsize,
}

/// A handle to a simulated GPU, generic over the kernel [`Backend`]
/// (defaulting to the CPU simulation, [`CpuSimBackend`]).
///
/// Cheap to clone (shared state behind an [`Arc`]); all kernels in this
/// crate and in `gpupoly-core` take a `&Device<B>`.
///
/// # Example
///
/// ```
/// use gpupoly_device::{Device, DeviceConfig, ReferenceBackend};
///
/// let dev = Device::new(DeviceConfig::new().workers(4).name("sim-v100"));
/// let sum: u64 = dev.par_reduce(1000, 0u64, |i| i as u64, |a, b| a + b);
/// assert_eq!(sum, 999 * 1000 / 2);
///
/// // The same code runs on the naive reference backend.
/// let naive = Device::with_backend(ReferenceBackend, DeviceConfig::new());
/// assert_eq!(naive.backend().label(), "reference");
/// # use gpupoly_device::Backend;
/// ```
pub struct Device<B: Backend = CpuSimBackend> {
    inner: Arc<DeviceInner<B>>,
}

impl<B: Backend> Clone for Device<B> {
    fn clone(&self) -> Self {
        Device {
            inner: self.inner.clone(),
        }
    }
}

impl<B: Backend> fmt::Debug for Device<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Device")
            .field("backend", &self.inner.backend.label())
            .field("name", &self.inner.name)
            .field("workers", &self.inner.workers)
            .field("capacity", &self.inner.capacity)
            .field("in_use", &self.memory_in_use())
            .finish()
    }
}

impl Default for Device<CpuSimBackend> {
    fn default() -> Self {
        Self::new(DeviceConfig::default())
    }
}

impl Device<CpuSimBackend> {
    /// Creates a CPU-simulation device from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the worker pool cannot be created.
    pub fn new(config: DeviceConfig) -> Self {
        Self::with_backend(CpuSimBackend, config)
    }
}

impl Device<ReferenceBackend> {
    /// Creates a device running the naive [`ReferenceBackend`].
    ///
    /// # Panics
    ///
    /// Panics if the worker pool cannot be created.
    pub fn reference(config: DeviceConfig) -> Self {
        Self::with_backend(ReferenceBackend, config)
    }
}

impl<B: Backend> Device<B> {
    /// Creates a device running the given kernel backend.
    ///
    /// # Panics
    ///
    /// Panics if the worker pool cannot be created.
    pub fn with_backend(backend: B, config: DeviceConfig) -> Self {
        let workers = config
            .workers
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()));
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(workers)
            .thread_name(|i| format!("gpupoly-dev-{i}"))
            .build()
            .expect("failed to build device worker pool");
        Device {
            inner: Arc::new(DeviceInner {
                backend,
                pool,
                capacity: config.memory_capacity,
                in_use: AtomicUsize::new(0),
                peak: AtomicUsize::new(0),
                stats: DeviceStats::default(),
                name: config.name.unwrap_or_else(|| "gpupoly-sim".to_string()),
                workers,
                recyclers: AtomicUsize::new(0),
                shelves: Mutex::new(Shelves::new()),
                shelved_bytes: AtomicUsize::new(0),
            }),
        }
    }

    /// The kernel backend this device runs on.
    pub fn backend(&self) -> &B {
        &self.inner.backend
    }

    /// The device name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Number of parallel workers.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Configured memory capacity in bytes (`None` = unlimited).
    pub fn memory_capacity(&self) -> Option<usize> {
        self.inner.capacity
    }

    /// Bytes currently allocated on the device.
    pub fn memory_in_use(&self) -> usize {
        self.inner.in_use.load(Ordering::Relaxed)
    }

    /// High-water mark of allocated bytes.
    pub fn peak_memory(&self) -> usize {
        self.inner.peak.load(Ordering::Relaxed)
    }

    /// Bytes still allocatable (`usize::MAX` when unlimited).
    pub fn memory_free(&self) -> usize {
        match self.inner.capacity {
            Some(cap) => cap.saturating_sub(self.memory_in_use()),
            None => usize::MAX,
        }
    }

    /// Work counters.
    pub fn stats(&self) -> &DeviceStats {
        &self.inner.stats
    }

    pub(crate) fn track_alloc(&self, bytes: usize) -> Result<(), DeviceError> {
        let in_use = self.inner.in_use.load(Ordering::Relaxed);
        if let Some(cap) = self.inner.capacity {
            if in_use.saturating_add(bytes) > cap {
                return Err(DeviceError::OutOfMemory {
                    requested: bytes,
                    in_use,
                    capacity: cap,
                });
            }
        }
        let new = self.inner.in_use.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.inner.peak.fetch_max(new, Ordering::Relaxed);
        self.inner.stats.add_bytes(bytes);
        Ok(())
    }

    pub(crate) fn track_free(&self, bytes: usize) {
        self.inner.in_use.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// `true` while at least one buffer-pool user is registered *and* the
    /// backend supports pooling ([`Backend::pooling`]).
    pub fn buffer_pool_active(&self) -> bool {
        self.inner.backend.pooling() && self.inner.recyclers.load(Ordering::Relaxed) > 0
    }

    /// Registers a buffer-pool user: while any user is registered, dropped
    /// pool-eligible buffers are shelved for reuse instead of freed. Pair
    /// with [`Device::buffer_pool_release`]. A no-op in effect on backends
    /// that disable pooling (the user count is still balanced).
    pub fn buffer_pool_retain(&self) {
        self.inner.recyclers.fetch_add(1, Ordering::Relaxed);
    }

    /// Deregisters a buffer-pool user; the last release drains the pool and
    /// returns the shelved memory to the device.
    ///
    /// A release without a matching [`Device::buffer_pool_retain`] is a
    /// caller bug; it is reported by a debug assertion and otherwise
    /// ignored, so an unbalanced release can never underflow the user count
    /// into a permanently-active pool that shelves (leaks) every buffer.
    pub fn buffer_pool_release(&self) {
        let dec = self
            .inner
            .recyclers
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1));
        match dec {
            Ok(1) => self.buffer_pool_clear(),
            Ok(_) => {}
            Err(_) => debug_assert!(false, "buffer_pool_release without a matching retain"),
        }
    }

    /// Frees every shelved buffer immediately.
    pub fn buffer_pool_clear(&self) {
        let drained: Vec<_> = self.inner.shelves.lock().drain().collect();
        for ((_, bytes), entries) in drained {
            let freed = bytes * entries.len();
            self.inner.shelved_bytes.fetch_sub(freed, Ordering::Relaxed);
            self.track_free(freed);
        }
    }

    /// Bytes currently held by shelved (reusable) buffers. These count
    /// towards [`Device::memory_in_use`] until reclaimed.
    pub fn buffer_pool_bytes(&self) -> usize {
        self.inner.shelved_bytes.load(Ordering::Relaxed)
    }

    /// Takes a shelved buffer of exactly `len` elements of `T`, if any.
    /// The returned storage keeps its existing memory charge.
    pub(crate) fn pool_take<T: Send + 'static>(&self, len: usize) -> Option<Vec<T>> {
        if !self.buffer_pool_active() {
            return None;
        }
        let bytes = len.saturating_mul(std::mem::size_of::<T>());
        let key = (TypeId::of::<Vec<T>>(), bytes);
        let boxed = {
            let mut shelves = self.inner.shelves.lock();
            let entry = shelves.get_mut(&key)?;
            let boxed = entry.pop()?;
            if entry.is_empty() {
                shelves.remove(&key);
            }
            boxed
        };
        self.inner.shelved_bytes.fetch_sub(bytes, Ordering::Relaxed);
        self.inner.stats.pool_hits.fetch_add(1, Ordering::Relaxed);
        let vec = *boxed.downcast::<Vec<T>>().expect("pool key/type mismatch");
        debug_assert_eq!(vec.len(), len, "pooled buffer length drifted");
        Some(vec)
    }

    /// Shelves a buffer's storage for reuse, keeping its memory charge.
    /// Returns `false` (storage not taken) when the pool is inactive —
    /// the caller must then free the charge itself.
    pub(crate) fn pool_put<T: Send + 'static>(&self, data: Vec<T>, bytes: usize) -> bool {
        if bytes == 0 {
            return false;
        }
        debug_assert_eq!(data.len() * std::mem::size_of::<T>(), bytes);
        let key = (TypeId::of::<Vec<T>>(), bytes);
        let mut shelves = self.inner.shelves.lock();
        // Re-checked under the shelves lock: the final buffer_pool_release
        // drains under this lock after dropping the user count, so a put
        // that observes an active pool here cannot land after the drain.
        if !self.buffer_pool_active() {
            return false;
        }
        shelves.entry(key).or_default().push(Box::new(data));
        self.inner.shelved_bytes.fetch_add(bytes, Ordering::Relaxed);
        true
    }

    pub(crate) fn note_pool_miss(&self) {
        if self.buffer_pool_active() {
            self.inner.stats.pool_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Launches a kernel over `n` independent indices.
    ///
    /// The closure is the kernel body; it runs once per index, in parallel.
    pub fn par_for(&self, label: &'static str, n: usize, kernel: impl Fn(usize) + Sync) {
        self.inner.stats.record_launch(label);
        self.inner
            .pool
            .install(|| (0..n).into_par_iter().for_each(&kernel));
    }

    /// Launches a kernel that writes each element of `out` from its index —
    /// the common "one thread per output element" pattern.
    pub fn par_map_mut<T: Send>(&self, out: &mut [T], kernel: impl Fn(usize, &mut T) + Sync) {
        self.inner.stats.record_launch("par_map_mut");
        self.inner.pool.install(|| {
            out.par_iter_mut()
                .enumerate()
                .for_each(|(i, v)| kernel(i, v))
        });
    }

    /// Launches a kernel over the rows of a row-major matrix: `data` is split
    /// into contiguous rows of `row_len` elements and the kernel receives
    /// `(row_index, row)` — one GPU thread block per row.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of `row_len` (unless empty).
    pub fn par_rows<T: Send>(
        &self,
        label: &'static str,
        data: &mut [T],
        row_len: usize,
        kernel: impl Fn(usize, &mut [T]) + Sync,
    ) {
        if data.is_empty() {
            self.inner.stats.record_launch(label);
            return;
        }
        assert!(
            row_len > 0 && data.len().is_multiple_of(row_len),
            "par_rows: data length {} not a multiple of row length {row_len}",
            data.len()
        );
        self.inner.stats.record_launch(label);
        self.inner.pool.install(|| {
            data.par_chunks_mut(row_len)
                .enumerate()
                .for_each(|(i, row)| kernel(i, row))
        });
    }

    /// Like [`Device::par_rows`], but each row kernel also receives a
    /// mutable per-row auxiliary element (e.g. the constant term of the
    /// polyhedral expression stored in that row).
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != aux.len() * row_len`.
    pub fn par_rows_with<T: Send, U: Send>(
        &self,
        label: &'static str,
        data: &mut [T],
        row_len: usize,
        aux: &mut [U],
        kernel: impl Fn(usize, &mut [T], &mut U) + Sync,
    ) {
        self.inner.stats.record_launch(label);
        if aux.is_empty() {
            return;
        }
        assert!(
            row_len > 0 && data.len() == aux.len() * row_len,
            "par_rows_with: {} elements is not {} rows of {row_len}",
            data.len(),
            aux.len()
        );
        self.inner.pool.install(|| {
            data.par_chunks_mut(row_len)
                .zip(aux.par_iter_mut())
                .enumerate()
                .for_each(|(i, (row, a))| kernel(i, row, a))
        });
    }

    /// Parallel map-reduce over `n` indices.
    pub fn par_reduce<T: Send + Sync + Copy>(
        &self,
        n: usize,
        identity: T,
        map: impl Fn(usize) -> T + Sync,
        reduce: impl Fn(T, T) -> T + Sync + Send,
    ) -> T {
        self.inner.stats.record_launch("par_reduce");
        self.inner.pool.install(|| {
            (0..n)
                .into_par_iter()
                .map(&map)
                .reduce(|| identity, &reduce)
        })
    }

    /// Runs a closure inside the device's worker pool (for custom kernels
    /// composed of rayon primitives).
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        self.inner.pool.install(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_for_covers_all_indices() {
        let dev = Device::new(DeviceConfig::new().workers(3));
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        dev.par_for("test", 100, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_rows_partitions_exactly() {
        let dev = Device::default();
        let mut data = vec![0usize; 12];
        dev.par_rows("rows", &mut data, 4, |r, row| {
            for v in row {
                *v = r;
            }
        });
        assert_eq!(data, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn par_rows_rejects_ragged() {
        let dev = Device::default();
        let mut data = vec![0u8; 10];
        dev.par_rows("rows", &mut data, 4, |_, _| {});
    }

    #[test]
    fn par_reduce_sums() {
        let dev = Device::default();
        let s = dev.par_reduce(101, 0u64, |i| i as u64, |a, b| a + b);
        assert_eq!(s, 5050);
    }

    #[test]
    fn stats_count_launches_by_label() {
        let dev = Device::default();
        dev.par_for("alpha", 1, |_| {});
        dev.par_for("alpha", 1, |_| {});
        dev.par_for("beta", 1, |_| {});
        assert_eq!(dev.stats().kernel_launches("alpha"), 2);
        assert_eq!(dev.stats().kernel_launches("beta"), 1);
        assert_eq!(dev.stats().kernel_launches("missing"), 0);
        assert!(dev.stats().launches() >= 3);
    }

    #[test]
    fn memory_accounting_tracks_capacity() {
        let dev = Device::new(DeviceConfig::new().memory_capacity(100));
        assert!(dev.track_alloc(60).is_ok());
        let err = dev.track_alloc(60).unwrap_err();
        assert_eq!(
            err,
            DeviceError::OutOfMemory {
                requested: 60,
                in_use: 60,
                capacity: 100
            }
        );
        dev.track_free(60);
        assert!(dev.track_alloc(100).is_ok());
        assert_eq!(dev.peak_memory(), 100);
        dev.track_free(100);
        assert_eq!(dev.memory_in_use(), 0);
    }

    #[test]
    fn unlimited_device_never_ooms() {
        let dev = Device::default();
        assert!(dev.track_alloc(usize::MAX / 4).is_ok());
        assert_eq!(dev.memory_free(), usize::MAX);
        dev.track_free(usize::MAX / 4);
    }

    #[test]
    fn error_display_is_informative() {
        let e = DeviceError::OutOfMemory {
            requested: 10,
            in_use: 5,
            capacity: 12,
        };
        let s = e.to_string();
        assert!(s.contains("10") && s.contains("5") && s.contains("12"));
    }

    #[test]
    fn reference_backend_disables_pooling() {
        let dev = Device::reference(DeviceConfig::new().workers(2));
        dev.buffer_pool_retain();
        assert!(
            !dev.buffer_pool_active(),
            "reference backend must never shelve buffers"
        );
        dev.buffer_pool_release();
    }

    #[test]
    fn unbalanced_pool_release_does_not_underflow() {
        // A release without a retain must not wrap the user count to
        // usize::MAX (which would leave the pool permanently active and
        // shelve — leak — every subsequently dropped buffer).
        let dev = Device::default();
        if cfg!(debug_assertions) {
            let d = dev.clone();
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                d.buffer_pool_release();
            }));
            assert!(result.is_err(), "debug builds report the caller bug");
        } else {
            dev.buffer_pool_release();
        }
        assert!(!dev.buffer_pool_active(), "pool must stay inactive");
        {
            let _b = crate::DeviceBuffer::<u8>::zeroed(&dev, 64).unwrap();
        }
        assert_eq!(dev.memory_in_use(), 0, "dropped buffer must be freed");
        assert_eq!(dev.buffer_pool_bytes(), 0);
        // A later retain/release pair still works normally.
        dev.buffer_pool_retain();
        assert!(dev.buffer_pool_active());
        dev.buffer_pool_release();
        assert!(!dev.buffer_pool_active());
    }
}
