//! The pluggable kernel backend.
//!
//! GPUPoly's analysis code (in `gpupoly-core`) is written against an
//! abstract data-parallel machine; everything it needs from that machine is
//! the kernel surface captured by the [`Backend`] trait:
//!
//! * the interval/scalar **GEMM family** with directed rounding (§4.1),
//! * the **scan / compaction / gather** primitives of early termination
//!   (§4.2),
//! * **host↔device copies**, and
//! * a **pooling policy** deciding whether dropped device buffers may be
//!   recycled.
//!
//! [`crate::Device`] is generic over a `Backend`, so a real CUDA or wgpu
//! port slots in under the unchanged verifier by implementing this trait
//! (see `README.md`, "Adding a backend"). Two implementations ship with the
//! crate:
//!
//! * [`CpuSimBackend`] — the production CPU simulation: tiled GEMM and
//!   chunked scan parallelized across the device's worker pool, buffer
//!   pooling enabled. This is the default backend.
//! * [`ReferenceBackend`] — deliberately naive straight-line scalar loops
//!   with pooling disabled. It exists to *differentially test* the clever
//!   backend (and any future port): same contract, trivially-auditable
//!   implementation.
//!
//! # The bit-reproducibility contract
//!
//! Backends are not merely required to be sound — they must be
//! **bit-identical** to each other, which is what makes cross-backend
//! differential testing (and caching/resume across heterogeneous fleets)
//! possible. Concretely, for every output element of a GEMM kernel the
//! terms must be accumulated **in ascending `k` order** using the
//! directed-rounding fused accumulate of `gpupoly-interval`
//! ([`Itv::mul_add_f`] for interval kernels, [`Fp::mul_add`] for the
//! unsound scalar kernel). In the *interval* kernels, terms whose
//! coefficient is exactly zero (`lo == 0 && hi == 0`, either sign of zero)
//! **must be skipped** — this is how dependence-set padding costs no flops,
//! and it is a requirement rather than an allowance because accumulating a
//! zero term is *not* a bitwise no-op when an accumulator bound is `-0.0`
//! (the directed-rounding add rewrites it to `+0.0`); mandating the skip
//! makes the `-0.0` case deterministic too. The scalar kernel must *not*
//! skip (`fma(0, b, -0.0)` is `+0.0` under round-to-nearest, so there the
//! skip would be the divergence), and reassociating is never allowed. A
//! GPU port must therefore use a deterministic fixed-order reduction per
//! output element — the same constraint the paper's cutlass kernels satisfy
//! by construction, since they privatize one output element per thread.
//! Scan, compaction and gather are exact integer/copy operations and must
//! match element-for-element.
//!
//! Every implementation is checked against this contract by the
//! [`crate::conformance`] suite; run
//! [`crate::conformance::assert_backend_conformance`] over a new backend
//! before wiring it into an engine.
//!
//! # What the trait does not (yet) cover
//!
//! The trait captures the BLAS-shaped kernel surface — GEMM, scan,
//! compaction, gather, copies, pool policy. The verifier's remaining
//! kernels (GBC transpose convolution, the ReLU step, densify, residual
//! merge, concretize) still run as host closures over buffer contents via
//! [`Device::par_rows`]-style launches, and [`crate::DeviceBuffer`] assumes
//! host-addressable storage. Both are fine for any CPU-resident backend;
//! a real CUDA/wgpu port must *additionally* move those kernels behind
//! this trait and introduce a device-resident buffer abstraction — tracked
//! in `ROADMAP.md`. Passing the conformance suite is therefore necessary,
//! not sufficient, for a discrete-memory port.

use gpupoly_interval::{Fp, Itv};
use rayon::prelude::*;

use crate::Device;

/// Column-block width of the CPU-sim tiled GEMM: one block of `C`'s row
/// plus one block of `B`'s row stay cache-resident while `k` streams — the
/// CPU analogue of a cutlass thread-block tile. Tiling only reorders the
/// *writes*; per-element accumulation order is still ascending `k`, so the
/// result is bit-identical to the straight-line loop.
const TILE_N: usize = 512;

/// The kernel surface a device implementation must provide.
///
/// The GEMM methods take eight arguments (device, three matrices, three
/// dimensions) mirroring the BLAS signature; the lint for that is allowed
/// once here rather than reshaping a conventional kernel interface.
///
/// Methods receive the owning [`Device`] so implementations can use its
/// worker pool ([`Device::install`]) and report work to its counters
/// ([`Device::stats`]). Dimension checks, launch recording and flop
/// accounting are done by the free wrapper functions in [`crate::gemm`] and
/// [`crate::scan`] *before* delegating here, so implementations contain
/// only the math. See the module docs for the bit-reproducibility contract
/// every implementation must honor.
#[allow(clippy::too_many_arguments)]
pub trait Backend: Send + Sync + Sized + 'static {
    /// Short human-readable backend name for diagnostics (`"cpusim"`,
    /// `"reference"`, `"cuda"`, ...).
    fn label(&self) -> &'static str;

    /// Whether dropped pool-eligible [`crate::DeviceBuffer`]s may be
    /// shelved for reuse. Backends without a meaningful recycling story
    /// (or that want allocation behavior to stay trivially auditable, like
    /// [`ReferenceBackend`]) return `false`; the device then treats
    /// [`Device::buffer_pool_retain`] as a no-op.
    fn pooling(&self) -> bool {
        true
    }

    /// Host→device copy into existing device storage of the same length.
    /// The simulator's "device memory" is host memory, so the default is a
    /// plain slice copy; a real port issues a `memcpyHtoD`.
    fn htod<T: Clone + Send>(&self, src: &[T], dst: &mut [T]) {
        dst.clone_from_slice(src);
    }

    /// Device→host copy from device storage into a host slice of the same
    /// length. The inverse of [`Backend::htod`].
    fn dtoh<T: Clone + Send>(&self, src: &[T], dst: &mut [T]) {
        dst.clone_from_slice(src);
    }

    /// Sound interval×scalar GEMM `C = A · B` (`A: m×k` intervals, `B: k×n`
    /// scalars), outward rounding, ascending-`k` accumulation per element.
    fn gemm_itv_f<F: Fp>(
        &self,
        device: &Device<Self>,
        a: &[Itv<F>],
        b: &[F],
        c: &mut [Itv<F>],
        m: usize,
        k: usize,
        n: usize,
    );

    /// Sound interval×scalar GEMM accumulating into `C`: `C += A · B`.
    fn gemm_itv_f_acc<F: Fp>(
        &self,
        device: &Device<Self>,
        a: &[Itv<F>],
        b: &[F],
        c: &mut [Itv<F>],
        m: usize,
        k: usize,
        n: usize,
    );

    /// Unsound round-to-nearest scalar GEMM `C = A · B` (baselines and the
    /// soundness-overhead ablation only).
    fn gemm_f_f<F: Fp>(
        &self,
        device: &Device<Self>,
        a: &[F],
        b: &[F],
        c: &mut [F],
        m: usize,
        k: usize,
        n: usize,
    );

    /// Exclusive prefix sum; returns the scanned vector and the total.
    fn exclusive_scan(&self, device: &Device<Self>, xs: &[u32]) -> (Vec<u32>, u32);

    /// The original indices of all `true` entries, in order (the prefix-sum
    /// scatter of §4.2).
    fn compact_indices(&self, device: &Device<Self>, keep: &[bool]) -> Vec<u32>;

    /// Gathers the rows listed in `index` from a row-major matrix into
    /// `dst` (`dst.len() == index.len() * row_len`, checked by the caller).
    fn gather_rows<T: Copy + Send + Sync>(
        &self,
        device: &Device<Self>,
        src: &[T],
        row_len: usize,
        index: &[u32],
        dst: &mut [T],
    );
}

/// The production CPU simulation of the paper's GPU machine model: tiled
/// kernels parallelized across the device worker pool, buffer pooling
/// enabled. The default backend of [`Device`].
#[derive(Clone, Copy, Debug, Default)]
pub struct CpuSimBackend;

/// One row of the tiled interval×scalar product, shared by the fresh and
/// accumulating kernels (they differ only in whether `C`'s row is zeroed).
#[inline]
fn tiled_itv_row<F: Fp>(arow: &[Itv<F>], b: &[F], crow: &mut [Itv<F>], n: usize) {
    for j0 in (0..n).step_by(TILE_N) {
        let j1 = (j0 + TILE_N).min(n);
        for (kk, &aik) in arow.iter().enumerate() {
            if aik.lo == F::ZERO && aik.hi == F::ZERO {
                continue;
            }
            let brow = &b[kk * n + j0..kk * n + j1];
            let ctile = &mut crow[j0..j1];
            for (cv, &bv) in ctile.iter_mut().zip(brow) {
                *cv = aik.mul_add_f(bv, *cv);
            }
        }
    }
}

impl Backend for CpuSimBackend {
    fn label(&self) -> &'static str {
        "cpusim"
    }

    fn gemm_itv_f<F: Fp>(
        &self,
        device: &Device<Self>,
        a: &[Itv<F>],
        b: &[F],
        c: &mut [Itv<F>],
        _m: usize,
        k: usize,
        n: usize,
    ) {
        if n == 0 {
            return;
        }
        device.install(|| {
            c.par_chunks_mut(n).enumerate().for_each(|(i, crow)| {
                let arow = &a[i * k..(i + 1) * k];
                for v in crow.iter_mut() {
                    *v = Itv::zero();
                }
                tiled_itv_row(arow, b, crow, n);
            })
        });
    }

    fn gemm_itv_f_acc<F: Fp>(
        &self,
        device: &Device<Self>,
        a: &[Itv<F>],
        b: &[F],
        c: &mut [Itv<F>],
        _m: usize,
        k: usize,
        n: usize,
    ) {
        if n == 0 {
            return;
        }
        device.install(|| {
            c.par_chunks_mut(n).enumerate().for_each(|(i, crow)| {
                let arow = &a[i * k..(i + 1) * k];
                tiled_itv_row(arow, b, crow, n);
            })
        });
    }

    fn gemm_f_f<F: Fp>(
        &self,
        device: &Device<Self>,
        a: &[F],
        b: &[F],
        c: &mut [F],
        _m: usize,
        k: usize,
        n: usize,
    ) {
        if n == 0 {
            return;
        }
        device.install(|| {
            c.par_chunks_mut(n).enumerate().for_each(|(i, crow)| {
                let arow = &a[i * k..(i + 1) * k];
                for v in crow.iter_mut() {
                    *v = F::ZERO;
                }
                for j0 in (0..n).step_by(TILE_N) {
                    let j1 = (j0 + TILE_N).min(n);
                    // No zero-skip here, unlike the interval kernels: under
                    // round-to-nearest, fma(0, b, -0.0) = +0.0, so skipping
                    // a zero term is not a bitwise no-op for plain scalars.
                    for (kk, &aik) in arow.iter().enumerate() {
                        let brow = &b[kk * n + j0..kk * n + j1];
                        let ctile = &mut crow[j0..j1];
                        for (cv, &bv) in ctile.iter_mut().zip(brow) {
                            *cv = aik.mul_add(bv, *cv);
                        }
                    }
                }
            })
        });
    }

    fn exclusive_scan(&self, device: &Device<Self>, xs: &[u32]) -> (Vec<u32>, u32) {
        let n = xs.len();
        if n == 0 {
            return (Vec::new(), 0);
        }
        // Three phases, mirroring the GPU algorithm: per-chunk partial sums
        // in parallel, a serial scan over the (few) chunk totals, and a
        // parallel per-chunk rescan with offsets.
        let chunk = n.div_ceil(device.workers() * 4).max(1);
        let sums: Vec<u32> = device.install(|| {
            xs.par_chunks(chunk)
                .map(|c| c.iter().sum::<u32>())
                .collect()
        });
        let mut offsets = Vec::with_capacity(sums.len());
        let mut acc = 0u32;
        for s in &sums {
            offsets.push(acc);
            acc += s;
        }
        let mut out = vec![0u32; n];
        device.install(|| {
            out.par_chunks_mut(chunk)
                .zip(xs.par_chunks(chunk))
                .zip(offsets.par_iter())
                .for_each(|((o, x), &off)| {
                    let mut a = off;
                    for (oi, &xi) in o.iter_mut().zip(x) {
                        *oi = a;
                        a += xi;
                    }
                })
        });
        (out, acc)
    }

    fn compact_indices(&self, device: &Device<Self>, keep: &[bool]) -> Vec<u32> {
        let n = keep.len();
        if n == 0 {
            return Vec::new();
        }
        let flags: Vec<u32> = keep.iter().map(|&k| k as u32).collect();
        // Call the backend method, not the `scan::exclusive_scan` wrapper:
        // the wrapper would record a nested "exclusive_scan" launch that
        // ReferenceBackend's serial compaction has no counterpart for, and
        // launch accounting must stay comparable across backends.
        let (prefix, total) = Backend::exclusive_scan(self, device, &flags);
        let chunk = n.div_ceil(device.workers() * 4).max(1);
        let mut kept = vec![0u32; total as usize];
        // Split the output into the disjoint ranges each input chunk writes
        // to (chunk c's survivors land at prefix[c*chunk] .. next chunk's).
        let mut out_parts: Vec<(usize, &mut [u32])> = Vec::new();
        let mut rest: &mut [u32] = &mut kept;
        let mut consumed = 0usize;
        for c0 in (0..n).step_by(chunk) {
            let c1 = (c0 + chunk).min(n);
            let end = if c1 < n {
                prefix[c1] as usize
            } else {
                total as usize
            };
            let take = end - consumed;
            let (head, tail) = rest.split_at_mut(take);
            out_parts.push((c0, head));
            rest = tail;
            consumed = end;
        }
        device.install(|| {
            out_parts.par_iter_mut().for_each(|(c0, out)| {
                let c1 = (*c0 + chunk).min(n);
                let mut w = 0;
                for (i, &k) in keep.iter().enumerate().take(c1).skip(*c0) {
                    if k {
                        out[w] = i as u32;
                        w += 1;
                    }
                }
                debug_assert_eq!(w, out.len());
            })
        });
        kept
    }

    fn gather_rows<T: Copy + Send + Sync>(
        &self,
        device: &Device<Self>,
        src: &[T],
        row_len: usize,
        index: &[u32],
        dst: &mut [T],
    ) {
        // Parallel gather: each destination row copies from its source row.
        device.install(|| {
            dst.par_chunks_mut(row_len.max(1))
                .zip(index.par_iter())
                .for_each(|(row, &i)| {
                    row.copy_from_slice(&src[i as usize * row_len..(i as usize + 1) * row_len]);
                })
        });
    }
}

/// A deliberately naive backend: straight-line serial scalar loops and no
/// buffer pooling. Slow by design — its value is that every kernel is
/// auditable at a glance, making it the oracle half of cross-backend
/// differential tests. Honors the same bit-reproducibility contract as
/// [`CpuSimBackend`] (ascending-`k` accumulation with the shared
/// directed-rounding primitives), so engine margins computed on it are
/// bit-identical to the tiled parallel backend's.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReferenceBackend;

impl Backend for ReferenceBackend {
    fn label(&self) -> &'static str {
        "reference"
    }

    fn pooling(&self) -> bool {
        false
    }

    fn gemm_itv_f<F: Fp>(
        &self,
        _device: &Device<Self>,
        a: &[Itv<F>],
        b: &[F],
        c: &mut [Itv<F>],
        m: usize,
        k: usize,
        n: usize,
    ) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = Itv::zero();
                for kk in 0..k {
                    let aik = a[i * k + kk];
                    // Mandatory zero-skip — see the module-level contract.
                    if aik.lo == F::ZERO && aik.hi == F::ZERO {
                        continue;
                    }
                    acc = aik.mul_add_f(b[kk * n + j], acc);
                }
                c[i * n + j] = acc;
            }
        }
    }

    fn gemm_itv_f_acc<F: Fp>(
        &self,
        _device: &Device<Self>,
        a: &[Itv<F>],
        b: &[F],
        c: &mut [Itv<F>],
        m: usize,
        k: usize,
        n: usize,
    ) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = c[i * n + j];
                for kk in 0..k {
                    let aik = a[i * k + kk];
                    // Mandatory zero-skip — see the module-level contract.
                    if aik.lo == F::ZERO && aik.hi == F::ZERO {
                        continue;
                    }
                    acc = aik.mul_add_f(b[kk * n + j], acc);
                }
                c[i * n + j] = acc;
            }
        }
    }

    fn gemm_f_f<F: Fp>(
        &self,
        _device: &Device<Self>,
        a: &[F],
        b: &[F],
        c: &mut [F],
        m: usize,
        k: usize,
        n: usize,
    ) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = F::ZERO;
                for kk in 0..k {
                    acc = a[i * k + kk].mul_add(b[kk * n + j], acc);
                }
                c[i * n + j] = acc;
            }
        }
    }

    fn exclusive_scan(&self, _device: &Device<Self>, xs: &[u32]) -> (Vec<u32>, u32) {
        let mut out = Vec::with_capacity(xs.len());
        let mut acc = 0u32;
        for &x in xs {
            out.push(acc);
            acc += x;
        }
        (out, acc)
    }

    fn compact_indices(&self, _device: &Device<Self>, keep: &[bool]) -> Vec<u32> {
        keep.iter()
            .enumerate()
            .filter_map(|(i, &k)| k.then_some(i as u32))
            .collect()
    }

    fn gather_rows<T: Copy + Send + Sync>(
        &self,
        _device: &Device<Self>,
        src: &[T],
        row_len: usize,
        index: &[u32],
        dst: &mut [T],
    ) {
        for (row, &i) in dst.chunks_mut(row_len.max(1)).zip(index) {
            row.copy_from_slice(&src[i as usize * row_len..(i as usize + 1) * row_len]);
        }
    }
}
