//! The pluggable kernel backend.
//!
//! GPUPoly's analysis code (in `gpupoly-core`) is written against an
//! abstract data-parallel machine; everything it needs from that machine is
//! the kernel surface captured by the [`Backend`] trait:
//!
//! * the interval/scalar **GEMM family** with directed rounding (§4.1),
//! * the **scan / compaction / gather** primitives of early termination
//!   (§4.2),
//! * **host↔device copies**, and
//! * a **pooling policy** deciding whether dropped device buffers may be
//!   recycled.
//!
//! [`crate::Device`] is generic over a `Backend`, so a real CUDA or wgpu
//! port slots in under the unchanged verifier by implementing this trait
//! (see `README.md`, "Adding a backend"). Two implementations ship with the
//! crate:
//!
//! * [`CpuSimBackend`] — the production CPU simulation: tiled GEMM and
//!   chunked scan parallelized across the device's worker pool, buffer
//!   pooling enabled. This is the default backend.
//! * [`ReferenceBackend`] — deliberately naive straight-line scalar loops
//!   with pooling disabled. It exists to *differentially test* the clever
//!   backend (and any future port): same contract, trivially-auditable
//!   implementation.
//!
//! # The bit-reproducibility contract
//!
//! Backends are not merely required to be sound — they must be
//! **bit-identical** to each other, which is what makes cross-backend
//! differential testing (and caching/resume across heterogeneous fleets)
//! possible. Concretely, for every output element of a GEMM kernel the
//! terms must be accumulated **in ascending `k` order** using the
//! directed-rounding fused accumulate of `gpupoly-interval`
//! ([`Itv::mul_add_f`] for interval kernels, [`Fp::mul_add`] for the
//! unsound scalar kernel). In the *interval* kernels, terms whose
//! coefficient is exactly zero (`lo == 0 && hi == 0`, either sign of zero)
//! **must be skipped** — this is how dependence-set padding costs no flops,
//! and it is a requirement rather than an allowance because accumulating a
//! zero term is *not* a bitwise no-op when an accumulator bound is `-0.0`
//! (the directed-rounding add rewrites it to `+0.0`); mandating the skip
//! makes the `-0.0` case deterministic too. The scalar kernel must *not*
//! skip (`fma(0, b, -0.0)` is `+0.0` under round-to-nearest, so there the
//! skip would be the divergence), and reassociating is never allowed. A
//! GPU port must therefore use a deterministic fixed-order reduction per
//! output element — the same constraint the paper's cutlass kernels satisfy
//! by construction, since they privatize one output element per thread.
//! Scan, compaction and gather are exact integer/copy operations and must
//! match element-for-element.
//!
//! **Blocking rule.** Cache/tensor-core blocking of the GEMM family is
//! allowed — but only over `m` and `n`. [`CpuSimBackend`] tiles `C` into
//! [`GemmTile`]-sized blocks and packs `B` into contiguous per-tile panels
//! (packing is a pure copy, so it cannot change a bit); inside a tile each
//! output element still accumulates over the **full `k` extent in ascending
//! order** with the zero-skip rule above. A port may tile `m`/`n`, pack
//! operands, and register-block freely, but must never split, reorder or
//! tree-reduce `k`. [`crate::conformance::check_gemm_blocking`] pins the
//! blocked kernels against the straight-line oracle across tile-boundary
//! and remainder shapes for several tile geometries.
//!
//! Every implementation is checked against this contract by the
//! [`crate::conformance`] suite; run
//! [`crate::conformance::assert_backend_conformance`] over a new backend
//! before wiring it into an engine.
//!
//! # What the trait does not (yet) cover
//!
//! The trait now captures the *complete* verifier kernel surface: the
//! BLAS-shaped family (GEMM, scan, compaction, gather, copies, pool policy)
//! plus the walk-step kernels (GBC transpose convolution, bias fold, the
//! ReLU substitution step, densify, residual merge, concretize) and
//! device↔device copies. What remains for a discrete-memory CUDA/wgpu port
//! is the storage side: [`crate::DeviceBuffer`] still assumes
//! host-addressable memory (`Deref<[T]>`) — tracked in `ROADMAP.md`.
//! Passing the conformance suite is the admission gate for the kernels; the
//! buffer abstraction is the one remaining structural gap.

use gpupoly_interval::{Fp, Itv};
use rayon::prelude::*;

use crate::relax::ReluRelax;
use crate::Device;

/// Per-row window geometry of a batched polyhedral expression — the
/// device-side view of `gpupoly_core::ExprBatch`'s layout that the walk-step
/// kernels need: the `win_h × win_w × chans` cuboid window per row, each
/// row's origin in the frontier node's `shape_h × shape_w × chans` extent,
/// and the per-row query-segment index of fused cross-query batches.
///
/// Window positions falling outside the frontier extent (negative origins
/// from padding) are *virtual*: they carry zero coefficients by invariant
/// and every kernel skips them via [`ExprGeom::is_real`].
#[derive(Copy, Clone, Debug)]
pub struct ExprGeom<'a> {
    /// Window height.
    pub win_h: usize,
    /// Window width.
    pub win_w: usize,
    /// Frontier node height.
    pub shape_h: usize,
    /// Frontier node width.
    pub shape_w: usize,
    /// Channels (innermost dimension of both window and frontier).
    pub chans: usize,
    /// Per-row window origins in the frontier extent.
    pub origins: &'a [(i32, i32)],
    /// Per-row query-segment indices (all `0` for single-query batches).
    pub seg: &'a [u32],
}

impl ExprGeom<'_> {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.origins.len()
    }

    /// Coefficients per row (window volume).
    pub fn cols(&self) -> usize {
        self.win_h * self.win_w * self.chans
    }

    /// Total neurons of the frontier node the windows map into.
    pub fn frontier_len(&self) -> usize {
        self.shape_h * self.shape_w * self.chans
    }

    /// `true` when window position `(i, j)` of row `r` maps to a real
    /// neuron of the frontier node.
    #[inline(always)]
    pub fn is_real(&self, r: usize, i: usize, j: usize) -> bool {
        let (oh, ow) = self.origins[r];
        let h = oh + i as i32;
        let w = ow + j as i32;
        h >= 0 && w >= 0 && (h as usize) < self.shape_h && (w as usize) < self.shape_w
    }

    /// Linear frontier index of window position `(i, j, channel 0)` of row
    /// `r`; the caller must have checked [`ExprGeom::is_real`].
    #[inline(always)]
    pub fn neuron_at(&self, r: usize, i: usize, j: usize) -> usize {
        let (oh, ow) = self.origins[r];
        ((oh + i as i32) as usize * self.shape_w + (ow + j as i32) as usize) * self.chans
    }
}

/// The convolution geometry of one GBC (transpose-convolution) launch —
/// everything Algorithm 1 needs beyond the source batch geometry.
#[derive(Copy, Clone, Debug)]
pub struct GbcShape {
    /// Filter height / width.
    pub kh: usize,
    /// Filter width.
    pub kw: usize,
    /// Vertical stride.
    pub sh: usize,
    /// Horizontal stride.
    pub sw: usize,
    /// Output channels (the conv layer's, i.e. the *source* batch's chans).
    pub cout: usize,
    /// Input channels (the *destination* batch's chans).
    pub cin: usize,
    /// Conv input height (destination frontier extent).
    pub in_h: usize,
    /// Conv input width.
    pub in_w: usize,
}

impl GbcShape {
    /// Linear index into the `[kh][kw][c_out][c_in]` filter tensor.
    #[inline(always)]
    pub fn widx(&self, f: usize, g: usize, d: usize, c: usize) -> usize {
        ((f * self.kw + g) * self.cout + d) * self.cin + c
    }
}

// ---------------------------------------------------------------------------
// Shared per-row kernel bodies. Both backends dispatch these row functions
// (in parallel on CpuSimBackend, serially on ReferenceBackend), so per-row
// arithmetic — and therefore every result bit — is identical by
// construction. The conformance suite still checks each backend against
// *independent* straight-line oracles, so a port that reimplements the rows
// is held to the same bits.
// ---------------------------------------------------------------------------

/// One row of the GBC transpose convolution (paper Algorithm 1): scatter
/// the row's dependence-set window through the filter taps into the grown
/// destination window. Exact-zero source coefficients are skipped
/// (mandatory, like the GEMM zero-skip).
#[inline]
#[allow(clippy::too_many_arguments)]
fn gbc_row<F: Fp>(
    r: usize,
    src_row: &[Itv<F>],
    src_geom: &ExprGeom<'_>,
    weight: &[F],
    conv: &GbcShape,
    dst_row: &mut [Itv<F>],
    dst_origin: (i32, i32),
    dst_ww: usize,
) {
    let (wh, ww) = (src_geom.win_h, src_geom.win_w);
    let (cout, cin) = (conv.cout, conv.cin);
    let (dst_oh, dst_ow) = dst_origin;
    for i in 0..wh {
        for j in 0..ww {
            if !src_geom.is_real(r, i, j) {
                continue; // virtual source position: zero by invariant
            }
            let sbase = (i * ww + j) * cout;
            for f in 0..conv.kh {
                let a = i * conv.sh + f;
                let dh = dst_oh + a as i32;
                if dh < 0 || dh as usize >= conv.in_h {
                    continue; // write would be virtual (padding)
                }
                for g in 0..conv.kw {
                    let b = j * conv.sw + g;
                    let dw = dst_ow + b as i32;
                    if dw < 0 || dw as usize >= conv.in_w {
                        continue;
                    }
                    let obase = (a * dst_ww + b) * cin;
                    for d in 0..cout {
                        let m = src_row[sbase + d];
                        if m.lo == F::ZERO && m.hi == F::ZERO {
                            continue;
                        }
                        let wbase = conv.widx(f, g, d, 0);
                        for c in 0..cin {
                            dst_row[obase + c] = m.mul_add_f(weight[wbase + c], dst_row[obase + c]);
                        }
                    }
                }
            }
        }
    }
}

/// One row of the bias fold: `cst' = cst + Σ a_t · bias[t mod |bias|]` over
/// the real window positions, in ascending window order. Zero coefficients
/// are **not** skipped here — the fold predates the trait and its bit
/// pattern is pinned by the differential suite, so the accumulation is the
/// plain ascending walk (unlike the GEMM family's mandatory zero-skip).
#[inline]
fn bias_fold_row<F: Fp>(
    r: usize,
    row: &[Itv<F>],
    geom: &ExprGeom<'_>,
    bias: &[F],
    cst: Itv<F>,
) -> Itv<F> {
    let mut acc = cst;
    let blen = bias.len();
    for i in 0..geom.win_h {
        for j in 0..geom.win_w {
            if !geom.is_real(r, i, j) {
                continue;
            }
            let base = (i * geom.win_w + j) * geom.chans;
            for c in 0..geom.chans {
                acc = row[base + c].mul_add_f(bias[(base + c) % blen], acc);
            }
        }
    }
    acc
}

/// One row of the ReLU substitution step (DeepPoly diagonal substitution).
/// `upper` selects the mirrored coefficient choice of the upper plane.
#[inline]
fn relu_step_row<F: Fp>(
    r: usize,
    row: &mut [Itv<F>],
    cst: &mut Itv<F>,
    geom: &ExprGeom<'_>,
    relax: &[ReluRelax<F>],
    out_bounds: &[Itv<F>],
    upper: bool,
) {
    for i in 0..geom.win_h {
        for j in 0..geom.win_w {
            if !geom.is_real(r, i, j) {
                continue;
            }
            let nbase = geom.neuron_at(r, i, j);
            let base = (i * geom.win_w + j) * geom.chans;
            for c in 0..geom.chans {
                let a = row[base + c];
                if a.lo == F::ZERO && a.hi == F::ZERO {
                    continue;
                }
                let rx = &relax[nbase + c];
                // Lower plane: a >= 0 -> (alpha, beta); a <= 0 -> (gamma,
                // delta). Upper plane mirrors the choice.
                let (pos_s, pos_c, neg_s, neg_c) = if upper {
                    (rx.gamma, rx.delta, rx.alpha, rx.beta)
                } else {
                    (rx.alpha, rx.beta, rx.gamma, rx.delta)
                };
                if a.lo >= F::ZERO {
                    row[base + c] = a.mul(pos_s);
                    *cst = cst.add(a.mul(pos_c));
                } else if a.hi <= F::ZERO {
                    row[base + c] = a.mul(neg_s);
                    *cst = cst.add(a.mul(neg_c));
                } else {
                    let hull = a.mul(out_bounds[nbase + c]);
                    row[base + c] = Itv::zero();
                    let point = if upper { hull.hi } else { hull.lo };
                    *cst = cst.add(Itv::point(point));
                }
            }
        }
    }
}

/// One row of the densify scatter: copy the cuboid window's real positions
/// into their linear frontier slots of a full-window row (assumed zeroed).
#[inline]
fn densify_row<F: Fp>(r: usize, src_row: &[Itv<F>], geom: &ExprGeom<'_>, dst_row: &mut [Itv<F>]) {
    for i in 0..geom.win_h {
        for j in 0..geom.win_w {
            if !geom.is_real(r, i, j) {
                continue;
            }
            let nbase = geom.neuron_at(r, i, j);
            let base = (i * geom.win_w + j) * geom.chans;
            dst_row[nbase..nbase + geom.chans].copy_from_slice(&src_row[base..base + geom.chans]);
        }
    }
}

/// Adds one source batch's row into a destination row on the union window
/// of a residual merge (Eq. 4). Zero source coefficients are skipped so the
/// destination's exact zeros stay bit-stable.
#[inline]
fn merge_add_row<F: Fp>(
    r: usize,
    src_row: &[Itv<F>],
    src_geom: &ExprGeom<'_>,
    dst_row: &mut [Itv<F>],
    dst_origin: (i32, i32),
    dst_ww: usize,
) {
    let (so_h, so_w) = src_geom.origins[r];
    let (mo_h, mo_w) = dst_origin;
    let dh = (so_h - mo_h) as usize;
    let dw = (so_w - mo_w) as usize;
    let chans = src_geom.chans;
    for i in 0..src_geom.win_h {
        for j in 0..src_geom.win_w {
            let dbase = ((i + dh) * dst_ww + (j + dw)) * chans;
            let sbase = (i * src_geom.win_w + j) * chans;
            for c in 0..chans {
                let v = src_row[sbase + c];
                if !(v.lo == F::ZERO && v.hi == F::ZERO) {
                    dst_row[dbase + c] = dst_row[dbase + c].add(v);
                }
            }
        }
    }
}

/// One row of concretization: substitute the row's segment's concrete
/// bounds into both plane expressions and return the sound candidate.
#[inline]
fn concretize_row<F: Fp>(
    r: usize,
    lo_row: &[Itv<F>],
    hi_row: &[Itv<F>],
    cst_lo: Itv<F>,
    cst_hi: Itv<F>,
    geom: &ExprGeom<'_>,
    bounds: &[Itv<F>],
) -> Itv<F> {
    use gpupoly_interval::round;
    let mut lo = cst_lo.lo;
    let mut hi = cst_hi.hi;
    for i in 0..geom.win_h {
        for j in 0..geom.win_w {
            if !geom.is_real(r, i, j) {
                continue;
            }
            let base = (i * geom.win_w + j) * geom.chans;
            let nbase = geom.neuron_at(r, i, j);
            for c in 0..geom.chans {
                let b = bounds[nbase + c];
                let a = lo_row[base + c];
                if !(a.lo == F::ZERO && a.hi == F::ZERO) {
                    lo = round::add_down(lo, a.mul(b).lo);
                }
                let a = hi_row[base + c];
                if !(a.lo == F::ZERO && a.hi == F::ZERO) {
                    hi = round::add_up(hi, a.mul(b).hi);
                }
            }
        }
    }
    Itv { lo, hi: hi.max(lo) }
}

/// Column-block width of the CPU-sim tiled GEMM: one block of `C`'s row
/// plus one block of `B`'s row stay cache-resident while `k` streams — the
/// CPU analogue of a cutlass thread-block tile. Tiling only reorders the
/// *writes*; per-element accumulation order is still ascending `k`, so the
/// result is bit-identical to the straight-line loop.
const TILE_N: usize = 512;

/// Tile geometry of the blocked GEMM family — the CPU analogue of a
/// cutlass / tensor-core tile configuration, carried by the device
/// ([`crate::DeviceConfig::gemm_tile`]) so a future wgpu/CUDA port inherits
/// the same knobs instead of inventing its own. `tile_m × tile_n` is the
/// block tile (one packed panel of `B` is `tile_n` columns wide) and
/// `mr × nr` the register-blocked micro-kernel footprint inside it — the
/// role the warp-level WMMA fragment shape plays on tensor cores.
///
/// The geometry never changes results: blocking only tiles the `m`/`n`
/// dimensions and packs contiguous copies of `B` panels, while every output
/// element is still accumulated over the full `k` extent in ascending order
/// (see the module-level bit-reproducibility contract). It is purely a
/// performance knob; `benches/gemm.rs` in `gpupoly-bench` sweeps it.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct GemmTile {
    /// Rows of `C` per block tile (upper bound — the device shrinks it to
    /// keep all workers busy on short matrices).
    pub tile_m: usize,
    /// Columns of `C` — and packed-panel width of `B` — per block tile.
    pub tile_n: usize,
    /// Rows of the register-blocked micro-kernel (clamped to
    /// [`GemmTile::MAX_MR`]).
    pub mr: usize,
    /// Columns of the register-blocked micro-kernel (clamped to
    /// [`GemmTile::MAX_NR`]).
    pub nr: usize,
}

impl Default for GemmTile {
    fn default() -> Self {
        Self {
            tile_m: 64,
            tile_n: TILE_N,
            mr: 4,
            nr: 8,
        }
    }
}

impl GemmTile {
    /// Largest supported micro-kernel row count (accumulator budget).
    pub const MAX_MR: usize = 8;
    /// Largest supported micro-kernel column count (accumulator budget).
    pub const MAX_NR: usize = 16;

    /// Clamps every dimension into its supported range: at least 1
    /// everywhere, `mr`/`nr` at most the fixed accumulator budget. The
    /// device clamps its configured geometry once at construction.
    pub fn clamped(self) -> Self {
        Self {
            tile_m: self.tile_m.max(1),
            tile_n: self.tile_n.max(1),
            mr: self.mr.clamp(1, Self::MAX_MR),
            nr: self.nr.clamp(1, Self::MAX_NR),
        }
    }
}

/// The kernel surface a device implementation must provide.
///
/// The GEMM methods take eight arguments (device, three matrices, three
/// dimensions) mirroring the BLAS signature; the lint for that is allowed
/// once here rather than reshaping a conventional kernel interface.
///
/// Methods receive the owning [`Device`] so implementations can use its
/// worker pool ([`Device::install`]) and report work to its counters
/// ([`Device::stats`]). Dimension checks, launch recording and flop
/// accounting are done by the free wrapper functions in [`crate::gemm`] and
/// [`crate::scan`] *before* delegating here, so implementations contain
/// only the math. See the module docs for the bit-reproducibility contract
/// every implementation must honor.
#[allow(clippy::too_many_arguments)]
pub trait Backend: Send + Sync + Sized + 'static {
    /// Short human-readable backend name for diagnostics (`"cpusim"`,
    /// `"reference"`, `"cuda"`, ...).
    fn label(&self) -> &'static str;

    /// Whether dropped pool-eligible [`crate::DeviceBuffer`]s may be
    /// shelved for reuse. Backends without a meaningful recycling story
    /// (or that want allocation behavior to stay trivially auditable, like
    /// [`ReferenceBackend`]) return `false`; the device then treats
    /// [`Device::buffer_pool_retain`] as a no-op.
    fn pooling(&self) -> bool {
        true
    }

    /// Host→device copy into existing device storage of the same length.
    /// The simulator's "device memory" is host memory, so the default is a
    /// plain slice copy; a real port issues a `memcpyHtoD`.
    fn htod<T: Clone + Send>(&self, src: &[T], dst: &mut [T]) {
        dst.clone_from_slice(src);
    }

    /// Device→host copy from device storage into a host slice of the same
    /// length. The inverse of [`Backend::htod`].
    fn dtoh<T: Clone + Send>(&self, src: &[T], dst: &mut [T]) {
        dst.clone_from_slice(src);
    }

    /// Sound interval×scalar GEMM `C = A · B` (`A: m×k` intervals, `B: k×n`
    /// scalars), outward rounding, ascending-`k` accumulation per element.
    fn gemm_itv_f<F: Fp>(
        &self,
        device: &Device<Self>,
        a: &[Itv<F>],
        b: &[F],
        c: &mut [Itv<F>],
        m: usize,
        k: usize,
        n: usize,
    );

    /// Sound interval×scalar GEMM accumulating into `C`: `C += A · B`.
    fn gemm_itv_f_acc<F: Fp>(
        &self,
        device: &Device<Self>,
        a: &[Itv<F>],
        b: &[F],
        c: &mut [Itv<F>],
        m: usize,
        k: usize,
        n: usize,
    );

    /// Unsound round-to-nearest scalar GEMM `C = A · B` (baselines and the
    /// soundness-overhead ablation only).
    fn gemm_f_f<F: Fp>(
        &self,
        device: &Device<Self>,
        a: &[F],
        b: &[F],
        c: &mut [F],
        m: usize,
        k: usize,
        n: usize,
    );

    /// Exclusive prefix sum; returns the scanned vector and the total.
    fn exclusive_scan(&self, device: &Device<Self>, xs: &[u32]) -> (Vec<u32>, u32);

    /// The original indices of all `true` entries, in order (the prefix-sum
    /// scatter of §4.2).
    fn compact_indices(&self, device: &Device<Self>, keep: &[bool]) -> Vec<u32>;

    /// Gathers the rows listed in `index` from a row-major matrix into
    /// `dst` (`dst.len() == index.len() * row_len`, checked by the caller).
    fn gather_rows<T: Copy + Send + Sync>(
        &self,
        device: &Device<Self>,
        src: &[T],
        row_len: usize,
        index: &[u32],
        dst: &mut [T],
    );

    /// Device→device copy between buffers of the same length. The
    /// simulator's device memory is host memory, so the default is a plain
    /// slice copy; a real port issues a `memcpyDtoD`.
    fn dtod<T: Clone + Send>(&self, src: &[T], dst: &mut [T]) {
        dst.clone_from_slice(src);
    }

    /// GBC transpose convolution (paper Algorithm 1), one coefficient
    /// plane per launch: every source row's dependence-set window is pushed
    /// one convolution backwards into the grown destination window
    /// (`dst_cols` wide, spatial width `dst_ww`, per-row origins
    /// `dst_origins`). `dst` must be zeroed. Exact-zero source coefficients
    /// must be skipped (same contract as the interval GEMM family).
    #[allow(clippy::too_many_arguments)]
    fn gbc<F: Fp>(
        &self,
        device: &Device<Self>,
        src: &[Itv<F>],
        src_geom: &ExprGeom<'_>,
        weight: &[F],
        conv: &GbcShape,
        dst: &mut [Itv<F>],
        dst_origins: &[(i32, i32)],
        dst_cols: usize,
        dst_ww: usize,
    );

    /// Bias absorption of the affine steps, one plane per launch:
    /// `out_cst[r] = src_cst[r] + Σ_t plane[r][t] · bias[t mod |bias|]`
    /// over the real window positions in ascending order, with **no**
    /// zero-skip (see [`bias_fold_row`]'s bit-pattern note).
    fn bias_fold<F: Fp>(
        &self,
        device: &Device<Self>,
        plane: &[Itv<F>],
        geom: &ExprGeom<'_>,
        bias: &[F],
        src_cst: &[Itv<F>],
        out_cst: &mut [Itv<F>],
    );

    /// The DeepPoly ReLU substitution step, one plane per launch (`upper`
    /// selects the mirrored coefficient choice): row `r` substitutes the
    /// relaxation of *its own* query segment
    /// (`relax_per_seg[geom.seg[r]]`), in place.
    #[allow(clippy::too_many_arguments)]
    fn relu_step<F: Fp>(
        &self,
        device: &Device<Self>,
        plane: &mut [Itv<F>],
        cst: &mut [Itv<F>],
        geom: &ExprGeom<'_>,
        relax_per_seg: &[&[ReluRelax<F>]],
        out_bounds_per_seg: &[&[Itv<F>]],
        upper: bool,
    );

    /// Expands cuboid windows to full rows over the frontier node, one
    /// plane per launch: scatter each row's real window positions into
    /// their linear frontier slots. `dst` must be zeroed.
    fn densify<F: Fp>(
        &self,
        device: &Device<Self>,
        src: &[Itv<F>],
        geom: &ExprGeom<'_>,
        dst: &mut [Itv<F>],
        dst_cols: usize,
    );

    /// Residual-merge accumulation (Eq. 4), one plane per launch: add both
    /// branch expressions into the zeroed union-window destination.
    #[allow(clippy::too_many_arguments)]
    fn residual_merge<F: Fp>(
        &self,
        device: &Device<Self>,
        a: &[Itv<F>],
        a_geom: &ExprGeom<'_>,
        b: &[Itv<F>],
        b_geom: &ExprGeom<'_>,
        dst: &mut [Itv<F>],
        dst_origins: &[(i32, i32)],
        dst_cols: usize,
        dst_ww: usize,
    );

    /// Candidate concretization: substitute each row's segment's concrete
    /// bounds (`bounds_per_seg[geom.seg[r]]`) into both plane expressions,
    /// writing one sound `[lower, upper]` candidate per row into `out`.
    #[allow(clippy::too_many_arguments)]
    fn concretize<F: Fp>(
        &self,
        device: &Device<Self>,
        lo: &[Itv<F>],
        hi: &[Itv<F>],
        cst_lo: &[Itv<F>],
        cst_hi: &[Itv<F>],
        geom: &ExprGeom<'_>,
        bounds_per_seg: &[&[Itv<F>]],
        out: &mut [Itv<F>],
    );
}

/// The production CPU simulation of the paper's GPU machine model: tiled
/// kernels parallelized across the device worker pool, buffer pooling
/// enabled. The default backend of [`Device`].
#[derive(Clone, Copy, Debug, Default)]
pub struct CpuSimBackend;

/// Packs `B` (`k×n`, row-major) into panel-major layout: the panel covering
/// columns `j0 .. j0+w` occupies `packed[j0 * k ..][.. w * k]` as `k`
/// contiguous rows of width `w`. A pure copy — packing cannot change a bit
/// of the product — that makes the micro-kernel's `B` accesses unit-stride
/// and cache-resident regardless of `n`.
fn pack_b_panels<F: Fp>(
    device: &Device<CpuSimBackend>,
    b: &[F],
    k: usize,
    n: usize,
    tile_n: usize,
    packed: &mut [F],
) {
    let mut panels: Vec<(usize, &mut [F])> = Vec::new();
    let mut rest = packed;
    for j0 in (0..n).step_by(tile_n) {
        let w = (j0 + tile_n).min(n) - j0;
        let (head, tail) = rest.split_at_mut(w * k);
        panels.push((j0, head));
        rest = tail;
    }
    device.install(|| {
        panels.par_iter_mut().for_each(|(j0, panel)| {
            let w = panel.len() / k;
            for kk in 0..k {
                panel[kk * w..(kk + 1) * w].copy_from_slice(&b[kk * n + *j0..kk * n + *j0 + w]);
            }
        })
    });
}

/// One m-tile of the blocked interval product: for every packed panel of
/// `B`, an `mr × nr` register block of `C` streams the **full** `k` extent
/// with ascending-`k` accumulation and the mandatory zero-skip per
/// `(row, k)` term — bit-identical to the straight-line loop (see the
/// module contract; blocking only tiles `m`/`n`). The register block loads
/// from `C` first, so the same body serves the fresh kernel (rows zeroed by
/// the caller) and the accumulating one.
fn blocked_itv_tile<F: Fp>(
    atile: &[Itv<F>],
    packed: &[F],
    ctile: &mut [Itv<F>],
    k: usize,
    n: usize,
    tile: GemmTile,
) {
    let rows = ctile.len() / n;
    let mut acc = [[Itv::<F>::zero(); GemmTile::MAX_NR]; GemmTile::MAX_MR];
    for j0 in (0..n).step_by(tile.tile_n) {
        let w = (j0 + tile.tile_n).min(n) - j0;
        let panel = &packed[j0 * k..j0 * k + w * k];
        for i0 in (0..rows).step_by(tile.mr) {
            let mr = (i0 + tile.mr).min(rows) - i0;
            for jj0 in (0..w).step_by(tile.nr) {
                let nr = (jj0 + tile.nr).min(w) - jj0;
                for (ri, areg) in acc.iter_mut().enumerate().take(mr) {
                    let at = (i0 + ri) * n + j0 + jj0;
                    areg[..nr].copy_from_slice(&ctile[at..at + nr]);
                }
                for kk in 0..k {
                    let brow = &panel[kk * w + jj0..kk * w + jj0 + nr];
                    for (ri, areg) in acc.iter_mut().enumerate().take(mr) {
                        let aik = atile[(i0 + ri) * k + kk];
                        // Mandatory zero-skip — see the module contract.
                        if aik.lo == F::ZERO && aik.hi == F::ZERO {
                            continue;
                        }
                        for (av, &bv) in areg[..nr].iter_mut().zip(brow) {
                            *av = aik.mul_add_f(bv, *av);
                        }
                    }
                }
                for (ri, areg) in acc.iter().enumerate().take(mr) {
                    let at = (i0 + ri) * n + j0 + jj0;
                    ctile[at..at + nr].copy_from_slice(&areg[..nr]);
                }
            }
        }
    }
}

/// The scalar counterpart of [`blocked_itv_tile`]: same blocking, no
/// zero-skip (under round-to-nearest, `fma(0, b, -0.0)` is `+0.0`, so
/// there skipping would be the divergence).
fn blocked_f_tile<F: Fp>(
    atile: &[F],
    packed: &[F],
    ctile: &mut [F],
    k: usize,
    n: usize,
    tile: GemmTile,
) {
    let rows = ctile.len() / n;
    let mut acc = [[F::ZERO; GemmTile::MAX_NR]; GemmTile::MAX_MR];
    for j0 in (0..n).step_by(tile.tile_n) {
        let w = (j0 + tile.tile_n).min(n) - j0;
        let panel = &packed[j0 * k..j0 * k + w * k];
        for i0 in (0..rows).step_by(tile.mr) {
            let mr = (i0 + tile.mr).min(rows) - i0;
            for jj0 in (0..w).step_by(tile.nr) {
                let nr = (jj0 + tile.nr).min(w) - jj0;
                for areg in acc.iter_mut().take(mr) {
                    areg[..nr].fill(F::ZERO);
                }
                for kk in 0..k {
                    let brow = &panel[kk * w + jj0..kk * w + jj0 + nr];
                    for (ri, areg) in acc.iter_mut().enumerate().take(mr) {
                        let aik = atile[(i0 + ri) * k + kk];
                        for (av, &bv) in areg[..nr].iter_mut().zip(brow) {
                            *av = aik.mul_add(bv, *av);
                        }
                    }
                }
                for (ri, areg) in acc.iter().enumerate().take(mr) {
                    let at = (i0 + ri) * n + j0 + jj0;
                    ctile[at..at + nr].copy_from_slice(&areg[..nr]);
                }
            }
        }
    }
}

/// Effective m-tile height: the configured `tile_m`, shrunk so short
/// matrices still split into enough row blocks to keep every worker busy.
/// Purely a scheduling choice — per-element bits do not depend on it.
fn effective_tile_m(tile_m: usize, m: usize, workers: usize) -> usize {
    tile_m.min(m.div_ceil(workers * 4).max(1)).max(1)
}

/// Allocation size of the packed-panel scratch for a `k×n` operand: the
/// element count rounded up to a power of two, with a floor merging all
/// small operands into one class. Stable-zero compaction makes `k` depend
/// on each query's zero pattern; exact-size scratch would mint a fresh
/// buffer-pool size class per compacted width, defeating steady-state pool
/// reuse. Bucketing bounds the class count (≤2× transient over-allocation,
/// recycled through the pool either way).
fn panel_scratch_len(elems: usize) -> usize {
    elems.checked_next_power_of_two().unwrap_or(elems).max(256)
}

/// One row of the tiled interval×scalar product, shared by the fresh and
/// accumulating kernels (they differ only in whether `C`'s row is zeroed).
/// The unpacked fallback of the blocked path: same bits, used when the
/// panel scratch does not fit on a capacity-limited device.
#[inline]
fn tiled_itv_row<F: Fp>(arow: &[Itv<F>], b: &[F], crow: &mut [Itv<F>], n: usize) {
    for j0 in (0..n).step_by(TILE_N) {
        let j1 = (j0 + TILE_N).min(n);
        for (kk, &aik) in arow.iter().enumerate() {
            if aik.lo == F::ZERO && aik.hi == F::ZERO {
                continue;
            }
            let brow = &b[kk * n + j0..kk * n + j1];
            let ctile = &mut crow[j0..j1];
            for (cv, &bv) in ctile.iter_mut().zip(brow) {
                *cv = aik.mul_add_f(bv, *cv);
            }
        }
    }
}

/// Driver of the CPU-sim interval GEMM family: pack `B` once into a pooled
/// panel buffer ([`crate::DeviceBuffer::for_overwrite`], so steady-state
/// launches recycle the scratch instead of charging fresh bytes), then run
/// the blocked micro-kernel over disjoint m-tiles in parallel. When the
/// panel scratch does not fit on a capacity-limited device, falls back to
/// the unpacked flat row loop — same bits either way.
#[allow(clippy::too_many_arguments)]
fn gemm_itv_blocked<F: Fp>(
    device: &Device<CpuSimBackend>,
    a: &[Itv<F>],
    b: &[F],
    c: &mut [Itv<F>],
    m: usize,
    k: usize,
    n: usize,
    fresh: bool,
) {
    if n == 0 {
        return;
    }
    if k == 0 {
        // Empty reduction: C is all zeros (fresh) / unchanged (acc).
        if fresh {
            c.fill(Itv::zero());
        }
        return;
    }
    if let Ok(mut packed) =
        crate::DeviceBuffer::<F>::for_overwrite(device, panel_scratch_len(k * n))
    {
        let tile = device.gemm_tile();
        pack_b_panels(device, b, k, n, tile.tile_n, &mut packed[..k * n]);
        let tm = effective_tile_m(tile.tile_m, m, device.workers());
        let packed: &[F] = &packed[..k * n];
        device.install(|| {
            c.par_chunks_mut(tm * n).enumerate().for_each(|(t, ctile)| {
                let i0 = t * tm;
                let rows = ctile.len() / n;
                if fresh {
                    ctile.fill(Itv::zero());
                }
                blocked_itv_tile(&a[i0 * k..(i0 + rows) * k], packed, ctile, k, n, tile);
            })
        });
    } else {
        device.install(|| {
            c.par_chunks_mut(n).enumerate().for_each(|(i, crow)| {
                let arow = &a[i * k..(i + 1) * k];
                if fresh {
                    crow.fill(Itv::zero());
                }
                tiled_itv_row(arow, b, crow, n);
            })
        });
    }
}

impl Backend for CpuSimBackend {
    fn label(&self) -> &'static str {
        "cpusim"
    }

    fn gemm_itv_f<F: Fp>(
        &self,
        device: &Device<Self>,
        a: &[Itv<F>],
        b: &[F],
        c: &mut [Itv<F>],
        m: usize,
        k: usize,
        n: usize,
    ) {
        gemm_itv_blocked(device, a, b, c, m, k, n, true);
    }

    fn gemm_itv_f_acc<F: Fp>(
        &self,
        device: &Device<Self>,
        a: &[Itv<F>],
        b: &[F],
        c: &mut [Itv<F>],
        m: usize,
        k: usize,
        n: usize,
    ) {
        gemm_itv_blocked(device, a, b, c, m, k, n, false);
    }

    fn gemm_f_f<F: Fp>(
        &self,
        device: &Device<Self>,
        a: &[F],
        b: &[F],
        c: &mut [F],
        m: usize,
        k: usize,
        n: usize,
    ) {
        if n == 0 {
            return;
        }
        if k == 0 {
            c.fill(F::ZERO);
            return;
        }
        if let Ok(mut packed) =
            crate::DeviceBuffer::<F>::for_overwrite(device, panel_scratch_len(k * n))
        {
            let tile = device.gemm_tile();
            pack_b_panels(device, b, k, n, tile.tile_n, &mut packed[..k * n]);
            let tm = effective_tile_m(tile.tile_m, m, device.workers());
            let packed: &[F] = &packed[..k * n];
            device.install(|| {
                c.par_chunks_mut(tm * n).enumerate().for_each(|(t, ctile)| {
                    let i0 = t * tm;
                    let rows = ctile.len() / n;
                    blocked_f_tile(&a[i0 * k..(i0 + rows) * k], packed, ctile, k, n, tile);
                })
            });
        } else {
            device.install(|| {
                c.par_chunks_mut(n).enumerate().for_each(|(i, crow)| {
                    let arow = &a[i * k..(i + 1) * k];
                    crow.fill(F::ZERO);
                    for j0 in (0..n).step_by(TILE_N) {
                        let j1 = (j0 + TILE_N).min(n);
                        // No zero-skip here, unlike the interval kernels:
                        // under round-to-nearest, fma(0, b, -0.0) = +0.0, so
                        // skipping a zero term is not a bitwise no-op for
                        // plain scalars.
                        for (kk, &aik) in arow.iter().enumerate() {
                            let brow = &b[kk * n + j0..kk * n + j1];
                            let ctile = &mut crow[j0..j1];
                            for (cv, &bv) in ctile.iter_mut().zip(brow) {
                                *cv = aik.mul_add(bv, *cv);
                            }
                        }
                    }
                })
            });
        }
    }

    fn exclusive_scan(&self, device: &Device<Self>, xs: &[u32]) -> (Vec<u32>, u32) {
        let n = xs.len();
        if n == 0 {
            return (Vec::new(), 0);
        }
        // Three phases, mirroring the GPU algorithm: per-chunk partial sums
        // in parallel, a serial scan over the (few) chunk totals, and a
        // parallel per-chunk rescan with offsets.
        let chunk = n.div_ceil(device.workers() * 4).max(1);
        let sums: Vec<u32> = device.install(|| {
            xs.par_chunks(chunk)
                .map(|c| c.iter().sum::<u32>())
                .collect()
        });
        let mut offsets = Vec::with_capacity(sums.len());
        let mut acc = 0u32;
        for s in &sums {
            offsets.push(acc);
            acc += s;
        }
        let mut out = vec![0u32; n];
        device.install(|| {
            out.par_chunks_mut(chunk)
                .zip(xs.par_chunks(chunk))
                .zip(offsets.par_iter())
                .for_each(|((o, x), &off)| {
                    let mut a = off;
                    for (oi, &xi) in o.iter_mut().zip(x) {
                        *oi = a;
                        a += xi;
                    }
                })
        });
        (out, acc)
    }

    fn compact_indices(&self, device: &Device<Self>, keep: &[bool]) -> Vec<u32> {
        let n = keep.len();
        if n == 0 {
            return Vec::new();
        }
        let flags: Vec<u32> = keep.iter().map(|&k| k as u32).collect();
        // Call the backend method, not the `scan::exclusive_scan` wrapper:
        // the wrapper would record a nested "exclusive_scan" launch that
        // ReferenceBackend's serial compaction has no counterpart for, and
        // launch accounting must stay comparable across backends.
        let (prefix, total) = Backend::exclusive_scan(self, device, &flags);
        let chunk = n.div_ceil(device.workers() * 4).max(1);
        let mut kept = vec![0u32; total as usize];
        // Split the output into the disjoint ranges each input chunk writes
        // to (chunk c's survivors land at prefix[c*chunk] .. next chunk's).
        let mut out_parts: Vec<(usize, &mut [u32])> = Vec::new();
        let mut rest: &mut [u32] = &mut kept;
        let mut consumed = 0usize;
        for c0 in (0..n).step_by(chunk) {
            let c1 = (c0 + chunk).min(n);
            let end = if c1 < n {
                prefix[c1] as usize
            } else {
                total as usize
            };
            let take = end - consumed;
            let (head, tail) = rest.split_at_mut(take);
            out_parts.push((c0, head));
            rest = tail;
            consumed = end;
        }
        device.install(|| {
            out_parts.par_iter_mut().for_each(|(c0, out)| {
                let c1 = (*c0 + chunk).min(n);
                let mut w = 0;
                for (i, &k) in keep.iter().enumerate().take(c1).skip(*c0) {
                    if k {
                        out[w] = i as u32;
                        w += 1;
                    }
                }
                debug_assert_eq!(w, out.len());
            })
        });
        kept
    }

    fn gather_rows<T: Copy + Send + Sync>(
        &self,
        device: &Device<Self>,
        src: &[T],
        row_len: usize,
        index: &[u32],
        dst: &mut [T],
    ) {
        // Parallel gather: each destination row copies from its source row.
        device.install(|| {
            dst.par_chunks_mut(row_len.max(1))
                .zip(index.par_iter())
                .for_each(|(row, &i)| {
                    row.copy_from_slice(&src[i as usize * row_len..(i as usize + 1) * row_len]);
                })
        });
    }

    fn gbc<F: Fp>(
        &self,
        device: &Device<Self>,
        src: &[Itv<F>],
        src_geom: &ExprGeom<'_>,
        weight: &[F],
        conv: &GbcShape,
        dst: &mut [Itv<F>],
        dst_origins: &[(i32, i32)],
        dst_cols: usize,
        dst_ww: usize,
    ) {
        if dst.is_empty() {
            return;
        }
        let src_cols = src_geom.cols();
        device.install(|| {
            dst.par_chunks_mut(dst_cols)
                .enumerate()
                .for_each(|(r, row)| {
                    gbc_row(
                        r,
                        &src[r * src_cols..(r + 1) * src_cols],
                        src_geom,
                        weight,
                        conv,
                        row,
                        dst_origins[r],
                        dst_ww,
                    )
                })
        });
    }

    fn bias_fold<F: Fp>(
        &self,
        device: &Device<Self>,
        plane: &[Itv<F>],
        geom: &ExprGeom<'_>,
        bias: &[F],
        src_cst: &[Itv<F>],
        out_cst: &mut [Itv<F>],
    ) {
        if out_cst.is_empty() {
            return;
        }
        let cols = geom.cols();
        device.install(|| {
            out_cst.par_iter_mut().enumerate().for_each(|(r, v)| {
                *v = bias_fold_row(r, &plane[r * cols..(r + 1) * cols], geom, bias, src_cst[r])
            })
        });
    }

    fn relu_step<F: Fp>(
        &self,
        device: &Device<Self>,
        plane: &mut [Itv<F>],
        cst: &mut [Itv<F>],
        geom: &ExprGeom<'_>,
        relax_per_seg: &[&[ReluRelax<F>]],
        out_bounds_per_seg: &[&[Itv<F>]],
        upper: bool,
    ) {
        if cst.is_empty() {
            return;
        }
        let cols = geom.cols();
        device.install(|| {
            plane
                .par_chunks_mut(cols.max(1))
                .zip(cst.par_iter_mut())
                .enumerate()
                .for_each(|(r, (row, c))| {
                    let s = geom.seg[r] as usize;
                    relu_step_row(
                        r,
                        row,
                        c,
                        geom,
                        relax_per_seg[s],
                        out_bounds_per_seg[s],
                        upper,
                    )
                })
        });
    }

    fn densify<F: Fp>(
        &self,
        device: &Device<Self>,
        src: &[Itv<F>],
        geom: &ExprGeom<'_>,
        dst: &mut [Itv<F>],
        dst_cols: usize,
    ) {
        if dst.is_empty() {
            return;
        }
        let cols = geom.cols();
        device.install(|| {
            dst.par_chunks_mut(dst_cols)
                .enumerate()
                .for_each(|(r, row)| densify_row(r, &src[r * cols..(r + 1) * cols], geom, row))
        });
    }

    fn residual_merge<F: Fp>(
        &self,
        device: &Device<Self>,
        a: &[Itv<F>],
        a_geom: &ExprGeom<'_>,
        b: &[Itv<F>],
        b_geom: &ExprGeom<'_>,
        dst: &mut [Itv<F>],
        dst_origins: &[(i32, i32)],
        dst_cols: usize,
        dst_ww: usize,
    ) {
        if dst.is_empty() {
            return;
        }
        let (a_cols, b_cols) = (a_geom.cols(), b_geom.cols());
        device.install(|| {
            dst.par_chunks_mut(dst_cols)
                .enumerate()
                .for_each(|(r, row)| {
                    let o = dst_origins[r];
                    merge_add_row(r, &a[r * a_cols..(r + 1) * a_cols], a_geom, row, o, dst_ww);
                    merge_add_row(r, &b[r * b_cols..(r + 1) * b_cols], b_geom, row, o, dst_ww);
                })
        });
    }

    fn concretize<F: Fp>(
        &self,
        device: &Device<Self>,
        lo: &[Itv<F>],
        hi: &[Itv<F>],
        cst_lo: &[Itv<F>],
        cst_hi: &[Itv<F>],
        geom: &ExprGeom<'_>,
        bounds_per_seg: &[&[Itv<F>]],
        out: &mut [Itv<F>],
    ) {
        if out.is_empty() {
            return;
        }
        let cols = geom.cols();
        device.install(|| {
            out.par_iter_mut().enumerate().for_each(|(r, v)| {
                *v = concretize_row(
                    r,
                    &lo[r * cols..(r + 1) * cols],
                    &hi[r * cols..(r + 1) * cols],
                    cst_lo[r],
                    cst_hi[r],
                    geom,
                    bounds_per_seg[geom.seg[r] as usize],
                )
            })
        });
    }
}

/// A deliberately naive backend: straight-line serial scalar loops and no
/// buffer pooling. Slow by design — its value is that every kernel is
/// auditable at a glance, making it the oracle half of cross-backend
/// differential tests. Honors the same bit-reproducibility contract as
/// [`CpuSimBackend`] (ascending-`k` accumulation with the shared
/// directed-rounding primitives), so engine margins computed on it are
/// bit-identical to the tiled parallel backend's.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReferenceBackend;

impl Backend for ReferenceBackend {
    fn label(&self) -> &'static str {
        "reference"
    }

    fn pooling(&self) -> bool {
        false
    }

    fn gemm_itv_f<F: Fp>(
        &self,
        _device: &Device<Self>,
        a: &[Itv<F>],
        b: &[F],
        c: &mut [Itv<F>],
        m: usize,
        k: usize,
        n: usize,
    ) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = Itv::zero();
                for kk in 0..k {
                    let aik = a[i * k + kk];
                    // Mandatory zero-skip — see the module-level contract.
                    if aik.lo == F::ZERO && aik.hi == F::ZERO {
                        continue;
                    }
                    acc = aik.mul_add_f(b[kk * n + j], acc);
                }
                c[i * n + j] = acc;
            }
        }
    }

    fn gemm_itv_f_acc<F: Fp>(
        &self,
        _device: &Device<Self>,
        a: &[Itv<F>],
        b: &[F],
        c: &mut [Itv<F>],
        m: usize,
        k: usize,
        n: usize,
    ) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = c[i * n + j];
                for kk in 0..k {
                    let aik = a[i * k + kk];
                    // Mandatory zero-skip — see the module-level contract.
                    if aik.lo == F::ZERO && aik.hi == F::ZERO {
                        continue;
                    }
                    acc = aik.mul_add_f(b[kk * n + j], acc);
                }
                c[i * n + j] = acc;
            }
        }
    }

    fn gemm_f_f<F: Fp>(
        &self,
        _device: &Device<Self>,
        a: &[F],
        b: &[F],
        c: &mut [F],
        m: usize,
        k: usize,
        n: usize,
    ) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = F::ZERO;
                for kk in 0..k {
                    acc = a[i * k + kk].mul_add(b[kk * n + j], acc);
                }
                c[i * n + j] = acc;
            }
        }
    }

    fn exclusive_scan(&self, _device: &Device<Self>, xs: &[u32]) -> (Vec<u32>, u32) {
        let mut out = Vec::with_capacity(xs.len());
        let mut acc = 0u32;
        for &x in xs {
            out.push(acc);
            acc += x;
        }
        (out, acc)
    }

    fn compact_indices(&self, _device: &Device<Self>, keep: &[bool]) -> Vec<u32> {
        keep.iter()
            .enumerate()
            .filter_map(|(i, &k)| k.then_some(i as u32))
            .collect()
    }

    fn gather_rows<T: Copy + Send + Sync>(
        &self,
        _device: &Device<Self>,
        src: &[T],
        row_len: usize,
        index: &[u32],
        dst: &mut [T],
    ) {
        for (row, &i) in dst.chunks_mut(row_len.max(1)).zip(index) {
            row.copy_from_slice(&src[i as usize * row_len..(i as usize + 1) * row_len]);
        }
    }

    fn gbc<F: Fp>(
        &self,
        _device: &Device<Self>,
        src: &[Itv<F>],
        src_geom: &ExprGeom<'_>,
        weight: &[F],
        conv: &GbcShape,
        dst: &mut [Itv<F>],
        dst_origins: &[(i32, i32)],
        dst_cols: usize,
        dst_ww: usize,
    ) {
        if dst.is_empty() {
            return;
        }
        let src_cols = src_geom.cols();
        for (r, row) in dst.chunks_mut(dst_cols).enumerate() {
            gbc_row(
                r,
                &src[r * src_cols..(r + 1) * src_cols],
                src_geom,
                weight,
                conv,
                row,
                dst_origins[r],
                dst_ww,
            );
        }
    }

    fn bias_fold<F: Fp>(
        &self,
        _device: &Device<Self>,
        plane: &[Itv<F>],
        geom: &ExprGeom<'_>,
        bias: &[F],
        src_cst: &[Itv<F>],
        out_cst: &mut [Itv<F>],
    ) {
        let cols = geom.cols();
        for (r, v) in out_cst.iter_mut().enumerate() {
            *v = bias_fold_row(r, &plane[r * cols..(r + 1) * cols], geom, bias, src_cst[r]);
        }
    }

    fn relu_step<F: Fp>(
        &self,
        _device: &Device<Self>,
        plane: &mut [Itv<F>],
        cst: &mut [Itv<F>],
        geom: &ExprGeom<'_>,
        relax_per_seg: &[&[ReluRelax<F>]],
        out_bounds_per_seg: &[&[Itv<F>]],
        upper: bool,
    ) {
        let cols = geom.cols();
        for (r, (row, c)) in plane
            .chunks_mut(cols.max(1))
            .zip(cst.iter_mut())
            .enumerate()
        {
            let s = geom.seg[r] as usize;
            relu_step_row(
                r,
                row,
                c,
                geom,
                relax_per_seg[s],
                out_bounds_per_seg[s],
                upper,
            );
        }
    }

    fn densify<F: Fp>(
        &self,
        _device: &Device<Self>,
        src: &[Itv<F>],
        geom: &ExprGeom<'_>,
        dst: &mut [Itv<F>],
        dst_cols: usize,
    ) {
        if dst.is_empty() {
            return;
        }
        let cols = geom.cols();
        for (r, row) in dst.chunks_mut(dst_cols).enumerate() {
            densify_row(r, &src[r * cols..(r + 1) * cols], geom, row);
        }
    }

    fn residual_merge<F: Fp>(
        &self,
        _device: &Device<Self>,
        a: &[Itv<F>],
        a_geom: &ExprGeom<'_>,
        b: &[Itv<F>],
        b_geom: &ExprGeom<'_>,
        dst: &mut [Itv<F>],
        dst_origins: &[(i32, i32)],
        dst_cols: usize,
        dst_ww: usize,
    ) {
        if dst.is_empty() {
            return;
        }
        let (a_cols, b_cols) = (a_geom.cols(), b_geom.cols());
        for (r, row) in dst.chunks_mut(dst_cols).enumerate() {
            let o = dst_origins[r];
            merge_add_row(r, &a[r * a_cols..(r + 1) * a_cols], a_geom, row, o, dst_ww);
            merge_add_row(r, &b[r * b_cols..(r + 1) * b_cols], b_geom, row, o, dst_ww);
        }
    }

    fn concretize<F: Fp>(
        &self,
        _device: &Device<Self>,
        lo: &[Itv<F>],
        hi: &[Itv<F>],
        cst_lo: &[Itv<F>],
        cst_hi: &[Itv<F>],
        geom: &ExprGeom<'_>,
        bounds_per_seg: &[&[Itv<F>]],
        out: &mut [Itv<F>],
    ) {
        let cols = geom.cols();
        for (r, v) in out.iter_mut().enumerate() {
            *v = concretize_row(
                r,
                &lo[r * cols..(r + 1) * cols],
                &hi[r * cols..(r + 1) * cols],
                cst_lo[r],
                cst_hi[r],
                geom,
                bounds_per_seg[geom.seg[r] as usize],
            );
        }
    }
}
