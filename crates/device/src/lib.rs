//! A simulated GPU device for polyhedral verification kernels.
//!
//! GPUPoly's algorithms (MLSys 2021) are defined over a data-parallel
//! shared-memory machine: a CUDA GPU with a hard device-memory capacity, bulk
//! kernel launches, a parallel prefix-sum used for stream compaction (§4.2),
//! and cutlass-tiled matrix–matrix kernels built around a custom
//! directed-rounding multiply-add (§4.1). This crate reproduces that machine
//! model on the CPU so the verifier's algorithmic structure — dependence-set
//! kernels, row compaction, memory-aware chunking — runs and is measurable
//! without CUDA:
//!
//! * [`Backend`] — the pluggable kernel surface (GEMM with directed
//!   rounding, scan/compaction, row gather, host↔device copies, pooling
//!   policy). [`CpuSimBackend`] is the production CPU simulation,
//!   [`ReferenceBackend`] a naive straight-line oracle for differential
//!   testing; a CUDA/wgpu port implements the same trait and must pass
//!   [`conformance::assert_backend_conformance`].
//! * [`Device`] — a worker pool with *device-memory accounting*: allocations
//!   through [`DeviceBuffer`] are charged against a configurable capacity and
//!   fail with [`DeviceError::OutOfMemory`] when exceeded, which is exactly
//!   the failure mode the paper reports for dense GPU implementations and the
//!   reason for its chunked backsubstitution.
//! * [`Device::par_for`] / [`Device::par_rows`] — bulk kernel launches.
//! * [`scan`] — work-efficient parallel exclusive prefix sum and the
//!   row-compaction primitive of §4.2.
//! * [`gemm`] — tiled interval GEMM kernels (interval×scalar, the paper's
//!   core kernel, plus unsound scalar GEMM for the soundness-overhead
//!   ablation).
//!
//! # Example
//!
//! ```
//! use gpupoly_device::{Device, DeviceConfig};
//!
//! let dev = Device::new(DeviceConfig::default());
//! let mut out = vec![0u32; 1024];
//! dev.par_map_mut(&mut out, |i, v| *v = i as u32 * 2);
//! assert_eq!(out[7], 14);
//! assert!(dev.stats().launches() >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
mod buffer;
pub mod conformance;
mod device;
pub mod gemm;
pub mod scan;

pub use backend::{Backend, CpuSimBackend, ReferenceBackend};
pub use buffer::DeviceBuffer;
pub use device::{Device, DeviceConfig, DeviceError, DeviceStats};
