//! A simulated GPU device for polyhedral verification kernels.
//!
//! GPUPoly's algorithms (MLSys 2021) are defined over a data-parallel
//! shared-memory machine: a CUDA GPU with a hard device-memory capacity, bulk
//! kernel launches, a parallel prefix-sum used for stream compaction (§4.2),
//! and cutlass-tiled matrix–matrix kernels built around a custom
//! directed-rounding multiply-add (§4.1). This crate reproduces that machine
//! model on the CPU so the verifier's algorithmic structure — dependence-set
//! kernels, row compaction, memory-aware chunking — runs and is measurable
//! without CUDA:
//!
//! * [`Backend`] — the pluggable kernel surface, now covering the *whole*
//!   verifier: the GEMM family with directed rounding, scan/compaction,
//!   row gather, the walk-step kernels (GBC transpose conv, bias fold,
//!   ReLU substitution, densify, residual merge, concretize — see
//!   [`kernels`]), and host↔device/device↔device copies plus the pooling
//!   policy. [`CpuSimBackend`] is the production CPU simulation,
//!   [`ReferenceBackend`] a naive straight-line oracle for differential
//!   testing; a CUDA/wgpu port implements the same trait and must pass
//!   [`conformance::assert_backend_conformance`].
//! * [`Device`] — a worker pool with *device-memory accounting*: allocations
//!   through [`DeviceBuffer`] are charged against a configurable capacity and
//!   fail with [`DeviceError::OutOfMemory`] when exceeded, which is exactly
//!   the failure mode the paper reports for dense GPU implementations and the
//!   reason for its chunked backsubstitution. Its [`DeviceStats`] meter
//!   attributes launches, scalar-equivalent flops and bytes moved to every
//!   kernel label.
//! * [`gemm`] / [`scan`] / [`kernels`] — the launch wrappers (dimension
//!   checks + work metering) over the backend's GEMM family, prefix-sum /
//!   compaction primitives (§4.2) and walk-step kernels. All verifier
//!   compute enters the backend through these; there is no host-closure
//!   launch API to bypass them.
//!
//! # Example
//!
//! ```
//! use gpupoly_device::{scan, Device, DeviceConfig};
//!
//! let dev = Device::new(DeviceConfig::default());
//! let (prefix, total) = scan::exclusive_scan(&dev, &[1, 0, 2, 1]);
//! assert_eq!((prefix, total), (vec![0, 1, 1, 3], 4));
//! assert!(dev.stats().launches() >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
mod buffer;
pub mod conformance;
mod device;
pub mod gemm;
pub mod kernels;
mod relax;
pub mod scan;

pub use backend::{Backend, CpuSimBackend, ExprGeom, GbcShape, GemmTile, ReferenceBackend};
pub use buffer::DeviceBuffer;
pub use device::{Device, DeviceConfig, DeviceError, DeviceStats, KernelWork};
pub use relax::ReluRelax;
