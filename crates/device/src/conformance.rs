//! The backend conformance suite.
//!
//! Any [`Backend`] implementation — including a future CUDA/wgpu port —
//! must pass [`assert_backend_conformance`] unmodified. The suite pins the
//! whole kernel contract of the [`crate::backend`] module docs:
//!
//! * **GEMM bit-reproducibility** — every kernel of the GEMM family matches
//!   a straight-line scalar oracle *bit for bit* (ascending-`k`
//!   accumulation with the shared directed-rounding primitives), over a
//!   matrix of shapes that includes empty, single-element, non-square and
//!   tile-boundary cases;
//! * **GEMM soundness** — interval results contain the exact (`f64`)
//!   product;
//! * **scan / compaction / gather exactness** against serial oracles;
//! * **walk-step kernels** — GBC transpose convolution, bias fold, the
//!   ReLU substitution step (including its stable-zero column guarantee),
//!   densify, residual merge and concretize each match an independent
//!   straight-line oracle bit for bit over cuboid/full windows, padding
//!   origins and fused multi-segment batches;
//! * **host↔device and device↔device copies** round-trip bit-exactly;
//! * **launch accounting** — every kernel wrapper records its launch label;
//! * **memory accounting** — allocations charge and release capacity
//!   correctly, out-of-memory is reported (not panicked), and the buffer
//!   pool honors the backend's [`Backend::pooling`] policy.
//!
//! The granular `check_*` functions are public so property tests can drive
//! them with externally generated cases (see `tests/device_props.rs`);
//! `assert_backend_conformance` runs everything over a deterministic
//! internal case matrix.
//!
//! # Example
//!
//! The full run is multi-second work and already executed by
//! `tests/backend_conformance.rs`, so the example only compiles:
//!
//! ```no_run
//! use gpupoly_device::{conformance, Device, DeviceConfig, ReferenceBackend};
//!
//! conformance::assert_backend_conformance(|cfg| Device::new(cfg));
//! conformance::assert_backend_conformance(|cfg| Device::with_backend(ReferenceBackend, cfg));
//! ```

use gpupoly_interval::{round, Fp, Itv};

use crate::backend::{Backend, ExprGeom, GbcShape};
use crate::relax::ReluRelax;
use crate::{gemm, kernels, scan, Device, DeviceBuffer, DeviceConfig, DeviceError};

/// Deterministic splitmix64 stream for generating test data without
/// depending on an RNG crate.
struct Stream(u64);

impl Stream {
    fn new(seed: u64) -> Self {
        Stream(seed ^ 0x9e37_79b9_7f4a_7c15)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[-1, 1)`.
    fn next_f32(&mut self) -> f32 {
        // 24 uniform bits scaled into [0, 1), then mapped to [-1, 1).
        ((self.next_u64() >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
    }

    fn next_range(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound.max(1) as u64) as usize
    }
}

fn bit_eq<F: Fp>(a: Itv<F>, b: Itv<F>) -> bool {
    a.lo.bits() == b.lo.bits() && a.hi.bits() == b.hi.bits()
}

/// Straight-line oracle for the interval×scalar GEMM family: ascending-`k`
/// accumulation with [`Itv::mul_add_f`], starting from `init` (or zero).
/// Exact-zero terms are skipped, as the contract mandates — accumulating
/// them would rewrite a `-0.0` accumulator bound to `+0.0` and diverge
/// from any skipping implementation.
fn oracle_gemm_itv_f<F: Fp>(
    a: &[Itv<F>],
    b: &[F],
    init: Option<&[Itv<F>]>,
    m: usize,
    k: usize,
    n: usize,
) -> Vec<Itv<F>> {
    let mut c = vec![Itv::zero(); m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = init.map_or(Itv::zero(), |c0| c0[i * n + j]);
            for kk in 0..k {
                let aik = a[i * k + kk];
                if aik.lo == F::ZERO && aik.hi == F::ZERO {
                    continue;
                }
                acc = aik.mul_add_f(b[kk * n + j], acc);
            }
            c[i * n + j] = acc;
        }
    }
    c
}

/// Straight-line oracle for the unsound scalar GEMM.
fn oracle_gemm_f_f<F: Fp>(a: &[F], b: &[F], m: usize, k: usize, n: usize) -> Vec<F> {
    let mut c = vec![F::ZERO; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = F::ZERO;
            for kk in 0..k {
                acc = a[i * k + kk].mul_add(b[kk * n + j], acc);
            }
            c[i * n + j] = acc;
        }
    }
    c
}

/// Checks the full GEMM family on one `f32` shape: bit-identical to the
/// scalar oracle, interval results contain the exact `f64` product, and the
/// launch/flop counters advance. Interval inputs mix points, genuinely
/// wide intervals and exact zeros of both signs (which backends must
/// skip), and some `acc` inits are `-0.0` — the inputs that make the
/// mandatory zero-skip observable.
///
/// # Panics
///
/// Panics with a labeled message on any contract violation.
pub fn check_gemm_against_oracle<B: Backend>(
    device: &Device<B>,
    m: usize,
    k: usize,
    n: usize,
    seed: u64,
) {
    let label = device.backend().label();
    let mut s = Stream::new(seed);
    let a: Vec<Itv<f32>> = (0..m * k)
        .map(|_| match s.next_range(6) {
            0 => Itv::zero(),          // exercise the mandatory zero-skip
            1 => Itv::point(-0.0_f32), // negative zero is a zero term too
            2 => {
                let lo = s.next_f32();
                Itv::new(lo, lo + s.next_f32().abs())
            }
            _ => Itv::point(s.next_f32()),
        })
        .collect();
    let b: Vec<f32> = (0..k * n).map(|_| s.next_f32()).collect();

    // gemm_itv_f: bit-identical to the straight-line oracle.
    let mut c = vec![Itv::new(9.0f32, 9.0); m * n]; // poisoned: must be overwritten
    let flops0 = device.stats().flops();
    let launches0 = device.stats().kernel_launches("gemm_itv_f");
    gemm::gemm_itv_f(device, &a, &b, &mut c, m, k, n);
    assert_eq!(
        device.stats().kernel_launches("gemm_itv_f"),
        launches0 + 1,
        "[{label}] gemm_itv_f must record its launch"
    );
    assert!(
        device.stats().flops() - flops0 >= gemm::flops_itv_f(m, k, n),
        "[{label}] gemm_itv_f must account its flops"
    );
    let want = oracle_gemm_itv_f(&a, &b, None, m, k, n);
    for (i, (got, want)) in c.iter().zip(&want).enumerate() {
        assert!(
            bit_eq(*got, *want),
            "[{label}] gemm_itv_f[{i}] ({m}x{k}x{n}): {got} != oracle {want}"
        );
    }

    // Soundness: the interval result contains the exact f64 product of the
    // interval endpoints' midpoints (a point inside every input interval).
    for i in 0..m {
        for j in 0..n {
            let exact: f64 = (0..k)
                .map(|kk| {
                    let av = a[i * k + kk];
                    let mid = (av.lo as f64 + av.hi as f64) / 2.0;
                    mid * b[kk * n + j] as f64
                })
                .sum();
            let got = c[i * n + j];
            assert!(
                (got.lo as f64) <= exact && exact <= (got.hi as f64),
                "[{label}] gemm_itv_f[{i},{j}] {got} misses exact {exact}"
            );
        }
    }

    // gemm_itv_f_acc: bit-identical to the oracle seeded with the init.
    // Some accumulators start at -0.0: the case where skipping vs
    // accumulating a zero term differ bitwise, pinning the mandatory skip.
    let init: Vec<Itv<f32>> = (0..m * n)
        .map(|_| {
            if s.next_range(5) == 0 {
                Itv::point(-0.0_f32)
            } else {
                Itv::point(s.next_f32())
            }
        })
        .collect();
    let mut acc = init.clone();
    gemm::gemm_itv_f_acc(device, &a, &b, &mut acc, m, k, n);
    let want = oracle_gemm_itv_f(&a, &b, Some(&init), m, k, n);
    for (i, (got, want)) in acc.iter().zip(&want).enumerate() {
        assert!(
            bit_eq(*got, *want),
            "[{label}] gemm_itv_f_acc[{i}] ({m}x{k}x{n}): {got} != oracle {want}"
        );
    }

    // gemm_f_f: bit-identical to the oracle.
    let af: Vec<f32> = (0..m * k).map(|_| s.next_f32()).collect();
    let mut cf = vec![9.0f32; m * n];
    gemm::gemm_f_f(device, &af, &b, &mut cf, m, k, n);
    let wantf = oracle_gemm_f_f(&af, &b, m, k, n);
    for (i, (got, want)) in cf.iter().zip(&wantf).enumerate() {
        assert!(
            got.to_bits() == want.to_bits(),
            "[{label}] gemm_f_f[{i}] ({m}x{k}x{n}): {got} != oracle {want}"
        );
    }
}

/// Pins the GEMM blocking rule (see the [`crate::backend`] module docs):
/// several tile geometries — the default, degenerate 1×1 tiles, odd
/// non-divisor tiles, and the maximal micro-kernel — must all produce
/// results bit-identical to the straight-line oracle on tile-boundary and
/// remainder shapes, and steady-state launches on a pool-retaining device
/// must recycle the packed-panel scratch instead of charging fresh bytes.
///
/// `make` builds a device of the backend under test from a configuration
/// (the suite varies [`DeviceConfig::gemm_tile`]). Backends that ignore the
/// tile geometry (like [`crate::ReferenceBackend`]) pass trivially — the
/// check then simply re-pins the oracle on more shapes.
///
/// # Panics
///
/// Panics with a labeled message on any contract violation.
pub fn check_gemm_blocking<B: Backend>(make: &impl Fn(DeviceConfig) -> Device<B>) {
    use crate::backend::GemmTile;
    let tiles = [
        GemmTile::default(),
        // Degenerate: every loop hits its remainder path on every step.
        GemmTile {
            tile_m: 1,
            tile_n: 1,
            mr: 1,
            nr: 1,
        },
        // Odd non-divisor tiles: boundary logic everywhere.
        GemmTile {
            tile_m: 2,
            tile_n: 7,
            mr: 2,
            nr: 3,
        },
        // Maximal register block inside a small panel.
        GemmTile {
            tile_m: 5,
            tile_n: 9,
            mr: GemmTile::MAX_MR,
            nr: GemmTile::MAX_NR,
        },
        // All-zero geometry: must be clamped, not crash.
        GemmTile {
            tile_m: 0,
            tile_n: 0,
            mr: 0,
            nr: 0,
        },
    ];
    // Shapes chosen to land exactly on and just past the tile and
    // micro-kernel boundaries of the geometries above.
    let shapes = [
        (1usize, 1usize, 1usize),
        (3, 5, 7),
        (4, 4, 4),
        (5, 9, 9),
        (6, 10, 11),
        (9, 16, 130),
        (2, 3, 519), // crosses the default 512-wide panel, remainder 7
    ];
    for (ti, tile) in tiles.iter().enumerate() {
        let device = make(DeviceConfig::new().workers(3).gemm_tile(*tile));
        let label = device.backend().label();
        device.buffer_pool_retain();
        for (ci, &(m, k, n)) in shapes.iter().enumerate() {
            check_gemm_against_oracle(&device, m, k, n, (ti * 101 + ci) as u64);
        }
        // Steady state: a repeated shape must recycle its panel scratch
        // through the buffer pool — bytes_allocated stays flat per launch.
        let (m, k, n) = (6, 10, 11);
        check_gemm_against_oracle(&device, m, k, n, 4242);
        let bytes0 = device.stats().bytes_allocated();
        check_gemm_against_oracle(&device, m, k, n, 4243);
        if device.buffer_pool_active() {
            assert_eq!(
                device.stats().bytes_allocated(),
                bytes0,
                "[{label}] steady-state GEMM launches must recycle panel scratch ({tile:?})"
            );
        }
        device.buffer_pool_release();
        assert_eq!(
            device.memory_in_use(),
            0,
            "[{label}] GEMM panel scratch must be returned on pool release"
        );
    }
}

/// Checks [`scan::exclusive_scan`] against the serial oracle on one input.
///
/// # Panics
///
/// Panics with a labeled message on any contract violation.
pub fn check_scan_against_oracle<B: Backend>(device: &Device<B>, xs: &[u32]) {
    let label = device.backend().label();
    let launches0 = device.stats().kernel_launches("exclusive_scan");
    let (got, total) = scan::exclusive_scan(device, xs);
    assert_eq!(
        device.stats().kernel_launches("exclusive_scan"),
        launches0 + 1,
        "[{label}] exclusive_scan must record its launch"
    );
    let mut acc = 0u32;
    for (i, &x) in xs.iter().enumerate() {
        assert_eq!(
            got[i],
            acc,
            "[{label}] exclusive_scan[{i}] wrong (n={})",
            xs.len()
        );
        acc += x;
    }
    assert_eq!(got.len(), xs.len(), "[{label}] scan length mismatch");
    assert_eq!(total, acc, "[{label}] scan total mismatch");
}

/// Checks compaction and row gather against serial oracles on one keep
/// mask: `compact_indices` equals the filtered index list, `compact_rows`
/// is a stable row filter, and `gather_rows_into` handles repeated and
/// out-of-order indices.
///
/// # Panics
///
/// Panics with a labeled message on any contract violation.
pub fn check_compaction_against_oracle<B: Backend>(
    device: &Device<B>,
    keep: &[bool],
    row_len: usize,
) {
    let label = device.backend().label();
    let idx = scan::compact_indices(device, keep);
    let want: Vec<u32> = keep
        .iter()
        .enumerate()
        .filter_map(|(i, &k)| k.then_some(i as u32))
        .collect();
    assert_eq!(idx, want, "[{label}] compact_indices mismatch");

    let row_len = row_len.max(1);
    let src: Vec<u64> = (0..keep.len() * row_len).map(|i| i as u64).collect();
    let (mat, idx2) = scan::compact_rows(device, &src, row_len, keep);
    assert_eq!(idx2, want, "[{label}] compact_rows index mismatch");
    for (j, &orig) in idx2.iter().enumerate() {
        assert_eq!(
            &mat[j * row_len..(j + 1) * row_len],
            &src[orig as usize * row_len..(orig as usize + 1) * row_len],
            "[{label}] compact_rows row {j} content mismatch"
        );
    }

    // Gather with repeated, out-of-order indices (a permutation the
    // compaction path never produces but the gather contract allows).
    if !keep.is_empty() {
        let n = keep.len() as u32;
        let index: Vec<u32> = (0..keep.len().min(17) as u32)
            .map(|i| (i * 7 + 3) % n)
            .collect();
        let mut dst = vec![0u64; index.len() * row_len];
        scan::gather_rows_into(device, &src, row_len, &index, &mut dst);
        for (j, &orig) in index.iter().enumerate() {
            assert_eq!(
                &dst[j * row_len..(j + 1) * row_len],
                &src[orig as usize * row_len..(orig as usize + 1) * row_len],
                "[{label}] gather_rows row {j} mismatch"
            );
        }
    }
}

/// A deterministic test geometry for the walk-step kernels: `rows` cuboid
/// windows (`win_h × win_w × chans`) over a `shape_h × shape_w × chans`
/// frontier, with origins spread across the extent including negative
/// (padding) positions, and rows alternating between `segments` query
/// segments.
struct GeomCase {
    win_h: usize,
    win_w: usize,
    shape_h: usize,
    shape_w: usize,
    chans: usize,
    origins: Vec<(i32, i32)>,
    seg: Vec<u32>,
}

impl GeomCase {
    #[allow(clippy::too_many_arguments)]
    fn new(
        rows: usize,
        win_h: usize,
        win_w: usize,
        shape_h: usize,
        shape_w: usize,
        chans: usize,
        segments: usize,
        s: &mut Stream,
    ) -> Self {
        let origins = (0..rows)
            .map(|_| {
                (
                    s.next_range(shape_h + win_h) as i32 - win_h as i32,
                    s.next_range(shape_w + win_w) as i32 - win_w as i32,
                )
            })
            .collect();
        let seg = (0..rows).map(|r| (r % segments.max(1)) as u32).collect();
        Self {
            win_h,
            win_w,
            shape_h,
            shape_w,
            chans,
            origins,
            seg,
        }
    }

    fn geom(&self) -> ExprGeom<'_> {
        ExprGeom {
            win_h: self.win_h,
            win_w: self.win_w,
            shape_h: self.shape_h,
            shape_w: self.shape_w,
            chans: self.chans,
            origins: &self.origins,
            seg: &self.seg,
        }
    }

    fn rows(&self) -> usize {
        self.origins.len()
    }

    fn cols(&self) -> usize {
        self.win_h * self.win_w * self.chans
    }

    fn frontier_len(&self) -> usize {
        self.shape_h * self.shape_w * self.chans
    }

    /// A coefficient plane honoring the zero-on-virtual invariant, mixing
    /// exact zeros (both signs), stable-sign and straddling intervals.
    fn plane(&self, s: &mut Stream) -> Vec<Itv<f32>> {
        let g = self.geom();
        let mut plane = vec![Itv::zero(); self.rows() * self.cols()];
        for r in 0..self.rows() {
            for i in 0..self.win_h {
                for j in 0..self.win_w {
                    if !g.is_real(r, i, j) {
                        continue; // virtual taps stay exactly zero
                    }
                    let base = r * self.cols() + (i * self.win_w + j) * self.chans;
                    for c in 0..self.chans {
                        plane[base + c] = match s.next_range(6) {
                            0 => Itv::zero(),
                            1 => Itv::point(-0.0_f32),
                            2 => {
                                let v = s.next_f32().abs() + 1e-3;
                                Itv::new(-v, v * 0.5) // straddles zero
                            }
                            3 => Itv::point(-(s.next_f32().abs()) - 1e-3),
                            _ => Itv::point(s.next_f32().abs() + 1e-3),
                        };
                    }
                }
            }
        }
        plane
    }

    fn csts(&self, s: &mut Stream) -> Vec<Itv<f32>> {
        (0..self.rows())
            .map(|_| {
                if s.next_range(5) == 0 {
                    Itv::point(-0.0_f32)
                } else {
                    Itv::point(s.next_f32())
                }
            })
            .collect()
    }
}

fn assert_planes_bit_eq<F: Fp>(label: &str, kernel: &str, got: &[Itv<F>], want: &[Itv<F>]) {
    assert_eq!(got.len(), want.len(), "[{label}] {kernel} length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(bit_eq(*g, *w), "[{label}] {kernel}[{i}]: {g} != oracle {w}");
    }
}

/// Checks the GBC transpose-convolution kernel on one deterministic
/// geometry: bit-identical to a straight-line serial oracle that walks the
/// window, filter taps and channels exactly as Algorithm 1 prescribes
/// (skipping virtual positions and exact-zero coefficients), and launch +
/// flop accounting advances under the launch label.
///
/// # Panics
///
/// Panics with a labeled message on any contract violation.
pub fn check_gbc_against_oracle<B: Backend>(device: &Device<B>, seed: u64) {
    let label = device.backend().label();
    let mut s = Stream::new(seed);
    let conv = GbcShape {
        kh: 1 + s.next_range(3),
        kw: 1 + s.next_range(3),
        sh: 1 + s.next_range(2),
        sw: 1 + s.next_range(2),
        cout: 1 + s.next_range(3),
        cin: 1 + s.next_range(3),
        in_h: 4 + s.next_range(4),
        in_w: 4 + s.next_range(4),
    };
    let rows = 1 + s.next_range(7);
    let (wh, ww) = (1 + s.next_range(3), 1 + s.next_range(3));
    let case = GeomCase::new(rows, wh, ww, 6, 6, conv.cout, 1, &mut s);
    let src = case.plane(&mut s);
    let weight: Vec<f32> = (0..conv.kh * conv.kw * conv.cout * conv.cin)
        .map(|_| s.next_f32())
        .collect();
    let dst_win = ((wh - 1) * conv.sh + conv.kh, (ww - 1) * conv.sw + conv.kw);
    let dst_cols = dst_win.0 * dst_win.1 * conv.cin;
    let dst_origins: Vec<(i32, i32)> = case
        .origins
        .iter()
        .map(|&(oh, ow)| (oh * conv.sh as i32 - 1, ow * conv.sw as i32 - 1))
        .collect();

    let mut dst = vec![Itv::zero(); rows * dst_cols];
    let launches0 = device.stats().kernel_launches("gbc_lo");
    let flops0 = device.stats().kernel_flops("gbc_lo");
    kernels::gbc(
        device,
        "gbc_lo",
        &src,
        &case.geom(),
        &weight,
        &conv,
        &mut dst,
        &dst_origins,
        dst_cols,
        dst_win.1,
    );
    assert_eq!(
        device.stats().kernel_launches("gbc_lo"),
        launches0 + 1,
        "[{label}] gbc must record its launch"
    );
    assert!(
        device.stats().kernel_flops("gbc_lo") > flops0,
        "[{label}] gbc must meter its flops"
    );

    // Independent straight-line oracle.
    let g = case.geom();
    let mut want = vec![Itv::zero(); rows * dst_cols];
    for r in 0..rows {
        let row = &src[r * case.cols()..(r + 1) * case.cols()];
        let (dst_oh, dst_ow) = dst_origins[r];
        let out = &mut want[r * dst_cols..(r + 1) * dst_cols];
        for i in 0..wh {
            for j in 0..ww {
                if !g.is_real(r, i, j) {
                    continue;
                }
                let sbase = (i * ww + j) * conv.cout;
                for f in 0..conv.kh {
                    let a = i * conv.sh + f;
                    let dh = dst_oh + a as i32;
                    if dh < 0 || dh as usize >= conv.in_h {
                        continue;
                    }
                    for gg in 0..conv.kw {
                        let b = j * conv.sw + gg;
                        let dw = dst_ow + b as i32;
                        if dw < 0 || dw as usize >= conv.in_w {
                            continue;
                        }
                        let obase = (a * dst_win.1 + b) * conv.cin;
                        for d in 0..conv.cout {
                            let m = row[sbase + d];
                            if m.lo == 0.0 && m.hi == 0.0 {
                                continue;
                            }
                            let wbase = conv.widx(f, gg, d, 0);
                            for c in 0..conv.cin {
                                out[obase + c] = m.mul_add_f(weight[wbase + c], out[obase + c]);
                            }
                        }
                    }
                }
            }
        }
    }
    assert_planes_bit_eq(label, "gbc", &dst, &want);
}

/// Checks the bias-fold kernel on one deterministic geometry against the
/// serial no-skip ascending fold.
///
/// # Panics
///
/// Panics with a labeled message on any contract violation.
pub fn check_bias_fold_against_oracle<B: Backend>(device: &Device<B>, seed: u64) {
    let label = device.backend().label();
    let mut s = Stream::new(seed ^ 0x5ca1e);
    let case = GeomCase::new(
        1 + s.next_range(6),
        1 + s.next_range(3),
        1 + s.next_range(3),
        4,
        4,
        1 + s.next_range(3),
        1,
        &mut s,
    );
    let plane = case.plane(&mut s);
    let src_cst = case.csts(&mut s);
    let bias: Vec<f32> = (0..case.chans).map(|_| s.next_f32()).collect();
    let mut out_cst = vec![Itv::point(9.0_f32); case.rows()]; // poisoned
    let launches0 = device.stats().kernel_launches("bias_fold_lo");
    kernels::bias_fold(
        device,
        "bias_fold_lo",
        &plane,
        &case.geom(),
        &bias,
        &src_cst,
        &mut out_cst,
    );
    assert_eq!(
        device.stats().kernel_launches("bias_fold_lo"),
        launches0 + 1,
        "[{label}] bias_fold must record its launch"
    );
    let g = case.geom();
    for r in 0..case.rows() {
        let row = &plane[r * case.cols()..(r + 1) * case.cols()];
        let mut acc = src_cst[r];
        for i in 0..case.win_h {
            for j in 0..case.win_w {
                if !g.is_real(r, i, j) {
                    continue;
                }
                let base = (i * case.win_w + j) * case.chans;
                for c in 0..case.chans {
                    // No zero-skip: the fold accumulates every real term.
                    acc = row[base + c].mul_add_f(bias[(base + c) % bias.len()], acc);
                }
            }
        }
        assert!(
            bit_eq(out_cst[r], acc),
            "[{label}] bias_fold[{r}]: {} != oracle {acc}",
            out_cst[r]
        );
    }
}

/// Checks the ReLU substitution kernel (both plane variants) on one
/// deterministic multi-segment geometry against a serial oracle applying
/// the DeepPoly coefficient selection per row/segment.
///
/// # Panics
///
/// Panics with a labeled message on any contract violation.
pub fn check_relu_step_against_oracle<B: Backend>(device: &Device<B>, seed: u64) {
    let label = device.backend().label();
    let mut s = Stream::new(seed ^ 0x0e1f);
    let segments = 1 + s.next_range(3);
    let case = GeomCase::new(
        1 + s.next_range(8),
        1 + s.next_range(3),
        1 + s.next_range(3),
        4,
        4,
        1 + s.next_range(2),
        segments,
        &mut s,
    );
    // Per-segment input bounds spanning stable-positive, stable-negative
    // (the stable-zero columns compaction keys on) and unstable neurons.
    let bounds: Vec<Vec<Itv<f32>>> = (0..segments)
        .map(|_| {
            (0..case.frontier_len())
                .map(|_| match s.next_range(4) {
                    0 => {
                        let v = s.next_f32().abs() + 1e-3;
                        Itv::new(v * 0.5, v) // stable positive
                    }
                    1 => {
                        let v = s.next_f32().abs() + 1e-3;
                        Itv::new(-v, -v * 0.5) // stable negative -> zero relax
                    }
                    _ => {
                        let v = s.next_f32().abs() + 1e-3;
                        Itv::new(-v * 0.7, v) // unstable
                    }
                })
                .collect()
        })
        .collect();
    let relax: Vec<Vec<ReluRelax<f32>>> = bounds.iter().map(|b| ReluRelax::layer(b)).collect();
    let out_bounds: Vec<Vec<Itv<f32>>> = bounds
        .iter()
        .map(|b| {
            b.iter()
                .map(|x| Itv::new(x.lo.max(0.0), x.hi.max(0.0)))
                .collect()
        })
        .collect();
    let relax_refs: Vec<&[ReluRelax<f32>]> = relax.iter().map(Vec::as_slice).collect();
    let ob_refs: Vec<&[Itv<f32>]> = out_bounds.iter().map(Vec::as_slice).collect();

    for upper in [false, true] {
        let klabel: &'static str = if upper {
            "relu_step_hi"
        } else {
            "relu_step_lo"
        };
        let plane0 = case.plane(&mut s);
        let cst0 = case.csts(&mut s);
        let mut plane = plane0.clone();
        let mut cst = cst0.clone();
        let launches0 = device.stats().kernel_launches(klabel);
        kernels::relu_step(
            device,
            klabel,
            &mut plane,
            &mut cst,
            &case.geom(),
            &relax_refs,
            &ob_refs,
            upper,
        );
        assert_eq!(
            device.stats().kernel_launches(klabel),
            launches0 + 1,
            "[{label}] relu_step must record its launch"
        );

        // Serial oracle with the original lower/upper branch spelling.
        let g = case.geom();
        let mut wplane = plane0;
        let mut wcst = cst0;
        for r in 0..case.rows() {
            let rx_tab = &relax[case.seg[r] as usize];
            let ob = &out_bounds[case.seg[r] as usize];
            let row = &mut wplane[r * case.cols()..(r + 1) * case.cols()];
            let c0 = &mut wcst[r];
            for i in 0..case.win_h {
                for j in 0..case.win_w {
                    if !g.is_real(r, i, j) {
                        continue;
                    }
                    let nbase = g.neuron_at(r, i, j);
                    let base = (i * case.win_w + j) * case.chans;
                    for c in 0..case.chans {
                        let a = row[base + c];
                        if a.lo == 0.0 && a.hi == 0.0 {
                            continue;
                        }
                        let rx = &rx_tab[nbase + c];
                        if a.lo >= 0.0 {
                            let (sl, ic) = if upper {
                                (rx.gamma, rx.delta)
                            } else {
                                (rx.alpha, rx.beta)
                            };
                            row[base + c] = a.mul(sl);
                            *c0 = c0.add(a.mul(ic));
                        } else if a.hi <= 0.0 {
                            let (sl, ic) = if upper {
                                (rx.alpha, rx.beta)
                            } else {
                                (rx.gamma, rx.delta)
                            };
                            row[base + c] = a.mul(sl);
                            *c0 = c0.add(a.mul(ic));
                        } else {
                            let hull = a.mul(ob[nbase + c]);
                            row[base + c] = Itv::zero();
                            let p = if upper { hull.hi } else { hull.lo };
                            *c0 = c0.add(Itv::point(p));
                        }
                    }
                }
            }
        }
        assert_planes_bit_eq(label, klabel, &plane, &wplane);
        assert_planes_bit_eq(label, klabel, &cst, &wcst);

        // Stable-zero guarantee: columns of stably-negative neurons (zero
        // relaxation in every segment) are exact zeros after the step —
        // the invariant stable-zero column compaction builds on.
        for n in 0..case.frontier_len() {
            if !relax.iter().all(|t| t[n].is_zero()) {
                continue;
            }
            for r in 0..case.rows() {
                for i in 0..case.win_h {
                    for j in 0..case.win_w {
                        if !g.is_real(r, i, j) || g.neuron_at(r, i, j) > n {
                            continue;
                        }
                        let c = n - g.neuron_at(r, i, j);
                        if c >= case.chans {
                            continue;
                        }
                        let v = plane[r * case.cols() + (i * case.win_w + j) * case.chans + c];
                        assert!(
                            v.lo == 0.0 && v.hi == 0.0,
                            "[{label}] {klabel}: stably-dead neuron {n} left a \
                             non-zero column entry {v} in row {r}"
                        );
                    }
                }
            }
        }
    }
}

/// Checks the densify scatter against a serial oracle.
///
/// # Panics
///
/// Panics with a labeled message on any contract violation.
pub fn check_densify_against_oracle<B: Backend>(device: &Device<B>, seed: u64) {
    let label = device.backend().label();
    let mut s = Stream::new(seed ^ 0xd15f);
    let case = GeomCase::new(
        1 + s.next_range(7),
        1 + s.next_range(3),
        1 + s.next_range(3),
        4,
        5,
        1 + s.next_range(3),
        1,
        &mut s,
    );
    let src = case.plane(&mut s);
    let dst_cols = case.frontier_len();
    let mut dst = vec![Itv::zero(); case.rows() * dst_cols];
    let launches0 = device.stats().kernel_launches("densify_lo");
    kernels::densify(device, "densify_lo", &src, &case.geom(), &mut dst, dst_cols);
    assert_eq!(
        device.stats().kernel_launches("densify_lo"),
        launches0 + 1,
        "[{label}] densify must record its launch"
    );
    let g = case.geom();
    let mut want = vec![Itv::zero(); case.rows() * dst_cols];
    for r in 0..case.rows() {
        for i in 0..case.win_h {
            for j in 0..case.win_w {
                if !g.is_real(r, i, j) {
                    continue;
                }
                let nbase = g.neuron_at(r, i, j);
                let base = (i * case.win_w + j) * case.chans;
                for c in 0..case.chans {
                    want[r * dst_cols + nbase + c] = src[r * case.cols() + base + c];
                }
            }
        }
    }
    assert_planes_bit_eq(label, "densify", &dst, &want);
}

/// Checks the residual-merge accumulation against a serial oracle on two
/// branches with different windows and origins.
///
/// # Panics
///
/// Panics with a labeled message on any contract violation.
#[allow(clippy::needless_range_loop)]
pub fn check_residual_merge_against_oracle<B: Backend>(device: &Device<B>, seed: u64) {
    let label = device.backend().label();
    let mut s = Stream::new(seed ^ 0x3e53);
    let rows = 1 + s.next_range(6);
    let chans = 1 + s.next_range(2);
    let a_case = GeomCase::new(
        rows,
        1 + s.next_range(3),
        1 + s.next_range(3),
        4,
        4,
        chans,
        1,
        &mut s,
    );
    let mut b_case = GeomCase::new(
        rows,
        1 + s.next_range(3),
        1 + s.next_range(3),
        4,
        4,
        chans,
        1,
        &mut s,
    );
    b_case.seg = a_case.seg.clone();
    let a = a_case.plane(&mut s);
    let b = b_case.plane(&mut s);
    // Union geometry exactly as `ExprBatch::merge` computes it.
    let mut dst_origins = Vec::with_capacity(rows);
    let (mut uw_h, mut uw_w) = (0usize, 0usize);
    for r in 0..rows {
        let (ah, aw) = a_case.origins[r];
        let (bh, bw) = b_case.origins[r];
        let oh = ah.min(bh);
        let ow = aw.min(bw);
        uw_h = uw_h.max(((ah + a_case.win_h as i32).max(bh + b_case.win_h as i32) - oh) as usize);
        uw_w = uw_w.max(((aw + a_case.win_w as i32).max(bw + b_case.win_w as i32) - ow) as usize);
        dst_origins.push((oh, ow));
    }
    let dst_cols = uw_h * uw_w * chans;
    let mut dst = vec![Itv::zero(); rows * dst_cols];
    let launches0 = device.stats().kernel_launches("residual_merge_lo");
    kernels::residual_merge(
        device,
        "residual_merge_lo",
        &a,
        &a_case.geom(),
        &b,
        &b_case.geom(),
        &mut dst,
        &dst_origins,
        dst_cols,
        uw_w,
    );
    assert_eq!(
        device.stats().kernel_launches("residual_merge_lo"),
        launches0 + 1,
        "[{label}] residual_merge must record its launch"
    );
    let mut want = vec![Itv::zero(); rows * dst_cols];
    for (case, plane) in [(&a_case, &a), (&b_case, &b)] {
        for r in 0..rows {
            let (so_h, so_w) = case.origins[r];
            let (mo_h, mo_w) = dst_origins[r];
            let dh = (so_h - mo_h) as usize;
            let dw = (so_w - mo_w) as usize;
            for i in 0..case.win_h {
                for j in 0..case.win_w {
                    let dbase = r * dst_cols + ((i + dh) * uw_w + (j + dw)) * chans;
                    let sbase = r * case.cols() + (i * case.win_w + j) * chans;
                    for c in 0..chans {
                        let v = plane[sbase + c];
                        if !(v.lo == 0.0 && v.hi == 0.0) {
                            want[dbase + c] = want[dbase + c].add(v);
                        }
                    }
                }
            }
        }
    }
    assert_planes_bit_eq(label, "residual_merge", &dst, &want);
}

/// Checks candidate concretization against a serial oracle on a
/// multi-segment geometry (each row substitutes its own segment's bounds).
///
/// # Panics
///
/// Panics with a labeled message on any contract violation.
pub fn check_concretize_against_oracle<B: Backend>(device: &Device<B>, seed: u64) {
    let label = device.backend().label();
    let mut s = Stream::new(seed ^ 0xc0c0);
    let segments = 1 + s.next_range(3);
    let case = GeomCase::new(
        1 + s.next_range(8),
        1 + s.next_range(3),
        1 + s.next_range(3),
        4,
        4,
        1 + s.next_range(2),
        segments,
        &mut s,
    );
    let lo = case.plane(&mut s);
    let hi = case.plane(&mut s);
    let cst_lo = case.csts(&mut s);
    let cst_hi = case.csts(&mut s);
    let bounds: Vec<Vec<Itv<f32>>> = (0..segments)
        .map(|_| {
            (0..case.frontier_len())
                .map(|_| {
                    let l = s.next_f32();
                    Itv::new(l, l + s.next_f32().abs())
                })
                .collect()
        })
        .collect();
    let bref: Vec<&[Itv<f32>]> = bounds.iter().map(Vec::as_slice).collect();
    let mut out = vec![Itv::point(9.0_f32); case.rows()]; // poisoned
    let launches0 = device.stats().kernel_launches("concretize");
    kernels::concretize(
        device,
        &lo,
        &hi,
        &cst_lo,
        &cst_hi,
        &case.geom(),
        &bref,
        &mut out,
    );
    assert_eq!(
        device.stats().kernel_launches("concretize"),
        launches0 + 1,
        "[{label}] concretize must record its launch"
    );
    let g = case.geom();
    for r in 0..case.rows() {
        let b = &bounds[case.seg[r] as usize];
        let lo_row = &lo[r * case.cols()..(r + 1) * case.cols()];
        let hi_row = &hi[r * case.cols()..(r + 1) * case.cols()];
        let mut l = cst_lo[r].lo;
        let mut h = cst_hi[r].hi;
        for i in 0..case.win_h {
            for j in 0..case.win_w {
                if !g.is_real(r, i, j) {
                    continue;
                }
                let base = (i * case.win_w + j) * case.chans;
                let nbase = g.neuron_at(r, i, j);
                for c in 0..case.chans {
                    let bb = b[nbase + c];
                    let a = lo_row[base + c];
                    if !(a.lo == 0.0 && a.hi == 0.0) {
                        l = round::add_down(l, a.mul(bb).lo);
                    }
                    let a = hi_row[base + c];
                    if !(a.lo == 0.0 && a.hi == 0.0) {
                        h = round::add_up(h, a.mul(bb).hi);
                    }
                }
            }
        }
        let want = Itv {
            lo: l,
            hi: h.max(l),
        };
        assert!(
            bit_eq(out[r], want),
            "[{label}] concretize[{r}]: {} != oracle {want}",
            out[r]
        );
    }
}

/// The device→device copy hook must round-trip bit-exactly and record its
/// launch label.
fn check_dtod<B: Backend>(device: &Device<B>) {
    let label = device.backend().label();
    let mut s = Stream::new(97);
    for len in [0usize, 1, 513] {
        let src: Vec<f32> = (0..len).map(|_| s.next_f32()).collect();
        let mut dst = vec![0.0f32; len];
        let launches0 = device.stats().kernel_launches("dtod_test");
        kernels::dtod(device, "dtod_test", &src, &mut dst);
        assert_eq!(
            device.stats().kernel_launches("dtod_test"),
            launches0 + 1,
            "[{label}] dtod must record its launch"
        );
        for (i, (a, b)) in src.iter().zip(&dst).enumerate() {
            assert!(
                a.to_bits() == b.to_bits(),
                "[{label}] dtod corrupted element {i}"
            );
        }
    }
}

/// Host↔device copies round-trip bit-exactly through [`DeviceBuffer`],
/// including the backend's explicit [`Backend::htod`] / [`Backend::dtoh`]
/// hooks.
fn check_copies<B: Backend>(device: &Device<B>) {
    let label = device.backend().label();
    let mut s = Stream::new(41);
    for len in [0usize, 1, 7, 1024] {
        let host: Vec<f32> = (0..len).map(|_| s.next_f32()).collect();
        let buf = DeviceBuffer::from_slice(device, &host).expect("upload");
        let mut back = vec![0.0f32; len];
        buf.copy_to_host(&mut back); // dtoh hook
        for (i, (a, b)) in host.iter().zip(&back).enumerate() {
            assert!(
                a.to_bits() == b.to_bits(),
                "[{label}] htod/dtoh round-trip corrupted element {i}"
            );
        }
        let down = buf.into_vec();
        assert_eq!(down.len(), len, "[{label}] into_vec length");
    }

    // The htod hook proper only runs when uploading into *existing* device
    // storage, i.e. on a buffer-pool hit — force that path on pooling
    // backends (on non-pooling backends every upload stages fresh storage
    // and there is no htod call site to check).
    if device.backend().pooling() {
        device.buffer_pool_retain();
        {
            let _warm = DeviceBuffer::<f32, B>::zeroed(device, 256).expect("warm");
        }
        assert_eq!(
            device.buffer_pool_bytes(),
            256 * 4,
            "[{label}] warmup buffer must be shelved"
        );
        let host: Vec<f32> = (0..256).map(|_| s.next_f32()).collect();
        let hits0 = device.stats().pool_hits();
        let buf = DeviceBuffer::from_slice(device, &host).expect("recycled upload");
        assert_eq!(
            device.stats().pool_hits(),
            hits0 + 1,
            "[{label}] recycled upload must be a pool hit (htod path)"
        );
        for (i, (a, b)) in host.iter().zip(buf.as_slice()).enumerate() {
            assert!(
                a.to_bits() == b.to_bits(),
                "[{label}] htod into recycled storage corrupted element {i}"
            );
        }
        drop(buf);
        device.buffer_pool_release();
    }
}

/// Allocation accounting and the backend's pooling policy.
fn check_memory_accounting<B: Backend>(make: &impl Fn(DeviceConfig) -> Device<B>) {
    let device = make(DeviceConfig::new().workers(2).memory_capacity(4096));
    let label = device.backend().label();
    let base = device.memory_in_use();
    {
        let a = DeviceBuffer::<u8, B>::zeroed(&device, 1000).expect("fits");
        assert_eq!(
            device.memory_in_use(),
            base + 1000,
            "[{label}] allocation must charge capacity"
        );
        // Over-capacity allocation errors without corrupting accounting.
        match DeviceBuffer::<u8, B>::zeroed(&device, 8192) {
            Err(DeviceError::OutOfMemory {
                requested,
                capacity,
                ..
            }) => {
                assert_eq!((requested, capacity), (8192, 4096), "[{label}] OOM fields");
            }
            Ok(_) => panic!("[{label}] over-capacity allocation must fail"),
        }
        assert_eq!(
            device.memory_in_use(),
            base + 1000,
            "[{label}] failed allocation must not leak charge"
        );
        drop(a);
    }
    assert_eq!(
        device.memory_in_use(),
        base,
        "[{label}] drop must release the charge"
    );
    assert!(device.peak_memory() >= 1000, "[{label}] peak tracks highs");

    // Pooling policy: shelve-and-reuse when the backend supports pooling,
    // free-on-drop when it does not. Either way retain/release balance and
    // all memory returns to the device.
    let pooling = device.backend().pooling();
    device.buffer_pool_retain();
    assert_eq!(
        device.buffer_pool_active(),
        pooling,
        "[{label}] pool activity must follow Backend::pooling()"
    );
    {
        let _a = DeviceBuffer::<u64, B>::zeroed(&device, 128).expect("fits");
    }
    if pooling {
        assert_eq!(
            device.buffer_pool_bytes(),
            128 * 8,
            "[{label}] dropped pooled buffer must be shelved"
        );
        let bytes0 = device.stats().bytes_allocated();
        {
            let _b = DeviceBuffer::<u64, B>::zeroed(&device, 128).expect("fits");
        }
        assert_eq!(
            device.stats().bytes_allocated(),
            bytes0,
            "[{label}] same-size realloc must be served by the pool"
        );
        assert!(
            device.stats().pool_hits() >= 1,
            "[{label}] pool hit counted"
        );
    } else {
        assert_eq!(
            device.buffer_pool_bytes(),
            0,
            "[{label}] non-pooling backend must never shelve"
        );
        assert_eq!(
            device.memory_in_use(),
            0,
            "[{label}] non-pooling backend frees on drop"
        );
    }
    device.buffer_pool_release();
    assert_eq!(
        device.memory_in_use(),
        0,
        "[{label}] final release must return all memory"
    );
    assert_eq!(device.buffer_pool_bytes(), 0, "[{label}] pool drained");
}

/// GEMM/scan shape matrix: the edge cases every backend must get right plus
/// a deterministic spread of irregular shapes.
fn shape_matrix() -> Vec<(usize, usize, usize)> {
    let mut shapes = vec![
        (0, 0, 0), // fully empty
        (1, 1, 1), // single element
        (1, 0, 1), // empty inner dimension: result is exactly zero
        (2, 0, 3),
        (0, 4, 5),   // empty output
        (3, 1, 1),   // degenerate columns
        (1, 7, 1),   // dot product
        (4, 4, 4),   // small square
        (5, 17, 9),  // non-square
        (2, 3, 519), // crosses the CPU-sim tile boundary (512)
    ];
    let mut s = Stream::new(7);
    for _ in 0..12 {
        shapes.push((
            s.next_range(6) + 1,
            s.next_range(23) + 1,
            s.next_range(19) + 1,
        ));
    }
    shapes
}

/// Runs the full conformance suite against a backend.
///
/// `make` builds a device of the backend under test from a configuration
/// (worker counts and memory caps vary across the suite). Passing this
/// suite is the admission requirement for wiring a backend into
/// `gpupoly_core::Engine`; see the [`crate::backend`] module docs for the
/// contract being enforced.
///
/// # Panics
///
/// Panics with a labeled, actionable message on the first violation.
pub fn assert_backend_conformance<B: Backend>(make: impl Fn(DeviceConfig) -> Device<B>) {
    // Kernels must behave identically at every worker count.
    for workers in [1usize, 3] {
        let device = make(DeviceConfig::new().workers(workers));
        for (case, &(m, k, n)) in shape_matrix().iter().enumerate() {
            check_gemm_against_oracle(&device, m, k, n, case as u64 * 1013 + workers as u64);
        }
        for n in [0usize, 1, 2, 63, 64, 65, 1000, 4097] {
            let xs: Vec<u32> = (0..n).map(|i| ((i * 2654435761) % 5) as u32).collect();
            check_scan_against_oracle(&device, &xs);
            let keep: Vec<bool> = (0..n).map(|i| (i * 31) % 3 != 1).collect();
            check_compaction_against_oracle(&device, &keep, n % 7);
        }
        // All-false and all-true masks.
        check_compaction_against_oracle(&device, &[false; 9], 2);
        check_compaction_against_oracle(&device, &[true; 9], 2);
        // The walk-step kernel surface: every promoted kernel against its
        // independent serial oracle, over a deterministic geometry spread
        // (cuboid and full windows, negative origins, fused segments).
        for case in 0..6u64 {
            let seed = case * 7919 + workers as u64;
            check_gbc_against_oracle(&device, seed);
            check_bias_fold_against_oracle(&device, seed);
            check_relu_step_against_oracle(&device, seed);
            check_densify_against_oracle(&device, seed);
            check_residual_merge_against_oracle(&device, seed);
            check_concretize_against_oracle(&device, seed);
        }
        check_dtod(&device);
        check_copies(&device);
        assert!(
            device.stats().launches() > 0,
            "[{}] kernels must record launches",
            device.backend().label()
        );
    }
    check_gemm_blocking(&make);
    check_memory_accounting(&make);
}
