//! The backend conformance suite.
//!
//! Any [`Backend`] implementation — including a future CUDA/wgpu port —
//! must pass [`assert_backend_conformance`] unmodified. The suite pins the
//! whole kernel contract of the [`crate::backend`] module docs:
//!
//! * **GEMM bit-reproducibility** — every kernel of the GEMM family matches
//!   a straight-line scalar oracle *bit for bit* (ascending-`k`
//!   accumulation with the shared directed-rounding primitives), over a
//!   matrix of shapes that includes empty, single-element, non-square and
//!   tile-boundary cases;
//! * **GEMM soundness** — interval results contain the exact (`f64`)
//!   product;
//! * **scan / compaction / gather exactness** against serial oracles;
//! * **host↔device copies** round-trip bit-exactly;
//! * **launch accounting** — every kernel wrapper records its launch label;
//! * **memory accounting** — allocations charge and release capacity
//!   correctly, out-of-memory is reported (not panicked), and the buffer
//!   pool honors the backend's [`Backend::pooling`] policy.
//!
//! The granular `check_*` functions are public so property tests can drive
//! them with externally generated cases (see `tests/device_props.rs`);
//! `assert_backend_conformance` runs everything over a deterministic
//! internal case matrix.
//!
//! # Example
//!
//! The full run is multi-second work and already executed by
//! `tests/backend_conformance.rs`, so the example only compiles:
//!
//! ```no_run
//! use gpupoly_device::{conformance, Device, DeviceConfig, ReferenceBackend};
//!
//! conformance::assert_backend_conformance(|cfg| Device::new(cfg));
//! conformance::assert_backend_conformance(|cfg| Device::with_backend(ReferenceBackend, cfg));
//! ```

use gpupoly_interval::{Fp, Itv};

use crate::backend::Backend;
use crate::{gemm, scan, Device, DeviceBuffer, DeviceConfig, DeviceError};

/// Deterministic splitmix64 stream for generating test data without
/// depending on an RNG crate.
struct Stream(u64);

impl Stream {
    fn new(seed: u64) -> Self {
        Stream(seed ^ 0x9e37_79b9_7f4a_7c15)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[-1, 1)`.
    fn next_f32(&mut self) -> f32 {
        // 24 uniform bits scaled into [0, 1), then mapped to [-1, 1).
        ((self.next_u64() >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
    }

    fn next_range(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound.max(1) as u64) as usize
    }
}

fn bit_eq<F: Fp>(a: Itv<F>, b: Itv<F>) -> bool {
    a.lo.bits() == b.lo.bits() && a.hi.bits() == b.hi.bits()
}

/// Straight-line oracle for the interval×scalar GEMM family: ascending-`k`
/// accumulation with [`Itv::mul_add_f`], starting from `init` (or zero).
/// Exact-zero terms are skipped, as the contract mandates — accumulating
/// them would rewrite a `-0.0` accumulator bound to `+0.0` and diverge
/// from any skipping implementation.
fn oracle_gemm_itv_f<F: Fp>(
    a: &[Itv<F>],
    b: &[F],
    init: Option<&[Itv<F>]>,
    m: usize,
    k: usize,
    n: usize,
) -> Vec<Itv<F>> {
    let mut c = vec![Itv::zero(); m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = init.map_or(Itv::zero(), |c0| c0[i * n + j]);
            for kk in 0..k {
                let aik = a[i * k + kk];
                if aik.lo == F::ZERO && aik.hi == F::ZERO {
                    continue;
                }
                acc = aik.mul_add_f(b[kk * n + j], acc);
            }
            c[i * n + j] = acc;
        }
    }
    c
}

/// Straight-line oracle for the unsound scalar GEMM.
fn oracle_gemm_f_f<F: Fp>(a: &[F], b: &[F], m: usize, k: usize, n: usize) -> Vec<F> {
    let mut c = vec![F::ZERO; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = F::ZERO;
            for kk in 0..k {
                acc = a[i * k + kk].mul_add(b[kk * n + j], acc);
            }
            c[i * n + j] = acc;
        }
    }
    c
}

/// Checks the full GEMM family on one `f32` shape: bit-identical to the
/// scalar oracle, interval results contain the exact `f64` product, and the
/// launch/flop counters advance. Interval inputs mix points, genuinely
/// wide intervals and exact zeros of both signs (which backends must
/// skip), and some `acc` inits are `-0.0` — the inputs that make the
/// mandatory zero-skip observable.
///
/// # Panics
///
/// Panics with a labeled message on any contract violation.
pub fn check_gemm_against_oracle<B: Backend>(
    device: &Device<B>,
    m: usize,
    k: usize,
    n: usize,
    seed: u64,
) {
    let label = device.backend().label();
    let mut s = Stream::new(seed);
    let a: Vec<Itv<f32>> = (0..m * k)
        .map(|_| match s.next_range(6) {
            0 => Itv::zero(),          // exercise the mandatory zero-skip
            1 => Itv::point(-0.0_f32), // negative zero is a zero term too
            2 => {
                let lo = s.next_f32();
                Itv::new(lo, lo + s.next_f32().abs())
            }
            _ => Itv::point(s.next_f32()),
        })
        .collect();
    let b: Vec<f32> = (0..k * n).map(|_| s.next_f32()).collect();

    // gemm_itv_f: bit-identical to the straight-line oracle.
    let mut c = vec![Itv::new(9.0f32, 9.0); m * n]; // poisoned: must be overwritten
    let flops0 = device.stats().flops();
    let launches0 = device.stats().kernel_launches("gemm_itv_f");
    gemm::gemm_itv_f(device, &a, &b, &mut c, m, k, n);
    assert_eq!(
        device.stats().kernel_launches("gemm_itv_f"),
        launches0 + 1,
        "[{label}] gemm_itv_f must record its launch"
    );
    assert!(
        device.stats().flops() - flops0 >= gemm::flops_itv_f(m, k, n),
        "[{label}] gemm_itv_f must account its flops"
    );
    let want = oracle_gemm_itv_f(&a, &b, None, m, k, n);
    for (i, (got, want)) in c.iter().zip(&want).enumerate() {
        assert!(
            bit_eq(*got, *want),
            "[{label}] gemm_itv_f[{i}] ({m}x{k}x{n}): {got} != oracle {want}"
        );
    }

    // Soundness: the interval result contains the exact f64 product of the
    // interval endpoints' midpoints (a point inside every input interval).
    for i in 0..m {
        for j in 0..n {
            let exact: f64 = (0..k)
                .map(|kk| {
                    let av = a[i * k + kk];
                    let mid = (av.lo as f64 + av.hi as f64) / 2.0;
                    mid * b[kk * n + j] as f64
                })
                .sum();
            let got = c[i * n + j];
            assert!(
                (got.lo as f64) <= exact && exact <= (got.hi as f64),
                "[{label}] gemm_itv_f[{i},{j}] {got} misses exact {exact}"
            );
        }
    }

    // gemm_itv_f_acc: bit-identical to the oracle seeded with the init.
    // Some accumulators start at -0.0: the case where skipping vs
    // accumulating a zero term differ bitwise, pinning the mandatory skip.
    let init: Vec<Itv<f32>> = (0..m * n)
        .map(|_| {
            if s.next_range(5) == 0 {
                Itv::point(-0.0_f32)
            } else {
                Itv::point(s.next_f32())
            }
        })
        .collect();
    let mut acc = init.clone();
    gemm::gemm_itv_f_acc(device, &a, &b, &mut acc, m, k, n);
    let want = oracle_gemm_itv_f(&a, &b, Some(&init), m, k, n);
    for (i, (got, want)) in acc.iter().zip(&want).enumerate() {
        assert!(
            bit_eq(*got, *want),
            "[{label}] gemm_itv_f_acc[{i}] ({m}x{k}x{n}): {got} != oracle {want}"
        );
    }

    // gemm_f_f: bit-identical to the oracle.
    let af: Vec<f32> = (0..m * k).map(|_| s.next_f32()).collect();
    let mut cf = vec![9.0f32; m * n];
    gemm::gemm_f_f(device, &af, &b, &mut cf, m, k, n);
    let wantf = oracle_gemm_f_f(&af, &b, m, k, n);
    for (i, (got, want)) in cf.iter().zip(&wantf).enumerate() {
        assert!(
            got.to_bits() == want.to_bits(),
            "[{label}] gemm_f_f[{i}] ({m}x{k}x{n}): {got} != oracle {want}"
        );
    }
}

/// Checks [`scan::exclusive_scan`] against the serial oracle on one input.
///
/// # Panics
///
/// Panics with a labeled message on any contract violation.
pub fn check_scan_against_oracle<B: Backend>(device: &Device<B>, xs: &[u32]) {
    let label = device.backend().label();
    let launches0 = device.stats().kernel_launches("exclusive_scan");
    let (got, total) = scan::exclusive_scan(device, xs);
    assert_eq!(
        device.stats().kernel_launches("exclusive_scan"),
        launches0 + 1,
        "[{label}] exclusive_scan must record its launch"
    );
    let mut acc = 0u32;
    for (i, &x) in xs.iter().enumerate() {
        assert_eq!(
            got[i],
            acc,
            "[{label}] exclusive_scan[{i}] wrong (n={})",
            xs.len()
        );
        acc += x;
    }
    assert_eq!(got.len(), xs.len(), "[{label}] scan length mismatch");
    assert_eq!(total, acc, "[{label}] scan total mismatch");
}

/// Checks compaction and row gather against serial oracles on one keep
/// mask: `compact_indices` equals the filtered index list, `compact_rows`
/// is a stable row filter, and `gather_rows_into` handles repeated and
/// out-of-order indices.
///
/// # Panics
///
/// Panics with a labeled message on any contract violation.
pub fn check_compaction_against_oracle<B: Backend>(
    device: &Device<B>,
    keep: &[bool],
    row_len: usize,
) {
    let label = device.backend().label();
    let idx = scan::compact_indices(device, keep);
    let want: Vec<u32> = keep
        .iter()
        .enumerate()
        .filter_map(|(i, &k)| k.then_some(i as u32))
        .collect();
    assert_eq!(idx, want, "[{label}] compact_indices mismatch");

    let row_len = row_len.max(1);
    let src: Vec<u64> = (0..keep.len() * row_len).map(|i| i as u64).collect();
    let (mat, idx2) = scan::compact_rows(device, &src, row_len, keep);
    assert_eq!(idx2, want, "[{label}] compact_rows index mismatch");
    for (j, &orig) in idx2.iter().enumerate() {
        assert_eq!(
            &mat[j * row_len..(j + 1) * row_len],
            &src[orig as usize * row_len..(orig as usize + 1) * row_len],
            "[{label}] compact_rows row {j} content mismatch"
        );
    }

    // Gather with repeated, out-of-order indices (a permutation the
    // compaction path never produces but the gather contract allows).
    if !keep.is_empty() {
        let n = keep.len() as u32;
        let index: Vec<u32> = (0..keep.len().min(17) as u32)
            .map(|i| (i * 7 + 3) % n)
            .collect();
        let mut dst = vec![0u64; index.len() * row_len];
        scan::gather_rows_into(device, &src, row_len, &index, &mut dst);
        for (j, &orig) in index.iter().enumerate() {
            assert_eq!(
                &dst[j * row_len..(j + 1) * row_len],
                &src[orig as usize * row_len..(orig as usize + 1) * row_len],
                "[{label}] gather_rows row {j} mismatch"
            );
        }
    }
}

/// Host↔device copies round-trip bit-exactly through [`DeviceBuffer`],
/// including the backend's explicit [`Backend::htod`] / [`Backend::dtoh`]
/// hooks.
fn check_copies<B: Backend>(device: &Device<B>) {
    let label = device.backend().label();
    let mut s = Stream::new(41);
    for len in [0usize, 1, 7, 1024] {
        let host: Vec<f32> = (0..len).map(|_| s.next_f32()).collect();
        let buf = DeviceBuffer::from_slice(device, &host).expect("upload");
        let mut back = vec![0.0f32; len];
        buf.copy_to_host(&mut back); // dtoh hook
        for (i, (a, b)) in host.iter().zip(&back).enumerate() {
            assert!(
                a.to_bits() == b.to_bits(),
                "[{label}] htod/dtoh round-trip corrupted element {i}"
            );
        }
        let down = buf.into_vec();
        assert_eq!(down.len(), len, "[{label}] into_vec length");
    }

    // The htod hook proper only runs when uploading into *existing* device
    // storage, i.e. on a buffer-pool hit — force that path on pooling
    // backends (on non-pooling backends every upload stages fresh storage
    // and there is no htod call site to check).
    if device.backend().pooling() {
        device.buffer_pool_retain();
        {
            let _warm = DeviceBuffer::<f32, B>::zeroed(device, 256).expect("warm");
        }
        assert_eq!(
            device.buffer_pool_bytes(),
            256 * 4,
            "[{label}] warmup buffer must be shelved"
        );
        let host: Vec<f32> = (0..256).map(|_| s.next_f32()).collect();
        let hits0 = device.stats().pool_hits();
        let buf = DeviceBuffer::from_slice(device, &host).expect("recycled upload");
        assert_eq!(
            device.stats().pool_hits(),
            hits0 + 1,
            "[{label}] recycled upload must be a pool hit (htod path)"
        );
        for (i, (a, b)) in host.iter().zip(buf.as_slice()).enumerate() {
            assert!(
                a.to_bits() == b.to_bits(),
                "[{label}] htod into recycled storage corrupted element {i}"
            );
        }
        drop(buf);
        device.buffer_pool_release();
    }
}

/// Allocation accounting and the backend's pooling policy.
fn check_memory_accounting<B: Backend>(make: &impl Fn(DeviceConfig) -> Device<B>) {
    let device = make(DeviceConfig::new().workers(2).memory_capacity(4096));
    let label = device.backend().label();
    let base = device.memory_in_use();
    {
        let a = DeviceBuffer::<u8, B>::zeroed(&device, 1000).expect("fits");
        assert_eq!(
            device.memory_in_use(),
            base + 1000,
            "[{label}] allocation must charge capacity"
        );
        // Over-capacity allocation errors without corrupting accounting.
        match DeviceBuffer::<u8, B>::zeroed(&device, 8192) {
            Err(DeviceError::OutOfMemory {
                requested,
                capacity,
                ..
            }) => {
                assert_eq!((requested, capacity), (8192, 4096), "[{label}] OOM fields");
            }
            Ok(_) => panic!("[{label}] over-capacity allocation must fail"),
        }
        assert_eq!(
            device.memory_in_use(),
            base + 1000,
            "[{label}] failed allocation must not leak charge"
        );
        drop(a);
    }
    assert_eq!(
        device.memory_in_use(),
        base,
        "[{label}] drop must release the charge"
    );
    assert!(device.peak_memory() >= 1000, "[{label}] peak tracks highs");

    // Pooling policy: shelve-and-reuse when the backend supports pooling,
    // free-on-drop when it does not. Either way retain/release balance and
    // all memory returns to the device.
    let pooling = device.backend().pooling();
    device.buffer_pool_retain();
    assert_eq!(
        device.buffer_pool_active(),
        pooling,
        "[{label}] pool activity must follow Backend::pooling()"
    );
    {
        let _a = DeviceBuffer::<u64, B>::zeroed(&device, 128).expect("fits");
    }
    if pooling {
        assert_eq!(
            device.buffer_pool_bytes(),
            128 * 8,
            "[{label}] dropped pooled buffer must be shelved"
        );
        let bytes0 = device.stats().bytes_allocated();
        {
            let _b = DeviceBuffer::<u64, B>::zeroed(&device, 128).expect("fits");
        }
        assert_eq!(
            device.stats().bytes_allocated(),
            bytes0,
            "[{label}] same-size realloc must be served by the pool"
        );
        assert!(
            device.stats().pool_hits() >= 1,
            "[{label}] pool hit counted"
        );
    } else {
        assert_eq!(
            device.buffer_pool_bytes(),
            0,
            "[{label}] non-pooling backend must never shelve"
        );
        assert_eq!(
            device.memory_in_use(),
            0,
            "[{label}] non-pooling backend frees on drop"
        );
    }
    device.buffer_pool_release();
    assert_eq!(
        device.memory_in_use(),
        0,
        "[{label}] final release must return all memory"
    );
    assert_eq!(device.buffer_pool_bytes(), 0, "[{label}] pool drained");
}

/// GEMM/scan shape matrix: the edge cases every backend must get right plus
/// a deterministic spread of irregular shapes.
fn shape_matrix() -> Vec<(usize, usize, usize)> {
    let mut shapes = vec![
        (0, 0, 0), // fully empty
        (1, 1, 1), // single element
        (1, 0, 1), // empty inner dimension: result is exactly zero
        (2, 0, 3),
        (0, 4, 5),   // empty output
        (3, 1, 1),   // degenerate columns
        (1, 7, 1),   // dot product
        (4, 4, 4),   // small square
        (5, 17, 9),  // non-square
        (2, 3, 519), // crosses the CPU-sim tile boundary (512)
    ];
    let mut s = Stream::new(7);
    for _ in 0..12 {
        shapes.push((
            s.next_range(6) + 1,
            s.next_range(23) + 1,
            s.next_range(19) + 1,
        ));
    }
    shapes
}

/// Runs the full conformance suite against a backend.
///
/// `make` builds a device of the backend under test from a configuration
/// (worker counts and memory caps vary across the suite). Passing this
/// suite is the admission requirement for wiring a backend into
/// `gpupoly_core::Engine`; see the [`crate::backend`] module docs for the
/// contract being enforced.
///
/// # Panics
///
/// Panics with a labeled, actionable message on the first violation.
pub fn assert_backend_conformance<B: Backend>(make: impl Fn(DeviceConfig) -> Device<B>) {
    // Kernels must behave identically at every worker count.
    for workers in [1usize, 3] {
        let device = make(DeviceConfig::new().workers(workers));
        for (case, &(m, k, n)) in shape_matrix().iter().enumerate() {
            check_gemm_against_oracle(&device, m, k, n, case as u64 * 1013 + workers as u64);
        }
        for n in [0usize, 1, 2, 63, 64, 65, 1000, 4097] {
            let xs: Vec<u32> = (0..n).map(|i| ((i * 2654435761) % 5) as u32).collect();
            check_scan_against_oracle(&device, &xs);
            let keep: Vec<bool> = (0..n).map(|i| (i * 31) % 3 != 1).collect();
            check_compaction_against_oracle(&device, &keep, n % 7);
        }
        // All-false and all-true masks.
        check_compaction_against_oracle(&device, &[false; 9], 2);
        check_compaction_against_oracle(&device, &[true; 9], 2);
        check_copies(&device);
        assert!(
            device.stats().launches() > 0,
            "[{}] kernels must record launches",
            device.backend().label()
        );
    }
    check_memory_accounting(&make);
}
