//! The DeepPoly ReLU relaxation.
//!
//! The relaxation table is consumed by the backend's ReLU substitution
//! kernel ([`crate::Backend::relu_step`]), so the type lives in this crate;
//! `gpupoly-core` re-exports it unchanged as `gpupoly_core::ReluRelax`.

use gpupoly_interval::{round, Fp, Itv};

/// The four relaxation coefficients DeepPoly attaches to a ReLU neuron
/// `y = max(x, 0)` with input bounds `l ≤ x ≤ u`:
///
/// `alpha·x + beta  ≤  y  ≤  gamma·x + delta`.
///
/// Coefficients are intervals for floating-point soundness: `gamma = u/(u-l)`
/// involves a division, so its directed-rounding enclosure is genuinely wide
/// (a few ulps), and every downstream use takes the worst case over the
/// enclosure.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct ReluRelax<F> {
    /// Lower slope (`0` or `1`, chosen adaptively — the DeepPoly heuristic
    /// minimizing relaxation area).
    pub alpha: Itv<F>,
    /// Lower intercept (always `0` for ReLU).
    pub beta: Itv<F>,
    /// Upper slope.
    pub gamma: Itv<F>,
    /// Upper intercept.
    pub delta: Itv<F>,
    /// `true` when the relaxation is exact (`l >= 0` or `u <= 0`); exact
    /// neurons satisfy the early-termination criterion of §3.2.
    pub exact: bool,
}

impl<F: Fp> ReluRelax<F> {
    /// Derives the relaxation from the input bounds `x ∈ [l, u]`.
    ///
    /// * `l >= 0`: identity, exact.
    /// * `u <= 0`: zero, exact.
    /// * otherwise: the triangle relaxation `y ≤ u(x-l)/(u-l)` above and
    ///   `y >= alpha·x` below with `alpha ∈ {0, 1}` picked by the smaller-area
    ///   rule (`1` iff `u > -l`).
    ///
    /// # Example
    ///
    /// ```
    /// use gpupoly_device::ReluRelax;
    /// use gpupoly_interval::Itv;
    ///
    /// let r = ReluRelax::from_bounds(Itv::new(-1.0_f32, 3.0));
    /// assert!(!r.exact);
    /// // upper slope ~ 3/4, delta ~ 3/4
    /// assert!(r.gamma.contains(0.75) && r.delta.contains(0.75));
    /// let id = ReluRelax::from_bounds(Itv::new(0.0_f32, 2.0));
    /// assert!(id.exact && id.gamma.contains(1.0));
    /// ```
    pub fn from_bounds(b: Itv<F>) -> Self {
        let (l, u) = (b.lo, b.hi);
        if l >= F::ZERO {
            return Self {
                alpha: Itv::point(F::ONE),
                beta: Itv::zero(),
                gamma: Itv::point(F::ONE),
                delta: Itv::zero(),
                exact: true,
            };
        }
        if u <= F::ZERO {
            return Self {
                alpha: Itv::zero(),
                beta: Itv::zero(),
                gamma: Itv::zero(),
                delta: Itv::zero(),
                exact: true,
            };
        }
        // Unstable: l < 0 < u. gamma = u / (u - l), enclosed outward.
        let den_lo = round::sub_down(u, l);
        let den_hi = round::sub_up(u, l);
        debug_assert!(den_lo > F::ZERO);
        let gamma = Itv::new(round::div_down(u, den_hi), round::div_up(u, den_lo));
        // delta = -gamma * l  (l < 0 so delta > 0); take the worst case over
        // the gamma enclosure.
        let delta = gamma.mul_f(l).neg();
        let alpha = if u > -l { F::ONE } else { F::ZERO };
        Self {
            alpha: Itv::point(alpha),
            beta: Itv::zero(),
            gamma,
            delta: Itv::new(delta.lo.max(F::ZERO), delta.hi),
            exact: false,
        }
    }

    /// Computes the relaxation for every neuron of a layer.
    pub fn layer(bounds: &[Itv<F>]) -> Vec<Self> {
        bounds.iter().map(|&b| Self::from_bounds(b)).collect()
    }

    /// `true` when the relaxation is the zero function on both sides
    /// (stably-negative input): every coefficient substituted through it
    /// becomes an exact-zero interval. Such neurons yield all-zero columns
    /// after a ReLU substitution step, which is what makes stable-zero
    /// column compaction sound.
    pub fn is_zero(&self) -> bool {
        let z = |v: Itv<F>| v.lo == F::ZERO && v.hi == F::ZERO;
        z(self.alpha) && z(self.beta) && z(self.gamma) && z(self.delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_sound(l: f32, u: f32) {
        let r = ReluRelax::from_bounds(Itv::new(l, u));
        // Sample x across [l, u]; relaxation must sandwich relu(x), for the
        // worst-case instantiation of the interval coefficients.
        for i in 0..=100 {
            let x = l + (u - l) * (i as f32) / 100.0;
            let y = x.max(0.0);
            let lo = r.alpha.mul_f(x).add(r.beta);
            let hi = r.gamma.mul_f(x).add(r.delta);
            assert!(
                lo.lo <= y + 1e-5,
                "lower violated at x={x}: {} > {y} (l={l}, u={u})",
                lo.lo
            );
            assert!(
                hi.hi >= y - 1e-5,
                "upper violated at x={x}: {} < {y} (l={l}, u={u})",
                hi.hi
            );
        }
    }

    #[test]
    fn stable_positive_is_identity() {
        let r = ReluRelax::from_bounds(Itv::new(0.5_f32, 2.0));
        assert!(r.exact);
        assert_eq!(r.alpha, Itv::point(1.0));
        assert_eq!(r.delta, Itv::zero());
        assert!(!r.is_zero());
        check_sound(0.5, 2.0);
    }

    #[test]
    fn stable_negative_is_zero() {
        let r = ReluRelax::from_bounds(Itv::new(-3.0_f32, -0.1));
        assert!(r.exact);
        assert_eq!(r.gamma, Itv::zero());
        assert!(r.is_zero());
        check_sound(-3.0, -0.1);
    }

    #[test]
    fn boundary_zero_lower_is_exact_identity() {
        let r = ReluRelax::from_bounds(Itv::new(0.0_f32, 1.0));
        assert!(r.exact);
        let r = ReluRelax::from_bounds(Itv::new(-1.0_f32, 0.0));
        assert!(r.exact);
        assert_eq!(r.gamma, Itv::zero());
        assert!(r.is_zero());
    }

    #[test]
    fn unstable_triangle_is_sound() {
        for (l, u) in [(-1.0, 1.0), (-3.0, 0.5), (-0.25, 4.0), (-1e-3, 1e3)] {
            check_sound(l, u);
        }
    }

    #[test]
    fn alpha_heuristic_minimizes_area() {
        // |u| > |l| -> alpha = 1; |u| < |l| -> alpha = 0.
        let r = ReluRelax::from_bounds(Itv::new(-0.5_f32, 2.0));
        assert_eq!(r.alpha, Itv::point(1.0));
        let r = ReluRelax::from_bounds(Itv::new(-2.0_f32, 0.5));
        assert_eq!(r.alpha, Itv::point(0.0));
        assert!(!r.is_zero(), "unstable neurons are never stable-zero");
    }

    #[test]
    fn gamma_encloses_real_slope() {
        let (l, u) = (-1.0_f32, 3.0_f32);
        let r = ReluRelax::from_bounds(Itv::new(l, u));
        let exact = (u as f64) / ((u - l) as f64);
        assert!((r.gamma.lo as f64) <= exact && exact <= (r.gamma.hi as f64));
        assert!(r.gamma.hi - r.gamma.lo < 1e-5, "enclosure should be tight");
    }

    #[test]
    fn layer_maps_all_neurons() {
        let bounds = [
            Itv::new(-1.0_f32, 1.0),
            Itv::new(1.0, 2.0),
            Itv::new(-2.0, -1.0),
        ];
        let rs = ReluRelax::layer(&bounds);
        assert_eq!(rs.len(), 3);
        assert!(!rs[0].exact && rs[1].exact && rs[2].exact);
        assert!(!rs[0].is_zero() && !rs[1].is_zero() && rs[2].is_zero());
    }
}
