//! Parallel prefix sum and stream compaction.
//!
//! GPUPoly's early-termination pass removes rows from the bound matrix `M_k`
//! on the fly (§4.2, "Removing rows from a matrix in a shared memory
//! context"): every thread checks the termination criterion for its row, a
//! parallel prefix sum assigns each surviving row a unique destination index,
//! and the surviving rows are copied into the compacted matrix `M'_k`
//! together with an index array mapping them back to their original neurons.
//! This module is the wrapper layer for exactly that primitive: dimension
//! checks and launch recording here, the kernel itself supplied by the
//! device's [`crate::Backend`] (chunked and parallel on
//! [`crate::CpuSimBackend`], straight-line serial on
//! [`crate::ReferenceBackend`] — both exact, hence bit-identical).
//!
//! # Example
//!
//! ```
//! use gpupoly_device::{scan, Device};
//!
//! let dev = Device::default();
//! let (prefix, total) = scan::exclusive_scan(&dev, &[1, 0, 2, 1]);
//! assert_eq!(prefix, vec![0, 1, 1, 3]);
//! assert_eq!(total, 4);
//!
//! // Keep rows 0 and 2 of a 3-row matrix with 2 columns.
//! let m = [10, 11, 20, 21, 30, 31];
//! let (compacted, index) = scan::compact_rows(&dev, &m, 2, &[true, false, true]);
//! assert_eq!(compacted, vec![10, 11, 30, 31]);
//! assert_eq!(index, vec![0, 2]);
//! ```

use crate::backend::Backend;
use crate::Device;

/// Work-efficient parallel exclusive prefix sum.
///
/// Returns the scanned vector and the total sum.
pub fn exclusive_scan<B: Backend>(device: &Device<B>, xs: &[u32]) -> (Vec<u32>, u32) {
    device
        .stats()
        .record_work("exclusive_scan", 0, 2 * std::mem::size_of_val(xs) as u64);
    device.backend().exclusive_scan(device, xs)
}

/// Computes the index array of a compaction: the original indices of all
/// `true` entries, in order, via the prefix-sum scatter of §4.2.
pub fn compact_indices<B: Backend>(device: &Device<B>, keep: &[bool]) -> Vec<u32> {
    device
        .stats()
        .record_work("compact_indices", 0, 5 * keep.len() as u64);
    device.backend().compact_indices(device, keep)
}

/// Removes the rows of a row-major matrix whose `keep` flag is `false`.
///
/// Returns the compacted matrix `M'` and the index array mapping each row of
/// `M'` to its original row in `M` — the pair GPUPoly threads through its
/// early-terminated backsubstitutions.
///
/// # Panics
///
/// Panics when `src.len() != keep.len() * row_len`.
pub fn compact_rows<T: Copy + Send + Sync, B: Backend>(
    device: &Device<B>,
    src: &[T],
    row_len: usize,
    keep: &[bool],
) -> (Vec<T>, Vec<u32>) {
    assert_eq!(
        src.len(),
        keep.len() * row_len,
        "compact_rows: matrix shape mismatch"
    );
    let index = compact_indices(device, keep);
    device.stats().record_launch("compact_rows");
    let Some(&fill) = src.first() else {
        return (Vec::new(), index);
    };
    let mut dst = vec![fill; index.len() * row_len];
    gather_rows_into(device, src, row_len, &index, &mut dst);
    (dst, index)
}

/// Gathers the rows listed in `index` from a row-major matrix into `dst` —
/// the scatter half of compaction, split out so callers can gather into
/// pre-allocated (pooled) device storage.
///
/// # Panics
///
/// Panics when `dst.len() != index.len() * row_len` or an index is out of
/// range for `src`.
pub fn gather_rows_into<T: Copy + Send + Sync, B: Backend>(
    device: &Device<B>,
    src: &[T],
    row_len: usize,
    index: &[u32],
    dst: &mut [T],
) {
    assert_eq!(
        dst.len(),
        index.len() * row_len,
        "gather_rows_into: destination shape mismatch"
    );
    device.stats().record_work(
        "gather_rows",
        0,
        2 * std::mem::size_of_val(dst) as u64 + std::mem::size_of_val(index) as u64,
    );
    device
        .backend()
        .gather_rows(device, src, row_len, index, dst);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceConfig;

    fn serial_scan(xs: &[u32]) -> (Vec<u32>, u32) {
        let mut out = Vec::with_capacity(xs.len());
        let mut acc = 0;
        for &x in xs {
            out.push(acc);
            acc += x;
        }
        (out, acc)
    }

    #[test]
    fn scan_empty() {
        let dev = Device::default();
        assert_eq!(exclusive_scan(&dev, &[]), (vec![], 0));
    }

    #[test]
    fn scan_matches_serial_across_sizes_and_workers() {
        for workers in [1, 2, 7] {
            let dev = Device::new(DeviceConfig::new().workers(workers));
            for n in [1usize, 2, 5, 63, 64, 65, 1000, 4097] {
                let xs: Vec<u32> = (0..n).map(|i| ((i * 2654435761) % 5) as u32).collect();
                let got = exclusive_scan(&dev, &xs);
                assert_eq!(got, serial_scan(&xs), "n={n} workers={workers}");
            }
        }
    }

    #[test]
    fn compact_indices_matches_filter() {
        let dev = Device::new(DeviceConfig::new().workers(3));
        for n in [0usize, 1, 10, 257, 1024] {
            let keep: Vec<bool> = (0..n).map(|i| i % 3 != 1).collect();
            let want: Vec<u32> = (0..n as u32).filter(|&i| keep[i as usize]).collect();
            assert_eq!(compact_indices(&dev, &keep), want, "n={n}");
        }
    }

    #[test]
    fn compact_rows_none_kept() {
        let dev = Device::default();
        let (m, idx) = compact_rows(&dev, &[1, 2, 3, 4], 2, &[false, false]);
        assert!(m.is_empty() && idx.is_empty());
    }

    #[test]
    fn compact_rows_all_kept_is_identity() {
        let dev = Device::default();
        let src = [1, 2, 3, 4, 5, 6];
        let (m, idx) = compact_rows(&dev, &src, 3, &[true, true]);
        assert_eq!(m, src.to_vec());
        assert_eq!(idx, vec![0, 1]);
    }

    #[test]
    fn compact_rows_preserves_row_content_and_order() {
        let dev = Device::new(DeviceConfig::new().workers(4));
        let rows = 100;
        let row_len = 7;
        let src: Vec<u64> = (0..rows * row_len).map(|i| i as u64).collect();
        let keep: Vec<bool> = (0..rows).map(|i| i % 4 == 0 || i % 7 == 0).collect();
        let (m, idx) = compact_rows(&dev, &src, row_len, &keep);
        assert_eq!(m.len(), idx.len() * row_len);
        for (j, &orig) in idx.iter().enumerate() {
            assert!(keep[orig as usize]);
            assert_eq!(
                &m[j * row_len..(j + 1) * row_len],
                &src[orig as usize * row_len..(orig as usize + 1) * row_len]
            );
        }
        let want_count = keep.iter().filter(|&&k| k).count();
        assert_eq!(idx.len(), want_count);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn compact_rows_rejects_bad_shape() {
        let dev = Device::default();
        let _ = compact_rows(&dev, &[1, 2, 3], 2, &[true, true]);
    }

    #[test]
    fn reference_backend_matches_cpusim() {
        let cpu = Device::new(DeviceConfig::new().workers(3));
        let naive = Device::reference(DeviceConfig::new().workers(1));
        for n in [0usize, 1, 5, 200, 1025] {
            let xs: Vec<u32> = (0..n).map(|i| ((i * 7919) % 4) as u32).collect();
            assert_eq!(exclusive_scan(&cpu, &xs), exclusive_scan(&naive, &xs));
            let keep: Vec<bool> = (0..n).map(|i| i % 5 != 2).collect();
            assert_eq!(compact_indices(&cpu, &keep), compact_indices(&naive, &keep));
        }
    }
}
