//! Parallel prefix sum and stream compaction.
//!
//! GPUPoly's early-termination pass removes rows from the bound matrix `M_k`
//! on the fly (§4.2, "Removing rows from a matrix in a shared memory
//! context"): every thread checks the termination criterion for its row, a
//! parallel prefix sum assigns each surviving row a unique destination index,
//! and the surviving rows are copied into the compacted matrix `M'_k`
//! together with an index array mapping them back to their original neurons.
//! This module implements exactly that primitive on the simulated device.
//!
//! # Example
//!
//! ```
//! use gpupoly_device::{scan, Device};
//!
//! let dev = Device::default();
//! let (prefix, total) = scan::exclusive_scan(&dev, &[1, 0, 2, 1]);
//! assert_eq!(prefix, vec![0, 1, 1, 3]);
//! assert_eq!(total, 4);
//!
//! // Keep rows 0 and 2 of a 3-row matrix with 2 columns.
//! let m = [10, 11, 20, 21, 30, 31];
//! let (compacted, index) = scan::compact_rows(&dev, &m, 2, &[true, false, true]);
//! assert_eq!(compacted, vec![10, 11, 30, 31]);
//! assert_eq!(index, vec![0, 2]);
//! ```

use rayon::prelude::*;

use crate::Device;

/// Work-efficient parallel exclusive prefix sum.
///
/// Returns the scanned vector and the total sum. Three phases, mirroring the
/// GPU algorithm: per-chunk partial sums in parallel, a serial scan over the
/// (few) chunk totals, and a parallel per-chunk rescan with offsets.
pub fn exclusive_scan(device: &Device, xs: &[u32]) -> (Vec<u32>, u32) {
    device.stats().record_launch("exclusive_scan");
    let n = xs.len();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let chunk = n.div_ceil(device.workers() * 4).max(1);
    let sums: Vec<u32> = device.install(|| {
        xs.par_chunks(chunk)
            .map(|c| c.iter().sum::<u32>())
            .collect()
    });
    let mut offsets = Vec::with_capacity(sums.len());
    let mut acc = 0u32;
    for s in &sums {
        offsets.push(acc);
        acc += s;
    }
    let mut out = vec![0u32; n];
    device.install(|| {
        out.par_chunks_mut(chunk)
            .zip(xs.par_chunks(chunk))
            .zip(offsets.par_iter())
            .for_each(|((o, x), &off)| {
                let mut a = off;
                for (oi, &xi) in o.iter_mut().zip(x) {
                    *oi = a;
                    a += xi;
                }
            })
    });
    (out, acc)
}

/// Computes the index array of a compaction: the original indices of all
/// `true` entries, in order, via the prefix-sum scatter of §4.2.
#[allow(clippy::needless_range_loop)] // index loop mirrors the GPU scatter kernel
pub fn compact_indices(device: &Device, keep: &[bool]) -> Vec<u32> {
    device.stats().record_launch("compact_indices");
    let n = keep.len();
    if n == 0 {
        return Vec::new();
    }
    let flags: Vec<u32> = keep.iter().map(|&k| k as u32).collect();
    let (prefix, total) = exclusive_scan(device, &flags);
    let chunk = n.div_ceil(device.workers() * 4).max(1);
    let mut kept = vec![0u32; total as usize];
    // Split the output into the disjoint ranges each input chunk writes to
    // (chunk c's survivors land at prefix[c*chunk] .. prefix of next chunk).
    let mut out_parts: Vec<(usize, &mut [u32])> = Vec::new();
    let mut rest: &mut [u32] = &mut kept;
    let mut consumed = 0usize;
    for c0 in (0..n).step_by(chunk) {
        let c1 = (c0 + chunk).min(n);
        let end = if c1 < n {
            prefix[c1] as usize
        } else {
            total as usize
        };
        let take = end - consumed;
        let (head, tail) = rest.split_at_mut(take);
        out_parts.push((c0, head));
        rest = tail;
        consumed = end;
    }
    device.install(|| {
        out_parts.par_iter_mut().for_each(|(c0, out)| {
            let c1 = (*c0 + chunk).min(n);
            let mut w = 0;
            for i in *c0..c1 {
                if keep[i] {
                    out[w] = i as u32;
                    w += 1;
                }
            }
            debug_assert_eq!(w, out.len());
        })
    });
    kept
}

/// Removes the rows of a row-major matrix whose `keep` flag is `false`.
///
/// Returns the compacted matrix `M'` and the index array mapping each row of
/// `M'` to its original row in `M` — the pair GPUPoly threads through its
/// early-terminated backsubstitutions.
///
/// # Panics
///
/// Panics when `src.len() != keep.len() * row_len`.
pub fn compact_rows<T: Copy + Send + Sync>(
    device: &Device,
    src: &[T],
    row_len: usize,
    keep: &[bool],
) -> (Vec<T>, Vec<u32>) {
    assert_eq!(
        src.len(),
        keep.len() * row_len,
        "compact_rows: matrix shape mismatch"
    );
    let index = compact_indices(device, keep);
    device.stats().record_launch("compact_rows");
    let Some(&fill) = src.first() else {
        return (Vec::new(), index);
    };
    let mut dst = vec![fill; index.len() * row_len];
    gather_rows_into(device, src, row_len, &index, &mut dst);
    (dst, index)
}

/// Gathers the rows listed in `index` from a row-major matrix into `dst` —
/// the scatter half of compaction, split out so callers can gather into
/// pre-allocated (pooled) device storage.
///
/// # Panics
///
/// Panics when `dst.len() != index.len() * row_len` or an index is out of
/// range for `src`.
pub fn gather_rows_into<T: Copy + Send + Sync>(
    device: &Device,
    src: &[T],
    row_len: usize,
    index: &[u32],
    dst: &mut [T],
) {
    assert_eq!(
        dst.len(),
        index.len() * row_len,
        "gather_rows_into: destination shape mismatch"
    );
    device.stats().record_launch("gather_rows");
    // Parallel gather: each destination row copies from its source row.
    device.install(|| {
        dst.par_chunks_mut(row_len.max(1))
            .zip(index.par_iter())
            .for_each(|(row, &i)| {
                row.copy_from_slice(&src[i as usize * row_len..(i as usize + 1) * row_len]);
            })
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceConfig;

    fn serial_scan(xs: &[u32]) -> (Vec<u32>, u32) {
        let mut out = Vec::with_capacity(xs.len());
        let mut acc = 0;
        for &x in xs {
            out.push(acc);
            acc += x;
        }
        (out, acc)
    }

    #[test]
    fn scan_empty() {
        let dev = Device::default();
        assert_eq!(exclusive_scan(&dev, &[]), (vec![], 0));
    }

    #[test]
    fn scan_matches_serial_across_sizes_and_workers() {
        for workers in [1, 2, 7] {
            let dev = Device::new(DeviceConfig::new().workers(workers));
            for n in [1usize, 2, 5, 63, 64, 65, 1000, 4097] {
                let xs: Vec<u32> = (0..n).map(|i| ((i * 2654435761) % 5) as u32).collect();
                let got = exclusive_scan(&dev, &xs);
                assert_eq!(got, serial_scan(&xs), "n={n} workers={workers}");
            }
        }
    }

    #[test]
    fn compact_indices_matches_filter() {
        let dev = Device::new(DeviceConfig::new().workers(3));
        for n in [0usize, 1, 10, 257, 1024] {
            let keep: Vec<bool> = (0..n).map(|i| i % 3 != 1).collect();
            let want: Vec<u32> = (0..n as u32).filter(|&i| keep[i as usize]).collect();
            assert_eq!(compact_indices(&dev, &keep), want, "n={n}");
        }
    }

    #[test]
    fn compact_rows_none_kept() {
        let dev = Device::default();
        let (m, idx) = compact_rows(&dev, &[1, 2, 3, 4], 2, &[false, false]);
        assert!(m.is_empty() && idx.is_empty());
    }

    #[test]
    fn compact_rows_all_kept_is_identity() {
        let dev = Device::default();
        let src = [1, 2, 3, 4, 5, 6];
        let (m, idx) = compact_rows(&dev, &src, 3, &[true, true]);
        assert_eq!(m, src.to_vec());
        assert_eq!(idx, vec![0, 1]);
    }

    #[test]
    fn compact_rows_preserves_row_content_and_order() {
        let dev = Device::new(DeviceConfig::new().workers(4));
        let rows = 100;
        let row_len = 7;
        let src: Vec<u64> = (0..rows * row_len).map(|i| i as u64).collect();
        let keep: Vec<bool> = (0..rows).map(|i| i % 4 == 0 || i % 7 == 0).collect();
        let (m, idx) = compact_rows(&dev, &src, row_len, &keep);
        assert_eq!(m.len(), idx.len() * row_len);
        for (j, &orig) in idx.iter().enumerate() {
            assert!(keep[orig as usize]);
            assert_eq!(
                &m[j * row_len..(j + 1) * row_len],
                &src[orig as usize * row_len..(orig as usize + 1) * row_len]
            );
        }
        let want_count = keep.iter().filter(|&&k| k).count();
        assert_eq!(idx.len(), want_count);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn compact_rows_rejects_bad_shape() {
        let dev = Device::default();
        let _ = compact_rows(&dev, &[1, 2, 3], 2, &[true, true]);
    }
}
