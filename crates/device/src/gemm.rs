//! Tiled matrix–matrix kernels.
//!
//! Backsubstitution through a fully-connected layer is the matrix product
//! `M_{k-1} = M_k · F_k` (paper Fig. 2). To stay floating-point sound the
//! coefficients of `M_k` are intervals while `F_k` holds the scalar network
//! weights, so the product is an *interval×scalar* GEMM built around the
//! outward-rounded multiply-add of `gpupoly-interval` — the role cutlass +
//! custom multiply-add plays in the CUDA implementation (§4.1). A plain
//! round-to-nearest scalar GEMM is provided for the unsound baselines and for
//! measuring the soundness overhead (the paper reports ≈2× memory and >2×
//! flops; compare [`flops_itv_f`] with [`flops_f_f`]).
//!
//! All matrices are dense row-major. The functions here are thin wrappers —
//! dimension checks, launch recording, flop accounting — around the device's
//! [`crate::Backend`], which supplies the actual kernel (cache-blocked and
//! parallel on [`crate::CpuSimBackend`]: `C` is tiled by the device's
//! [`crate::GemmTile`] geometry with `B` packed into per-tile panels and an
//! `mr × nr` register-blocked micro-kernel inside — straight-line serial on
//! [`crate::ReferenceBackend`]). Blocking only covers `m`/`n`; every backend
//! still accumulates each output element over the full `k` extent in
//! ascending order with the same directed-rounding primitives, so results
//! are bit-identical across backends and tile geometries (see the
//! [`crate::backend`] module docs for the contract, and
//! [`crate::conformance`] — in particular
//! [`crate::conformance::check_gemm_blocking`] — for the suite that
//! enforces it).
//!
//! # Example
//!
//! ```
//! use gpupoly_device::{gemm, Device};
//! use gpupoly_interval::Itv;
//!
//! let dev = Device::default();
//! // [1 2] · [[1 0],[0 1]] = [1 2]
//! let a = vec![Itv::point(1.0_f32), Itv::point(2.0)];
//! let b = vec![1.0_f32, 0.0, 0.0, 1.0];
//! let mut c = vec![Itv::zero(); 2];
//! gemm::gemm_itv_f(&dev, &a, &b, &mut c, 1, 2, 2);
//! assert!(c[0].contains(1.0) && c[1].contains(2.0));
//! ```

use gpupoly_interval::{Fp, Itv};

use crate::backend::Backend;
use crate::Device;

fn check_dims<T, U, V>(a: &[T], b: &[U], c: &[V], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "GEMM: A must be m*k");
    assert_eq!(b.len(), k * n, "GEMM: B must be k*n");
    assert_eq!(c.len(), m * n, "GEMM: C must be m*n");
}

/// Bytes read + written by one GEMM launch (A, B and C each touched once).
fn bytes_moved<T, U, V>(a: &[T], b: &[U], c: &[V]) -> u64 {
    (std::mem::size_of_val(a) + std::mem::size_of_val(b) + std::mem::size_of_val(c)) as u64
}

/// Scalar-equivalent flop count of the sound interval×scalar GEMM
/// (2 multiplies + 2 adds per multiply-add).
pub fn flops_itv_f(m: usize, k: usize, n: usize) -> u64 {
    4 * (m as u64) * (k as u64) * (n as u64)
}

/// Scalar-equivalent flop count of the unsound scalar GEMM.
pub fn flops_f_f(m: usize, k: usize, n: usize) -> u64 {
    2 * (m as u64) * (k as u64) * (n as u64)
}

/// Sound interval×scalar GEMM: `C = A · B` with `A: m×k` interval entries,
/// `B: k×n` scalar entries, outward rounding throughout.
///
/// Zero interval entries of `A` are skipped — mandatorily, by every
/// backend — so the sparsity produced by dependence-set padding costs no
/// flops (see the [`crate::backend`] contract; the scalar [`gemm_f_f`]
/// must instead never skip).
///
/// # Panics
///
/// Panics on dimension mismatches.
pub fn gemm_itv_f<F: Fp, B: Backend>(
    device: &Device<B>,
    a: &[Itv<F>],
    b: &[F],
    c: &mut [Itv<F>],
    m: usize,
    k: usize,
    n: usize,
) {
    check_dims(a, b, c, m, k, n);
    device
        .stats()
        .record_work("gemm_itv_f", flops_itv_f(m, k, n), bytes_moved(a, b, c));
    device.backend().gemm_itv_f(device, a, b, c, m, k, n);
}

/// Sound interval×scalar GEMM accumulating into `C`: `C += A · B`.
///
/// Used when the two branches of a residual block merge their coefficient
/// matrices at the head of the block.
///
/// # Panics
///
/// Panics on dimension mismatches.
pub fn gemm_itv_f_acc<F: Fp, B: Backend>(
    device: &Device<B>,
    a: &[Itv<F>],
    b: &[F],
    c: &mut [Itv<F>],
    m: usize,
    k: usize,
    n: usize,
) {
    check_dims(a, b, c, m, k, n);
    device
        .stats()
        .record_work("gemm_itv_f_acc", flops_itv_f(m, k, n), bytes_moved(a, b, c));
    device.backend().gemm_itv_f_acc(device, a, b, c, m, k, n);
}

/// Unsound round-to-nearest scalar GEMM: `C = A · B`.
///
/// This is what off-the-shelf BLAS would compute; it exists for the
/// CROWN-IBP baseline and the soundness-overhead ablation, never for
/// certification.
///
/// # Panics
///
/// Panics on dimension mismatches.
pub fn gemm_f_f<F: Fp, B: Backend>(
    device: &Device<B>,
    a: &[F],
    b: &[F],
    c: &mut [F],
    m: usize,
    k: usize,
    n: usize,
) {
    check_dims(a, b, c, m, k, n);
    device
        .stats()
        .record_work("gemm_f_f", flops_f_f(m, k, n), bytes_moved(a, b, c));
    device.backend().gemm_f_f(device, a, b, c, m, k, n);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceConfig;

    fn pt(x: f32) -> Itv<f32> {
        Itv::point(x)
    }

    /// Serial f64 reference product of point matrices.
    fn reference(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f64> {
        let mut c = vec![0.0f64; m * n];
        for i in 0..m {
            for kk in 0..k {
                for j in 0..n {
                    c[i * n + j] += a[i * k + kk] as f64 * b[kk * n + j] as f64;
                }
            }
        }
        c
    }

    #[test]
    fn identity_product() {
        let dev = Device::default();
        let a: Vec<Itv<f32>> = vec![pt(1.0), pt(2.0), pt(3.0), pt(4.0)];
        let b = vec![1.0f32, 0.0, 0.0, 1.0];
        let mut c = vec![Itv::zero(); 4];
        gemm_itv_f(&dev, &a, &b, &mut c, 2, 2, 2);
        for (ci, ai) in c.iter().zip(&a) {
            assert_eq!(ci, ai);
        }
    }

    #[test]
    fn interval_gemm_contains_f64_reference() {
        let dev = Device::new(DeviceConfig::new().workers(3));
        let (m, k, n) = (5, 17, 9);
        let av: Vec<f32> = (0..m * k)
            .map(|i| ((i * 37 % 19) as f32 - 9.0) * 0.1)
            .collect();
        let bv: Vec<f32> = (0..k * n)
            .map(|i| ((i * 53 % 23) as f32 - 11.0) * 0.05)
            .collect();
        let a: Vec<Itv<f32>> = av.iter().map(|&x| pt(x)).collect();
        let mut c = vec![Itv::zero(); m * n];
        gemm_itv_f(&dev, &a, &bv, &mut c, m, k, n);
        let want = reference(&av, &bv, m, k, n);
        for (ci, wi) in c.iter().zip(&want) {
            assert!(
                (ci.lo as f64) <= *wi && *wi <= (ci.hi as f64),
                "{ci} misses {wi}"
            );
        }
    }

    #[test]
    fn wide_intervals_cover_endpoint_products() {
        let dev = Device::default();
        // A = [[-1,1]], B = [[2], [..]]
        let a = vec![Itv::new(-1.0f32, 1.0), Itv::new(0.0, 0.5)];
        let b = vec![2.0f32, -4.0];
        let mut c = vec![Itv::zero(); 1];
        gemm_itv_f(&dev, &a, &b, &mut c, 1, 2, 1);
        // extremes: -1*2 + 0.5*-4 = -4 ; 1*2 + 0*-4 = 2
        assert!(c[0].contains(-4.0) && c[0].contains(2.0));
    }

    #[test]
    fn acc_variant_accumulates() {
        let dev = Device::default();
        let a = vec![pt(1.0); 2];
        let b = vec![1.0f32, 1.0];
        let mut c = vec![Itv::point(10.0); 1];
        gemm_itv_f_acc(&dev, &a, &b, &mut c, 1, 2, 1);
        assert!(c[0].contains(12.0));
        assert!(c[0].lo > 11.0 && c[0].hi < 13.0);
    }

    #[test]
    fn scalar_gemm_matches_reference_closely() {
        let dev = Device::default();
        let (m, k, n) = (3, 8, 4);
        let av: Vec<f32> = (0..m * k).map(|i| (i as f32).sin()).collect();
        let bv: Vec<f32> = (0..k * n).map(|i| (i as f32).cos()).collect();
        let mut c = vec![0.0f32; m * n];
        gemm_f_f(&dev, &av, &bv, &mut c, m, k, n);
        let want = reference(&av, &bv, m, k, n);
        for (ci, wi) in c.iter().zip(&want) {
            assert!((*ci as f64 - wi).abs() < 1e-4);
        }
    }

    #[test]
    fn flop_accounting_shows_soundness_overhead() {
        assert_eq!(flops_itv_f(2, 3, 4), 2 * flops_f_f(2, 3, 4));
        let dev = Device::default();
        let a = vec![pt(1.0); 4];
        let b = vec![1.0f32; 4];
        let mut c = vec![Itv::zero(); 4];
        let before = dev.stats().flops();
        gemm_itv_f(&dev, &a, &b, &mut c, 2, 2, 2);
        assert_eq!(dev.stats().flops() - before, flops_itv_f(2, 2, 2));
    }

    #[test]
    fn empty_dimensions_are_fine() {
        let dev = Device::default();
        let mut c: Vec<Itv<f32>> = vec![];
        gemm_itv_f::<f32, _>(&dev, &[], &[], &mut c, 0, 0, 0);
        let mut c2 = vec![Itv::<f32>::zero(); 2];
        // m=2, k=0, n=1: product over empty k is zero
        gemm_itv_f::<f32, _>(&dev, &[], &[], &mut c2, 2, 0, 1);
        assert_eq!(c2, vec![Itv::zero(); 2]);
    }

    #[test]
    #[should_panic(expected = "A must be m*k")]
    fn dimension_mismatch_panics() {
        let dev = Device::default();
        let mut c = vec![Itv::<f32>::zero(); 1];
        gemm_itv_f::<f32, _>(&dev, &[Itv::zero(); 3], &[1.0; 2], &mut c, 1, 2, 1);
    }

    #[test]
    fn tiling_boundary_exactness() {
        // n spanning multiple tile blocks with an odd remainder.
        let dev = Device::new(DeviceConfig::new().workers(2));
        let (m, k, n) = (2, 3, 512 + 7);
        let av: Vec<f32> = (0..m * k).map(|i| i as f32 * 0.5 - 1.0).collect();
        let bv: Vec<f32> = (0..k * n).map(|i| ((i % 13) as f32) * 0.25 - 1.5).collect();
        let a: Vec<Itv<f32>> = av.iter().map(|&x| pt(x)).collect();
        let mut c = vec![Itv::zero(); m * n];
        gemm_itv_f(&dev, &a, &bv, &mut c, m, k, n);
        let want = reference(&av, &bv, m, k, n);
        for (ci, wi) in c.iter().zip(&want) {
            assert!((ci.lo as f64) <= *wi && *wi <= (ci.hi as f64));
        }
    }
}
