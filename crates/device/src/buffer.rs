//! Device-memory buffers with allocation accounting.

use std::fmt;
use std::mem;
use std::ops::{Deref, DerefMut};

use crate::backend::{Backend, CpuSimBackend};
use crate::{Device, DeviceError};

/// A typed allocation charged against a device's memory capacity.
///
/// In the simulator the storage is ordinary host memory, but every buffer is
/// tracked against the device's configured capacity. This is what lets the
/// verifier's memory-aware chunking (paper §4.2, "Memory management") be
/// exercised and tested: on a constrained device, a too-large intermediate
/// bound matrix genuinely fails to allocate.
///
/// Transfers into *existing* device storage go through the backend's
/// [`Backend::htod`] / [`Backend::dtoh`] hooks ([`DeviceBuffer::from_slice`]
/// on a pool hit, [`DeviceBuffer::copy_to_host`]). Fresh uploads and
/// [`DeviceBuffer::into_vec`] instead *adopt/release* the host vector as the
/// device storage — possible only because the simulator's device memory is
/// host memory (this type `Deref`s to a slice for the same reason). A real
/// GPU port needs a device-resident buffer abstraction behind this API; see
/// the [`crate::backend`] module docs on what the trait does and does not
/// yet cover.
///
/// Dropping the buffer releases the accounting (destructors never fail).
///
/// # Example
///
/// ```
/// use gpupoly_device::{Device, DeviceConfig, DeviceBuffer};
///
/// let dev = Device::new(DeviceConfig::new().memory_capacity(4096));
/// let buf = DeviceBuffer::<f32>::zeroed(&dev, 512)?; // 2048 bytes
/// assert_eq!(dev.memory_in_use(), 2048);
/// assert!(DeviceBuffer::<f32>::zeroed(&dev, 1024).is_err()); // would exceed
/// drop(buf);
/// assert_eq!(dev.memory_in_use(), 0);
/// # Ok::<(), gpupoly_device::DeviceError>(())
/// ```
pub struct DeviceBuffer<T: Send + 'static, B: Backend = CpuSimBackend> {
    data: Vec<T>,
    bytes: usize,
    device: Device<B>,
    /// `true` when this allocation may be shelved in the device's buffer
    /// pool on drop (it was created while the pool was active).
    pooled: bool,
    /// `true` once [`DeviceBuffer::into_persistent`] has run: the bytes are
    /// counted in the device's resident-bytes gauge until freed.
    persistent: bool,
}

impl<T: Send + fmt::Debug, B: Backend> fmt::Debug for DeviceBuffer<T, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeviceBuffer")
            .field("len", &self.data.len())
            .field("bytes", &self.bytes)
            .field("pooled", &self.pooled)
            .finish()
    }
}

impl<T: Send + 'static, B: Backend> DeviceBuffer<T, B> {
    /// Charges `len` elements against the device, reclaiming shelved pool
    /// buffers once before giving up on an out-of-memory condition.
    fn charge(device: &Device<B>, len: usize) -> Result<usize, DeviceError> {
        let bytes = len.saturating_mul(mem::size_of::<T>());
        match device.track_alloc(bytes) {
            Ok(()) => Ok(bytes),
            Err(first) => {
                if device.buffer_pool_bytes() == 0 {
                    return Err(first);
                }
                device.buffer_pool_clear();
                device.track_alloc(bytes)?;
                Ok(bytes)
            }
        }
    }

    /// Allocates `len` default-initialized elements, reusing a shelved
    /// buffer of the same size class when the device's pool is active.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OutOfMemory`] when the allocation would exceed
    /// the device capacity.
    pub fn zeroed(device: &Device<B>, len: usize) -> Result<Self, DeviceError>
    where
        T: Clone + Default,
    {
        if let Some(mut data) = device.pool_take::<T>(len) {
            for x in &mut data {
                *x = T::default();
            }
            return Ok(Self {
                data,
                bytes: len.saturating_mul(mem::size_of::<T>()),
                device: device.clone(),
                pooled: true,
                persistent: false,
            });
        }
        device.note_pool_miss();
        let bytes = Self::charge(device, len)?;
        Ok(Self {
            data: vec![T::default(); len],
            bytes,
            device: device.clone(),
            pooled: device.buffer_pool_active(),
            persistent: false,
        })
    }

    /// Allocates `len` elements whose initial contents are unspecified
    /// (but valid) — for destinations the caller fully overwrites, e.g.
    /// gather targets. A pool hit skips the re-zeroing pass entirely;
    /// fresh allocations are still zero-initialized.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OutOfMemory`] when the allocation would exceed
    /// the device capacity.
    pub fn for_overwrite(device: &Device<B>, len: usize) -> Result<Self, DeviceError>
    where
        T: Clone + Default,
    {
        if let Some(data) = device.pool_take::<T>(len) {
            return Ok(Self {
                data,
                bytes: len.saturating_mul(mem::size_of::<T>()),
                device: device.clone(),
                pooled: true,
                persistent: false,
            });
        }
        Self::zeroed(device, len)
    }

    /// Uploads a host slice to the device (via [`Backend::htod`]), reusing a
    /// shelved buffer of the same size class when the device's pool is
    /// active.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OutOfMemory`] when the allocation would exceed
    /// the device capacity.
    pub fn from_slice(device: &Device<B>, src: &[T]) -> Result<Self, DeviceError>
    where
        T: Clone,
    {
        if let Some(mut data) = device.pool_take::<T>(src.len()) {
            device.backend().htod(src, &mut data);
            return Ok(Self {
                data,
                bytes: src.len().saturating_mul(mem::size_of::<T>()),
                device: device.clone(),
                pooled: true,
                persistent: false,
            });
        }
        device.note_pool_miss();
        let bytes = Self::charge(device, src.len())?;
        // Fresh upload: host staging vector handed to the device (the sim's
        // device memory *is* host memory, so this is the htod copy).
        Ok(Self {
            data: src.to_vec(),
            bytes,
            device: device.clone(),
            pooled: device.buffer_pool_active(),
            persistent: false,
        })
    }

    /// Wraps an existing host vector as a device allocation.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OutOfMemory`] when the allocation would exceed
    /// the device capacity.
    pub fn from_vec(device: &Device<B>, data: Vec<T>) -> Result<Self, DeviceError> {
        let bytes = Self::charge(device, data.len())?;
        Ok(Self {
            data,
            bytes,
            device: device.clone(),
            pooled: device.buffer_pool_active(),
            persistent: false,
        })
    }

    /// Exempts this buffer from pool recycling: on drop its memory is
    /// always returned to the device, never shelved. For long-lived
    /// allocations (e.g. packed model weights) that a transient buffer
    /// pool active on the same device must not capture. The bytes are
    /// additionally counted in the device's resident-bytes gauge
    /// ([`DeviceStats::resident_bytes`](crate::DeviceStats::resident_bytes))
    /// and its high-water mark until the buffer is freed.
    pub fn into_persistent(mut self) -> Self {
        self.pooled = false;
        if !self.persistent && self.bytes > 0 {
            self.persistent = true;
            self.device.stats().note_resident_alloc(self.bytes as u64);
        }
        self
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bytes charged against the device.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Read-only view of the contents.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the contents.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Downloads the contents into a host slice of the same length (via
    /// [`Backend::dtoh`]), keeping the device allocation alive.
    ///
    /// # Panics
    ///
    /// Panics when `dst.len() != self.len()`.
    pub fn copy_to_host(&self, dst: &mut [T])
    where
        T: Clone,
    {
        assert_eq!(dst.len(), self.data.len(), "copy_to_host length mismatch");
        self.device.backend().dtoh(&self.data, dst);
    }

    /// Downloads the contents, releasing the device allocation.
    pub fn into_vec(mut self) -> Vec<T> {
        if self.persistent {
            self.persistent = false;
            self.device.stats().note_resident_free(self.bytes as u64);
        }
        self.device.track_free(self.bytes);
        self.bytes = 0;
        mem::take(&mut self.data)
    }
}

impl<T: Send + 'static, B: Backend> Drop for DeviceBuffer<T, B> {
    fn drop(&mut self) {
        if self.bytes == 0 {
            return;
        }
        if self.persistent {
            self.device.stats().note_resident_free(self.bytes as u64);
        }
        if self.pooled {
            let data = mem::take(&mut self.data);
            if self.device.pool_put(data, self.bytes) {
                return; // charge stays with the shelved buffer
            }
        }
        self.device.track_free(self.bytes);
    }
}

impl<T: Send + 'static, B: Backend> Deref for DeviceBuffer<T, B> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.data
    }
}

impl<T: Send + 'static, B: Backend> DerefMut for DeviceBuffer<T, B> {
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceConfig;

    #[test]
    fn zeroed_is_default_initialized() {
        let dev = Device::default();
        let buf = DeviceBuffer::<f64>::zeroed(&dev, 16).unwrap();
        assert_eq!(buf.len(), 16);
        assert!(buf.iter().all(|&x| x == 0.0));
        assert_eq!(buf.bytes(), 16 * 8);
    }

    #[test]
    fn from_slice_round_trips() {
        let dev = Device::default();
        let buf = DeviceBuffer::from_slice(&dev, &[1u32, 2, 3]).unwrap();
        assert_eq!(buf.as_slice(), &[1, 2, 3]);
        let mut host = [0u32; 3];
        buf.copy_to_host(&mut host);
        assert_eq!(host, [1, 2, 3]);
        assert_eq!(buf.into_vec(), vec![1, 2, 3]);
        assert_eq!(dev.memory_in_use(), 0);
    }

    #[test]
    fn accounting_follows_lifetimes() {
        let dev = Device::new(DeviceConfig::new().memory_capacity(1024));
        let a = DeviceBuffer::<u8>::zeroed(&dev, 512).unwrap();
        assert_eq!(dev.memory_in_use(), 512);
        {
            let _b = DeviceBuffer::<u8>::zeroed(&dev, 512).unwrap();
            assert_eq!(dev.memory_in_use(), 1024);
            assert!(DeviceBuffer::<u8>::zeroed(&dev, 1).is_err());
        }
        assert_eq!(dev.memory_in_use(), 512);
        drop(a);
        assert_eq!(dev.memory_in_use(), 0);
        assert_eq!(dev.peak_memory(), 1024);
    }

    #[test]
    fn oversized_alloc_reports_numbers() {
        let dev = Device::new(DeviceConfig::new().memory_capacity(10));
        match DeviceBuffer::<u8>::zeroed(&dev, 11) {
            Err(DeviceError::OutOfMemory {
                requested,
                in_use,
                capacity,
            }) => {
                assert_eq!((requested, in_use, capacity), (11, 0, 10));
            }
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn pool_recycles_exact_size_classes() {
        let dev = Device::default();
        dev.buffer_pool_retain();
        let before_bytes = dev.stats().bytes_allocated();
        {
            let _a = DeviceBuffer::<u64>::zeroed(&dev, 100).unwrap();
        }
        assert_eq!(dev.buffer_pool_bytes(), 800, "buffer should be shelved");
        let in_use_shelved = dev.memory_in_use();
        {
            // Same size class: reused, no fresh bytes.
            let b = DeviceBuffer::<u64>::zeroed(&dev, 100).unwrap();
            assert!(b.iter().all(|&x| x == 0), "reused buffer must be zeroed");
            assert_eq!(dev.buffer_pool_bytes(), 0);
        }
        assert_eq!(
            dev.stats().bytes_allocated() - before_bytes,
            800,
            "second allocation must not charge fresh bytes"
        );
        assert_eq!(dev.stats().pool_hits(), 1);
        assert_eq!(dev.memory_in_use(), in_use_shelved);
        // Different element type, same byte size: not shared.
        {
            let _c = DeviceBuffer::<i64>::zeroed(&dev, 100).unwrap();
        }
        assert!(dev.stats().pool_misses() >= 1);
        dev.buffer_pool_release();
        assert_eq!(dev.memory_in_use(), 0, "release drains the pool");
        assert_eq!(dev.buffer_pool_bytes(), 0);
    }

    #[test]
    fn pool_reclaims_before_reporting_oom() {
        let dev = Device::new(DeviceConfig::new().memory_capacity(1024));
        dev.buffer_pool_retain();
        {
            let _a = DeviceBuffer::<u8>::zeroed(&dev, 1000).unwrap();
        }
        assert_eq!(dev.memory_in_use(), 1000, "shelved bytes stay charged");
        // A different size class would OOM unless the shelf is reclaimed.
        let b = DeviceBuffer::<u8>::zeroed(&dev, 512).unwrap();
        assert_eq!(dev.memory_in_use(), 512);
        drop(b);
        dev.buffer_pool_release();
        assert_eq!(dev.memory_in_use(), 0);
        // Truly hopeless allocations still fail.
        dev.buffer_pool_retain();
        assert!(DeviceBuffer::<u8>::zeroed(&dev, 4096).is_err());
        dev.buffer_pool_release();
    }

    #[test]
    fn inactive_pool_changes_nothing() {
        let dev = Device::default();
        {
            let _a = DeviceBuffer::<u32>::zeroed(&dev, 64).unwrap();
        }
        assert_eq!(dev.memory_in_use(), 0);
        assert_eq!(dev.buffer_pool_bytes(), 0);
        assert_eq!(dev.stats().pool_hits(), 0);
        assert_eq!(dev.stats().pool_misses(), 0);
    }

    #[test]
    fn reference_backend_frees_instead_of_shelving() {
        let dev = Device::reference(DeviceConfig::new().workers(1));
        dev.buffer_pool_retain();
        {
            let _a = DeviceBuffer::<u64, _>::zeroed(&dev, 100).unwrap();
        }
        assert_eq!(dev.buffer_pool_bytes(), 0, "pooling disabled: no shelving");
        assert_eq!(dev.memory_in_use(), 0, "dropped buffer freed immediately");
        assert_eq!(dev.stats().pool_hits(), 0);
        dev.buffer_pool_release();
    }

    #[test]
    fn persistent_buffers_drive_the_resident_gauge() {
        let dev = Device::default();
        assert_eq!(dev.stats().resident_bytes(), 0);
        let a = DeviceBuffer::from_slice(&dev, &[1.0f32; 256])
            .unwrap()
            .into_persistent();
        assert_eq!(dev.stats().resident_bytes(), 1024);
        assert_eq!(dev.stats().peak_resident_bytes(), 1024);
        let b = DeviceBuffer::from_slice(&dev, &[2.0f32; 128])
            .unwrap()
            .into_persistent()
            .into_persistent(); // idempotent: counted once
        assert_eq!(dev.stats().resident_bytes(), 1536);
        drop(a);
        assert_eq!(dev.stats().resident_bytes(), 512);
        assert_eq!(
            dev.stats().peak_resident_bytes(),
            1536,
            "peak is a high-water mark, not a gauge"
        );
        assert_eq!(b.into_vec().len(), 128);
        assert_eq!(dev.stats().resident_bytes(), 0);
        assert_eq!(dev.stats().peak_resident_bytes(), 1536);
    }

    #[test]
    fn mutation_through_deref() {
        let dev = Device::default();
        let mut buf = DeviceBuffer::from_slice(&dev, &[0i64; 4]).unwrap();
        buf[2] = 7;
        buf.as_mut_slice()[3] = 9;
        assert_eq!(buf.as_slice(), &[0, 0, 7, 9]);
    }
}
