//! Device-memory buffers with allocation accounting.

use std::fmt;
use std::mem;
use std::ops::{Deref, DerefMut};

use crate::{Device, DeviceError};

/// A typed allocation charged against a device's memory capacity.
///
/// In the simulator the storage is ordinary host memory, but every buffer is
/// tracked against the device's configured capacity. This is what lets the
/// verifier's memory-aware chunking (paper §4.2, "Memory management") be
/// exercised and tested: on a constrained device, a too-large intermediate
/// bound matrix genuinely fails to allocate.
///
/// Dropping the buffer releases the accounting (destructors never fail).
///
/// # Example
///
/// ```
/// use gpupoly_device::{Device, DeviceConfig, DeviceBuffer};
///
/// let dev = Device::new(DeviceConfig::new().memory_capacity(4096));
/// let buf = DeviceBuffer::<f32>::zeroed(&dev, 512)?; // 2048 bytes
/// assert_eq!(dev.memory_in_use(), 2048);
/// assert!(DeviceBuffer::<f32>::zeroed(&dev, 1024).is_err()); // would exceed
/// drop(buf);
/// assert_eq!(dev.memory_in_use(), 0);
/// # Ok::<(), gpupoly_device::DeviceError>(())
/// ```
pub struct DeviceBuffer<T> {
    data: Vec<T>,
    bytes: usize,
    device: Device,
}

impl<T: fmt::Debug> fmt::Debug for DeviceBuffer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeviceBuffer")
            .field("len", &self.data.len())
            .field("bytes", &self.bytes)
            .finish()
    }
}

impl<T> DeviceBuffer<T> {
    fn charge(device: &Device, len: usize) -> Result<usize, DeviceError> {
        let bytes = len.saturating_mul(mem::size_of::<T>());
        device.track_alloc(bytes)?;
        Ok(bytes)
    }

    /// Allocates `len` default-initialized elements.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OutOfMemory`] when the allocation would exceed
    /// the device capacity.
    pub fn zeroed(device: &Device, len: usize) -> Result<Self, DeviceError>
    where
        T: Clone + Default,
    {
        let bytes = Self::charge(device, len)?;
        Ok(Self {
            data: vec![T::default(); len],
            bytes,
            device: device.clone(),
        })
    }

    /// Uploads a host slice to the device.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OutOfMemory`] when the allocation would exceed
    /// the device capacity.
    pub fn from_slice(device: &Device, src: &[T]) -> Result<Self, DeviceError>
    where
        T: Clone,
    {
        let bytes = Self::charge(device, src.len())?;
        Ok(Self {
            data: src.to_vec(),
            bytes,
            device: device.clone(),
        })
    }

    /// Wraps an existing host vector as a device allocation.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OutOfMemory`] when the allocation would exceed
    /// the device capacity.
    pub fn from_vec(device: &Device, data: Vec<T>) -> Result<Self, DeviceError> {
        let bytes = Self::charge(device, data.len())?;
        Ok(Self {
            data,
            bytes,
            device: device.clone(),
        })
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bytes charged against the device.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Read-only view of the contents.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the contents.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Downloads the contents, releasing the device allocation.
    pub fn into_vec(mut self) -> Vec<T> {
        self.device.track_free(self.bytes);
        self.bytes = 0;
        mem::take(&mut self.data)
    }
}

impl<T> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        self.device.track_free(self.bytes);
    }
}

impl<T> Deref for DeviceBuffer<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.data
    }
}

impl<T> DerefMut for DeviceBuffer<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceConfig;

    #[test]
    fn zeroed_is_default_initialized() {
        let dev = Device::default();
        let buf = DeviceBuffer::<f64>::zeroed(&dev, 16).unwrap();
        assert_eq!(buf.len(), 16);
        assert!(buf.iter().all(|&x| x == 0.0));
        assert_eq!(buf.bytes(), 16 * 8);
    }

    #[test]
    fn from_slice_round_trips() {
        let dev = Device::default();
        let buf = DeviceBuffer::from_slice(&dev, &[1u32, 2, 3]).unwrap();
        assert_eq!(buf.as_slice(), &[1, 2, 3]);
        assert_eq!(buf.into_vec(), vec![1, 2, 3]);
        assert_eq!(dev.memory_in_use(), 0);
    }

    #[test]
    fn accounting_follows_lifetimes() {
        let dev = Device::new(DeviceConfig::new().memory_capacity(1024));
        let a = DeviceBuffer::<u8>::zeroed(&dev, 512).unwrap();
        assert_eq!(dev.memory_in_use(), 512);
        {
            let _b = DeviceBuffer::<u8>::zeroed(&dev, 512).unwrap();
            assert_eq!(dev.memory_in_use(), 1024);
            assert!(DeviceBuffer::<u8>::zeroed(&dev, 1).is_err());
        }
        assert_eq!(dev.memory_in_use(), 512);
        drop(a);
        assert_eq!(dev.memory_in_use(), 0);
        assert_eq!(dev.peak_memory(), 1024);
    }

    #[test]
    fn oversized_alloc_reports_numbers() {
        let dev = Device::new(DeviceConfig::new().memory_capacity(10));
        match DeviceBuffer::<u8>::zeroed(&dev, 11) {
            Err(DeviceError::OutOfMemory {
                requested,
                in_use,
                capacity,
            }) => {
                assert_eq!((requested, in_use, capacity), (11, 0, 10));
            }
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn mutation_through_deref() {
        let dev = Device::default();
        let mut buf = DeviceBuffer::from_slice(&dev, &[0i64; 4]).unwrap();
        buf[2] = 7;
        buf.as_mut_slice()[3] = 9;
        assert_eq!(buf.as_slice(), &[0, 0, 7, 9]);
    }
}
