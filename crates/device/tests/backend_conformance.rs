//! Both in-tree backends pass the shared conformance suite — the same
//! entry point a CUDA/wgpu port must pass before it may be wired into
//! `gpupoly_core::Engine` (see README, "Adding a backend").

use gpupoly_device::{conformance, Device, DeviceConfig, ReferenceBackend};

#[test]
fn cpusim_backend_conforms() {
    conformance::assert_backend_conformance(Device::new);
}

#[test]
fn reference_backend_conforms() {
    conformance::assert_backend_conformance(Device::reference);
}

#[test]
fn backends_are_bit_identical_on_shared_inputs() {
    // The conformance suite checks each backend against the straight-line
    // oracle; this closes the triangle by checking the two backends against
    // each other on a spread of shapes, including the tiled path.
    use gpupoly_device::gemm;
    use gpupoly_interval::Itv;

    let cpu = Device::new(DeviceConfig::new().workers(3));
    let naive = Device::with_backend(ReferenceBackend, DeviceConfig::new().workers(1));
    for (m, k, n) in [(1, 1, 1), (3, 8, 5), (2, 17, 600), (6, 2, 3)] {
        let a: Vec<Itv<f32>> = (0..m * k)
            .map(|i| Itv::point(((i * 37 % 19) as f32 - 9.0) * 0.1))
            .collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| ((i * 53 % 23) as f32 - 11.0) * 0.05)
            .collect();
        let mut c1 = vec![Itv::zero(); m * n];
        let mut c2 = vec![Itv::zero(); m * n];
        gemm::gemm_itv_f(&cpu, &a, &b, &mut c1, m, k, n);
        gemm::gemm_itv_f(&naive, &a, &b, &mut c2, m, k, n);
        for (x, y) in c1.iter().zip(&c2) {
            assert_eq!(x.lo.to_bits(), y.lo.to_bits(), "{m}x{k}x{n} lo drifted");
            assert_eq!(x.hi.to_bits(), y.hi.to_bits(), "{m}x{k}x{n} hi drifted");
        }
    }
}
