//! Property-based tests of the simulated-GPU primitives: parallel scan and
//! compaction against serial references, and GEMM containment soundness.

use gpupoly_device::{gemm, scan, Device, DeviceConfig};
use gpupoly_interval::Itv;
use proptest::prelude::*;

fn device() -> Device {
    Device::new(DeviceConfig::new().workers(3))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scan_matches_serial(xs in prop::collection::vec(0u32..7, 0..2000)) {
        let dev = device();
        let (got, total) = scan::exclusive_scan(&dev, &xs);
        let mut acc = 0u32;
        for (i, &x) in xs.iter().enumerate() {
            prop_assert_eq!(got[i], acc);
            acc += x;
        }
        prop_assert_eq!(total, acc);
    }

    #[test]
    fn compact_indices_matches_filter(keep in prop::collection::vec(any::<bool>(), 0..1500)) {
        let dev = device();
        let got = scan::compact_indices(&dev, &keep);
        let want: Vec<u32> = keep
            .iter()
            .enumerate()
            .filter_map(|(i, &k)| k.then_some(i as u32))
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn compact_rows_is_a_stable_filter(
        keep in prop::collection::vec(any::<bool>(), 1..200),
        row_len in 1usize..8,
    ) {
        let dev = device();
        let src: Vec<u32> = (0..keep.len() * row_len).map(|i| i as u32).collect();
        let (mat, idx) = scan::compact_rows(&dev, &src, row_len, &keep);
        prop_assert_eq!(mat.len(), idx.len() * row_len);
        // Index array is strictly increasing (stability) and flags hold.
        for w in idx.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        for (j, &i) in idx.iter().enumerate() {
            prop_assert!(keep[i as usize]);
            prop_assert_eq!(
                &mat[j * row_len..(j + 1) * row_len],
                &src[i as usize * row_len..(i as usize + 1) * row_len]
            );
        }
    }

    #[test]
    fn interval_gemm_contains_f64_reference(
        m in 1usize..6, k in 1usize..10, n in 1usize..8,
        seed in 0u64..1000,
    ) {
        let dev = device();
        let mix = |i: usize, s: u64| (((i as u64 + 1) * (s + 3) * 2654435761) % 2000) as f32 / 1000.0 - 1.0;
        let av: Vec<f32> = (0..m * k).map(|i| mix(i, seed)).collect();
        let bv: Vec<f32> = (0..k * n).map(|i| mix(i, seed + 1)).collect();
        let a: Vec<Itv<f32>> = av.iter().map(|&x| Itv::point(x)).collect();
        let mut c = vec![Itv::zero(); m * n];
        gemm::gemm_itv_f(&dev, &a, &bv, &mut c, m, k, n);
        for i in 0..m {
            for j in 0..n {
                let exact: f64 = (0..k)
                    .map(|kk| av[i * k + kk] as f64 * bv[kk * n + j] as f64)
                    .sum();
                let got = c[i * n + j];
                prop_assert!(
                    (got.lo as f64) <= exact && exact <= (got.hi as f64),
                    "C[{i},{j}] = {got} misses {exact}"
                );
            }
        }
    }

    #[test]
    fn gemm_acc_equals_gemm_plus_initial(
        m in 1usize..4, k in 1usize..6, n in 1usize..6,
    ) {
        let dev = device();
        let a: Vec<Itv<f32>> = (0..m * k).map(|i| Itv::point((i % 5) as f32 - 2.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i % 3) as f32 - 1.0).collect();
        let init: Vec<Itv<f32>> = (0..m * n).map(|i| Itv::point(i as f32 * 0.5)).collect();
        let mut acc = init.clone();
        gemm::gemm_itv_f_acc(&dev, &a, &b, &mut acc, m, k, n);
        let mut fresh = vec![Itv::zero(); m * n];
        gemm::gemm_itv_f(&dev, &a, &b, &mut fresh, m, k, n);
        for ((z, f), i0) in acc.iter().zip(&fresh).zip(&init) {
            let sum = f.add(*i0);
            // same operations in a different association order: equal up to ulps
            prop_assert!((z.lo - sum.lo).abs() <= 1e-4 && (z.hi - sum.hi).abs() <= 1e-4);
        }
    }

    #[test]
    fn memory_accounting_never_exceeds_capacity(
        sizes in prop::collection::vec(1usize..2000, 1..30),
        cap in 1000usize..10_000,
    ) {
        use gpupoly_device::DeviceBuffer;
        let dev = Device::new(DeviceConfig::new().workers(1).memory_capacity(cap));
        let mut live = Vec::new();
        for (i, &s) in sizes.iter().enumerate() {
            match DeviceBuffer::<u8>::zeroed(&dev, s) {
                Ok(b) => live.push(b),
                Err(_) => prop_assert!(dev.memory_in_use() + s > cap),
            }
            prop_assert!(dev.memory_in_use() <= cap);
            if i % 3 == 0 && !live.is_empty() {
                live.remove(0);
            }
        }
        drop(live);
        prop_assert_eq!(dev.memory_in_use(), 0);
        prop_assert!(dev.peak_memory() <= cap);
    }
}
