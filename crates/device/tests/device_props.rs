//! Property-based tests of the simulated-GPU primitives, driven through
//! the backend conformance suite so every randomly generated case is
//! checked on **both** in-tree backends: the tiled/parallel
//! [`CpuSimBackend`] and the straight-line [`ReferenceBackend`]. The
//! conformance checkers pin bit-identity against scalar oracles (and
//! containment soundness for the interval GEMM), so these properties are
//! strictly stronger than the original per-kernel assertions.

use gpupoly_device::{conformance, gemm, CpuSimBackend, Device, DeviceConfig};
use gpupoly_device::{Backend, ReferenceBackend};
use gpupoly_interval::Itv;
use proptest::prelude::*;

fn cpusim() -> Device<CpuSimBackend> {
    Device::new(DeviceConfig::new().workers(3))
}

fn reference() -> Device<ReferenceBackend> {
    Device::reference(DeviceConfig::new().workers(1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn scan_matches_serial_on_both_backends(
        xs in prop::collection::vec(0u32..7, 0..2000),
    ) {
        conformance::check_scan_against_oracle(&cpusim(), &xs);
        conformance::check_scan_against_oracle(&reference(), &xs);
    }

    #[test]
    fn compaction_matches_filter_on_both_backends(
        keep in prop::collection::vec(any::<bool>(), 0..1500),
        row_len in 1usize..8,
    ) {
        conformance::check_compaction_against_oracle(&cpusim(), &keep, row_len);
        conformance::check_compaction_against_oracle(&reference(), &keep, row_len);
    }

    #[test]
    fn gemm_family_matches_oracles_on_both_backends(
        m in 0usize..6, k in 0usize..12, n in 0usize..9,
        seed in 0u64..1000,
    ) {
        // Shapes include empty (m/k/n = 0), 1-element and non-square cases.
        conformance::check_gemm_against_oracle(&cpusim(), m, k, n, seed);
        conformance::check_gemm_against_oracle(&reference(), m, k, n, seed);
    }

    #[test]
    fn gemm_results_bit_identical_across_backends(
        m in 1usize..5, k in 1usize..10, n in 1usize..8,
        seed in 0u64..1000,
    ) {
        let mix = |i: usize, s: u64| (((i as u64 + 1) * (s + 3) * 2654435761) % 2000) as f32 / 1000.0 - 1.0;
        let a: Vec<Itv<f32>> = (0..m * k).map(|i| Itv::point(mix(i, seed))).collect();
        let b: Vec<f32> = (0..k * n).map(|i| mix(i, seed + 1)).collect();
        let mut c1 = vec![Itv::zero(); m * n];
        let mut c2 = vec![Itv::zero(); m * n];
        gemm::gemm_itv_f(&cpusim(), &a, &b, &mut c1, m, k, n);
        gemm::gemm_itv_f(&reference(), &a, &b, &mut c2, m, k, n);
        for (x, y) in c1.iter().zip(&c2) {
            prop_assert_eq!(x.lo.to_bits(), y.lo.to_bits());
            prop_assert_eq!(x.hi.to_bits(), y.hi.to_bits());
        }
    }

    #[test]
    fn gemm_acc_equals_gemm_plus_initial(
        m in 1usize..4, k in 1usize..6, n in 1usize..6,
    ) {
        let dev = cpusim();
        let a: Vec<Itv<f32>> = (0..m * k).map(|i| Itv::point((i % 5) as f32 - 2.0)).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i % 3) as f32 - 1.0).collect();
        let init: Vec<Itv<f32>> = (0..m * n).map(|i| Itv::point(i as f32 * 0.5)).collect();
        let mut acc = init.clone();
        gemm::gemm_itv_f_acc(&dev, &a, &b, &mut acc, m, k, n);
        let mut fresh = vec![Itv::zero(); m * n];
        gemm::gemm_itv_f(&dev, &a, &b, &mut fresh, m, k, n);
        for ((z, f), i0) in acc.iter().zip(&fresh).zip(&init) {
            let sum = f.add(*i0);
            // same operations in a different association order: equal up to ulps
            prop_assert!((z.lo - sum.lo).abs() <= 1e-4 && (z.hi - sum.hi).abs() <= 1e-4);
        }
    }

    #[test]
    fn memory_accounting_never_exceeds_capacity(
        sizes in prop::collection::vec(1usize..2000, 1..30),
        cap in 1000usize..10_000,
    ) {
        use gpupoly_device::DeviceBuffer;
        let dev = Device::new(DeviceConfig::new().workers(1).memory_capacity(cap));
        let mut live = Vec::new();
        for (i, &s) in sizes.iter().enumerate() {
            match DeviceBuffer::<u8>::zeroed(&dev, s) {
                Ok(b) => live.push(b),
                Err(_) => prop_assert!(dev.memory_in_use() + s > cap),
            }
            prop_assert!(dev.memory_in_use() <= cap);
            if i % 3 == 0 && !live.is_empty() {
                live.remove(0);
            }
        }
        drop(live);
        prop_assert_eq!(dev.memory_in_use(), 0);
        prop_assert!(dev.peak_memory() <= cap);
    }
}

#[test]
fn compaction_edge_masks_on_both_backends() {
    fn masks<B: Backend>(dev: &Device<B>) {
        conformance::check_compaction_against_oracle(dev, &[], 3);
        conformance::check_compaction_against_oracle(dev, &[true], 1);
        conformance::check_compaction_against_oracle(dev, &[false], 1);
        conformance::check_compaction_against_oracle(dev, &[false; 257], 2);
        conformance::check_compaction_against_oracle(dev, &[true; 257], 2);
    }
    masks(&cpusim());
    masks(&reference());
}
