//! Regenerates Table 4: the big residual networks (ResNetTiny, ResNet18,
//! SkipNet18, ResNet34) — our reimplementation of CR-IBP vs GPUPoly.
//!
//! Run: `cargo run -p gpupoly-bench --release --bin table4 [-- --scale 0.08 --images 12]`

use gpupoly_bench::{fmt_duration, fmt_eps, prepare_model, run_crown_ibp, run_gpupoly, BenchOpts};
use gpupoly_core::VerifyConfig;
use gpupoly_nn::zoo;

fn main() {
    let opts = BenchOpts::from_args();
    let device = opts.device();
    println!(
        "Table 4: residual networks, our CR-IBP vs GPUPoly ({} images, scale={})",
        opts.images, opts.scale
    );
    println!(
        "{:<12} {:>9} {:<8} {:>7} {:>6} | {:>8} {:>8} | {:>12} {:>12}",
        "Model",
        "#Neurons",
        "Training",
        "eps",
        "#Cand",
        "#V CRIBP",
        "#V GPoly",
        "t~ CR-IBP",
        "t~ GPUPoly"
    );
    for spec in zoo::table1_specs()
        .into_iter()
        .filter(|s| s.arch.is_residual())
    {
        let (net, test) = prepare_model(&spec, &opts);
        let crown = run_crown_ibp(&net, &test, spec.eps);
        let gpupoly = run_gpupoly(&net, &test, spec.eps, &device, VerifyConfig::default());
        assert_eq!(crown.candidates, gpupoly.candidates);
        println!(
            "{:<12} {:>9} {:<8} {:>7} {:>6} | {:>8} {:>8} | {:>12} {:>12}",
            spec.arch.name(),
            net.neuron_count(),
            spec.training.name(),
            fmt_eps(spec.eps),
            gpupoly.candidates,
            crown.verified,
            gpupoly.verified,
            fmt_duration(crown.median_time()),
            fmt_duration(gpupoly.median_time()),
        );
    }
    println!();
    println!("Expected shape (paper): CR-IBP proves 0 on the PGD-trained nets while");
    println!("GPUPoly proves most candidates; on DiffAI nets GPUPoly still proves");
    println!("more, and its median runtime collapses (early termination).");
}
