//! Regenerates Table 3: CPU DeepPoly vs GPUPoly on six medium networks —
//! same precision, very different runtimes.
//!
//! Run: `cargo run -p gpupoly-bench --release --bin table3 [-- --scale 0.12 --images 16]`

use gpupoly_bench::{fmt_duration, prepare_model, run_deeppoly_cpu, run_gpupoly, BenchOpts};
use gpupoly_core::VerifyConfig;
use gpupoly_nn::zoo;

fn main() {
    let opts = BenchOpts::from_args();
    let device = opts.device();
    println!(
        "Table 3: DeepPoly (CPU, sparse) vs GPUPoly ({} images, scale={})",
        opts.images, opts.scale
    );
    println!(
        "{:<22} {:>6} | {:>9} {:>9} | {:>12} {:>12} {:>9}",
        "Model", "#Cand", "#V DP", "#V GPoly", "t~ DeepPoly", "t~ GPUPoly", "speedup"
    );
    // The six Table-3 rows: three MNIST + three CIFAR medium nets.
    let wanted = [
        "mnist_6x500",
        "mnist_convbig_diffai",
        "mnist_convsuper",
        "cifar_6x500",
        "cifar_convbig_diffai",
        "cifar_convlarge_diffai",
    ];
    for spec in zoo::table1_specs()
        .into_iter()
        .filter(|s| wanted.contains(&s.id))
    {
        let (net, test) = prepare_model(&spec, &opts);
        let cpu = run_deeppoly_cpu(&net, &test, spec.eps);
        let gpupoly = run_gpupoly(&net, &test, spec.eps, &device, VerifyConfig::default());
        assert_eq!(cpu.candidates, gpupoly.candidates);
        let speedup = if gpupoly.median_time().as_nanos() > 0 {
            cpu.median_time().as_secs_f64() / gpupoly.median_time().as_secs_f64()
        } else {
            f64::NAN
        };
        println!(
            "{:<22} {:>6} | {:>9} {:>9} | {:>12} {:>12} {:>8.1}x",
            spec.id,
            gpupoly.candidates,
            cpu.verified,
            gpupoly.verified,
            fmt_duration(cpu.median_time()),
            fmt_duration(gpupoly.median_time()),
            speedup,
        );
        assert_eq!(
            cpu.verified, gpupoly.verified,
            "paper: DeepPoly and GPUPoly have identical precision"
        );
    }
    println!();
    println!("Expected shape (paper): identical #verified in every row; GPUPoly");
    println!("faster, with the largest gaps on the DiffAI-trained conv nets where");
    println!("early termination skips most of the CPU baseline's work.");
}
