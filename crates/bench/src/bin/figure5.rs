//! Regenerates Figure 5: the cumulative distribution function of GPUPoly's
//! per-image runtimes on each network.
//!
//! The paper's qualitative finding: runtimes on normally/PGD-trained nets
//! are roughly normally distributed, while DiffAI/CR-IBP-trained nets show
//! a tight majority (early termination fires) plus a long right tail (the
//! few images where it does not). Output is one CSV block per network
//! (`runtime_ms,cum_fraction`), plus a tail-ratio summary.
//!
//! Run: `cargo run -p gpupoly-bench --release --bin figure5 [-- --scale 0.12 --images 24]`

use gpupoly_bench::{cdf_series, prepare_model, run_gpupoly, BenchOpts};
use gpupoly_core::VerifyConfig;
use gpupoly_nn::zoo;

fn main() {
    let opts = BenchOpts::from_args();
    let device = opts.device();
    println!(
        "Figure 5: CDF of GPUPoly runtimes per network ({} images, scale={})",
        opts.images, opts.scale
    );
    let mut summaries = Vec::new();
    for spec in zoo::table1_specs() {
        let (net, test) = prepare_model(&spec, &opts);
        let row = run_gpupoly(&net, &test, spec.eps, &device, VerifyConfig::default());
        if row.times.is_empty() {
            println!("\n# {} — no candidates", spec.id);
            continue;
        }
        let cdf = cdf_series(&row.times);
        println!("\n# {} ({} trained)", spec.id, spec.training.name());
        println!("runtime_ms,cum_fraction");
        for (ms, frac) in &cdf {
            println!("{ms:.3},{frac:.4}");
        }
        let p50 = cdf[cdf.len() / 2].0;
        let max = cdf.last().expect("non-empty").0;
        summaries.push((spec.id, spec.training, max / p50.max(1e-9)));
    }
    println!("\n# Tail summary: max/median runtime ratio per network");
    println!("# (paper: large ratios for DiffAI/CR-IBP nets, small for Normal/PGD)");
    for (id, training, ratio) in summaries {
        println!("{id} ({}): {ratio:.1}x", training.name());
    }
}
