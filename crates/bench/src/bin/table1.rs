//! Regenerates Table 1: the network inventory.
//!
//! For each of the paper's 16 networks: dataset, model, type, neuron and
//! layer counts at the chosen `--scale` (and at scale 1.0 analytically),
//! training regime, plus the paper's reported counts for comparison.
//!
//! Run: `cargo run -p gpupoly-bench --release --bin table1 [-- --scale 0.12]`

use gpupoly_bench::BenchOpts;
use gpupoly_nn::zoo;

fn main() {
    let opts = BenchOpts::from_args();
    println!(
        "Table 1: Neural networks used in the experiments (scale={})",
        opts.scale
    );
    println!(
        "{:<8} {:<12} {:<16} {:>12} {:>12} {:>8} {:>9} {:>9}",
        "Dataset", "Model", "Type", "#Neurons", "(paper)", "#Layers", "(paper)", "Training"
    );
    for spec in zoo::table1_specs() {
        let net = zoo::build_arch(spec.arch, spec.dataset, opts.scale, opts.seed)
            .expect("zoo architecture must build");
        println!(
            "{:<8} {:<12} {:<16} {:>12} {:>12} {:>8} {:>9} {:>9}",
            spec.dataset.name(),
            spec.arch.name(),
            spec.arch.type_name(),
            net.neuron_count(),
            spec.paper_neurons,
            net.layer_count(),
            spec.paper_layers,
            spec.training.name(),
        );
    }
    println!();
    println!("Full-scale counts (scale=1.0, for the paper comparison):");
    println!(
        "{:<8} {:<12} {:>12} {:>12} {:>8} {:>9}",
        "Dataset", "Model", "#Neurons", "(paper)", "#Layers", "(paper)"
    );
    let mut seen = std::collections::HashSet::new();
    for spec in zoo::table1_specs() {
        if !seen.insert((spec.dataset.name(), spec.arch.name())) {
            continue;
        }
        let net = zoo::build_arch(spec.arch, spec.dataset, 1.0, opts.seed)
            .expect("zoo architecture must build");
        println!(
            "{:<8} {:<12} {:>12} {:>12} {:>8} {:>9}",
            spec.dataset.name(),
            spec.arch.name(),
            net.neuron_count(),
            spec.paper_neurons,
            net.layer_count(),
            spec.paper_layers,
        );
    }
}
