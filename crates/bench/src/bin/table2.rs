//! Regenerates Table 2: CR-IBP vs GPUPoly on the medium (fully-connected
//! and convolutional) networks — #candidates, #verified and median runtime
//! per verifier.
//!
//! The paper runs the full 10,000-image test sets; pass `--images` to set
//! the per-network image count here (default keeps CPU runtimes friendly).
//!
//! Run: `cargo run -p gpupoly-bench --release --bin table2 [-- --scale 0.12 --images 24]`

use gpupoly_bench::{fmt_duration, fmt_eps, prepare_model, run_crown_ibp, run_gpupoly, BenchOpts};
use gpupoly_core::VerifyConfig;
use gpupoly_nn::zoo;

fn main() {
    let opts = BenchOpts::from_args();
    let device = opts.device();
    println!(
        "Table 2: CR-IBP vs GPUPoly on medium networks ({} images, scale={})",
        opts.images, opts.scale
    );
    println!(
        "{:<8} {:<14} {:>9} {:>7} {:>6} | {:>8} {:>8} | {:>12} {:>12}",
        "Dataset",
        "Model",
        "#Neurons",
        "eps",
        "#Cand",
        "#V CRIBP",
        "#V GPoly",
        "t~ CR-IBP",
        "t~ GPUPoly"
    );
    for spec in zoo::table1_specs()
        .into_iter()
        .filter(|s| !s.arch.is_residual())
    {
        let (net, test) = prepare_model(&spec, &opts);
        let crown = run_crown_ibp(&net, &test, spec.eps);
        let gpupoly = run_gpupoly(&net, &test, spec.eps, &device, VerifyConfig::default());
        assert_eq!(crown.candidates, gpupoly.candidates);
        println!(
            "{:<8} {:<14} {:>9} {:>7} {:>6} | {:>8} {:>8} | {:>12} {:>12}",
            spec.dataset.name(),
            spec.id
                .trim_start_matches("mnist_")
                .trim_start_matches("cifar_"),
            net.neuron_count(),
            fmt_eps(spec.eps),
            gpupoly.candidates,
            crown.verified,
            gpupoly.verified,
            fmt_duration(crown.median_time()),
            fmt_duration(gpupoly.median_time()),
        );
    }
    println!();
    println!("Expected shape (paper): GPUPoly verifies >= CR-IBP everywhere; CR-IBP");
    println!("verifies ~0 on normally-trained nets; CR-IBP is faster per instance,");
    println!("and GPUPoly's gap narrows sharply on robustly-trained nets (early term).");
}
