//! Shared harness for the benchmark binaries that regenerate every table
//! and figure of the GPUPoly evaluation (see `DESIGN.md` for the
//! experiment index and `EXPERIMENTS.md` for recorded results).
//!
//! The binaries (`table1` … `table4`, `figure5`) build the paper's networks
//! at a configurable `--scale`, train them under their Table-1 regime on
//! synthetic data (cached under `target/gpupoly-models/`), and then run the
//! verifiers exactly as the paper does: filter candidate images (those the
//! network classifies correctly), verify each candidate, and report
//! candidate counts, verified counts and median runtimes.
//!
//! Absolute numbers are CPU-simulator numbers, not V100 numbers; the
//! comparisons that matter are the *relative* ones (who verifies more, who
//! is faster on which training regime, how runtimes distribute).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use gpupoly_baselines::{ibp, CrownIbp, DeepPolyCpu};
use gpupoly_core::{GpuPoly, VerifyConfig};
use gpupoly_device::{Device, DeviceConfig};
use gpupoly_nn::zoo::{self, ModelSpec};
use gpupoly_nn::Network;
use gpupoly_train::{data, trainer};

/// Options shared by the benchmark binaries.
#[derive(Clone, Debug)]
pub struct BenchOpts {
    /// Width multiplier for every architecture (1.0 = paper size).
    pub scale: f64,
    /// Test images per network.
    pub images: usize,
    /// Training samples.
    pub train_samples: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Device workers (None = all cores).
    pub workers: Option<usize>,
    /// Base seed.
    pub seed: u64,
}

impl Default for BenchOpts {
    fn default() -> Self {
        Self {
            scale: 0.12,
            images: 24,
            train_samples: 240,
            epochs: 3,
            workers: None,
            seed: 7,
        }
    }
}

impl BenchOpts {
    /// Parses `--scale X --images N --train-samples N --epochs N --workers N
    /// --seed N` from `std::env::args`, falling back to defaults.
    ///
    /// # Panics
    ///
    /// Panics on malformed values (these are developer-facing binaries).
    pub fn from_args() -> Self {
        let mut opts = Self::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i + 1 < args.len() {
            let v = &args[i + 1];
            match args[i].as_str() {
                "--scale" => opts.scale = v.parse().expect("bad --scale"),
                "--images" => opts.images = v.parse().expect("bad --images"),
                "--train-samples" => opts.train_samples = v.parse().expect("bad --train-samples"),
                "--epochs" => opts.epochs = v.parse().expect("bad --epochs"),
                "--workers" => opts.workers = Some(v.parse().expect("bad --workers")),
                "--seed" => opts.seed = v.parse().expect("bad --seed"),
                other => panic!("unknown flag {other}"),
            }
            i += 2;
        }
        opts
    }

    /// The simulated device for these options.
    pub fn device(&self) -> Device {
        let mut cfg = DeviceConfig::new().name("sim-v100");
        if let Some(w) = self.workers {
            cfg = cfg.workers(w);
        }
        Device::new(cfg)
    }
}

fn cache_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/gpupoly-models");
    fs::create_dir_all(&dir).ok();
    dir
}

/// Builds and trains the network of `spec` under its Table-1 regime,
/// caching the trained weights on disk keyed by all relevant options.
/// Returns the network and its held-out test images.
pub fn prepare_model(spec: &ModelSpec, opts: &BenchOpts) -> (Network<f32>, data::Dataset) {
    let mut full = data::synthetic(
        spec.dataset,
        opts.train_samples + opts.images,
        opts.seed ^ 0xda7a,
    );
    let test = full.split_off(opts.images);
    let train_set = full;
    // Bump when zoo architectures change so stale caches are ignored.
    const CACHE_VERSION: u32 = 2;
    let key = format!(
        "v{CACHE_VERSION}_{}_s{}_n{}_e{}_seed{}",
        spec.id, opts.scale, opts.train_samples, opts.epochs, opts.seed
    );
    let path = cache_dir().join(format!("{key}.json"));
    if let Ok(txt) = fs::read_to_string(&path) {
        if let Ok(net) = Network::<f32>::from_json(&txt) {
            return (net, test);
        }
    }
    let mut net = zoo::build_arch(spec.arch, spec.dataset, opts.scale, opts.seed)
        .expect("zoo architecture must build");
    let cfg = trainer::TrainConfig {
        epochs: opts.epochs,
        batch: 32,
        lr: 0.02,
        momentum: 0.9,
        eps: spec.eps,
        seed: opts.seed,
        regime: spec.training,
    };
    trainer::train(&mut net, &train_set, &cfg);
    if let Ok(txt) = net.to_json() {
        fs::write(&path, txt).ok();
    }
    (net, test)
}

/// Per-verifier results over one network's test images.
#[derive(Clone, Debug, Default)]
pub struct VerifyRow {
    /// Correctly classified images (the paper's "#Candidates").
    pub candidates: usize,
    /// Candidates proven robust.
    pub verified: usize,
    /// Per-candidate verification time.
    pub times: Vec<Duration>,
}

impl VerifyRow {
    /// Median runtime over candidates (zero when none).
    pub fn median_time(&self) -> Duration {
        if self.times.is_empty() {
            return Duration::ZERO;
        }
        let mut t = self.times.clone();
        t.sort_unstable();
        t[t.len() / 2]
    }
}

fn run_over_candidates(
    net: &Network<f32>,
    test: &data::Dataset,
    mut verify: impl FnMut(&[f32], usize) -> bool,
) -> VerifyRow {
    let mut row = VerifyRow::default();
    for (img, &label) in test.images.iter().zip(&test.labels) {
        if net.classify(img) != label {
            continue;
        }
        row.candidates += 1;
        let t0 = Instant::now();
        let ok = verify(img, label);
        row.times.push(t0.elapsed());
        if ok {
            row.verified += 1;
        }
    }
    row
}

/// Runs GPUPoly on every candidate image.
pub fn run_gpupoly(
    net: &Network<f32>,
    test: &data::Dataset,
    eps: f32,
    device: &Device,
    cfg: VerifyConfig,
) -> VerifyRow {
    let verifier = GpuPoly::new(device.clone(), net, cfg).expect("verifier construction");
    run_over_candidates(net, test, |img, label| {
        verifier
            .verify_robustness(img, label, eps)
            .expect("verification should not error")
            .verified
    })
}

/// Runs the CROWN-IBP baseline on every candidate image.
pub fn run_crown_ibp(net: &Network<f32>, test: &data::Dataset, eps: f32) -> VerifyRow {
    let verifier = CrownIbp::new(net);
    run_over_candidates(net, test, |img, label| {
        verifier.verify_robustness(img, label, eps).verified
    })
}

/// Runs the sparse CPU DeepPoly baseline on every candidate image.
pub fn run_deeppoly_cpu(net: &Network<f32>, test: &data::Dataset, eps: f32) -> VerifyRow {
    let verifier = DeepPolyCpu::new(net);
    run_over_candidates(net, test, |img, label| {
        verifier.verify_robustness(img, label, eps).verified
    })
}

/// Runs plain IBP on every candidate image.
pub fn run_ibp(net: &Network<f32>, test: &data::Dataset, eps: f32) -> VerifyRow {
    run_over_candidates(net, test, |img, label| {
        ibp::verify_robustness(net, img, label, eps).verified
    })
}

/// Human formatting for durations (µs/ms/s like the paper's tables).
pub fn fmt_duration(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us} µs")
    } else if us < 1_000_000 {
        format!("{:.2} ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2} s", us as f64 / 1_000_000.0)
    }
}

/// Empirical CDF of runtimes: `(milliseconds, cumulative fraction)` points.
pub fn cdf_series(times: &[Duration]) -> Vec<(f64, f64)> {
    let mut ms: Vec<f64> = times.iter().map(|t| t.as_secs_f64() * 1e3).collect();
    ms.sort_by(|a, b| a.partial_cmp(b).expect("no NaN durations"));
    let n = ms.len().max(1) as f64;
    ms.iter()
        .enumerate()
        .map(|(i, &t)| (t, (i + 1) as f64 / n))
        .collect()
}

/// Formats an ε the way the paper prints it (e.g. `8/255`, `0.3`).
pub fn fmt_eps(eps: f32) -> String {
    for denom in [10.0f32, 255.0, 500.0] {
        let num = eps * denom;
        if (num - num.round()).abs() < 1e-4 && (1.0..=32.0).contains(&num.round()) {
            return format!("{}/{}", num.round() as i64, denom as i64);
        }
    }
    format!("{eps}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_duration_picks_units() {
        assert_eq!(fmt_duration(Duration::from_micros(130)), "130 µs");
        assert_eq!(fmt_duration(Duration::from_micros(9_060)), "9.06 ms");
        assert_eq!(fmt_duration(Duration::from_millis(34_500)), "34.50 s");
    }

    #[test]
    fn fmt_eps_matches_paper_style() {
        assert_eq!(fmt_eps(8.0 / 255.0), "8/255");
        assert_eq!(fmt_eps(1.0 / 500.0), "1/500");
        assert_eq!(fmt_eps(3.0 / 10.0), "3/10");
        assert_eq!(fmt_eps(0.258), "0.258");
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let times = vec![
            Duration::from_millis(5),
            Duration::from_millis(1),
            Duration::from_millis(3),
        ];
        let cdf = cdf_series(&times);
        assert_eq!(cdf.len(), 3);
        assert!(cdf.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn median_of_empty_row_is_zero() {
        assert_eq!(VerifyRow::default().median_time(), Duration::ZERO);
    }

    #[test]
    fn end_to_end_tiny_benchmark_row() {
        // A miniature end-to-end: tiny model, tiny data, all four runners.
        let spec = &zoo::table1_specs()[0]; // mnist 6x500 normal
        let opts = BenchOpts {
            scale: 0.02,
            images: 6,
            train_samples: 40,
            epochs: 1,
            workers: Some(2),
            seed: 3,
        };
        let (net, test) = prepare_model(spec, &opts);
        let device = opts.device();
        let g = run_gpupoly(&net, &test, 0.01, &device, VerifyConfig::default());
        let c = run_crown_ibp(&net, &test, 0.01);
        let d = run_deeppoly_cpu(&net, &test, 0.01);
        let i = run_ibp(&net, &test, 0.01);
        // Same candidate filter everywhere.
        assert_eq!(g.candidates, c.candidates);
        assert_eq!(g.candidates, d.candidates);
        assert_eq!(g.candidates, i.candidates);
        // Precision ordering: IBP <= CROWN-IBP <= GPUPoly == CPU DeepPoly.
        assert!(i.verified <= c.verified);
        assert!(c.verified <= g.verified);
        assert_eq!(d.verified, g.verified, "CPU DeepPoly must match GPUPoly");
        // Cached second run returns identical weights.
        let (net2, _) = prepare_model(spec, &opts);
        assert_eq!(net, net2);
    }
}
