//! §3.1 ablation: dependence-set backsubstitution (the GBC kernel,
//! Algorithm 1) against the naive alternative that densifies the bound
//! matrix and multiplies by the materialized convolution matrix.
//!
//! The paper's claim: the structured-sparse path wins in both compute and
//! memory because `M_k` and `F_k` are mostly zeros when handled densely.
//! The memory ratio is printed alongside the timing comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpupoly_core::expr::ExprBatch;
use gpupoly_core::steps::{step_conv, step_dense};
use gpupoly_device::{Device, DeviceConfig};
use gpupoly_nn::{Conv2d, Dense, Shape};
use std::hint::black_box;

/// Materializes a convolution as a dense `out_len × in_len` matrix.
fn conv_as_dense(c: &Conv2d<f32>) -> Dense<f32> {
    let (out_len, in_len) = (c.out_shape.len(), c.in_shape.len());
    let mut w = vec![0.0f32; out_len * in_len];
    let mut bias = vec![0.0f32; out_len];
    for oh in 0..c.out_shape.h {
        for ow in 0..c.out_shape.w {
            for co in 0..c.out_shape.c {
                let r = c.out_shape.idx(oh, ow, co);
                bias[r] = c.bias[co];
                for f in 0..c.kh {
                    let ih = (oh * c.sh + f) as isize - c.ph as isize;
                    if ih < 0 || ih as usize >= c.in_shape.h {
                        continue;
                    }
                    for g in 0..c.kw {
                        let iw = (ow * c.sw + g) as isize - c.pw as isize;
                        if iw < 0 || iw as usize >= c.in_shape.w {
                            continue;
                        }
                        for ci in 0..c.in_shape.c {
                            w[r * in_len + c.in_shape.idx(ih as usize, iw as usize, ci)] =
                                c.weight[c.widx(f, g, co, ci)];
                        }
                    }
                }
            }
        }
    }
    Dense::new(out_len, in_len, w, bias).expect("materialized conv is well-formed")
}

fn two_convs(side: usize, ch: usize) -> (Conv2d<f32>, Conv2d<f32>) {
    let c1 = Conv2d::new(
        Shape::new(side, side, ch),
        ch,
        (3, 3),
        (1, 1),
        (1, 1),
        (0..3 * 3 * ch * ch)
            .map(|i| ((i % 11) as f32 - 5.0) * 0.05)
            .collect(),
        vec![0.01; ch],
    )
    .expect("conv1");
    let c2 = Conv2d::new(
        c1.out_shape,
        ch,
        (3, 3),
        (1, 1),
        (1, 1),
        (0..3 * 3 * ch * ch)
            .map(|i| ((i % 7) as f32 - 3.0) * 0.05)
            .collect(),
        vec![0.0; ch],
    )
    .expect("conv2");
    (c1, c2)
}

fn bench_depsets(c: &mut Criterion) {
    let mut group = c.benchmark_group("depset_ablation");
    group.sample_size(10);
    for &(side, ch) in &[(8usize, 4usize), (14, 8)] {
        let (c1, c2) = two_convs(side, ch);
        let neurons: Vec<usize> = (0..c2.out_shape.len()).collect();
        let dense1 = conv_as_dense(&c1);

        group.bench_with_input(
            BenchmarkId::new("gbc_dependence_sets", format!("{side}x{side}x{ch}")),
            &(),
            |bench, _| {
                let device = Device::new(DeviceConfig::new());
                bench.iter(|| {
                    let batch = ExprBatch::from_conv(&device, &c2, &neurons, 1, None).unwrap();
                    let out = step_conv(&device, batch, &c1, 0).unwrap();
                    black_box(out.rows());
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("dense_materialized", format!("{side}x{side}x{ch}")),
            &(),
            |bench, _| {
                let device = Device::new(DeviceConfig::new());
                bench.iter(|| {
                    let batch = ExprBatch::from_conv(&device, &c2, &neurons, 1, None).unwrap();
                    let full = batch.densify(&device).unwrap();
                    let out = step_dense(&device, full, &dense1, 0, c1.in_shape).unwrap();
                    black_box(out.rows());
                });
            },
        );

        // Memory comparison at this size.
        let dev_a = Device::new(DeviceConfig::new());
        {
            let batch = ExprBatch::from_conv(&dev_a, &c2, &neurons, 1, None).unwrap();
            let _out = step_conv(&dev_a, batch, &c1, 0).unwrap();
        }
        let dev_b = Device::new(DeviceConfig::new());
        {
            let batch = ExprBatch::from_conv(&dev_b, &c2, &neurons, 1, None).unwrap();
            let full = batch.densify(&dev_b).unwrap();
            let _out = step_dense(&dev_b, full, &dense1, 0, c1.in_shape).unwrap();
        }
        println!(
            "[depset] {side}x{side}x{ch}: peak memory GBC {} B vs dense {} B ({:.1}x saved)",
            dev_a.peak_memory(),
            dev_b.peak_memory(),
            dev_b.peak_memory() as f64 / dev_a.peak_memory().max(1) as f64,
        );
    }
    group.finish();
}

criterion_group!(benches, bench_depsets);
criterion_main!(benches);
