//! Micro-benchmarks of the device primitives GPUPoly is assembled from:
//! parallel exclusive prefix sum, row compaction (§4.2) and the candidate
//! concretization kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpupoly_core::expr::ExprBatch;
use gpupoly_device::{scan, Device, DeviceConfig};
use gpupoly_interval::Itv;
use gpupoly_nn::Shape;
use std::hint::black_box;

fn bench_scan(c: &mut Criterion) {
    let device = Device::new(DeviceConfig::new());
    let mut group = c.benchmark_group("kernels");
    group.sample_size(20);
    for &n in &[4_096usize, 65_536] {
        let xs: Vec<u32> = (0..n).map(|i| (i % 3) as u32).collect();
        group.bench_with_input(BenchmarkId::new("exclusive_scan", n), &(), |b, _| {
            b.iter(|| black_box(scan::exclusive_scan(&device, black_box(&xs))));
        });
        let keep: Vec<bool> = (0..n / 64).map(|i| i % 3 != 0).collect();
        let mat: Vec<u64> = (0..(n / 64) * 64).map(|i| i as u64).collect();
        group.bench_with_input(BenchmarkId::new("compact_rows", n / 64), &(), |b, _| {
            b.iter(|| black_box(scan::compact_rows(&device, black_box(&mat), 64, &keep)));
        });
    }

    // Candidate concretization over a conv-shaped cuboid batch.
    let shape = Shape::new(16, 16, 8);
    let neurons: Vec<usize> = (0..256).collect();
    let batch = ExprBatch::<f32, _>::identity(&device, 1, shape, &neurons).expect("batch");
    let bounds: Vec<Itv<f32>> = (0..shape.len())
        .map(|i| Itv::new(-(i as f32) * 1e-3, i as f32 * 1e-3))
        .collect();
    group.bench_function("concretize_256_rows", |b| {
        b.iter(|| black_box(batch.concretize(&device, black_box(&bounds))));
    });
    group.finish();
}

criterion_group!(benches, bench_scan);
criterion_main!(benches);
