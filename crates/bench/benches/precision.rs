//! Precision-tier benchmark: tiered (`f32` fast pass + `f64` escalation)
//! versus all-`f64` verification on zoo-style workloads.
//!
//! The tiered engine's bet is that most robustness queries are decided far
//! from the threshold, where the `f32` walk (half the bytes, wider SIMD)
//! already proves them clear of the escalation envelope; only the narrow
//! or Unknown remainder pays for the `f64` walk. This harness measures the
//! bet on MLP workloads across query radii: fast-pass resolution rate and
//! end-to-end throughput against a pure-`f64` engine answering the same
//! queries. Verdicts agree by construction (escalation, never trust —
//! pinned by `tests/backend_differential.rs` and the core tier suite);
//! this measures *speed*.
//!
//! Modes:
//!
//! * `cargo bench --bench precision` — full sweep, writes the
//!   machine-readable `BENCH_precision.json` baseline (override the path
//!   with `BENCH_PRECISION_OUT`);
//! * `cargo bench --bench precision -- --smoke` — one tiny workload, no
//!   timing, no JSON; asserts the fast pass resolves at least one query
//!   outright and that tiered verdicts equal the all-`f64` engine's (the
//!   CI guard that the tier neither trusts what it must escalate nor
//!   escalates everything). Honors `GPUPOLY_BACKEND=cpusim|reference`.

use std::hint::black_box;
use std::time::Instant;

use gpupoly_core::{Engine, EngineOptions, Query, TieredEngine, VerifyConfig};
use gpupoly_device::{Backend, Device, DeviceConfig};
use gpupoly_nn::builder::NetworkBuilder;
use gpupoly_nn::Network;
use serde::Value;

fn mlp(inputs: usize, width: usize, depth: usize, outputs: usize) -> Network<f32> {
    let mut b = NetworkBuilder::new_flat(inputs);
    let mut in_len = inputs;
    for layer in 0..depth {
        let w: Vec<f32> = (0..width * in_len)
            .map(|i| (((i * 2654435761 + layer * 131) % 1000) as f32 / 1000.0 - 0.5) * 0.25)
            .collect();
        b = b.dense_flat(width, w, vec![0.05; width]).relu();
        in_len = width;
    }
    b.flatten_dense(outputs, |i| (((i * 31) % 17) as f32 - 8.0) * 0.05, |_| 0.0)
        .build()
        .expect("mlp builds")
}

/// A query stream around deterministic images; the labels are the net's
/// own predictions so small radii verify and large radii go Unknown.
fn queries(net: &Network<f32>, n: usize, eps: f32) -> Vec<Query<f32>> {
    let inputs = net.input_shape().len();
    (0..n)
        .map(|q| {
            let image: Vec<f32> = (0..inputs)
                .map(|i| 0.3 + 0.4 * (((q * 37 + i * 11) % 100) as f32 / 100.0))
                .collect();
            let label = net.classify(&image);
            Query::new(image, label, eps)
        })
        .collect()
}

fn widen_queries(qs: &[Query<f32>]) -> Vec<Query<f64>> {
    qs.iter()
        .map(|q| {
            Query::new(
                q.image.iter().map(|&x| x as f64).collect::<Vec<f64>>(),
                q.label,
                q.eps as f64,
            )
        })
        .collect()
}

struct Cell {
    backend: &'static str,
    eps: f32,
    queries: usize,
    fast_pass_resolved: u64,
    escalated: u64,
    qps_tiered: f64,
    qps_f64: f64,
    bytes_per_query_tiered: f64,
    bytes_per_query_f64: f64,
}

impl Cell {
    fn to_value(&self) -> Value {
        Value::obj([
            ("backend", Value::Str(self.backend.to_string())),
            ("eps", Value::Num(self.eps as f64)),
            ("queries", Value::Num(self.queries as f64)),
            (
                "fast_pass_resolved",
                Value::Num(self.fast_pass_resolved as f64),
            ),
            ("escalated", Value::Num(self.escalated as f64)),
            ("qps_tiered", Value::Num(self.qps_tiered)),
            ("qps_f64", Value::Num(self.qps_f64)),
            (
                "speedup",
                Value::Num(self.qps_tiered / self.qps_f64.max(1e-9)),
            ),
            (
                "bytes_per_query_tiered",
                Value::Num(self.bytes_per_query_tiered),
            ),
            ("bytes_per_query_f64", Value::Num(self.bytes_per_query_f64)),
        ])
    }
}

/// One (backend, eps) measurement: fresh engines with the analysis cache
/// disabled (every pass does full analysis work, as in the fusion bench);
/// one warm batch each to populate the buffer pool, clocks around the
/// second.
fn run_cell<B: Backend>(
    backend: &'static str,
    mk_device: &dyn Fn() -> Device<B>,
    net: &Network<f32>,
    wide: &Network<f64>,
    k: usize,
    eps: f32,
    check_parity: bool,
) -> Cell {
    let qs = queries(net, k, eps);
    let wide_qs = widen_queries(&qs);
    let opts = EngineOptions {
        analysis_cache: 0,
        precision_tier: true,
        ..Default::default()
    };

    let tiered_device = mk_device();
    let tiered = TieredEngine::with_options(
        tiered_device.clone(),
        net,
        wide,
        VerifyConfig::default(),
        opts,
    )
    .expect("tiered engine");
    let warm = tiered.verify_batch(&qs);
    assert!(warm.iter().all(Result::is_ok));
    let bytes0 = tiered_device.stats().bytes_moved();
    let t = Instant::now();
    let tiered_verdicts = tiered.verify_batch_f64(&qs);
    let secs_tiered = t.elapsed().as_secs_f64();
    let bytes_tiered = tiered_device.stats().bytes_moved() - bytes0;
    black_box(&tiered_verdicts);

    let baseline_device = mk_device();
    let baseline =
        Engine::with_options(baseline_device.clone(), wide, VerifyConfig::default(), opts)
            .expect("f64 engine");
    let warm = baseline.verify_batch_fused(&wide_qs);
    assert!(warm.iter().all(Result::is_ok));
    let bytes0 = baseline_device.stats().bytes_moved();
    let t = Instant::now();
    let f64_verdicts = baseline.verify_batch_fused(&wide_qs);
    let secs_f64 = t.elapsed().as_secs_f64();
    let bytes_f64 = baseline_device.stats().bytes_moved() - bytes0;
    black_box(&f64_verdicts);

    if check_parity {
        for (g, w) in tiered_verdicts.iter().zip(&f64_verdicts) {
            let g = g.as_ref().expect("tiered query");
            let w = w.as_ref().expect("f64 query");
            assert_eq!(
                g.verified, w.verified,
                "{backend} eps={eps}: tiered verdict diverged from all-f64"
            );
            for (gm, wm) in g.margins.iter().zip(&w.margins) {
                assert_eq!(
                    gm.proven, wm.proven,
                    "{backend} eps={eps}: proven flag diverged"
                );
            }
        }
    }

    // The timed batch ran each query through the tier machinery twice
    // (warm + timed); halve the counters back to one pass's split.
    let stats = tiered.stats();
    Cell {
        backend,
        eps,
        queries: k,
        fast_pass_resolved: stats.fast_pass_resolved / 2,
        escalated: stats.escalated / 2,
        qps_tiered: k as f64 / secs_tiered.max(1e-9),
        qps_f64: k as f64 / secs_f64.max(1e-9),
        bytes_per_query_tiered: bytes_tiered as f64 / k as f64,
        bytes_per_query_f64: bytes_f64 as f64 / k as f64,
    }
}

fn backend_env() -> String {
    std::env::var("GPUPOLY_BACKEND").unwrap_or_else(|_| "cpusim".to_string())
}

fn smoke() {
    let net = mlp(8, 12, 2, 3);
    let wide = net.widen();
    // Two radii: the small one decides far from the threshold, so the fast
    // pass must resolve at least one query; the huge one goes Unknown, so
    // the escalation path must run at least once. Parity against the
    // all-f64 engine is asserted inside `run_cell` for both.
    let run = |eps: f32| match backend_env().as_str() {
        "reference" => run_cell(
            "reference",
            &|| Device::reference(DeviceConfig::new().workers(2)),
            &net,
            &wide,
            6,
            eps,
            true,
        ),
        _ => run_cell(
            "cpusim",
            &|| Device::new(DeviceConfig::new().workers(2)),
            &net,
            &wide,
            6,
            eps,
            true,
        ),
    };
    let easy = run(0.004);
    assert!(
        easy.fast_pass_resolved > 0,
        "the f32 fast pass resolved nothing on an easy workload"
    );
    let hard = run(0.5);
    assert!(
        hard.escalated > 0,
        "a hopeless workload must exercise the escalation path"
    );
    println!(
        "[precision --smoke] ok on {}: easy {}/{} fast-resolved, hard {}/{} \
         escalated, verdicts match all-f64",
        easy.backend, easy.fast_pass_resolved, easy.queries, hard.escalated, hard.queries
    );
}

fn full() {
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    let net = mlp(16, 64, 3, 8);
    let wide = net.widen();
    let k = 24;
    let mut cells: Vec<Cell> = Vec::new();
    // Sweep the radius from comfortably-provable to mostly-Unknown: the
    // resolution rate (and with it the speedup) degrades gracefully.
    for &eps in &[0.004f32, 0.012, 0.03] {
        cells.push(run_cell(
            "cpusim",
            &|| Device::new(DeviceConfig::new().workers(workers)),
            &net,
            &wide,
            k,
            eps,
            true,
        ));
        cells.push(run_cell(
            "reference",
            &|| Device::reference(DeviceConfig::new().workers(1)),
            &net,
            &wide,
            k,
            eps,
            true,
        ));
    }
    for c in &cells {
        println!(
            "[precision] {:<9} eps={:<6} fast {:>2}/{:<2} | q/s tiered {:>8.1} \
             f64 {:>8.1} ({:.2}x) | MB/query tiered {:>6.1} f64 {:>6.1} ({:.2}x)",
            c.backend,
            c.eps,
            c.fast_pass_resolved,
            c.queries,
            c.qps_tiered,
            c.qps_f64,
            c.qps_tiered / c.qps_f64.max(1e-9),
            c.bytes_per_query_tiered / 1e6,
            c.bytes_per_query_f64 / 1e6,
            c.bytes_per_query_f64 / c.bytes_per_query_tiered.max(1.0),
        );
    }
    let doc = Value::obj([
        ("bench", Value::Str("precision".to_string())),
        (
            "source",
            Value::Str("cargo bench --bench precision (release)".to_string()),
        ),
        ("workers", Value::Num(workers as f64)),
        ("net", Value::Str("mlp 16 -> 64x3 (relu) -> 8".to_string())),
        (
            "results",
            Value::Arr(cells.iter().map(Cell::to_value).collect()),
        ),
    ]);
    let out = std::env::var("BENCH_PRECISION_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_precision.json").to_string()
    });
    let text = serde_json::to_string(&doc).expect("serialize baseline");
    std::fs::write(&out, text + "\n").expect("write baseline");
    println!("[precision] baseline written to {out}");
}

fn main() {
    // This target has `test = false`: it only ever runs under
    // `cargo bench --bench precision`, with `--smoke` as the CI guard.
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
    } else {
        full();
    }
}
