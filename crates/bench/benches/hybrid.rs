//! Hybrid 2D sharding benchmark: gather traffic versus cache capacity,
//! and the per-device compute win of walking rows on every device.
//!
//! `ShardedEngine::new_hybrid` keeps the FSDP-style greedy weight
//! partition (each device permanently holds ~1/N of the weight bytes)
//! and splits each fused expression batch's row space into contiguous
//! per-device blocks: every device walks its own rows over the gathered
//! layers, gathering remote layers onto *itself*. Two effects are
//! measured here, on a net whose per-device remote set overflows the
//! two-layer double-buffer floor but fits in an ample cache:
//!
//! * **Cache capacity sweep** — steady-state gathered bytes per query at
//!   increasing `gather_cache_bytes`. The floor point (capacity clamped
//!   to `2 × max_layer_bytes`) reproduces the old two-entry MRU: every
//!   batch re-gathers the remote set. With capacity to hold the whole
//!   remote set, next-use eviction keeps gathered layers resident and
//!   steady-state comms collapse toward zero.
//! * **Modeled per-device speedup** — busiest device's FLOPs per batch,
//!   weight-shard-only (device 0 walks everything) versus hybrid (rows
//!   split N ways). Devices are CPU-simulated and share host cores, so
//!   the FLOP ratio is the honest model of the speedup a real pool gets;
//!   raw walls ride along for reference only.
//!
//! Early termination is disabled so gather traffic and FLOPs are
//! deterministic instead of depending on how quickly margins prove.
//!
//! Modes:
//!
//! * `cargo bench --bench hybrid` — capacity sweep at N = 2 plus an
//!   N = 4 point, writes `BENCH_hybrid.json` (override the path with
//!   `BENCH_HYBRID_OUT`);
//! * `cargo bench --bench hybrid -- --smoke` — one tiny N = 2 workload,
//!   no timing, no JSON; asserts bit-identity to the 1-device run and
//!   that every device both walks rows and gathers. Honors
//!   `GPUPOLY_BACKEND=cpusim|reference`.

use std::hint::black_box;
use std::time::Instant;

use gpupoly_core::{
    weight_shard_budget, EngineOptions, Query, RobustnessVerdict, ShardedEngine, VerifyConfig,
    VerifyError,
};
use gpupoly_device::{Backend, CpuSimBackend, Device, DeviceConfig, ReferenceBackend};
use gpupoly_nn::builder::NetworkBuilder;
use gpupoly_nn::Network;
use serde::Value;

fn mlp(inputs: usize, width: usize, depth: usize, outputs: usize) -> Network<f32> {
    let mut b = NetworkBuilder::new_flat(inputs);
    let mut in_len = inputs;
    for layer in 0..depth {
        let w: Vec<f32> = (0..width * in_len)
            .map(|i| (((i * 2654435761 + layer * 131) % 1000) as f32 / 1000.0 - 0.5) * 0.25)
            .collect();
        b = b.dense_flat(width, w, vec![0.05; width]).relu();
        in_len = width;
    }
    b.flatten_dense(outputs, |i| (((i * 31) % 17) as f32 - 8.0) * 0.05, |_| 0.0)
        .build()
        .expect("mlp builds")
}

fn queries(net: &Network<f32>, n: usize, eps: f32) -> Vec<Query<f32>> {
    let inputs = net.input_shape().len();
    (0..n)
        .map(|q| {
            let image: Vec<f32> = (0..inputs)
                .map(|i| 0.3 + 0.4 * (((q * 37 + i * 11) % 100) as f32 / 100.0))
                .collect();
            let label = net.classify(&image);
            Query::new(image, label, eps)
        })
        .collect()
}

fn devices<B: Backend + Default>(n: usize) -> Vec<Device<B>> {
    (0..n)
        .map(|i| {
            Device::with_backend(
                B::default(),
                DeviceConfig::new().workers(1).name(format!("h{i}")),
            )
        })
        .collect()
}

/// Full walks only: gather traffic and per-device FLOPs must not depend
/// on how fast margins prove, or the baseline drifts with difficulty.
fn full_walk_config() -> VerifyConfig {
    VerifyConfig {
        early_termination: false,
        ..Default::default()
    }
}

type Verdicts = Vec<Result<RobustnessVerdict<f32>, VerifyError>>;

fn assert_bit_identical(id: &str, got: &Verdicts, want: &Verdicts) {
    assert_eq!(got.len(), want.len(), "{id}");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let g = g.as_ref().expect("hybrid verdict");
        let w = w.as_ref().expect("baseline verdict");
        assert_eq!(g.verified, w.verified, "{id}: query {i}");
        for (gm, wm) in g.margins.iter().zip(&w.margins) {
            assert_eq!(
                gm.lower.to_bits(),
                wm.lower.to_bits(),
                "{id}: query {i} margin vs class {} drifted",
                gm.adversary
            );
        }
    }
}

struct Measure {
    wall_s: f64,
    /// Steady-state gathered bytes over the timed batch, pool-wide.
    comms_bytes: u64,
    /// Gather hits/misses/evictions over the timed batch, pool-wide.
    gather: (u64, u64, u64),
    /// Per-device FLOPs over the timed batch.
    flops_per_device: Vec<u64>,
}

/// One steady-state measurement: fresh engine (analysis cache off so
/// every pass does full work), a warm batch to populate the gather
/// cache, then a timed batch with per-device counter deltas.
fn run_steady(
    engine: &ShardedEngine<'_, f32, CpuSimBackend>,
    handles: &[Device<CpuSimBackend>],
    qs: &[Query<f32>],
) -> (Measure, Verdicts) {
    let warm = engine.verify_batch_sharded(qs);
    assert!(warm.iter().all(Result::is_ok));

    let comms0: u64 = handles
        .iter()
        .map(|h| h.stats().kernel_work("comms").bytes_moved)
        .sum();
    let stats0 = engine.stats();
    let flops0: Vec<u64> = handles.iter().map(|h| h.stats().flops()).collect();

    let t = Instant::now();
    let verdicts = engine.verify_batch_sharded(qs);
    let wall_s = t.elapsed().as_secs_f64();
    black_box(&verdicts);

    let comms: u64 = handles
        .iter()
        .map(|h| h.stats().kernel_work("comms").bytes_moved)
        .sum::<u64>()
        - comms0;
    let stats = engine.stats();
    let flops_per_device = handles
        .iter()
        .zip(&flops0)
        .map(|(h, f0)| h.stats().flops() - f0)
        .collect();
    (
        Measure {
            wall_s,
            comms_bytes: comms,
            gather: (
                stats.gather_hits - stats0.gather_hits,
                stats.gather_misses - stats0.gather_misses,
                stats.gather_evictions - stats0.gather_evictions,
            ),
            flops_per_device,
        },
        verdicts,
    )
}

fn smoke() {
    fn run<B: Backend + Default>(backend: &str) {
        let net = mlp(8, 12, 4, 4);
        let qs = queries(&net, 5, 0.01);
        let opts = EngineOptions::default();
        let one = ShardedEngine::new_hybrid(devices::<B>(1), &net, full_walk_config(), opts)
            .expect("1-device engine");
        let want = one.verify_batch_sharded(&qs);

        let pool = devices::<B>(2);
        let handles = pool.clone();
        let two = ShardedEngine::new_hybrid(pool, &net, full_walk_config(), opts)
            .expect("2-device hybrid engine");
        let got = two.verify_batch_sharded(&qs);
        assert_bit_identical(backend, &got, &want);

        let bytes = two.shard_resident_bytes();
        let full: usize = bytes.iter().sum();
        let worst = bytes.iter().copied().max().expect("non-empty plan");
        assert!(
            worst < full && bytes.iter().all(|&b| b > 0),
            "{backend}: both devices must hold a strict piece of the model: {bytes:?}"
        );
        for (d, h) in handles.iter().enumerate() {
            assert!(
                h.stats().flops() > 0,
                "{backend}: device {d} walked no rows"
            );
            assert!(
                h.stats().kernel_work("comms").bytes_moved > 0,
                "{backend}: device {d} gathered nothing on a full walk over a split model"
            );
        }
        let stats = two.stats();
        println!(
            "[hybrid --smoke] ok on {backend}: 2-device margins bit-identical, \
             shards {bytes:?} of {full} B, gather hits/misses/evictions \
             {}/{}/{}",
            stats.gather_hits, stats.gather_misses, stats.gather_evictions
        );
    }
    match std::env::var("GPUPOLY_BACKEND").as_deref() {
        Ok("reference") => run::<ReferenceBackend>("reference"),
        _ => run::<CpuSimBackend>("cpusim"),
    }
}

fn full() {
    // Deep enough that each device's remote set at N = 2 (three-plus
    // layers) overflows the two-layer double-buffer floor yet fits in a
    // modest cache: the regime where capacity-aware next-use eviction
    // beats the fixed two-entry MRU.
    let net = mlp(16, 96, 6, 10);
    const K: usize = 32;
    let qs = queries(&net, K, 0.01);
    let budget2 = weight_shard_budget(&net, 2);
    let max_layer = budget2.double_buffer / 2;

    let opts_base = EngineOptions {
        analysis_cache: 0,
        ..Default::default()
    };

    // Oracle + weight-shard-only compute baseline at N = 2: everything
    // walks on device 0.
    let pool = devices::<CpuSimBackend>(1);
    let handles = pool.clone();
    let engine = ShardedEngine::new_weight_sharded(pool, &net, full_walk_config(), opts_base)
        .expect("1-device engine");
    let (_, want) = run_steady(&engine, &handles, &qs);
    drop(engine);

    let pool = devices::<CpuSimBackend>(2);
    let handles = pool.clone();
    let engine = ShardedEngine::new_weight_sharded(pool, &net, full_walk_config(), opts_base)
        .expect("2-device weight-sharded engine");
    let (weight_only, got) = run_steady(&engine, &handles, &qs);
    drop(engine);
    assert_bit_identical("weight-only N=2", &got, &want);
    let weight_only_busiest = *weight_only
        .flops_per_device
        .iter()
        .max()
        .expect("2 devices");

    // Capacity sweep at N = 2. `Some(1)` clamps to the double-buffer
    // floor — exactly the old fixed two-entry MRU. `None` sizes the
    // cache from the device's free pool (uncapped here → unbounded).
    let mut sweep = Vec::new();
    let mut floor_comms = None;
    let mut ample = None;
    let caps: [(&str, Option<usize>); 4] = [
        ("floor (2-entry MRU)", Some(1)),
        ("3 layers", Some(3 * max_layer)),
        ("4 layers", Some(4 * max_layer)),
        ("auto (free pool)", None),
    ];
    for (label, cap) in caps {
        let pool = devices::<CpuSimBackend>(2);
        let handles = pool.clone();
        let opts = EngineOptions {
            gather_cache_bytes: cap,
            ..opts_base
        };
        let engine = ShardedEngine::new_hybrid(pool, &net, full_walk_config(), opts)
            .expect("2-device hybrid engine");
        let (m, got) = run_steady(&engine, &handles, &qs);
        drop(engine);
        assert_bit_identical(&format!("hybrid N=2 cache={label}"), &got, &want);
        if cap == Some(1) {
            floor_comms = Some(m.comms_bytes);
        }
        if cap.is_none() {
            ample = Some((
                m.comms_bytes,
                *m.flops_per_device.iter().max().expect("2 devices"),
            ));
        }
        println!(
            "[hybrid] N=2 cache {label:<18} wall {:>7.4}s | {:>10} B gathered/batch \
             | hits/misses/evictions {}/{}/{} | flops/device {:?}",
            m.wall_s, m.comms_bytes, m.gather.0, m.gather.1, m.gather.2, m.flops_per_device
        );
        sweep.push(Value::obj([
            ("cache", Value::Str(label.to_string())),
            (
                "cache_bytes",
                match cap {
                    Some(b) => Value::Num(b.max(budget2.double_buffer) as f64),
                    None => Value::Null,
                },
            ),
            ("wall_s", Value::Num(m.wall_s)),
            ("comms_bytes_per_batch", Value::Num(m.comms_bytes as f64)),
            ("gather_hits", Value::Num(m.gather.0 as f64)),
            ("gather_misses", Value::Num(m.gather.1 as f64)),
            ("gather_evictions", Value::Num(m.gather.2 as f64)),
            (
                "flops_per_device",
                Value::Arr(
                    m.flops_per_device
                        .iter()
                        .map(|&f| Value::Num(f as f64))
                        .collect(),
                ),
            ),
        ]));
    }
    let floor_comms = floor_comms.expect("floor point ran");
    let (ample_comms, hybrid_busiest) = ample.expect("ample point ran");
    assert!(
        ample_comms < floor_comms,
        "capacity-aware cache must beat the 2-entry MRU floor in steady state: \
         {ample_comms} B vs {floor_comms} B"
    );
    let speedup = weight_only_busiest as f64 / hybrid_busiest.max(1) as f64;
    assert!(
        speedup >= 1.8,
        "hybrid must cut the busiest device's FLOPs ~N-fold at N=2: got {speedup:.2}x \
         ({weight_only_busiest} vs {hybrid_busiest})"
    );
    println!(
        "[hybrid] N=2 steady-state comms {ample_comms} B (capacity-aware) vs \
         {floor_comms} B (2-entry MRU floor); modeled per-device speedup {speedup:.2}x"
    );

    // One N = 4 point with the auto cache, for the scaling shape.
    let pool = devices::<CpuSimBackend>(4);
    let handles = pool.clone();
    let engine = ShardedEngine::new_hybrid(pool, &net, full_walk_config(), opts_base)
        .expect("4-device hybrid engine");
    let (m4, got) = run_steady(&engine, &handles, &qs);
    drop(engine);
    assert_bit_identical("hybrid N=4", &got, &want);
    let busiest4 = *m4.flops_per_device.iter().max().expect("4 devices");
    println!(
        "[hybrid] N=4 auto cache wall {:>7.4}s | {:>10} B gathered/batch | \
         flops/device {:?}",
        m4.wall_s, m4.comms_bytes, m4.flops_per_device
    );

    let doc = Value::obj([
        ("bench", Value::Str("hybrid".to_string())),
        (
            "source",
            Value::Str("cargo bench --bench hybrid (release)".to_string()),
        ),
        ("net", Value::Str("mlp 16 -> 96x6 (relu) -> 10".to_string())),
        ("batch_k", Value::Num(K as f64)),
        (
            "methodology",
            Value::Str(
                "hybrid 2D sharded engine, early termination off so every query \
                 walks the full stack; one warm batch then a timed batch, all \
                 counters are steady-state deltas summed pool-wide; the floor \
                 cache point (gather_cache_bytes=1, clamped to the double \
                 buffer) reproduces the old fixed two-entry MRU; modeled \
                 speedup is busiest-device FLOPs weight-shard-only over \
                 busiest-device FLOPs hybrid at the same N; simulated devices \
                 share host cores so walls are indicative only"
                    .to_string(),
            ),
        ),
        (
            "weight_only_n2",
            Value::obj([
                ("wall_s", Value::Num(weight_only.wall_s)),
                (
                    "comms_bytes_per_batch",
                    Value::Num(weight_only.comms_bytes as f64),
                ),
                (
                    "flops_per_device",
                    Value::Arr(
                        weight_only
                            .flops_per_device
                            .iter()
                            .map(|&f| Value::Num(f as f64))
                            .collect(),
                    ),
                ),
            ]),
        ),
        ("cache_sweep_n2", Value::Arr(sweep)),
        (
            "modeled_per_device_speedup_n2",
            Value::Num((speedup * 100.0).round() / 100.0),
        ),
        (
            "hybrid_n4",
            Value::obj([
                ("wall_s", Value::Num(m4.wall_s)),
                ("comms_bytes_per_batch", Value::Num(m4.comms_bytes as f64)),
                (
                    "flops_per_device",
                    Value::Arr(
                        m4.flops_per_device
                            .iter()
                            .map(|&f| Value::Num(f as f64))
                            .collect(),
                    ),
                ),
                ("busiest_device_flops", Value::Num(busiest4 as f64)),
            ]),
        ),
    ]);
    let out = std::env::var("BENCH_HYBRID_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hybrid.json").to_string()
    });
    let text = serde_json::to_string(&doc).expect("serialize baseline");
    std::fs::write(&out, text + "\n").expect("write baseline");
    println!("[hybrid] baseline written to {out}");
}

fn main() {
    // This target has `test = false`: it only ever runs under
    // `cargo bench --bench hybrid`, with `--smoke` as the CI guard.
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
    } else {
        full();
    }
}
