//! Stable-zero column compaction benchmark: GEMM flops per query with the
//! dense schedule vs the compacted one, on a network with stably-dead
//! ReLUs, on both backends.
//!
//! After a ReLU substitution step, neurons whose relaxation is identically
//! zero (stably-negative inputs) leave all-`[0,0]` coefficient columns;
//! with [`gpupoly_core::VerifyConfig::stable_zero_compaction`] on, the
//! following dense GEMM gathers only the live columns (and the matching
//! live weight rows), so metered flops scale with live columns while
//! margins stay bit-identical (pinned by
//! `crates/core/tests/engine_compaction.rs`).
//!
//! Modes:
//!
//! * `cargo bench --bench compaction` — full sweep over dead-neuron
//!   fractions, writes the machine-readable `BENCH_compaction.json`
//!   baseline (override the path with `BENCH_COMPACTION_OUT`);
//! * `cargo bench --bench compaction -- --smoke` — tiny shapes, no JSON;
//!   asserts compaction engages (`flops_per_query` compacted < dense) on a
//!   stably-dead net — the CI guard. Honors `GPUPOLY_BACKEND`.

use std::hint::black_box;
use std::time::Instant;

use gpupoly_core::{Engine, EngineOptions, Query, VerifyConfig};
use gpupoly_device::{Backend, Device, DeviceConfig};
use gpupoly_nn::builder::NetworkBuilder;
use gpupoly_nn::Network;
use serde::Value;

/// An MLP where `dead_per_mille` of hidden neurons carry a `-4` bias: with
/// inputs in `[0, 1]` and small weights their pre-activations stay
/// negative, so those ReLUs are stably dead on every query.
fn dead_mlp(inputs: usize, width: usize, depth: usize, dead_per_mille: usize) -> Network<f32> {
    let mut b = NetworkBuilder::new_flat(inputs);
    let mut in_len = inputs;
    for layer in 0..depth {
        let w: Vec<f32> = (0..width * in_len)
            .map(|i| {
                (((i * 2654435761 + layer * 131) % 1000) as f32 / 1000.0 - 0.5)
                    * (0.5 / in_len as f32).min(0.25)
            })
            .collect();
        let bias: Vec<f32> = (0..width)
            .map(|i| {
                if (i * 2654435761 + layer) % 1000 < dead_per_mille {
                    -4.0
                } else {
                    0.05
                }
            })
            .collect();
        b = b.dense_flat(width, w, bias).relu();
        in_len = width;
    }
    b.flatten_dense(4, |i| (((i * 31) % 17) as f32 - 8.0) * 0.05, |_| 0.0)
        .build()
        .expect("mlp builds")
}

fn queries(n: usize, inputs: usize) -> Vec<Query<f32>> {
    (0..n)
        .map(|q| {
            let image: Vec<f32> = (0..inputs)
                .map(|i| 0.3 + 0.4 * (((q * 37 + i * 11) % 100) as f32 / 100.0))
                .collect();
            Query::new(image, q % 4, 0.01 + 0.002 * (q % 3) as f32)
        })
        .collect()
}

struct Cell {
    backend: &'static str,
    dead_per_mille: usize,
    flops_per_query_dense: f64,
    flops_per_query_compacted: f64,
    qps_dense: f64,
    qps_compacted: f64,
    compaction_engaged: bool,
}

impl Cell {
    fn to_value(&self) -> Value {
        Value::obj([
            ("backend", Value::Str(self.backend.to_string())),
            ("dead_per_mille", Value::Num(self.dead_per_mille as f64)),
            (
                "flops_per_query_dense",
                Value::Num(self.flops_per_query_dense),
            ),
            (
                "flops_per_query_compacted",
                Value::Num(self.flops_per_query_compacted),
            ),
            ("qps_dense", Value::Num(self.qps_dense)),
            ("qps_compacted", Value::Num(self.qps_compacted)),
            ("compaction_engaged", Value::Bool(self.compaction_engaged)),
        ])
    }
}

/// One (backend, compaction) measurement: fresh device and engine, cache
/// off so every query does full analysis work, one warm pass to populate
/// the buffer pool, flop counters and clock around the second.
fn measure<B: Backend>(
    mk_device: &dyn Fn() -> Device<B>,
    net: &Network<f32>,
    qs: &[Query<f32>],
    compaction: bool,
) -> (f64, f64, u64) {
    let device = mk_device();
    let cfg = VerifyConfig {
        stable_zero_compaction: compaction,
        ..Default::default()
    };
    let opts = EngineOptions {
        analysis_cache: 0,
        ..Default::default()
    };
    let engine = Engine::with_options(device.clone(), net, cfg, opts).expect("engine");
    assert!(engine.verify_batch(qs).iter().all(Result::is_ok));
    let flops0 = device.stats().flops();
    let compact0 = device.stats().kernel_launches("compact_indices");
    let t = Instant::now();
    for q in qs {
        black_box(engine.verify_robustness(&q.image, q.label, q.eps).unwrap());
    }
    let secs = t.elapsed().as_secs_f64();
    let flops = (device.stats().flops() - flops0) as f64 / qs.len() as f64;
    let compact_launches = device.stats().kernel_launches("compact_indices") - compact0;
    (flops, qs.len() as f64 / secs.max(1e-9), compact_launches)
}

fn run_cell<B: Backend>(
    backend: &'static str,
    mk_device: &dyn Fn() -> Device<B>,
    net: &Network<f32>,
    dead_per_mille: usize,
    k: usize,
) -> Cell {
    let inputs = net.input_shape().len();
    let qs = queries(k, inputs);
    let (flops_dense, qps_dense, compact_dense) = measure(mk_device, net, &qs, false);
    let (flops_comp, qps_comp, compact_comp) = measure(mk_device, net, &qs, true);
    // Early termination's *row* compaction launches the kernel in both
    // runs; column compaction engaged iff the compacted run launched it
    // strictly more often.
    let engaged = compact_comp > compact_dense;
    Cell {
        backend,
        dead_per_mille,
        flops_per_query_dense: flops_dense,
        flops_per_query_compacted: flops_comp,
        qps_dense,
        qps_compacted: qps_comp,
        compaction_engaged: engaged,
    }
}

fn backend_env() -> String {
    std::env::var("GPUPOLY_BACKEND").unwrap_or_else(|_| "cpusim".to_string())
}

fn smoke() {
    // Tiny shapes: pin the inequality, not timing. Half the hidden neurons
    // are stably dead, so the compacted GEMMs must meter measurably fewer
    // flops per query than the dense schedule.
    let net = dead_mlp(8, 16, 2, 500);
    let cell = match backend_env().as_str() {
        "reference" => run_cell(
            "reference",
            &|| Device::reference(DeviceConfig::new().workers(2)),
            &net,
            500,
            4,
        ),
        _ => run_cell(
            "cpusim",
            &|| Device::new(DeviceConfig::new().workers(2)),
            &net,
            500,
            4,
        ),
    };
    assert!(
        cell.flops_per_query_compacted < cell.flops_per_query_dense,
        "compaction must cut flops/query on a stably-dead net ({} vs {})",
        cell.flops_per_query_compacted,
        cell.flops_per_query_dense
    );
    println!(
        "[compaction --smoke] ok on {}: flops/query compacted {:.0} < dense {:.0} ({:.1}% saved)",
        cell.backend,
        cell.flops_per_query_compacted,
        cell.flops_per_query_dense,
        100.0 * (1.0 - cell.flops_per_query_compacted / cell.flops_per_query_dense)
    );
}

fn full() {
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut cells: Vec<Cell> = Vec::new();
    for &dead in &[0usize, 250, 500, 750] {
        let net = dead_mlp(16, 64, 3, dead);
        cells.push(run_cell(
            "cpusim",
            &|| Device::new(DeviceConfig::new().workers(workers)),
            &net,
            dead,
            16,
        ));
        cells.push(run_cell(
            "reference",
            &|| Device::reference(DeviceConfig::new().workers(1)),
            &net,
            dead,
            16,
        ));
    }
    for c in &cells {
        println!(
            "[compaction] {:<9} dead={:<4} flops/query: dense {:>12.0} compacted {:>12.0} \
             ({:>5.1}% saved) | q/s: dense {:>8.1} compacted {:>8.1}{}",
            c.backend,
            format!("{}‰", c.dead_per_mille),
            c.flops_per_query_dense,
            c.flops_per_query_compacted,
            100.0 * (1.0 - c.flops_per_query_compacted / c.flops_per_query_dense.max(1.0)),
            c.qps_dense,
            c.qps_compacted,
            if c.compaction_engaged {
                ""
            } else {
                " [no dead cols]"
            },
        );
    }
    let doc = Value::obj([
        ("bench", Value::Str("compaction".to_string())),
        (
            "source",
            Value::Str("cargo bench --bench compaction (release)".to_string()),
        ),
        ("workers", Value::Num(workers as f64)),
        (
            "net",
            Value::Str("mlp 16 -> 64x3 (relu, dead‰ of -4 biases) -> 4".to_string()),
        ),
        (
            "results",
            Value::Arr(cells.iter().map(Cell::to_value).collect()),
        ),
    ]);
    let out = std::env::var("BENCH_COMPACTION_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_compaction.json").to_string()
    });
    let text = serde_json::to_string(&doc).expect("serialize baseline");
    std::fs::write(&out, text + "\n").expect("write baseline");
    println!("[compaction] baseline written to {out}");
}

fn main() {
    // This target has `test = false`: it only ever runs under
    // `cargo bench --bench compaction`, with `--smoke` as the CI guard.
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
    } else {
        full();
    }
}
