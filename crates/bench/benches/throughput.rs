//! Batch-engine throughput: queries/sec of `Engine::verify_batch` against a
//! sequential `verify_robustness` loop on the same engine, plus the
//! compatibility-wrapper (`GpuPoly`) sequential path.
//!
//! The batch path amortizes the one-time graph validation and weight packing
//! across queries, reuses pooled device buffers, and runs independent
//! queries in parallel across device workers — the MLSys 2021 serving shape
//! ("certify thousands of boxes against one resident network"). Expected
//! result on a multi-core host: batch ≥ 2× queries/sec over sequential.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpupoly_core::{Engine, EngineOptions, GpuPoly, Query, VerifyConfig};
use gpupoly_device::{Device, DeviceConfig};
use gpupoly_nn::builder::NetworkBuilder;
use gpupoly_nn::Network;
use std::hint::black_box;
use std::time::Instant;

fn mlp(width: usize, depth: usize) -> Network<f32> {
    let mut b = NetworkBuilder::new_flat(16);
    let mut in_len = 16;
    for layer in 0..depth {
        let w: Vec<f32> = (0..width * in_len)
            .map(|i| (((i * 2654435761 + layer * 131) % 1000) as f32 / 1000.0 - 0.5) * 0.25)
            .collect();
        b = b.dense_flat(width, w, vec![0.05; width]).relu();
        in_len = width;
    }
    b.flatten_dense(8, |i| (((i * 31) % 17) as f32 - 8.0) * 0.05, |_| 0.0)
        .build()
        .expect("mlp builds")
}

fn queries(n: usize) -> Vec<Query<f32>> {
    (0..n)
        .map(|q| {
            let image: Vec<f32> = (0..16)
                .map(|i| 0.3 + 0.4 * (((q * 37 + i * 11) % 100) as f32 / 100.0))
                .collect();
            Query::new(image, 0, 0.015)
        })
        .collect()
}

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput");
    group.sample_size(10);
    let net = mlp(64, 3);
    let batch = queries(32);
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());

    group.bench_with_input(
        BenchmarkId::new("sequential_gpupoly", batch.len()),
        &(),
        |b, _| {
            let device = Device::new(DeviceConfig::new().workers(workers));
            let verifier = GpuPoly::new(device, &net, VerifyConfig::default()).expect("verifier");
            b.iter(|| {
                for q in &batch {
                    let v = verifier
                        .verify_robustness(&q.image, q.label, q.eps)
                        .unwrap();
                    black_box(v.verified);
                }
            });
        },
    );

    // Cache disabled here so repeated criterion iterations measure raw
    // batch throughput, not cache hits.
    group.bench_with_input(
        BenchmarkId::new("engine_batch", batch.len()),
        &(),
        |b, _| {
            let device = Device::new(DeviceConfig::new().workers(workers));
            let opts = EngineOptions {
                analysis_cache: 0,
                ..Default::default()
            };
            let engine =
                Engine::with_options(device, &net, VerifyConfig::default(), opts).expect("engine");
            b.iter(|| {
                for v in engine.verify_batch(&batch) {
                    black_box(v.unwrap().verified);
                }
            });
        },
    );
    group.finish();

    // Headline number: queries/sec, batch vs sequential, both in steady
    // state. One fresh engine per phase with the analysis cache disabled
    // (so neither side re-serves cached analyses), warmed with one full
    // pass to populate the buffer pool, then timed on a second pass.
    let opts = EngineOptions {
        analysis_cache: 0,
        ..Default::default()
    };

    let device = Device::new(DeviceConfig::new().workers(workers));
    let engine = Engine::with_options(device, &net, VerifyConfig::default(), opts).expect("engine");
    assert!(engine.verify_batch(&batch).iter().all(Result::is_ok));
    let t = Instant::now();
    for q in &batch {
        black_box(
            engine
                .verify_robustness(&q.image, q.label, q.eps)
                .unwrap()
                .verified,
        );
    }
    let seq = t.elapsed();

    let device = Device::new(DeviceConfig::new().workers(workers));
    let engine =
        Engine::with_options(device.clone(), &net, VerifyConfig::default(), opts).expect("engine");
    assert!(engine.verify_batch(&batch).iter().all(Result::is_ok));
    let bytes_before = device.stats().bytes_allocated();
    let t = Instant::now();
    black_box(engine.verify_batch(&batch));
    let par = t.elapsed();
    let bytes_after = device.stats().bytes_allocated();

    let qps_seq = batch.len() as f64 / seq.as_secs_f64();
    let qps_par = batch.len() as f64 / par.as_secs_f64();
    println!(
        "[throughput] {} queries, {workers} workers: sequential {qps_seq:.1} q/s, \
         batch {qps_par:.1} q/s ({:.2}x), bytes allocated during steady-state: {}",
        batch.len(),
        qps_par / qps_seq,
        bytes_after - bytes_before,
    );
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
