//! Weight-sharded (FSDP-style) serving benchmark: per-device memory
//! footprint versus device count, margins pinned bit-identical at every
//! pool size.
//!
//! `ShardedEngine::new_weight_sharded` partitions the network's affine
//! layers greedily across the pool so each device permanently holds
//! ~1/N of the weight bytes; the walk runs on device 0 and all-gathers
//! each remote layer just in time, prefetched ahead into a
//! capacity-aware gather cache (pinned at its two-layer double-buffer
//! floor for this sweep). The win measured here is **memory**, not speed:
//! the busiest device's resident bytes shrink toward `full / N` (plus a
//! bounded double-buffer of transient gather scratch), which is what
//! lets a pool serve models bigger than any single device.
//!
//! Reported per point:
//!
//! * `resident_per_device` — persistent weight bytes each device holds
//!   (the greedy plan, cross-checked against [`weight_shard_budget`]);
//! * `worst_device_bytes` — busiest shard + `2 × max_layer_bytes`
//!   double buffer: what an admission layer must budget per device;
//! * `gathered_bytes_per_query` — bytes all-gathered onto the executing
//!   device per query, from the `comms` kernel meter.
//!
//! Early termination is disabled for the timed sweep so every query
//! walks the full layer stack — gather traffic is then deterministic
//! instead of depending on how quickly margins prove. Devices are
//! CPU-simulated and share host cores, so raw wall numbers ride along
//! for honesty only.
//!
//! Modes:
//!
//! * `cargo bench --bench fsdp` — full sweep N ∈ {1, 2, 4} at K = 32,
//!   writes the machine-readable `BENCH_fsdp.json` baseline (override
//!   the path with `BENCH_FSDP_OUT`);
//! * `cargo bench --bench fsdp -- --smoke` — one tiny workload at
//!   N = 2, no timing, no JSON; asserts bit-identity to the 1-device
//!   run, a real per-device memory win, and a live `comms` meter.
//!   Honors `GPUPOLY_BACKEND=cpusim|reference`.

use std::hint::black_box;
use std::time::Instant;

use gpupoly_core::{
    weight_shard_budget, EngineOptions, Query, RobustnessVerdict, ShardedEngine, VerifyConfig,
    VerifyError,
};
use gpupoly_device::{Backend, CpuSimBackend, Device, DeviceConfig, ReferenceBackend};
use gpupoly_nn::builder::NetworkBuilder;
use gpupoly_nn::Network;
use serde::Value;

fn mlp(inputs: usize, width: usize, depth: usize, outputs: usize) -> Network<f32> {
    let mut b = NetworkBuilder::new_flat(inputs);
    let mut in_len = inputs;
    for layer in 0..depth {
        let w: Vec<f32> = (0..width * in_len)
            .map(|i| (((i * 2654435761 + layer * 131) % 1000) as f32 / 1000.0 - 0.5) * 0.25)
            .collect();
        b = b.dense_flat(width, w, vec![0.05; width]).relu();
        in_len = width;
    }
    b.flatten_dense(outputs, |i| (((i * 31) % 17) as f32 - 8.0) * 0.05, |_| 0.0)
        .build()
        .expect("mlp builds")
}

fn queries(net: &Network<f32>, n: usize, eps: f32) -> Vec<Query<f32>> {
    let inputs = net.input_shape().len();
    (0..n)
        .map(|q| {
            let image: Vec<f32> = (0..inputs)
                .map(|i| 0.3 + 0.4 * (((q * 37 + i * 11) % 100) as f32 / 100.0))
                .collect();
            let label = net.classify(&image);
            Query::new(image, label, eps)
        })
        .collect()
}

fn devices<B: Backend + Default>(n: usize) -> Vec<Device<B>> {
    (0..n)
        .map(|i| {
            Device::with_backend(
                B::default(),
                DeviceConfig::new().workers(1).name(format!("d{i}")),
            )
        })
        .collect()
}

/// Full walks only: gather traffic must not depend on how fast margins
/// prove, or the baseline drifts with the workload's difficulty.
fn full_walk_config() -> VerifyConfig {
    VerifyConfig {
        early_termination: false,
        ..Default::default()
    }
}

type Verdicts = Vec<Result<RobustnessVerdict<f32>, VerifyError>>;

fn assert_bit_identical(id: &str, got: &Verdicts, want: &Verdicts) {
    assert_eq!(got.len(), want.len(), "{id}");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let g = g.as_ref().expect("weight-sharded verdict");
        let w = w.as_ref().expect("baseline verdict");
        assert_eq!(g.verified, w.verified, "{id}: query {i}");
        for (gm, wm) in g.margins.iter().zip(&w.margins) {
            assert_eq!(
                gm.lower.to_bits(),
                wm.lower.to_bits(),
                "{id}: query {i} margin vs class {} drifted",
                gm.adversary
            );
        }
    }
}

struct Point {
    devices: usize,
    wall_s: f64,
    qps_wall: f64,
    full_bytes: usize,
    resident_per_device: Vec<usize>,
    double_buffer_bytes: usize,
    worst_device_bytes: usize,
    gathered_bytes_per_query: f64,
}

impl Point {
    fn to_value(&self) -> Value {
        Value::obj([
            ("devices", Value::Num(self.devices as f64)),
            ("wall_s", Value::Num(self.wall_s)),
            ("qps_wall", Value::Num(self.qps_wall)),
            ("full_bytes", Value::Num(self.full_bytes as f64)),
            (
                "resident_per_device",
                Value::Arr(
                    self.resident_per_device
                        .iter()
                        .map(|&b| Value::Num(b as f64))
                        .collect(),
                ),
            ),
            (
                "double_buffer_bytes",
                Value::Num(self.double_buffer_bytes as f64),
            ),
            (
                "worst_device_bytes",
                Value::Num(self.worst_device_bytes as f64),
            ),
            (
                "gathered_bytes_per_query",
                Value::Num(self.gathered_bytes_per_query),
            ),
        ])
    }
}

/// One (device count) measurement: fresh weight-sharded engine (analysis
/// cache off so every pass does full work), one warm batch to populate
/// gather scratch pools, then a timed batch with the `comms` byte delta.
fn run_point(net: &Network<f32>, qs: &[Query<f32>], n: usize) -> (Point, Verdicts) {
    let pool = devices::<CpuSimBackend>(n);
    let handles = pool.clone();
    let opts = EngineOptions {
        analysis_cache: 0,
        // Clamp the gather cache to its double-buffer floor so the sweep
        // keeps measuring steady-state gather *traffic*: with the default
        // capacity-aware cache on uncapped devices the whole remote set
        // stays resident after the warm batch and the comms meter reads
        // zero (that regime is what benches/hybrid.rs sweeps).
        gather_cache_bytes: Some(1),
        ..Default::default()
    };
    let sharded = ShardedEngine::new_weight_sharded(pool, net, full_walk_config(), opts)
        .expect("weight-sharded engine");

    let warm = sharded.verify_batch_sharded(qs);
    assert!(warm.iter().all(Result::is_ok));
    let comms0 = handles[0].stats().kernel_work("comms").bytes_moved;
    let t = Instant::now();
    let verdicts = sharded.verify_batch_sharded(qs);
    let wall_s = t.elapsed().as_secs_f64();
    black_box(&verdicts);
    let gathered = handles[0].stats().kernel_work("comms").bytes_moved - comms0;

    let resident_per_device = sharded.shard_resident_bytes().to_vec();
    let budget = weight_shard_budget(net, n);
    assert_eq!(
        resident_per_device, budget.per_device,
        "{n} devices: the materialized shards must match the admission plan"
    );
    (
        Point {
            devices: n,
            wall_s,
            qps_wall: qs.len() as f64 / wall_s.max(1e-9),
            full_bytes: resident_per_device.iter().sum(),
            resident_per_device,
            double_buffer_bytes: budget.double_buffer,
            worst_device_bytes: budget.worst_device_bytes(),
            gathered_bytes_per_query: gathered as f64 / qs.len() as f64,
        },
        verdicts,
    )
}

fn smoke() {
    fn run<B: Backend + Default>(backend: &str) {
        let net = mlp(8, 12, 3, 4);
        let qs = queries(&net, 5, 0.01);
        let opts = EngineOptions::default();
        let one =
            ShardedEngine::new_weight_sharded(devices::<B>(1), &net, full_walk_config(), opts)
                .expect("1-device engine");
        let want = one.verify_batch_sharded(&qs);

        let pool = devices::<B>(2);
        let handles = pool.clone();
        let two = ShardedEngine::new_weight_sharded(pool, &net, full_walk_config(), opts)
            .expect("2-device engine");
        let got = two.verify_batch_sharded(&qs);
        assert_bit_identical(backend, &got, &want);

        let bytes = two.shard_resident_bytes();
        let full: usize = bytes.iter().sum();
        let worst = bytes.iter().copied().max().expect("non-empty plan");
        assert!(
            worst < full && bytes.iter().all(|&b| b > 0),
            "{backend}: both devices must hold a strict piece of the model: {bytes:?}"
        );
        let comms = handles[0].stats().kernel_work("comms").bytes_moved;
        assert!(
            comms > 0,
            "{backend}: full walks over a split model must gather remote layers"
        );
        println!(
            "[fsdp --smoke] ok on {backend}: 2-device margins bit-identical, \
             shards {bytes:?} of {full} B, {comms} B gathered"
        );
    }
    match std::env::var("GPUPOLY_BACKEND").as_deref() {
        Ok("reference") => run::<ReferenceBackend>("reference"),
        _ => run::<CpuSimBackend>("cpusim"),
    }
}

fn full() {
    // Deep enough that every device's remote set overflows the 2-entry
    // gather cache: steady-state batches re-gather, which is the regime
    // the double-buffer overlap exists for. A shallow net would fit its
    // remote layers in cache after the warm batch and meter zero comms.
    let net = mlp(16, 96, 6, 10);
    const K: usize = 32;
    let qs = queries(&net, K, 0.01);

    let (base, want) = run_point(&net, &qs, 1);
    let full_bytes = base.full_bytes;
    let mut points = vec![base];
    for n in [2usize, 4] {
        let (p, got) = run_point(&net, &qs, n);
        assert_bit_identical(&format!("{n} devices"), &got, &want);
        assert_eq!(p.full_bytes, full_bytes, "the plan must conserve bytes");
        // The greedy partition's bound: no device exceeds an even split
        // by more than one layer's worth of bytes.
        let worst = p
            .resident_per_device
            .iter()
            .copied()
            .max()
            .expect("non-empty plan");
        let max_layer = p.double_buffer_bytes / 2;
        assert!(
            worst <= full_bytes / n + max_layer,
            "{n} devices: busiest shard {worst} B exceeds even split \
             {} B + one layer {max_layer} B",
            full_bytes / n
        );
        assert!(
            p.gathered_bytes_per_query > 0.0,
            "{n} devices: full walks must gather remote layers"
        );
        points.push(p);
    }
    for p in &points {
        println!(
            "[fsdp] N={} wall {:>7.4}s ({:>6.1} q/s) | resident/device {:?} of {} B \
             (+{} B double buffer) | {:>9.1} B gathered/query",
            p.devices,
            p.wall_s,
            p.qps_wall,
            p.resident_per_device,
            p.full_bytes,
            p.double_buffer_bytes,
            p.gathered_bytes_per_query
        );
    }

    let doc = Value::obj([
        ("bench", Value::Str("fsdp".to_string())),
        (
            "source",
            Value::Str("cargo bench --bench fsdp (release)".to_string()),
        ),
        ("net", Value::Str("mlp 16 -> 96x6 (relu) -> 10".to_string())),
        ("batch_k", Value::Num(K as f64)),
        (
            "methodology",
            Value::Str(
                "weight-sharded engine, early termination off so every query \
                 walks the full stack; resident bytes are the greedy per-device \
                 plan (cross-checked against weight_shard_budget), gathered \
                 bytes from the executing device's `comms` kernel meter; \
                 simulated devices share host cores so walls are indicative only"
                    .to_string(),
            ),
        ),
        (
            "results",
            Value::Arr(points.iter().map(Point::to_value).collect()),
        ),
    ]);
    let out = std::env::var("BENCH_FSDP_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fsdp.json").to_string()
    });
    let text = serde_json::to_string(&doc).expect("serialize baseline");
    std::fs::write(&out, text + "\n").expect("write baseline");
    println!("[fsdp] baseline written to {out}");
}

fn main() {
    // This target has `test = false`: it only ever runs under
    // `cargo bench --bench fsdp`, with `--smoke` as the CI guard.
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
    } else {
        full();
    }
}
