//! Branch-and-bound refinement benchmark: how many base-Unknown verdicts
//! the split tier converts, and what each conversion costs in bisections.
//!
//! The workload is built around *relaxation cancellation*: a network whose
//! decision margin subtracts a ReLU from a stable passthrough, so DeepPoly's
//! lower bound loses the correlation between the two paths and goes Unknown
//! at radii where the true margin is still comfortably positive. Input
//! bisection re-couples the paths (each half-box re-analyzes with tighter
//! ReLU relaxations), so these queries convert in a handful of splits —
//! the exact regime the refinement tier is built for.
//!
//! Modes:
//!
//! * `cargo bench --bench bnb` — full sweep over ε on both backends, writes
//!   the machine-readable `BENCH_bnb.json` baseline (override the path with
//!   `BENCH_BNB_OUT`);
//! * `cargo bench --bench bnb -- --smoke` — one small cell, no JSON;
//!   asserts at least one Unknown → Proven conversion within the default
//!   budget and that every query stayed budget-bounded. Honors
//!   `GPUPOLY_BACKEND=cpusim|reference`.

use std::time::Instant;

use gpupoly_core::{CompleteVerdict, Engine, Query, RefineBudget, VerifyConfig};
use gpupoly_device::{Backend, Device, DeviceConfig};
use gpupoly_nn::builder::NetworkBuilder;
use gpupoly_nn::Network;
use serde::Value;

/// Margin `y1 − y0 = (x1 + x2) − relu(x1 − x2)`: the stable-positive
/// passthrough and the ReLU path cancel in the relaxation, so DeepPoly
/// under-approximates the margin by up to the relaxation gap while the
/// true margin stays positive on a wide band of centers.
fn cancel_net() -> Network<f32> {
    NetworkBuilder::new_flat(2)
        .dense(&[[1.0_f32, -1.0], [1.0, 1.0]], &[0.0, 0.0])
        .relu()
        .dense(&[[0.0_f32, 0.0], [-1.0, 1.0]], &[0.0, 0.0])
        .build()
        .expect("cancellation net builds")
}

/// Deterministic centers on the diagonal band where the net's margin is
/// truly positive but relaxation-loose; labels are the net's own
/// predictions, so every query is honest.
fn queries(net: &Network<f32>, n: usize, eps: f32) -> Vec<Query<f32>> {
    (0..n)
        .map(|q| {
            let t = 0.02 * (q % 8) as f32;
            let image = vec![0.52 + t, 0.48 - t];
            let label = net.classify(&image);
            Query::new(image, label, eps)
        })
        .collect()
}

struct Cell {
    backend: &'static str,
    eps: f32,
    queries: usize,
    base_proven: usize,
    converted: usize,
    falsified: usize,
    unknown: usize,
    splits_total: u64,
    secs: f64,
}

impl Cell {
    /// Share of base-Unknown queries the refinement decided (proved or
    /// soundly refuted).
    fn conversion_rate(&self) -> f64 {
        let base_unknown = self.queries - self.base_proven;
        if base_unknown == 0 {
            return 1.0;
        }
        (self.converted + self.falsified) as f64 / base_unknown as f64
    }

    fn splits_per_query(&self) -> f64 {
        self.splits_total as f64 / self.queries.max(1) as f64
    }

    fn to_value(&self) -> Value {
        Value::obj([
            ("backend", Value::Str(self.backend.to_string())),
            ("eps", Value::Num(f64::from(self.eps))),
            ("queries", Value::Num(self.queries as f64)),
            ("base_proven", Value::Num(self.base_proven as f64)),
            ("converted", Value::Num(self.converted as f64)),
            ("falsified", Value::Num(self.falsified as f64)),
            ("unknown", Value::Num(self.unknown as f64)),
            ("splits_total", Value::Num(self.splits_total as f64)),
            ("conversion_rate", Value::Num(self.conversion_rate())),
            ("splits_per_query", Value::Num(self.splits_per_query())),
            ("secs", Value::Num(self.secs)),
        ])
    }
}

/// One (backend, ε) measurement: a fresh engine runs the whole stream
/// through `verify_complete_batch` under `budget`. Every outcome class is
/// derived from the typed verdict alone — `Proven { base: Some(_) }` means
/// the base analysis already decided it, `Proven { base: None }` is a
/// genuine Unknown → Proven conversion.
fn run_cell<B: Backend>(
    backend: &'static str,
    device: Device<B>,
    net: &Network<f32>,
    k: usize,
    eps: f32,
    budget: &RefineBudget,
) -> Cell {
    let engine = Engine::new(device, net, VerifyConfig::default()).expect("engine");
    let qs = queries(net, k, eps);
    let t = Instant::now();
    let verdicts = engine.verify_complete_batch(&qs, budget);
    let secs = t.elapsed().as_secs_f64();
    let mut cell = Cell {
        backend,
        eps,
        queries: k,
        base_proven: 0,
        converted: 0,
        falsified: 0,
        unknown: 0,
        splits_total: 0,
        secs,
    };
    for v in verdicts {
        let v = v.expect("well-formed query");
        assert!(
            v.splits() <= u64::from(budget.max_splits),
            "{backend} eps={eps}: verdict overspent its split budget"
        );
        cell.splits_total += v.splits();
        match v {
            CompleteVerdict::Proven { base: Some(_), .. } => cell.base_proven += 1,
            CompleteVerdict::Proven { base: None, .. } => cell.converted += 1,
            CompleteVerdict::Falsified { .. } => cell.falsified += 1,
            CompleteVerdict::Unknown { .. } => cell.unknown += 1,
        }
    }
    cell
}

fn backend_env() -> String {
    std::env::var("GPUPOLY_BACKEND").unwrap_or_else(|_| "cpusim".to_string())
}

fn smoke() {
    let net = cancel_net();
    let budget = RefineBudget::default();
    let t = Instant::now();
    // ε = 0.35 sits in the incompleteness gap: truly robust on these
    // centers, but DeepPoly's bound is ≈ −0.15 — refinement must convert.
    let cell = match backend_env().as_str() {
        "reference" => run_cell(
            "reference",
            Device::reference(DeviceConfig::new().workers(2)),
            &net,
            8,
            0.35,
            &budget,
        ),
        _ => run_cell(
            "cpusim",
            Device::new(DeviceConfig::new().workers(2)),
            &net,
            8,
            0.35,
            &budget,
        ),
    };
    assert!(
        cell.converted >= 1,
        "refinement converted no Unknown into Proven on a workload built \
         to convert (base_proven={}, unknown={})",
        cell.base_proven,
        cell.unknown
    );
    assert!(
        cell.splits_total <= u64::from(budget.max_splits) * cell.queries as u64,
        "total splits exceeded the per-query budget times the stream"
    );
    // Budget-bounded runtime: a tiny stream under a 32-split budget has no
    // business taking minutes; this guards against frontier runaways.
    let elapsed = t.elapsed();
    assert!(
        elapsed.as_secs() < 60,
        "smoke cell took {elapsed:?} — refinement is not budget-bounded"
    );
    println!(
        "[bnb --smoke] ok on {}: {}/{} base-proven, {} converted (avg {:.1} \
         splits/query), {} falsified, {} unknown in {:?}",
        cell.backend,
        cell.base_proven,
        cell.queries,
        cell.converted,
        cell.splits_per_query(),
        cell.falsified,
        cell.unknown,
        elapsed
    );
}

fn full() {
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    let net = cancel_net();
    let budget = RefineBudget::default();
    let k = 16;
    let mut cells: Vec<Cell> = Vec::new();
    // Sweep the radius across the regimes: all base-proven, convertible
    // Unknowns, and balls that touch the true decision boundary (margin
    // infimum exactly 0 — undecidable, so every split is spent and the
    // typed Unknown reports the exhausted budget).
    for &eps in &[0.1f32, 0.25, 0.35, 0.48] {
        cells.push(run_cell(
            "cpusim",
            Device::new(DeviceConfig::new().workers(workers)),
            &net,
            k,
            eps,
            &budget,
        ));
        cells.push(run_cell(
            "reference",
            Device::reference(DeviceConfig::new().workers(1)),
            &net,
            k,
            eps,
            &budget,
        ));
    }
    for c in &cells {
        println!(
            "[bnb] {:<9} eps={:<5} base {:>2}/{:<2} | converted {:>2} \
             falsified {:>2} unknown {:>2} | conv rate {:>5.2} | \
             {:>4.1} splits/query | {:>7.4}s",
            c.backend,
            c.eps,
            c.base_proven,
            c.queries,
            c.converted,
            c.falsified,
            c.unknown,
            c.conversion_rate(),
            c.splits_per_query(),
            c.secs,
        );
    }
    let doc = Value::obj([
        ("bench", Value::Str("bnb".to_string())),
        (
            "source",
            Value::Str("cargo bench --bench bnb (release)".to_string()),
        ),
        ("workers", Value::Num(workers as f64)),
        (
            "net",
            Value::Str("cancel2: margin = (x1+x2) - relu(x1-x2)".to_string()),
        ),
        ("max_splits", Value::Num(f64::from(budget.max_splits))),
        (
            "results",
            Value::Arr(cells.iter().map(Cell::to_value).collect()),
        ),
    ]);
    let out = std::env::var("BENCH_BNB_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_bnb.json").to_string()
    });
    let text = serde_json::to_string(&doc).expect("serialize baseline");
    std::fs::write(&out, text + "\n").expect("write baseline");
    println!("[bnb] baseline written to {out}");
}

fn main() {
    // This target has `test = false`: it only ever runs under
    // `cargo bench --bench bnb`, with `--smoke` as the CI guard.
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
    } else {
        full();
    }
}
