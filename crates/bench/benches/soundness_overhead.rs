//! §4.1 claim: floating-point soundness costs ≈2× memory and >2× flops.
//!
//! Benchmarks the sound interval×scalar GEMM against the unsound
//! round-to-nearest scalar GEMM at backsubstitution-shaped sizes, and
//! prints the analytic flop/byte ratios.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpupoly_device::{gemm, Device, DeviceConfig};
use gpupoly_interval::Itv;
use std::hint::black_box;

fn bench_gemms(c: &mut Criterion) {
    let device = Device::new(DeviceConfig::new().name("bench"));
    let mut group = c.benchmark_group("soundness_overhead");
    group.sample_size(10);
    for &(m, k, n) in &[(64usize, 128usize, 128usize), (128, 256, 256)] {
        let a_f: Vec<f32> = (0..m * k).map(|i| ((i % 17) as f32 - 8.0) * 0.1).collect();
        let a_itv: Vec<Itv<f32>> = a_f.iter().map(|&x| Itv::point(x)).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i % 13) as f32 - 6.0) * 0.1).collect();
        group.bench_with_input(
            BenchmarkId::new("sound_interval", format!("{m}x{k}x{n}")),
            &(m, k, n),
            |bench, &(m, k, n)| {
                let mut c_out = vec![Itv::<f32>::zero(); m * n];
                bench.iter(|| {
                    gemm::gemm_itv_f(
                        &device,
                        black_box(&a_itv),
                        black_box(&b),
                        &mut c_out,
                        m,
                        k,
                        n,
                    );
                    black_box(&c_out);
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("unsound_scalar", format!("{m}x{k}x{n}")),
            &(m, k, n),
            |bench, &(m, k, n)| {
                let mut c_out = vec![0.0f32; m * n];
                bench.iter(|| {
                    gemm::gemm_f_f(&device, black_box(&a_f), black_box(&b), &mut c_out, m, k, n);
                    black_box(&c_out);
                });
            },
        );
        println!(
            "[soundness] {m}x{k}x{n}: flops ratio {} (paper: >2x), memory ratio {} (paper: 2x)",
            gemm::flops_itv_f(m, k, n) as f64 / gemm::flops_f_f(m, k, n) as f64,
            std::mem::size_of::<Itv<f32>>() as f64 / std::mem::size_of::<f32>() as f64,
        );
    }
    group.finish();
}

criterion_group!(benches, bench_gemms);
criterion_main!(benches);
