//! Tensor-parallel sharding benchmark: throughput versus device count at a
//! fixed fused batch, margins pinned bit-identical across every point.
//!
//! `ShardedEngine` splits the fused expression batch's row space into
//! contiguous blocks, one per device, and gathers the results in order —
//! pure scheduling, so the margins cannot move. What *can* move is the
//! wall clock: each device walks only its rows, so the makespan is the
//! busiest device's share of the work instead of all of it.
//!
//! The devices here are CPU-simulated and share the host's cores, so raw
//! wall time at N > 1 measures core contention, not scaling. The scaling
//! number reported is therefore **modeled from the FLOP meters**: each
//! device's kernel-metered flops over the timed batch give its busy time
//! as a fraction of the measured 1-device wall, and the N-device makespan
//! is the busiest device's fraction. Balanced shards give speedup ≈ N;
//! imbalance (uneven rows, stopped-row compaction) shows up as the max
//! pulling away from the mean. Raw wall numbers ride along for honesty.
//!
//! Modes:
//!
//! * `cargo bench --bench shard` — full sweep N ∈ {1, 2, 4} at K = 32,
//!   writes the machine-readable `BENCH_shard.json` baseline (override the
//!   path with `BENCH_SHARD_OUT`);
//! * `cargo bench --bench shard -- --smoke` — one tiny workload at N = 2,
//!   no timing, no JSON; asserts bit-identity to the 1-device run and that
//!   every device metered real kernel work. Honors
//!   `GPUPOLY_BACKEND=cpusim|reference`.

use std::hint::black_box;
use std::time::Instant;

use gpupoly_core::{
    EngineOptions, Query, RobustnessVerdict, ShardedEngine, VerifyConfig, VerifyError,
};
use gpupoly_device::{Backend, CpuSimBackend, Device, DeviceConfig, ReferenceBackend};
use gpupoly_nn::builder::NetworkBuilder;
use gpupoly_nn::Network;
use serde::Value;

fn mlp(inputs: usize, width: usize, depth: usize, outputs: usize) -> Network<f32> {
    let mut b = NetworkBuilder::new_flat(inputs);
    let mut in_len = inputs;
    for layer in 0..depth {
        let w: Vec<f32> = (0..width * in_len)
            .map(|i| (((i * 2654435761 + layer * 131) % 1000) as f32 / 1000.0 - 0.5) * 0.25)
            .collect();
        b = b.dense_flat(width, w, vec![0.05; width]).relu();
        in_len = width;
    }
    b.flatten_dense(outputs, |i| (((i * 31) % 17) as f32 - 8.0) * 0.05, |_| 0.0)
        .build()
        .expect("mlp builds")
}

fn queries(net: &Network<f32>, n: usize, eps: f32) -> Vec<Query<f32>> {
    let inputs = net.input_shape().len();
    (0..n)
        .map(|q| {
            let image: Vec<f32> = (0..inputs)
                .map(|i| 0.3 + 0.4 * (((q * 37 + i * 11) % 100) as f32 / 100.0))
                .collect();
            let label = net.classify(&image);
            Query::new(image, label, eps)
        })
        .collect()
}

fn devices<B: Backend + Default>(n: usize) -> Vec<Device<B>> {
    (0..n)
        .map(|i| {
            Device::with_backend(
                B::default(),
                DeviceConfig::new().workers(1).name(format!("d{i}")),
            )
        })
        .collect()
}

type Verdicts = Vec<Result<RobustnessVerdict<f32>, VerifyError>>;

fn assert_bit_identical(id: &str, got: &Verdicts, want: &Verdicts) {
    assert_eq!(got.len(), want.len(), "{id}");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let g = g.as_ref().expect("sharded verdict");
        let w = w.as_ref().expect("baseline verdict");
        assert_eq!(g.verified, w.verified, "{id}: query {i}");
        for (gm, wm) in g.margins.iter().zip(&w.margins) {
            assert_eq!(
                gm.lower.to_bits(),
                wm.lower.to_bits(),
                "{id}: query {i} margin vs class {} drifted",
                gm.adversary
            );
        }
    }
}

struct Point {
    devices: usize,
    wall_s: f64,
    qps_wall: f64,
    flops_per_device: Vec<u64>,
    /// Modeled parallel speedup over 1 device: Σ flops / max flops.
    modeled_speedup: f64,
    /// Modeled throughput: 1-device measured q/s × modeled speedup.
    qps_modeled: f64,
}

impl Point {
    fn to_value(&self) -> Value {
        Value::obj([
            ("devices", Value::Num(self.devices as f64)),
            ("wall_s", Value::Num(self.wall_s)),
            ("qps_wall", Value::Num(self.qps_wall)),
            (
                "flops_per_device",
                Value::Arr(
                    self.flops_per_device
                        .iter()
                        .map(|&f| Value::Num(f as f64))
                        .collect(),
                ),
            ),
            ("modeled_speedup", Value::Num(self.modeled_speedup)),
            ("qps_modeled", Value::Num(self.qps_modeled)),
        ])
    }
}

/// One (device count) measurement: a fresh sharded engine (analysis cache
/// off, so every pass does full work), one warm batch to populate buffer
/// pools, then a timed batch with per-device FLOP deltas.
fn run_point(
    net: &Network<f32>,
    qs: &[Query<f32>],
    n: usize,
    qps_one_device: Option<f64>,
) -> (Point, Verdicts) {
    let opts = EngineOptions {
        analysis_cache: 0,
        ..Default::default()
    };
    let sharded = ShardedEngine::new(
        devices::<CpuSimBackend>(n),
        net,
        VerifyConfig::default(),
        opts,
    )
    .expect("sharded engine");
    let warm = sharded.verify_batch_sharded(qs);
    assert!(warm.iter().all(Result::is_ok));
    let flops0: Vec<u64> = sharded.per_device_stats().iter().map(|s| s.flops).collect();
    let t = Instant::now();
    let verdicts = sharded.verify_batch_sharded(qs);
    let wall_s = t.elapsed().as_secs_f64();
    black_box(&verdicts);
    let flops_per_device: Vec<u64> = sharded
        .per_device_stats()
        .iter()
        .zip(&flops0)
        .map(|(s, f0)| s.flops - f0)
        .collect();

    let total: u64 = flops_per_device.iter().sum();
    let busiest: u64 = flops_per_device.iter().copied().max().unwrap_or(0).max(1);
    let modeled_speedup = total as f64 / busiest as f64;
    let qps_wall = qs.len() as f64 / wall_s.max(1e-9);
    let qps_one = qps_one_device.unwrap_or(qps_wall);
    (
        Point {
            devices: n,
            wall_s,
            qps_wall,
            flops_per_device,
            modeled_speedup,
            qps_modeled: qps_one * modeled_speedup,
        },
        verdicts,
    )
}

fn smoke() {
    fn run<B: Backend + Default>(backend: &str) {
        let net = mlp(8, 12, 2, 4);
        let qs = queries(&net, 5, 0.01);
        let opts = EngineOptions::default();
        let one = ShardedEngine::new(devices::<B>(1), &net, VerifyConfig::default(), opts)
            .expect("1-device engine");
        let want = one.verify_batch_sharded(&qs);
        let two = ShardedEngine::new(devices::<B>(2), &net, VerifyConfig::default(), opts)
            .expect("2-device engine");
        let got = two.verify_batch_sharded(&qs);
        assert_bit_identical(backend, &got, &want);
        let per = two.per_device_stats();
        assert!(
            per.iter().all(|s| s.flops > 0 && s.launches > 0),
            "{backend}: the row-sharded walk must run kernels on every device: {per:?}"
        );
        println!(
            "[shard --smoke] ok on {backend}: 2-device margins bit-identical, \
             per-device flops {:?}",
            per.iter().map(|s| s.flops).collect::<Vec<_>>()
        );
    }
    match std::env::var("GPUPOLY_BACKEND").as_deref() {
        Ok("reference") => run::<ReferenceBackend>("reference"),
        _ => run::<CpuSimBackend>("cpusim"),
    }
}

fn full() {
    let net = mlp(16, 96, 3, 10);
    const K: usize = 32;
    let qs = queries(&net, K, 0.01);

    let (base, want) = run_point(&net, &qs, 1, None);
    let qps_one = base.qps_wall;
    let mut points = vec![base];
    for n in [2usize, 4] {
        let (p, got) = run_point(&net, &qs, n, Some(qps_one));
        assert_bit_identical(&format!("{n} devices"), &got, &want);
        points.push(p);
    }
    for p in &points {
        println!(
            "[shard] N={} wall {:>7.4}s ({:>7.1} q/s) | flops/device {:?} | \
             modeled speedup {:.2}x -> {:>8.1} q/s",
            p.devices, p.wall_s, p.qps_wall, p.flops_per_device, p.modeled_speedup, p.qps_modeled
        );
    }
    let two = &points[1];
    assert!(
        two.modeled_speedup > 1.5,
        "2-device row sharding must model >1.5x over one device, got {:.2}x \
         (flops {:?})",
        two.modeled_speedup,
        two.flops_per_device
    );

    let doc = Value::obj([
        ("bench", Value::Str("shard".to_string())),
        (
            "source",
            Value::Str("cargo bench --bench shard (release)".to_string()),
        ),
        ("net", Value::Str("mlp 16 -> 96x3 (relu) -> 10".to_string())),
        ("batch_k", Value::Num(K as f64)),
        (
            "methodology",
            Value::Str(
                "simulated devices share host cores; scaling is modeled from \
                 per-device kernel FLOP meters (speedup = total/busiest), \
                 anchored to the measured 1-device wall; raw walls included"
                    .to_string(),
            ),
        ),
        (
            "results",
            Value::Arr(points.iter().map(Point::to_value).collect()),
        ),
    ]);
    let out = std::env::var("BENCH_SHARD_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shard.json").to_string()
    });
    let text = serde_json::to_string(&doc).expect("serialize baseline");
    std::fs::write(&out, text + "\n").expect("write baseline");
    println!("[shard] baseline written to {out}");
}

fn main() {
    // This target has `test = false`: it only ever runs under
    // `cargo bench --bench shard`, with `--smoke` as the CI guard.
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
    } else {
        full();
    }
}
