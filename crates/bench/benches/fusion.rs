//! Cross-query fusion benchmark: fused vs per-query throughput and device
//! launches across batch sizes, on both backends.
//!
//! Three dispatch shapes over one resident engine:
//!
//! * `seq`   — a sequential `verify_robustness` loop (one walk per query);
//! * `batch` — `verify_batch` (query-level parallelism, LPT-scheduled);
//! * `fused` — `verify_batch_fused` (rows of all queries stacked into one
//!   launch per backsubstitution step).
//!
//! Margins are bit-identical across all three (pinned by
//! `crates/core/tests/engine_fusion.rs` and the zoo differential suite);
//! this harness measures the *scheduling* difference: queries/sec and
//! device launches per query.
//!
//! Modes:
//!
//! * `cargo bench --bench fusion` — full sweep, writes the machine-readable
//!   `BENCH_fusion.json` baseline (override the path with
//!   `BENCH_FUSION_OUT`) so future PRs have a perf trajectory to compare
//!   against;
//! * `cargo bench --bench fusion -- --smoke` — tiny shapes, no timing, no
//!   JSON; asserts the fused path issues strictly fewer launches than the
//!   sequential loop (the CI guard against silently regressing to
//!   per-query dispatch). Honors `GPUPOLY_BACKEND=cpusim|reference`.

use std::hint::black_box;
use std::time::Instant;

use gpupoly_core::{Engine, EngineOptions, Query, VerifyConfig};
use gpupoly_device::{Backend, Device, DeviceConfig};
use gpupoly_nn::builder::NetworkBuilder;
use gpupoly_nn::Network;
use serde::Value;

fn mlp(inputs: usize, width: usize, depth: usize, outputs: usize) -> Network<f32> {
    let mut b = NetworkBuilder::new_flat(inputs);
    let mut in_len = inputs;
    for layer in 0..depth {
        let w: Vec<f32> = (0..width * in_len)
            .map(|i| (((i * 2654435761 + layer * 131) % 1000) as f32 / 1000.0 - 0.5) * 0.25)
            .collect();
        b = b.dense_flat(width, w, vec![0.05; width]).relu();
        in_len = width;
    }
    b.flatten_dense(outputs, |i| (((i * 31) % 17) as f32 - 8.0) * 0.05, |_| 0.0)
        .build()
        .expect("mlp builds")
}

fn queries(n: usize, inputs: usize) -> Vec<Query<f32>> {
    (0..n)
        .map(|q| {
            let image: Vec<f32> = (0..inputs)
                .map(|i| 0.3 + 0.4 * (((q * 37 + i * 11) % 100) as f32 / 100.0))
                .collect();
            Query::new(image, q % 3, 0.012 + 0.002 * (q % 4) as f32)
        })
        .collect()
}

/// Launch/GEMM counters delta around one measured closure.
struct Measured {
    secs: f64,
    launches: u64,
    gemm: u64,
}

fn measured<B: Backend>(device: &Device<B>, f: impl FnOnce()) -> Measured {
    let launches0 = device.stats().launches();
    let gemm0 = device.stats().kernel_launches("gemm_itv_f");
    let t = Instant::now();
    f();
    Measured {
        secs: t.elapsed().as_secs_f64(),
        launches: device.stats().launches() - launches0,
        gemm: device.stats().kernel_launches("gemm_itv_f") - gemm0,
    }
}

struct Cell {
    backend: &'static str,
    batch: usize,
    qps_seq: f64,
    qps_batch: f64,
    qps_fused: f64,
    launches_per_query_seq: f64,
    launches_per_query_fused: f64,
    gemm_per_query_seq: f64,
    gemm_per_query_fused: f64,
    fused_engaged: bool,
}

impl Cell {
    fn to_value(&self) -> Value {
        Value::obj([
            ("backend", Value::Str(self.backend.to_string())),
            ("batch", Value::Num(self.batch as f64)),
            ("qps_seq", Value::Num(self.qps_seq)),
            ("qps_batch", Value::Num(self.qps_batch)),
            ("qps_fused", Value::Num(self.qps_fused)),
            (
                "launches_per_query_seq",
                Value::Num(self.launches_per_query_seq),
            ),
            (
                "launches_per_query_fused",
                Value::Num(self.launches_per_query_fused),
            ),
            ("gemm_per_query_seq", Value::Num(self.gemm_per_query_seq)),
            (
                "gemm_per_query_fused",
                Value::Num(self.gemm_per_query_fused),
            ),
            ("fused_engaged", Value::Bool(self.fused_engaged)),
        ])
    }
}

/// One (backend, batch-size) measurement. Fresh engines per dispatch shape
/// (cache disabled so every pass does full analysis work), one warm pass
/// each to populate the buffer pool, counters and clock around the second.
fn run_cell<B: Backend>(
    backend: &'static str,
    mk_device: &dyn Fn() -> Device<B>,
    net: &Network<f32>,
    k: usize,
) -> Cell {
    let inputs = net.input_shape().len();
    let qs = queries(k, inputs);
    let opts = EngineOptions {
        analysis_cache: 0,
        ..Default::default()
    };

    let device = mk_device();
    let engine =
        Engine::with_options(device.clone(), net, VerifyConfig::default(), opts).expect("engine");
    assert!(engine.verify_batch(&qs).iter().all(Result::is_ok));
    let seq = measured(&device, || {
        for q in &qs {
            black_box(engine.verify_robustness(&q.image, q.label, q.eps).unwrap());
        }
    });

    let device = mk_device();
    let engine =
        Engine::with_options(device.clone(), net, VerifyConfig::default(), opts).expect("engine");
    assert!(engine.verify_batch(&qs).iter().all(Result::is_ok));
    let batch = measured(&device, || {
        black_box(engine.verify_batch(&qs));
    });

    let device = mk_device();
    let engine =
        Engine::with_options(device.clone(), net, VerifyConfig::default(), opts).expect("engine");
    assert!(engine.verify_batch(&qs).iter().all(Result::is_ok));
    let fused = measured(&device, || {
        black_box(engine.verify_batch_fused(&qs));
    });

    let per_query = |n: u64| n as f64 / k as f64;
    Cell {
        backend,
        batch: k,
        qps_seq: k as f64 / seq.secs.max(1e-9),
        qps_batch: k as f64 / batch.secs.max(1e-9),
        qps_fused: k as f64 / fused.secs.max(1e-9),
        launches_per_query_seq: per_query(seq.launches),
        launches_per_query_fused: per_query(fused.launches),
        gemm_per_query_seq: per_query(seq.gemm),
        gemm_per_query_fused: per_query(fused.gemm),
        fused_engaged: engine.stats().fused_batches > 0,
    }
}

fn backend_env() -> String {
    std::env::var("GPUPOLY_BACKEND").unwrap_or_else(|_| "cpusim".to_string())
}

fn smoke() {
    // Tiny shapes: correctness of the dispatch shape, not timing. Fused
    // launches strictly below sequential launches or the fused path has
    // silently regressed to per-query dispatch.
    let net = mlp(8, 12, 2, 3);
    let k = 4;
    let backend = backend_env();
    let cell = match backend.as_str() {
        "reference" => run_cell(
            "reference",
            &|| Device::reference(DeviceConfig::new().workers(2)),
            &net,
            k,
        ),
        _ => run_cell(
            "cpusim",
            &|| Device::new(DeviceConfig::new().workers(2)),
            &net,
            k,
        ),
    };
    assert!(cell.fused_engaged, "smoke batch must take the fused path");
    assert!(
        cell.launches_per_query_fused < cell.launches_per_query_seq,
        "fused dispatch must issue fewer launches/query than sequential \
         ({} vs {})",
        cell.launches_per_query_fused,
        cell.launches_per_query_seq
    );
    assert!(
        cell.gemm_per_query_fused < cell.gemm_per_query_seq,
        "fused dispatch must issue fewer GEMM launches/query than sequential \
         ({} vs {})",
        cell.gemm_per_query_fused,
        cell.gemm_per_query_seq
    );
    println!(
        "[fusion --smoke] ok on {}: launches/query fused {:.1} < seq {:.1}, \
         gemm/query fused {:.2} < seq {:.2}",
        cell.backend,
        cell.launches_per_query_fused,
        cell.launches_per_query_seq,
        cell.gemm_per_query_fused,
        cell.gemm_per_query_seq
    );
}

fn full() {
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    let net = mlp(16, 64, 3, 8);
    let mut cells: Vec<Cell> = Vec::new();
    for &k in &[1usize, 4, 16, 32] {
        cells.push(run_cell(
            "cpusim",
            &|| Device::new(DeviceConfig::new().workers(workers)),
            &net,
            k,
        ));
        cells.push(run_cell(
            "reference",
            &|| Device::reference(DeviceConfig::new().workers(1)),
            &net,
            k,
        ));
    }
    for c in &cells {
        println!(
            "[fusion] {:<9} K={:<3} q/s: seq {:>8.1} batch {:>8.1} fused {:>8.1} \
             ({:.2}x vs seq) | launches/query: seq {:>6.1} fused {:>6.1} | \
             gemm/query: seq {:>6.2} fused {:>6.2}{}",
            c.backend,
            c.batch,
            c.qps_seq,
            c.qps_batch,
            c.qps_fused,
            c.qps_fused / c.qps_seq.max(1e-9),
            c.launches_per_query_seq,
            c.launches_per_query_fused,
            c.gemm_per_query_seq,
            c.gemm_per_query_fused,
            if c.fused_engaged { "" } else { " [fell back]" },
        );
    }
    let doc = Value::obj([
        ("bench", Value::Str("fusion".to_string())),
        (
            "source",
            Value::Str("cargo bench --bench fusion (release)".to_string()),
        ),
        ("workers", Value::Num(workers as f64)),
        ("net", Value::Str("mlp 16 -> 64x3 (relu) -> 8".to_string())),
        (
            "results",
            Value::Arr(cells.iter().map(Cell::to_value).collect()),
        ),
    ]);
    // `cargo bench` runs with the package as CWD; anchor the baseline at
    // the workspace root where it is committed.
    let out = std::env::var("BENCH_FUSION_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fusion.json").to_string()
    });
    let text = serde_json::to_string(&doc).expect("serialize baseline");
    std::fs::write(&out, text + "\n").expect("write baseline");
    println!("[fusion] baseline written to {out}");
}

fn main() {
    // This target has `test = false`: it only ever runs under
    // `cargo bench --bench fusion`, with `--smoke` as the CI guard.
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
    } else {
        full();
    }
}
