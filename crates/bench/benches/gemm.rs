//! Blocked interval-GEMM benchmark: throughput across tile geometries on
//! both backends.
//!
//! The interval GEMM is the verifier's hot kernel — every backsubstitution
//! step is one. The device's cache-blocked layout (`DeviceConfig::gemm_tile`)
//! packs panels of `B` and walks `C` in `tile_m × tile_n` blocks with an
//! `mr × nr` register micro-kernel; this harness sweeps tile geometries over
//! verification-shaped matrices and reports effective GFLOP/s per geometry.
//! Results are bit-identical across every geometry (pinned by the device's
//! conformance suite — blocking is scheduling only); this measures *speed*.
//!
//! Modes:
//!
//! * `cargo bench --bench gemm` — full sweep, writes the machine-readable
//!   `BENCH_gemm.json` baseline (override the path with `BENCH_GEMM_OUT`);
//! * `cargo bench --bench gemm -- --smoke` — one tiny shape per backend,
//!   no timing, no JSON; asserts every geometry computes identical output
//!   bits (the CI guard that blocking stays pure scheduling). Honors
//!   `GPUPOLY_BACKEND=cpusim|reference`.

use std::hint::black_box;
use std::time::Instant;

use gpupoly_device::{gemm, Backend, Device, DeviceConfig, GemmTile};
use gpupoly_interval::Itv;

/// Deterministic pseudo-random matrix entries in `[-0.5, 0.5)`.
fn mix(i: usize, salt: usize) -> f32 {
    ((((i + 31) * (salt + 7)) * 2654435761 % 2001) as f32 / 1000.0 - 1.0) * 0.25
}

/// One interval×scalar GEMM timing at a given shape and tile geometry:
/// `C[m×n] = A[m×k] (intervals) × B[k×n] (scalars)`.
fn time_gemm<B: Backend>(
    device: &Device<B>,
    m: usize,
    k: usize,
    n: usize,
    reps: usize,
) -> (f64, Vec<u64>) {
    let a: Vec<Itv<f32>> = (0..m * k)
        .map(|i| {
            let c = mix(i, 1);
            // Sprinkle exact zeros so the mandatory zero-skip path runs.
            if i % 7 == 0 {
                Itv::new(0.0, 0.0)
            } else {
                Itv::new(c - 1e-3, c + 1e-3)
            }
        })
        .collect();
    let b: Vec<f32> = (0..k * n).map(|i| mix(i, 2)).collect();
    let mut c = vec![Itv::new(0.0f32, 0.0); m * n];

    // Warm pass (pool population, panel packing scratch) then timed reps.
    gemm::gemm_itv_f(device, &a, &b, &mut c, m, k, n);
    let t = Instant::now();
    for _ in 0..reps {
        gemm::gemm_itv_f(device, &a, &b, &mut c, m, k, n);
        black_box(&c);
    }
    let secs = t.elapsed().as_secs_f64();
    let bits: Vec<u64> = c
        .iter()
        .flat_map(|itv| [itv.lo.to_bits() as u64, itv.hi.to_bits() as u64])
        .collect();
    (secs, bits)
}

/// The swept geometries: the default plus narrower/wider blocks and
/// micro-kernels around it.
fn geometries() -> Vec<(&'static str, GemmTile)> {
    let d = GemmTile::default();
    vec![
        ("default", d),
        (
            "tile32",
            GemmTile {
                tile_m: 32,
                tile_n: 64,
                ..d
            },
        ),
        (
            "tile128",
            GemmTile {
                tile_m: 128,
                tile_n: 256,
                ..d
            },
        ),
        ("mr2xnr4", GemmTile { mr: 2, nr: 4, ..d }),
        ("mr8xnr8", GemmTile { mr: 8, nr: 8, ..d }),
    ]
}

struct Cell {
    backend: &'static str,
    geometry: &'static str,
    m: usize,
    k: usize,
    n: usize,
    gflops: f64,
}

fn run_backend<B: Backend>(
    backend: &'static str,
    mk_device: &dyn Fn(GemmTile) -> Device<B>,
    shapes: &[(usize, usize, usize)],
    reps: usize,
    cells: &mut Vec<Cell>,
) {
    for &(m, k, n) in shapes {
        let mut reference_bits: Option<Vec<u64>> = None;
        for (name, tile) in geometries() {
            let device = mk_device(tile);
            let (secs, bits) = time_gemm(&device, m, k, n, reps);
            match &reference_bits {
                None => reference_bits = Some(bits),
                Some(want) => assert_eq!(
                    want, &bits,
                    "{backend}/{name} {m}x{k}x{n}: tile geometry changed result bits"
                ),
            }
            // One interval×scalar MAC = 2 directed-rounded multiplies +
            // 2 adds = 4 scalar flops.
            let flops = (4 * m * k * n * reps) as f64;
            cells.push(Cell {
                backend,
                geometry: name,
                m,
                k,
                n,
                gflops: flops / secs.max(1e-9) / 1e9,
            });
        }
    }
}

fn backend_env() -> String {
    std::env::var("GPUPOLY_BACKEND").unwrap_or_else(|_| "cpusim".to_string())
}

fn smoke() {
    // Tiny shape, every geometry: the bit-identity assertion inside
    // `run_backend` is the guard; timing is irrelevant.
    let shapes = [(24usize, 16usize, 20usize)];
    let mut cells = Vec::new();
    match backend_env().as_str() {
        "reference" => run_backend(
            "reference",
            &|tile| Device::reference(DeviceConfig::new().workers(2).gemm_tile(tile)),
            &shapes,
            1,
            &mut cells,
        ),
        _ => run_backend(
            "cpusim",
            &|tile| Device::new(DeviceConfig::new().workers(2).gemm_tile(tile)),
            &shapes,
            1,
            &mut cells,
        ),
    }
    println!(
        "[gemm --smoke] ok: {} geometries bit-identical on {}",
        cells.len(),
        cells[0].backend
    );
}

fn full() {
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    // Verification-shaped GEMMs: tall row blocks (backsubstituted bounds)
    // against layer-sized scalar panels.
    let shapes = [
        (256usize, 256usize, 256usize),
        (512, 784, 128),
        (64, 1024, 512),
    ];
    let mut cells = Vec::new();
    run_backend(
        "cpusim",
        &|tile| Device::new(DeviceConfig::new().workers(workers).gemm_tile(tile)),
        &shapes,
        8,
        &mut cells,
    );
    run_backend(
        "reference",
        &|tile| Device::reference(DeviceConfig::new().workers(1).gemm_tile(tile)),
        &shapes,
        2,
        &mut cells,
    );
    for c in &cells {
        println!(
            "[gemm] {:<9} {:>8} {:>4}x{:<4}x{:<4} {:>7.2} GFLOP/s",
            c.backend, c.geometry, c.m, c.k, c.n, c.gflops
        );
    }

    use serde::Value;
    let doc = Value::obj([
        ("bench", Value::Str("gemm".to_string())),
        (
            "source",
            Value::Str("cargo bench --bench gemm (release)".to_string()),
        ),
        ("workers", Value::Num(workers as f64)),
        (
            "results",
            Value::Arr(
                cells
                    .iter()
                    .map(|c| {
                        Value::obj([
                            ("backend", Value::Str(c.backend.to_string())),
                            ("geometry", Value::Str(c.geometry.to_string())),
                            ("m", Value::Num(c.m as f64)),
                            ("k", Value::Num(c.k as f64)),
                            ("n", Value::Num(c.n as f64)),
                            ("gflops", Value::Num(c.gflops)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let out = std::env::var("BENCH_GEMM_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gemm.json").to_string()
    });
    let text = serde_json::to_string(&doc).expect("serialize baseline");
    std::fs::write(&out, text + "\n").expect("write baseline");
    println!("[gemm] baseline written to {out}");
}

fn main() {
    // This target has `test = false`: it only ever runs under
    // `cargo bench --bench gemm`, with `--smoke` as the CI guard.
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
    } else {
        full();
    }
}
