//! §4.2 "Memory management": when the bound matrix does not fit in device
//! memory, GPUPoly backsubstitutes it in chunks. This bench measures the
//! runtime cost of chunking on a memory-constrained device against an
//! unconstrained run, and checks that the constrained run stays under its
//! capacity while producing identical verdicts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpupoly_core::{GpuPoly, VerifyConfig};
use gpupoly_device::{Device, DeviceConfig};
use gpupoly_nn::builder::NetworkBuilder;
use gpupoly_nn::Network;
use std::hint::black_box;

fn mid_net() -> Network<f32> {
    let mut b = NetworkBuilder::new_flat(32);
    let mut in_len = 32;
    for layer in 0..3 {
        let width = 128;
        let w: Vec<f32> = (0..width * in_len)
            .map(|i| (((i * 48271 + layer) % 1000) as f32 / 1000.0 - 0.5) * 0.15)
            .collect();
        b = b.dense_flat(width, w, vec![0.0; width]).relu();
        in_len = width;
    }
    b.flatten_dense(10, |i| (((i * 7) % 19) as f32 - 9.0) * 0.05, |_| 0.0)
        .build()
        .expect("net builds")
}

fn bench_chunking(c: &mut Criterion) {
    let mut group = c.benchmark_group("chunking");
    group.sample_size(10);
    let net = mid_net();
    let image = vec![0.5f32; 32];
    let label = net.classify(&image);
    let eps = 0.02f32;

    // Capacity chosen to force many chunks but never fail outright.
    let tight = 512 * 1024;
    for (name, capacity) in [("unconstrained", None), ("constrained_512k", Some(tight))] {
        group.bench_with_input(BenchmarkId::new("verify", name), &(), |bench, _| {
            let mut dc = DeviceConfig::new();
            if let Some(cap) = capacity {
                dc = dc.memory_capacity(cap);
            }
            let device = Device::new(dc);
            let verifier = GpuPoly::new(device, &net, VerifyConfig::default()).expect("verifier");
            bench.iter(|| {
                let v = verifier.verify_robustness(&image, label, eps).unwrap();
                black_box(v.verified);
            });
        });
    }

    // Equivalence + memory ceiling check.
    let free_dev = Device::new(DeviceConfig::new());
    let big = GpuPoly::new(free_dev.clone(), &net, VerifyConfig::default())
        .unwrap()
        .verify_robustness(&image, label, eps)
        .unwrap();
    let tight_dev = Device::new(DeviceConfig::new().memory_capacity(tight));
    let small = GpuPoly::new(tight_dev.clone(), &net, VerifyConfig::default())
        .unwrap()
        .verify_robustness(&image, label, eps)
        .unwrap();
    assert_eq!(big.verified, small.verified);
    assert!(tight_dev.peak_memory() <= tight, "capacity was violated");
    println!(
        "[chunking] chunks: unconstrained {} vs constrained {}; peak memory {} vs {} B (cap {} B)",
        big.stats.chunks,
        small.stats.chunks,
        free_dev.peak_memory(),
        tight_dev.peak_memory(),
        tight,
    );
}

criterion_group!(benches, bench_chunking);
criterion_main!(benches);
