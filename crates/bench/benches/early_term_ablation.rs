//! §3.2 ablation: early termination on vs off.
//!
//! Two synthetic networks with controlled ReLU stability: a "robust-like"
//! one whose pre-activations are biased away from zero (almost every ReLU
//! is stable, the DiffAI/CR-IBP regime) and a "normal-like" one centered on
//! zero (most ReLUs unstable). Early termination should collapse runtimes
//! on the first and change little on the second — with identical verdicts
//! either way (checked here).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpupoly_core::{GpuPoly, VerifyConfig};
use gpupoly_device::{Device, DeviceConfig};
use gpupoly_nn::builder::NetworkBuilder;
use gpupoly_nn::Network;
use std::hint::black_box;

/// A 4-hidden-layer MLP; `bias` shifts every pre-activation.
fn mlp(width: usize, bias: f32) -> Network<f32> {
    let mut b = NetworkBuilder::new_flat(16);
    let mut in_len = 16;
    for layer in 0..4 {
        let w: Vec<f32> = (0..width * in_len)
            .map(|i| (((i * 2654435761 + layer * 97) % 1000) as f32 / 1000.0 - 0.5) * 0.2)
            .collect();
        b = b.dense_flat(width, w, vec![bias; width]).relu();
        in_len = width;
    }
    b.flatten_dense(4, |i| (((i * 31) % 17) as f32 - 8.0) * 0.05, |_| 0.0)
        .build()
        .expect("mlp builds")
}

fn bench_early_term(c: &mut Criterion) {
    let mut group = c.benchmark_group("early_term_ablation");
    group.sample_size(10);
    let image = vec![0.5f32; 16];
    let eps = 0.03f32;
    for (name, bias) in [("robust_like", 0.5f32), ("normal_like", 0.0f32)] {
        let net = mlp(96, bias);
        let label = net.classify(&image);
        for (mode, et) in [("with_early_term", true), ("no_early_term", false)] {
            let cfg = VerifyConfig {
                early_termination: et,
                ..Default::default()
            };
            group.bench_with_input(BenchmarkId::new(mode, name), &(), |bench, _| {
                let device = Device::new(DeviceConfig::new());
                let verifier = GpuPoly::new(device, &net, cfg).expect("verifier");
                bench.iter(|| {
                    let v = verifier.verify_robustness(&image, label, eps).unwrap();
                    black_box(v.verified);
                });
            });
        }
        // Verdict equivalence (the paper: no precision loss).
        let device = Device::new(DeviceConfig::new());
        let on = GpuPoly::new(device.clone(), &net, VerifyConfig::default())
            .unwrap()
            .verify_robustness(&image, label, eps)
            .unwrap();
        let off = GpuPoly::new(
            device,
            &net,
            VerifyConfig {
                early_termination: false,
                ..Default::default()
            },
        )
        .unwrap()
        .verify_robustness(&image, label, eps)
        .unwrap();
        assert_eq!(
            on.verified, off.verified,
            "early termination changed the verdict"
        );
        println!(
            "[early-term] {name}: rows skipped as stable = {} / refined = {} (ET on)",
            on.stats.rows_skipped_stable, on.stats.rows_refined
        );
    }
    group.finish();
}

criterion_group!(benches, bench_early_term);
criterion_main!(benches);
